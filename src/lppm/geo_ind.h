#pragma once

/// \file geo_ind.h
/// Geo-indistinguishability [Andrés et al., CCS 2013]: the planar Laplace
/// mechanism. Every record is displaced independently by a random vector
/// whose direction is uniform and whose radius follows the polar Laplace
/// law with privacy parameter epsilon (pdf ∝ ε² r e^{-εr}); the radius is
/// sampled exactly via the Lambert W_{-1} inverse CDF. Lower ε = more noise
/// = stronger privacy. The paper fixes ε = 0.01 m⁻¹ ("medium privacy",
/// mean displacement 2/ε = 200 m).

#include <string>

#include "lppm/lppm.h"

namespace mood::lppm {

class GeoIndistinguishability final : public Lppm {
 public:
  /// Precondition: epsilon_per_m > 0.
  explicit GeoIndistinguishability(double epsilon_per_m = 0.01);

  [[nodiscard]] std::string name() const override { return "GeoI"; }

  [[nodiscard]] mobility::Trace apply(const mobility::Trace& trace,
                                      support::RngStream rng) const override;

  [[nodiscard]] double epsilon() const { return epsilon_per_m_; }

  /// Draws one radius from the polar Laplace law (exposed for testing the
  /// sampler's distribution against the analytic CDF).
  [[nodiscard]] double sample_radius_m(support::RngStream& rng) const;

 private:
  double epsilon_per_m_;
};

}  // namespace mood::lppm
