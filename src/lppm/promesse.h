#pragma once

/// \file promesse.h
/// Promesse-style speed smoothing [Primault et al., the POI-erasure
/// mechanism the paper's related work builds on]: resample the trace at a
/// constant spatial stride along its own path. Dwells collapse to a single
/// point per stride, so stay-point clustering finds no POIs at all —
/// the strongest defence against POI/PIT-style profiling — while the
/// *route* stays exact (good for traffic analysis).
///
/// Extension LPPM (§6), not part of the paper's evaluated set.

#include <string>

#include "lppm/lppm.h"

namespace mood::lppm {

class Promesse final : public Lppm {
 public:
  /// `stride_m`: distance between consecutive output records along the
  /// path (default 200 m, the POI-clustering diameter). Precondition > 0.
  explicit Promesse(double stride_m = 200.0);

  [[nodiscard]] std::string name() const override { return "Promesse"; }

  [[nodiscard]] mobility::Trace apply(const mobility::Trace& trace,
                                      support::RngStream rng) const override;

  [[nodiscard]] double stride_m() const { return stride_m_; }

 private:
  double stride_m_;
};

}  // namespace mood::lppm
