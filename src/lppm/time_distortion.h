#pragma once

/// \file time_distortion.h
/// Time-distortion anonymisation [Primault et al. 2015, paper ref. 28]:
/// keeps every position exact but perturbs *when* the user was there, so
/// profiling attacks that depend on temporal regularity (dwell lengths,
/// visit order statistics) lose their anchor while count/where queries
/// keep full spatial precision.
///
/// Each record's timestamp is shifted by a smoothly varying offset: a
/// per-trace base shift plus a bounded random walk (so local event order
/// is preserved — the output is re-sorted, but adjacent records rarely
/// swap). Extension LPPM (§6), not part of the paper's evaluated set.

#include <string>

#include "lppm/lppm.h"

namespace mood::lppm {

class TimeDistortion final : public Lppm {
 public:
  /// `max_shift` bounds the total time offset of any record;
  /// `step_sigma` controls how fast the offset drifts between consecutive
  /// records. Preconditions: max_shift > 0, step_sigma >= 0.
  explicit TimeDistortion(mobility::Timestamp max_shift = 2 * mobility::kHour,
                          double step_sigma = 120.0);

  [[nodiscard]] std::string name() const override { return "TimeDist"; }

  [[nodiscard]] mobility::Trace apply(const mobility::Trace& trace,
                                      support::RngStream rng) const override;

  [[nodiscard]] mobility::Timestamp max_shift() const { return max_shift_; }

 private:
  mobility::Timestamp max_shift_;
  double step_sigma_;
};

}  // namespace mood::lppm
