#include "lppm/spatial_cloaking.h"

namespace mood::lppm {

mobility::Trace SpatialCloaking::apply(const mobility::Trace& trace,
                                       support::RngStream /*rng*/) const {
  std::vector<mobility::Record> out;
  out.reserve(trace.size());
  for (const auto& record : trace.records()) {
    out.push_back(mobility::Record{
        grid_.cell_center(grid_.cell_of(record.position)), record.time});
  }
  return mobility::Trace(trace.user(), std::move(out));
}

}  // namespace mood::lppm
