#pragma once

/// \file composition.h
/// Ordered composition of LPPMs (paper Eq. 3):
///   C_p(T) = L_ip ∘ ... ∘ L_i2 ∘ L_i1 (T)
/// — apply L_i1 first, feed its output to L_i2, and so on. Order matters.
/// A Composition is itself an Lppm, so the MooD engine treats singles and
/// compositions uniformly.

#include <string>
#include <vector>

#include "lppm/lppm.h"

namespace mood::lppm {

/// Non-owning ordered sequence of LPPM stages. The referenced LPPMs must
/// outlive the composition (in practice they live in the LppmRegistry).
class Composition final : public Lppm {
 public:
  /// Precondition: stages non-empty, no nulls.
  explicit Composition(std::vector<const Lppm*> stages);

  /// Name in application order, e.g. "GeoI+TRL" = TRL(GeoI(T)).
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] mobility::Trace apply(const mobility::Trace& trace,
                                      support::RngStream rng) const override;

  [[nodiscard]] const std::vector<const Lppm*>& stages() const {
    return stages_;
  }
  [[nodiscard]] std::size_t length() const { return stages_.size(); }

 private:
  std::vector<const Lppm*> stages_;
  std::string name_;
};

/// Enumerates every ordered selection of distinct LPPMs from `singles` with
/// length in [min_length, max_length]. With min_length = 1 and
/// max_length = n this is the paper's C, of size sum_{i=1..n} n!/(n-i)!
/// (= 15 for n = 3); with min_length = 2 it is C \ L, the set the engine
/// explores after the single-LPPM pass fails. Order of results is
/// deterministic: increasing length, then lexicographic by stage index.
std::vector<Composition> enumerate_compositions(
    const std::vector<const Lppm*>& singles, std::size_t min_length,
    std::size_t max_length);

/// Number of ordered selections of i distinct items out of n, summed over
/// i in [min_length, max_length] — the closed form of the enumeration size.
std::size_t composition_count(std::size_t n, std::size_t min_length,
                              std::size_t max_length);

}  // namespace mood::lppm
