#include "lppm/trilateration.h"

#include <cmath>

#include "geo/geo.h"
#include "support/error.h"

namespace mood::lppm {

Trilateration::Trilateration(double radius_m, int dummies,
                             double inner_fraction)
    : radius_m_(radius_m),
      dummies_(dummies),
      inner_fraction_(inner_fraction) {
  support::expects(radius_m > 0.0, "TRL: radius must be positive");
  support::expects(dummies >= 1, "TRL: need at least one assisted location");
  support::expects(inner_fraction >= 0.0 && inner_fraction < 1.0,
                   "TRL: inner_fraction must be in [0, 1)");
}

mobility::Trace Trilateration::apply(const mobility::Trace& trace,
                                     support::RngStream rng) const {
  std::vector<mobility::Record> out;
  out.reserve(trace.size() * static_cast<std::size_t>(dummies_));
  // Uniform density over the annulus area: invert the CDF of r^2.
  const double inner2 = inner_fraction_ * inner_fraction_;
  for (const auto& record : trace.records()) {
    for (int d = 0; d < dummies_; ++d) {
      const double bearing = rng.uniform(0.0, 2.0 * geo::kPi);
      const double u = rng.uniform();
      const double distance =
          radius_m_ * std::sqrt(inner2 + (1.0 - inner2) * u);
      out.push_back(mobility::Record{
          geo::destination(record.position, bearing, distance), record.time});
    }
  }
  return mobility::Trace(trace.user(), std::move(out));
}

}  // namespace mood::lppm
