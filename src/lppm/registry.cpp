#include "lppm/registry.h"

#include "support/error.h"

namespace mood::lppm {

const Lppm* LppmRegistry::add(LppmPtr lppm) {
  support::expects(lppm != nullptr, "LppmRegistry::add: null lppm");
  support::expects(find(lppm->name()) == nullptr,
                   "LppmRegistry::add: duplicate name " + lppm->name());
  owned_.push_back(std::move(lppm));
  views_.push_back(owned_.back().get());
  return views_.back();
}

const Lppm* LppmRegistry::find(const std::string& name) const {
  for (const Lppm* lppm : views_) {
    if (lppm->name() == name) return lppm;
  }
  return nullptr;
}

std::vector<Composition> LppmRegistry::all_compositions() const {
  return enumerate_compositions(views_, 1, views_.size());
}

std::vector<Composition> LppmRegistry::multi_compositions() const {
  if (views_.size() < 2) return {};
  return enumerate_compositions(views_, 2, views_.size());
}

}  // namespace mood::lppm
