#pragma once

/// \file spatial_cloaking.h
/// Spatial cloaking — the generalisation class of LPPMs (paper §5 cites
/// NeverWalkAlone/W4M [Abul et al.] and semantic cloaking [Barak et al.]).
/// Every record is snapped to the centre of its grid cell, so any position
/// inside a cell becomes indistinguishable from any other: a cell-level
/// k-anonymity surrogate that needs no coordination with other users.
///
/// Not part of the paper's evaluated set L = {GeoI, TRL, HMC}; provided as
/// an off-the-shelf extension (§6: "MooD can be extended by using
/// state-of-the-art LPPMs") and exercised by the registry-size ablation.

#include <string>

#include "geo/cell_grid.h"
#include "lppm/lppm.h"

namespace mood::lppm {

class SpatialCloaking final : public Lppm {
 public:
  /// Snaps records to the centres of `grid` cells.
  explicit SpatialCloaking(geo::CellGrid grid) : grid_(std::move(grid)) {}

  [[nodiscard]] std::string name() const override { return "Cloak"; }

  [[nodiscard]] mobility::Trace apply(const mobility::Trace& trace,
                                      support::RngStream rng) const override;

  [[nodiscard]] const geo::CellGrid& grid() const { return grid_; }

 private:
  geo::CellGrid grid_;
};

}  // namespace mood::lppm
