#pragma once

/// \file registry.h
/// Owning registry of the single LPPMs an experiment works with (the
/// paper's set L), plus the derived composition set C. Keeps the engine,
/// benches and examples configuration-driven: LPPMs are registered once and
/// addressed by name afterwards.

#include <memory>
#include <string>
#include <vector>

#include "lppm/composition.h"
#include "lppm/lppm.h"

namespace mood::lppm {

class LppmRegistry {
 public:
  LppmRegistry() = default;

  // The registry hands out raw pointers into its storage; moving it would
  // invalidate engines holding them.
  LppmRegistry(const LppmRegistry&) = delete;
  LppmRegistry& operator=(const LppmRegistry&) = delete;

  /// Registers a single LPPM. Precondition: its name is not taken yet.
  /// Returns the stable pointer the registry will keep alive.
  const Lppm* add(LppmPtr lppm);

  /// Registered single LPPMs, in registration order (the paper's L).
  [[nodiscard]] const std::vector<const Lppm*>& singles() const {
    return views_;
  }

  /// Lookup by name; nullptr if absent.
  [[nodiscard]] const Lppm* find(const std::string& name) const;

  /// The full composition set C (lengths 1..n), size sum n!/(n-i)!.
  [[nodiscard]] std::vector<Composition> all_compositions() const;

  /// C \ L: compositions of length >= 2, the set the engine searches after
  /// the single-LPPM pass.
  [[nodiscard]] std::vector<Composition> multi_compositions() const;

  [[nodiscard]] std::size_t size() const { return owned_.size(); }

 private:
  std::vector<LppmPtr> owned_;
  std::vector<const Lppm*> views_;
};

}  // namespace mood::lppm
