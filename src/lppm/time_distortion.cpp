#include "lppm/time_distortion.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace mood::lppm {

TimeDistortion::TimeDistortion(mobility::Timestamp max_shift,
                               double step_sigma)
    : max_shift_(max_shift), step_sigma_(step_sigma) {
  support::expects(max_shift > 0, "TimeDistortion: max_shift must be > 0");
  support::expects(step_sigma >= 0.0,
                   "TimeDistortion: step_sigma must be >= 0");
}

mobility::Trace TimeDistortion::apply(const mobility::Trace& trace,
                                      support::RngStream rng) const {
  const double bound = static_cast<double>(max_shift_);
  // Base shift in [-max_shift/2, max_shift/2), then a clamped random walk.
  double offset = rng.uniform(-bound / 2.0, bound / 2.0);
  std::vector<mobility::Record> out;
  out.reserve(trace.size());
  for (const auto& record : trace.records()) {
    offset = std::clamp(offset + rng.normal(0.0, step_sigma_), -bound, bound);
    out.push_back(mobility::Record{
        record.position,
        record.time + static_cast<mobility::Timestamp>(offset)});
  }
  // The walk can locally reorder records; Trace construction re-sorts.
  return mobility::Trace(trace.user(), std::move(out));
}

}  // namespace mood::lppm
