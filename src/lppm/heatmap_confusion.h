#pragma once

/// \file heatmap_confusion.h
/// HMC — Heat Map Confusion [Maouche et al., IMWUT 2018]: perturbation +
/// dummy hybrid designed specifically against re-identification attacks.
///
/// The user's trace is viewed as a heatmap on the shared grid. The
/// mechanism picks a *donor* — another user from a pool of background
/// heatmaps — and re-locates the trace so its heatmap looks like the
/// donor's: the k-th hottest cell of the user maps onto the k-th hottest
/// cell of the donor, and each record keeps its offset inside the cell and
/// its timestamp.
///
/// Faithful imperfection — the alteration is *utility-budgeted*, as in the
/// original ("the objective ... is to preserve a certain level of data
/// utility"). Relocating the mass fraction w of the records by a distance
/// d costs w*d metres of expected displacement. HMC plans an alignment of
/// the hottest cells (up to `hot_coverage` of the mass and
/// `max_mapped_cells` cells) onto the donor whose plan is cheapest; if
/// even that cheapest plan would cost more than `distortion_budget_m`, the
/// mechanism refuses and returns the trace unchanged — imitating anyone
/// would destroy the data. Cells outside the plan pass through unchanged.
///
/// The refusals and the residue are exactly what keeps a minority of users
/// re-identifiable in the paper's Fig. 6/7: users whose mobility lives far
/// from every potential donor (no affordable plan — the orphan archetype),
/// users with secondary places below the coverage cut (POI/PIT catch
/// them), and broad flat fleets like Cabspotting where the cell cap binds
/// (Fig. 7d).

#include <memory>
#include <string>
#include <vector>

#include "geo/cell_grid.h"
#include "lppm/lppm.h"
#include "profiles/heatmap.h"

namespace mood::lppm {

/// Immutable pool of candidate donor heatmaps (one per known user).
class DonorPool {
 public:
  /// Builds the pool from background traces on the given grid.
  DonorPool(const std::vector<mobility::Trace>& background,
            const geo::CellGrid& grid);

  struct Entry {
    mobility::UserId user;
    profiles::Heatmap heatmap;
    /// Donor cells pre-ranked by decreasing count (computed once).
    std::vector<std::pair<geo::CellIndex, double>> ranked;
  };

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

 private:
  std::vector<Entry> entries_;
};

class HeatmapConfusion final : public Lppm {
 public:
  /// Preconditions: pool non-null and non-empty; hot_coverage in (0, 1];
  /// max_mapped_cells >= 1; distortion_budget_m > 0. Cell size defaults to
  /// the paper's 800 m (the grid arrives ready-made).
  HeatmapConfusion(geo::CellGrid grid, std::shared_ptr<const DonorPool> pool,
                   double hot_coverage = 0.85,
                   std::size_t max_mapped_cells = 32,
                   double distortion_budget_m = 5000.0);

  [[nodiscard]] std::string name() const override { return "HMC"; }

  [[nodiscard]] mobility::Trace apply(const mobility::Trace& trace,
                                      support::RngStream rng) const override;

  /// Cost of imitating `donor`: sum over the user's ranked cells (up to
  /// the coverage/cell budgets) of mass_fraction x distance from the
  /// user's cell to the rank-aligned donor cell, in expected metres of
  /// displacement per record.
  [[nodiscard]] double relocation_cost(
      const std::vector<std::pair<geo::CellIndex, double>>& user_cells,
      double user_total, const DonorPool::Entry& donor) const;

  /// The donor chosen for a heatmap (exposed for tests/analysis): the
  /// non-self pool entry with minimal relocation cost. Returns nullptr
  /// if no eligible donor exists.
  [[nodiscard]] const DonorPool::Entry* choose_donor(
      const profiles::Heatmap& user_map, const mobility::UserId& owner) const;

 private:
  geo::CellGrid grid_;
  std::shared_ptr<const DonorPool> pool_;
  double hot_coverage_;
  std::size_t max_mapped_cells_;
  double distortion_budget_m_;
};

}  // namespace mood::lppm
