#include "lppm/geo_ind.h"

#include <cmath>

#include "geo/geo.h"
#include "support/error.h"
#include "support/math.h"

namespace mood::lppm {

GeoIndistinguishability::GeoIndistinguishability(double epsilon_per_m)
    : epsilon_per_m_(epsilon_per_m) {
  support::expects(epsilon_per_m > 0.0, "GeoI: epsilon must be positive");
}

double GeoIndistinguishability::sample_radius_m(support::RngStream& rng) const {
  // Inverse CDF of the polar Laplace radius (Andrés et al., Thm. 4.3):
  //   r = -(1/ε) (W_{-1}((p - 1)/e) + 1),  p ~ U[0, 1).
  // Clamp p away from 1 to keep the W argument inside (-1/e, 0).
  double p = rng.uniform();
  if (p > 1.0 - 1e-12) p = 1.0 - 1e-12;
  const double w = support::lambert_w_minus1((p - 1.0) / std::exp(1.0));
  return -(w + 1.0) / epsilon_per_m_;
}

mobility::Trace GeoIndistinguishability::apply(const mobility::Trace& trace,
                                               support::RngStream rng) const {
  std::vector<mobility::Record> out;
  out.reserve(trace.size());
  for (const auto& record : trace.records()) {
    const double bearing = rng.uniform(0.0, 2.0 * geo::kPi);
    const double radius = sample_radius_m(rng);
    out.push_back(mobility::Record{
        geo::destination(record.position, bearing, radius), record.time});
  }
  return mobility::Trace(trace.user(), std::move(out));
}

}  // namespace mood::lppm
