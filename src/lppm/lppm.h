#pragma once

/// \file lppm.h
/// Location Privacy Protection Mechanism interface (paper Eq. 2).
///
/// An LPPM is a (possibly randomised) transformation of a mobility trace:
/// L(Υ, T) = T'. Implementations are immutable after construction (their
/// parameters Υ are constructor arguments) and therefore safe to share
/// across threads; all randomness flows through the RngStream argument, so
/// the same (trace, stream) pair always yields the same output — the
/// property MooD's reproducible composition search relies on.

#include <memory>
#include <string>
#include <vector>

#include "mobility/trace.h"
#include "support/rng.h"

namespace mood::lppm {

/// Abstract protection mechanism.
class Lppm {
 public:
  virtual ~Lppm() = default;

  /// Display name ("GeoI", "TRL", "HMC", "HMC+GeoI", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Produces the obfuscated trace. The output keeps the input's user id
  /// (id renewal is MooD's job, not the LPPM's). Implementations fork `rng`
  /// for their internal draws and must not touch other global state.
  [[nodiscard]] virtual mobility::Trace apply(const mobility::Trace& trace,
                                              support::RngStream rng) const = 0;
};

using LppmPtr = std::unique_ptr<Lppm>;

}  // namespace mood::lppm
