#include "lppm/heatmap_confusion.h"

#include <limits>
#include <unordered_map>

#include "support/error.h"

namespace mood::lppm {

DonorPool::DonorPool(const std::vector<mobility::Trace>& background,
                     const geo::CellGrid& grid) {
  entries_.reserve(background.size());
  for (const auto& trace : background) {
    Entry entry;
    entry.user = trace.user();
    entry.heatmap = profiles::Heatmap::from_trace(trace, grid);
    entry.ranked = entry.heatmap.ranked_cells();
    entries_.push_back(std::move(entry));
  }
}

HeatmapConfusion::HeatmapConfusion(geo::CellGrid grid,
                                   std::shared_ptr<const DonorPool> pool,
                                   double hot_coverage,
                                   std::size_t max_mapped_cells,
                                   double distortion_budget_m)
    : grid_(std::move(grid)),
      pool_(std::move(pool)),
      hot_coverage_(hot_coverage),
      max_mapped_cells_(max_mapped_cells),
      distortion_budget_m_(distortion_budget_m) {
  support::expects(pool_ != nullptr && !pool_->empty(),
                   "HMC: donor pool must be non-empty");
  support::expects(hot_coverage > 0.0 && hot_coverage <= 1.0,
                   "HMC: hot_coverage must be in (0, 1]");
  support::expects(max_mapped_cells >= 1,
                   "HMC: max_mapped_cells must be >= 1");
  support::expects(distortion_budget_m > 0.0,
                   "HMC: distortion budget must be positive");
}

double HeatmapConfusion::relocation_cost(
    const std::vector<std::pair<geo::CellIndex, double>>& user_cells,
    double user_total, const DonorPool::Entry& donor) const {
  if (donor.ranked.empty() || user_total <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  double cost = 0.0;
  double covered = 0.0;
  const double target = hot_coverage_ * user_total;
  for (std::size_t rank = 0;
       rank < user_cells.size() && rank < max_mapped_cells_ &&
       covered < target;
       ++rank) {
    const auto& [cell, count] = user_cells[rank];
    const auto& donor_cell = donor.ranked[rank % donor.ranked.size()].first;
    const double mass = count / user_total;
    cost += mass * geo::haversine_m(grid_.cell_center(cell),
                                    grid_.cell_center(donor_cell));
    covered += count;
  }
  return cost;
}

const DonorPool::Entry* HeatmapConfusion::choose_donor(
    const profiles::Heatmap& user_map, const mobility::UserId& owner) const {
  const auto user_cells = user_map.ranked_cells();
  const DonorPool::Entry* best = nullptr;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& entry : pool_->entries()) {
    if (entry.user == owner) continue;  // never donate to yourself
    const double cost = relocation_cost(user_cells, user_map.total(), entry);
    if (cost < best_cost) {
      best_cost = cost;
      best = &entry;
    }
  }
  return best;
}

mobility::Trace HeatmapConfusion::apply(const mobility::Trace& trace,
                                        support::RngStream /*rng*/) const {
  if (trace.empty()) return trace;
  const auto user_map = profiles::Heatmap::from_trace(trace, grid_);
  const DonorPool::Entry* donor = choose_donor(user_map, trace.user());
  if (donor == nullptr || donor->ranked.empty()) {
    return trace;  // degenerate pool: nothing to confuse with
  }

  // Feasibility: if even the cheapest plan exceeds the distortion budget,
  // refuse — imitating anyone would cost more utility than the mechanism
  // is allowed to spend. (This is how orphan users escape HMC.)
  const auto user_cells = user_map.ranked_cells();
  if (relocation_cost(user_cells, user_map.total(), *donor) >
      distortion_budget_m_) {
    return trace;
  }

  // Execute the plan: align the user's hottest cells onto the donor's,
  // rank by rank, up to the coverage target and the cell cap.
  std::unordered_map<geo::CellIndex, geo::CellIndex, geo::CellIndexHash>
      mapping;
  double covered = 0.0;
  const double target = hot_coverage_ * user_map.total();
  for (std::size_t rank = 0; rank < user_cells.size(); ++rank) {
    if (covered >= target || mapping.size() >= max_mapped_cells_) break;
    const auto& [cell, count] = user_cells[rank];
    covered += count;
    mapping.emplace(cell, donor->ranked[rank % donor->ranked.size()].first);
  }

  std::vector<mobility::Record> out;
  out.reserve(trace.size());
  for (const auto& record : trace.records()) {
    const geo::CellIndex cell = grid_.cell_of(record.position);
    const auto mapped = mapping.find(cell);
    if (mapped == mapping.end()) {
      out.push_back(record);  // unmapped cell: residual leakage by design
      continue;
    }
    const geo::EnuPoint offset = grid_.offset_within_cell(record.position);
    out.push_back(mobility::Record{grid_.point_in_cell(mapped->second, offset),
                                   record.time});
  }
  return mobility::Trace(trace.user(), std::move(out));
}

}  // namespace mood::lppm
