#include "lppm/composition.h"

#include <algorithm>

#include "support/error.h"

namespace mood::lppm {

Composition::Composition(std::vector<const Lppm*> stages)
    : stages_(std::move(stages)) {
  support::expects(!stages_.empty(), "Composition: needs at least one stage");
  for (const Lppm* stage : stages_) {
    support::expects(stage != nullptr, "Composition: null stage");
  }
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (i > 0) name_ += '+';
    name_ += stages_[i]->name();
  }
}

mobility::Trace Composition::apply(const mobility::Trace& trace,
                                   support::RngStream rng) const {
  // Each stage gets an independent deterministic stream so that the same
  // stage at the same position always draws the same noise. The first
  // stage reads the input directly — copying it first would clone the
  // whole record vector just to throw it away.
  mobility::Trace current =
      stages_.front()->apply(trace, rng.fork(stages_.front()->name(), 0));
  for (std::size_t i = 1; i < stages_.size(); ++i) {
    current = stages_[i]->apply(current, rng.fork(stages_[i]->name(), i));
  }
  return current;
}

namespace {

void enumerate_recursive(const std::vector<const Lppm*>& singles,
                         std::size_t min_length, std::size_t max_length,
                         std::vector<const Lppm*>& current,
                         std::vector<bool>& used,
                         std::vector<Composition>& out) {
  if (current.size() >= min_length) {
    out.emplace_back(current);
  }
  if (current.size() == max_length) return;
  for (std::size_t i = 0; i < singles.size(); ++i) {
    if (used[i]) continue;
    used[i] = true;
    current.push_back(singles[i]);
    enumerate_recursive(singles, min_length, max_length, current, used, out);
    current.pop_back();
    used[i] = false;
  }
}

}  // namespace

std::vector<Composition> enumerate_compositions(
    const std::vector<const Lppm*>& singles, std::size_t min_length,
    std::size_t max_length) {
  support::expects(min_length >= 1, "enumerate_compositions: min_length >= 1");
  support::expects(min_length <= max_length,
                   "enumerate_compositions: min_length <= max_length");
  std::vector<Composition> out;
  std::vector<const Lppm*> current;
  std::vector<bool> used(singles.size(), false);
  // Depth-first enumeration emits shorter prefixes before their extensions;
  // re-sort by length (stable) to get the increasing-length order the
  // engine's "incremental and exhaustive" search expects.
  enumerate_recursive(singles, min_length,
                      std::min(max_length, singles.size()), current, used,
                      out);
  std::stable_sort(out.begin(), out.end(),
                   [](const Composition& a, const Composition& b) {
                     return a.length() < b.length();
                   });
  return out;
}

std::size_t composition_count(std::size_t n, std::size_t min_length,
                              std::size_t max_length) {
  std::size_t total = 0;
  for (std::size_t i = min_length; i <= std::min(max_length, n); ++i) {
    std::size_t arrangements = 1;  // n! / (n-i)!
    for (std::size_t k = 0; k < i; ++k) arrangements *= (n - k);
    total += arrangements;
  }
  return total;
}

}  // namespace mood::lppm
