#include "lppm/promesse.h"

#include "geo/geo.h"
#include "support/error.h"

namespace mood::lppm {

Promesse::Promesse(double stride_m) : stride_m_(stride_m) {
  support::expects(stride_m > 0.0, "Promesse: stride must be positive");
}

mobility::Trace Promesse::apply(const mobility::Trace& trace,
                                support::RngStream /*rng*/) const {
  std::vector<mobility::Record> out;
  if (trace.empty()) return mobility::Trace(trace.user(), std::move(out));

  // Walk the polyline; emit a record every time the accumulated path
  // length crosses a stride boundary. Timestamps are linearly interpolated
  // along each leg, so the output is evenly spaced in distance and the
  // dwell time that used to pile up at a stay is spread along the path —
  // which is exactly what erases the POIs.
  out.push_back(trace.front());
  double since_last_m = 0.0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const auto& prev = trace.at(i - 1);
    const auto& next = trace.at(i);
    const double leg = geo::haversine_m(prev.position, next.position);
    if (leg <= 0.0) continue;  // dwell: contributes no path length
    double consumed = 0.0;
    while (since_last_m + (leg - consumed) >= stride_m_) {
      const double need = stride_m_ - since_last_m;
      consumed += need;
      const double ratio = consumed / leg;
      const geo::GeoPoint position{
          prev.position.lat + ratio * (next.position.lat - prev.position.lat),
          prev.position.lon + ratio * (next.position.lon - prev.position.lon)};
      const auto time = static_cast<mobility::Timestamp>(
          prev.time + ratio * static_cast<double>(next.time - prev.time));
      out.push_back(mobility::Record{position, time});
      since_last_m = 0.0;
    }
    since_last_m += leg - consumed;
  }
  return mobility::Trace(trace.user(), std::move(out));
}

}  // namespace mood::lppm
