#pragma once

/// \file trilateration.h
/// TRL [Huang et al., JNCA 2018]: dummy generation by trilateration.
/// For every query (record), the mechanism publishes three "assisted
/// locations" in a range of r around the real position instead of the real
/// position itself (the user later trilaterates exact answers from the
/// three responses). Assisted locations are drawn uniformly from the disk
/// of radius r (set `inner_fraction` > 0 to sample an annulus instead and
/// push all mass away from the truly visited cell — an aggressive variant
/// exercised by the ablation bench). Applied to a trace, each record is
/// replaced by its assisted locations at the same timestamp: the protected
/// trace has 3x the records and never contains a true position, but with
/// disk sampling the visited cell keeps a recognisable share of the
/// smeared mass — which is why AP-attack still re-identifies most
/// distinctive users through TRL (paper Fig. 6a). The paper fixes
/// r = 1 km.

#include <string>

#include "lppm/lppm.h"

namespace mood::lppm {

class Trilateration final : public Lppm {
 public:
  /// Precondition: radius_m > 0, dummies >= 1,
  /// inner_fraction in [0, 1).
  explicit Trilateration(double radius_m = 1000.0, int dummies = 3,
                         double inner_fraction = 0.0);

  [[nodiscard]] std::string name() const override { return "TRL"; }

  [[nodiscard]] mobility::Trace apply(const mobility::Trace& trace,
                                      support::RngStream rng) const override;

  [[nodiscard]] double radius_m() const { return radius_m_; }
  [[nodiscard]] int dummies() const { return dummies_; }
  [[nodiscard]] double inner_fraction() const { return inner_fraction_; }

 private:
  double radius_m_;
  int dummies_;
  double inner_fraction_;
};

}  // namespace mood::lppm
