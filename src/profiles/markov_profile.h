#pragma once

/// \file markov_profile.h
/// Mobility Markov Chain profile (Fig. 1, middle) after Gambs et al.:
/// states are the user's POIs ranked by record count; edges carry the
/// empirical probability of moving from one POI to another. PIT-attack
/// compares MMCs with the stats-prox distance, a combination of a
/// stationary-weight distance and a geographic proximity distance over
/// matched states.

#include <vector>

#include "clustering/poi_extraction.h"
#include "mobility/trace.h"

namespace mood::profiles {

/// One MMC state: a POI plus its stationary weight (share of the user's
/// records spent there).
struct MarkovState {
  geo::GeoPoint center;
  double weight = 0.0;  ///< stationary probability, sums to 1 over states
};

/// Mobility Markov Chain: ranked states + row-stochastic transition matrix.
class MarkovProfile {
 public:
  MarkovProfile() = default;

  /// Builds the MMC of a trace: POI extraction -> visit sequence -> counts.
  /// States are sorted by decreasing weight (the paper ranks by records).
  static MarkovProfile from_trace(const mobility::Trace& trace,
                                  const clustering::PoiParams& params = {});

  [[nodiscard]] const std::vector<MarkovState>& states() const {
    return states_;
  }
  [[nodiscard]] bool empty() const { return states_.empty(); }
  [[nodiscard]] std::size_t size() const { return states_.size(); }

  /// Transition probability from state i to state j. Rows with no observed
  /// transition are uniform. Precondition: i, j < size().
  [[nodiscard]] double transition(std::size_t i, std::size_t j) const;

 private:
  std::vector<MarkovState> states_;
  std::vector<double> transitions_;  // row-major size() x size()
};

/// stats-prox distance between two MMCs (Gambs et al. 2014): matched-state
/// stationary distance multiplied with a rank-weighted geographic proximity
/// distance (normalised by `proximity_scale_m`). Lower is more similar.
/// Infinite if either chain is empty.
///
/// - stationary part: sum over greedy rank-order matched state pairs of
///   |w_a - w_b|, plus the unmatched mass of the longer chain;
/// - proximity part: weighted mean geographic distance between matched
///   pairs (weights = mean matched stationary mass), in units of
///   `proximity_scale_m`.
/// stats_prox = stationary_part + proximity_part (both dimensionless,
/// so the sum is meaningful; the original paper reports this combined form
/// as its most effective variant).
double stats_prox_distance(const MarkovProfile& a, const MarkovProfile& b,
                           double proximity_scale_m = 1000.0);

/// One state of a compiled MMC: stationary weight plus the state centre
/// with its trigonometry precomputed for haversine evaluations.
struct CompiledMarkovState {
  geo::TrigPoint center;
  double weight = 0.0;
};

/// Immutable flat form of a MarkovProfile for the inference hot path. Only
/// what stats_prox_distance reads is kept: ranked states with precomputed
/// trigonometry (the transition matrix plays no role in the distance).
class CompiledMarkovProfile {
 public:
  CompiledMarkovProfile() = default;
  explicit CompiledMarkovProfile(const MarkovProfile& source);

  [[nodiscard]] const std::vector<CompiledMarkovState>& states() const {
    return states_;
  }
  [[nodiscard]] bool empty() const { return states_.empty(); }
  [[nodiscard]] std::size_t size() const { return states_.size(); }

 private:
  std::vector<CompiledMarkovState> states_;
};

/// stats-prox over compiled chains. Bit-identical to the legacy overload:
/// same greedy matching, same accumulation order, and haversine from cached
/// trigonometry rounds identically (see geo::TrigPoint).
double stats_prox_distance(const CompiledMarkovProfile& a,
                           const CompiledMarkovProfile& b,
                           double proximity_scale_m = 1000.0);

/// Bounded stats-prox: the stationary part accumulates non-negative terms
/// and the proximity part is non-negative, so once the partial stationary
/// sum exceeds `bound` the final distance must too — bail out and return
/// infinity. Otherwise returns the exact distance, bit-identical to the
/// unbounded overload.
double stats_prox_distance_bounded(const CompiledMarkovProfile& a,
                                   const CompiledMarkovProfile& b,
                                   double proximity_scale_m, double bound);

}  // namespace mood::profiles
