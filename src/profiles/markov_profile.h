#pragma once

/// \file markov_profile.h
/// Mobility Markov Chain profile (Fig. 1, middle) after Gambs et al.:
/// states are the user's POIs ranked by record count; edges carry the
/// empirical probability of moving from one POI to another. PIT-attack
/// compares MMCs with the stats-prox distance, a combination of a
/// stationary-weight distance and a geographic proximity distance over
/// matched states.

#include <cstdint>
#include <memory>
#include <vector>

#include "clustering/incremental_stays.h"
#include "clustering/poi_extraction.h"
#include "mobility/trace.h"

namespace mood::profiles {

/// One MMC state: a POI plus its stationary weight (share of the user's
/// records spent there).
struct MarkovState {
  geo::GeoPoint center;
  double weight = 0.0;  ///< stationary probability, sums to 1 over states
};

/// Mobility Markov Chain: ranked states + row-stochastic transition matrix.
class MarkovProfile {
 public:
  MarkovProfile() = default;

  /// Builds the MMC of a trace: POI extraction -> visit sequence -> counts.
  /// States are sorted by decreasing weight (the paper ranks by records).
  static MarkovProfile from_trace(const mobility::Trace& trace,
                                  const clustering::PoiParams& params = {});

  [[nodiscard]] const std::vector<MarkovState>& states() const {
    return states_;
  }
  [[nodiscard]] bool empty() const { return states_.empty(); }
  [[nodiscard]] std::size_t size() const { return states_.size(); }

  /// Transition probability from state i to state j. Rows with no observed
  /// transition are uniform. Precondition: i, j < size().
  [[nodiscard]] double transition(std::size_t i, std::size_t j) const;

 private:
  std::vector<MarkovState> states_;
  std::vector<double> transitions_;  // row-major size() x size()
};

/// stats-prox distance between two MMCs (Gambs et al. 2014): matched-state
/// stationary distance multiplied with a rank-weighted geographic proximity
/// distance (normalised by `proximity_scale_m`). Lower is more similar.
/// Infinite if either chain is empty.
///
/// - stationary part: sum over greedy rank-order matched state pairs of
///   |w_a - w_b|, plus the unmatched mass of the longer chain;
/// - proximity part: weighted mean geographic distance between matched
///   pairs (weights = mean matched stationary mass), in units of
///   `proximity_scale_m`.
/// stats_prox = stationary_part + proximity_part (both dimensionless,
/// so the sum is meaningful; the original paper reports this combined form
/// as its most effective variant).
double stats_prox_distance(const MarkovProfile& a, const MarkovProfile& b,
                           double proximity_scale_m = 1000.0);

/// One state of a compiled MMC: stationary weight plus the state centre
/// with its trigonometry precomputed for haversine evaluations.
struct CompiledMarkovState {
  geo::TrigPoint center;
  double weight = 0.0;
};

/// Immutable flat form of a MarkovProfile for the inference hot path. Only
/// what stats_prox_distance reads is kept: ranked states with precomputed
/// trigonometry (the transition matrix plays no role in the distance).
///
/// Like CompiledHeatmap, the profile also has an *updatable* form for
/// sliding windows: incremental() retains the stay tracker and the merged
/// visit states (the stationary record counts the ranking and weights are
/// derived from), and apply_update() folds window deltas instead of
/// re-extracting the whole window. The folded form is bit-identical to
/// compiling MarkovProfile::from_trace on the updated window as long as
/// the window still starts at the first record the profile ever saw; once
/// the front has been evicted it is bit-identical to the same pipeline run
/// with the projection pinned at that first-ever record (extract_pois'
/// origin overload) — the incremental-vs-full property tests assert both.
class CompiledMarkovProfile {
 public:
  CompiledMarkovProfile() = default;
  explicit CompiledMarkovProfile(const MarkovProfile& source);

  // The incremental state lives behind a pointer so the common immutable
  // form stays a flat 'states + flag' value — the attacks' trained
  // profile arrays (the branch-and-bound scan's working set) carry eight
  // bytes of null pointer, not an embedded tracker. Copies deep-copy it.
  CompiledMarkovProfile(const CompiledMarkovProfile& other);
  CompiledMarkovProfile& operator=(const CompiledMarkovProfile& other);
  CompiledMarkovProfile(CompiledMarkovProfile&&) = default;
  CompiledMarkovProfile& operator=(CompiledMarkovProfile&&) = default;
  ~CompiledMarkovProfile() = default;

  /// Compiles merged visit states (clustering::VisitAccumulator output)
  /// directly: rank by decreasing record count, derive stationary weights.
  /// Bit-identical to CompiledMarkovProfile(MarkovProfile built from the
  /// same states).
  static CompiledMarkovProfile from_states(
      const std::vector<clustering::Poi>& states);

  /// Builds an updatable profile of `trace` (retained stay tracker +
  /// visit-state counts; apply_update allowed).
  static CompiledMarkovProfile incremental(
      const mobility::Trace& trace, const clustering::PoiParams& params = {});

  /// Re-wraps already-compiled states verbatim (checkpoint restore of the
  /// flat, non-updatable form the decision kernel holds). The kernel's
  /// stay tracker is serialized separately; the flat profile is what the
  /// risk queries read between refreshes.
  static CompiledMarkovProfile from_compiled(
      std::vector<CompiledMarkovState> states);

  /// Folds window deltas: `appended` records joined `window`'s back and
  /// `evicted` left its front since the last update. O(changed records)
  /// amortised, with a bounded rebuild fallback when an eviction splits a
  /// stay. Precondition: built by incremental().
  void apply_update(const mobility::Trace& window, std::size_t appended,
                    std::size_t evicted);

  /// True when built by incremental() (tracker retained).
  [[nodiscard]] bool updatable() const { return stays_ != nullptr; }

  /// The retained stay tracker — its update/rebuild counters feed the
  /// streaming cost report. Precondition: updatable().
  [[nodiscard]] const clustering::StayTracker& tracker() const;

  [[nodiscard]] const std::vector<CompiledMarkovState>& states() const {
    return states_;
  }
  [[nodiscard]] bool empty() const { return states_.empty(); }
  [[nodiscard]] std::size_t size() const { return states_.size(); }

 private:
  std::vector<CompiledMarkovState> states_;
  /// Incremental state; non-null exactly for updatable() profiles.
  std::unique_ptr<clustering::TrackedVisitStates> stays_;
};

/// stats-prox over compiled chains. Bit-identical to the legacy overload:
/// same greedy matching, same accumulation order, and haversine from cached
/// trigonometry rounds identically (see geo::TrigPoint).
double stats_prox_distance(const CompiledMarkovProfile& a,
                           const CompiledMarkovProfile& b,
                           double proximity_scale_m = 1000.0);

/// Bounded stats-prox: the stationary part accumulates non-negative terms
/// and the proximity part is non-negative, so once the partial stationary
/// sum exceeds `bound` the final distance must too — bail out and return
/// infinity. Otherwise returns the exact distance, bit-identical to the
/// unbounded overload.
double stats_prox_distance_bounded(const CompiledMarkovProfile& a,
                                   const CompiledMarkovProfile& b,
                                   double proximity_scale_m, double bound);

}  // namespace mood::profiles
