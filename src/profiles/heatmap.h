#pragma once

/// \file heatmap.h
/// Heatmap mobility profile (Fig. 1, right): visit counts aggregated over a
/// fixed cell grid (800 m cells in the paper). AP-attack [Maouche et al.
/// 2017] matches anonymous heatmaps to known users with the Topsoe
/// divergence; HMC [Maouche et al. 2018] aligns a user's heatmap onto a
/// donor's to confuse that matching.

#include <unordered_map>
#include <utility>
#include <vector>

#include "geo/cell_grid.h"
#include "mobility/record.h"
#include "mobility/trace.h"

namespace mood::profiles {

/// Sparse cell -> count map over a shared CellGrid.
class Heatmap {
 public:
  using CountMap =
      std::unordered_map<geo::CellIndex, double, geo::CellIndexHash>;

  Heatmap() = default;

  /// Builds the heatmap of a trace on the given grid (one count per record).
  static Heatmap from_trace(const mobility::Trace& trace,
                            const geo::CellGrid& grid);

  /// Raw (unnormalised) counts.
  [[nodiscard]] const CountMap& counts() const { return counts_; }

  /// Sum of all counts.
  [[nodiscard]] double total() const { return total_; }

  [[nodiscard]] bool empty() const { return counts_.empty(); }
  [[nodiscard]] std::size_t cell_count() const { return counts_.size(); }

  /// Probability of a cell (count / total); 0 for unseen cells.
  [[nodiscard]] double probability(const geo::CellIndex& cell) const;

  /// Adds `count` visits to a cell.
  void add(const geo::CellIndex& cell, double count = 1.0);

  /// Cells sorted by decreasing count (ties broken by cell index for
  /// determinism). The "hot ranking" HMC's alignment uses.
  [[nodiscard]] std::vector<std::pair<geo::CellIndex, double>> ranked_cells()
      const;

 private:
  CountMap counts_;
  double total_ = 0.0;
};

/// Topsoe divergence between two heatmaps viewed as distributions:
///   sum_c p ln(2p/(p+q)) + q ln(2q/(p+q))
/// Symmetric, bounded by 2 ln 2, zero iff the distributions coincide.
/// Infinite if either heatmap is empty.
double topsoe_divergence(const Heatmap& a, const Heatmap& b);

/// One cell of a compiled heatmap: the normalised probability plus the two
/// precomputed Topsoe ingredients that depend on p alone.
struct CompiledHeatmapCell {
  geo::CellIndex cell;
  double probability = 0.0;  ///< count / total
  double self_term = 0.0;    ///< p ln(2p) — shared-cell term is
                             ///<   a.self + b.self - (p+q) ln(p+q)
  double solo_term = 0.0;    ///< p ln 2 — the cell's term when q = 0
};

/// Immutable flat form of a Heatmap for the inference hot path: cells
/// sorted by index with pre-normalised probabilities, so the Topsoe
/// divergence becomes a cache-friendly two-pointer merge instead of hash
/// lookups, and partial sums can drive branch-and-bound early exits.
class CompiledHeatmap {
 public:
  CompiledHeatmap() = default;

  /// Compiles an existing heatmap (used once per profile at train time).
  explicit CompiledHeatmap(const Heatmap& source);

  /// Builds the compiled heatmap of a trace directly, without the
  /// intermediate hash map: consecutive records in the same cell are
  /// run-collapsed first (traces dwell, so this shrinks the sort by orders
  /// of magnitude). Cell probabilities are bit-identical to compiling
  /// Heatmap::from_trace(trace, grid).
  static CompiledHeatmap from_trace(const mobility::Trace& trace,
                                    const geo::CellGrid& grid);

  /// Builds an *updatable* compiled heatmap: identical cells to
  /// from_trace(trace, grid), but the raw integer cell counts are retained
  /// so apply_update can fold newly arrived (and newly expired) records in
  /// without recompiling from the whole trace. Start from an empty trace
  /// for a fresh streaming window.
  static CompiledHeatmap incremental(const mobility::Trace& trace,
                                     const geo::CellGrid& grid);

  /// Incremental maintenance for sliding windows: adds one count per
  /// record of `added`, removes one per record of `removed`, then
  /// renormalises. O(cells + delta log delta) — independent of the window
  /// length. Counts are exact small integers, so the updated heatmap is
  /// bit-identical to from_trace on the updated window (the streaming
  /// gateway's incremental-vs-full equivalence tests rely on this; callers
  /// that want a staleness bound instead simply rebuild via incremental()
  /// every N updates). Preconditions: built by incremental(); every
  /// removed record was previously added.
  void apply_update(const std::vector<mobility::Record>& added,
                    const std::vector<mobility::Record>& removed,
                    const geo::CellGrid& grid);

  /// True when built by incremental() (raw counts retained, apply_update
  /// allowed).
  [[nodiscard]] bool updatable() const { return updatable_; }

  /// Raw (cell, count) pairs in ascending cell order — exact small
  /// integers; non-empty only for updatable() heatmaps. Together with
  /// raw_total() this is the full mutable state: from_counts(raw_counts(),
  /// raw_total()) reproduces this heatmap bit-identically, which is how
  /// the gateway's checkpoint format round-trips it.
  [[nodiscard]] const std::vector<std::pair<geo::CellIndex, double>>&
  raw_counts() const {
    return counts_;
  }
  [[nodiscard]] double raw_total() const { return total_; }

  /// Rebuilds an updatable compiled heatmap from raw counts (checkpoint
  /// restore). `counts` must be sorted ascending by cell with positive
  /// integer counts summing to `total` — i.e. exactly raw_counts() /
  /// raw_total() of a previously captured heatmap.
  static CompiledHeatmap from_counts(
      std::vector<std::pair<geo::CellIndex, double>> counts, double total);

  /// Cells in ascending index order.
  [[nodiscard]] const std::vector<CompiledHeatmapCell>& cells() const {
    return cells_;
  }
  [[nodiscard]] bool empty() const { return cells_.empty(); }
  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }

 private:
  std::vector<CompiledHeatmapCell> cells_;
  /// Raw (cell, count) pairs in ascending cell order; populated only for
  /// updatable() heatmaps. Counts are exact small integers.
  std::vector<std::pair<geo::CellIndex, double>> counts_;
  double total_ = 0.0;
  bool updatable_ = false;
};

/// Topsoe divergence over compiled heatmaps. Symmetric; same decision
/// behaviour as the legacy overload (values agree to rounding — the merge
/// sums in cell order, the hash scan in bucket order).
double topsoe_divergence(const CompiledHeatmap& a, const CompiledHeatmap& b);

/// Bounded Topsoe divergence: every per-cell term is non-negative, so the
/// running sum only grows — as soon as it exceeds `bound` the scan bails
/// out and returns infinity. Otherwise returns the exact divergence,
/// bit-identical to the unbounded overload. The branch-and-bound argmin
/// scans pass their current best distance as `bound`.
double topsoe_divergence_bounded(const CompiledHeatmap& a,
                                 const CompiledHeatmap& b, double bound);

}  // namespace mood::profiles
