#pragma once

/// \file heatmap.h
/// Heatmap mobility profile (Fig. 1, right): visit counts aggregated over a
/// fixed cell grid (800 m cells in the paper). AP-attack [Maouche et al.
/// 2017] matches anonymous heatmaps to known users with the Topsoe
/// divergence; HMC [Maouche et al. 2018] aligns a user's heatmap onto a
/// donor's to confuse that matching.

#include <unordered_map>
#include <vector>

#include "geo/cell_grid.h"
#include "mobility/trace.h"

namespace mood::profiles {

/// Sparse cell -> count map over a shared CellGrid.
class Heatmap {
 public:
  using CountMap =
      std::unordered_map<geo::CellIndex, double, geo::CellIndexHash>;

  Heatmap() = default;

  /// Builds the heatmap of a trace on the given grid (one count per record).
  static Heatmap from_trace(const mobility::Trace& trace,
                            const geo::CellGrid& grid);

  /// Raw (unnormalised) counts.
  [[nodiscard]] const CountMap& counts() const { return counts_; }

  /// Sum of all counts.
  [[nodiscard]] double total() const { return total_; }

  [[nodiscard]] bool empty() const { return counts_.empty(); }
  [[nodiscard]] std::size_t cell_count() const { return counts_.size(); }

  /// Probability of a cell (count / total); 0 for unseen cells.
  [[nodiscard]] double probability(const geo::CellIndex& cell) const;

  /// Adds `count` visits to a cell.
  void add(const geo::CellIndex& cell, double count = 1.0);

  /// Cells sorted by decreasing count (ties broken by cell index for
  /// determinism). The "hot ranking" HMC's alignment uses.
  [[nodiscard]] std::vector<std::pair<geo::CellIndex, double>> ranked_cells()
      const;

 private:
  CountMap counts_;
  double total_ = 0.0;
};

/// Topsoe divergence between two heatmaps viewed as distributions:
///   sum_c p ln(2p/(p+q)) + q ln(2q/(p+q))
/// Symmetric, bounded by 2 ln 2, zero iff the distributions coincide.
/// Infinite if either heatmap is empty.
double topsoe_divergence(const Heatmap& a, const Heatmap& b);

}  // namespace mood::profiles
