#pragma once

/// \file summaries.h
/// Cheap per-profile summaries and admissible divergence lower bounds —
/// the pruning arithmetic behind attacks::PopulationIndex.
///
/// A summary is a constant-size digest of a compiled profile that supports
/// a *lower bound* on the exact divergence to any other profile, computed
/// from the two digests alone (no touching the profiles). The index skips
/// a candidate whenever that bound already exceeds the scan's current
/// pruning bound, and prices the survivors with the exact bounded
/// divergences — so decisions stay bit-identical to the plain scans.
///
/// ## Admissibility contract
///
/// Every `*_lower_bound(a, b)` in this file guarantees, for the summaries
/// of compiled profiles A and B:
///
///     lower_bound(summarize(A), summarize(B)) <= exact_divergence(A, B)
///
/// as *computed* values (not just in real arithmetic): each bound is
/// deflated by a small relative + absolute safety margin chosen to
/// dominate the floating-point rounding of both sides, and the margins
/// are fuzzed by the index property tests over random and adversarially
/// tied profiles. Empty profiles summarize to a zero-size digest and
/// bound to +infinity — admissible because the exact divergence against
/// an empty profile is itself +infinity.
///
/// The bounds never decide anything: tie-breaking (first strict minimum)
/// is delegated entirely to the scans over the exact divergences, so a
/// looser-than-necessary bound costs exact evaluations, never
/// correctness.
///
/// ## The three bounds
///
///  * Topsoe (AP-attack): the heatmap's probability mass is folded into
///    kSummaryBuckets buckets by a deterministic cell-index mix. With
///    P, Q the bucketed masses, total variation contracts under
///    aggregation (TV(p, q) >= TV(P, Q)) and the Topsoe divergence obeys
///    the Pinsker chain T = 2 JSD >= TV(p, q)^2, so
///        topsoe_lower_bound = TV(P, Q)^2  <=  T(p, q).
///    The bound tops out at 1 < 2 ln 2, so ceiling ties (disjoint
///    supports) are never pruned away from the exact scan.
///  * POI distance: each POI set is summarized by a covering ball
///    (centroid + max haversine radius), a two-ball cover (the set split
///    around two well-separated seeds — so one downtown satellite POI
///    does not inflate a tight home-district ball into one that swallows
///    every query), plus its member centres. With `a` the query: every
///    nearest-POI term for query POI p joins p to a point inside one of
///    b's cover balls, so it is at least min over the cover of
///    D(p, center) - radius by the triangle inequality, and the exact
///    mean is at least the mean of those per-POI separations — markedly
///    tighter than plain ball-to-ball separation on both sides.
///  * stats-prox (PIT-attack): the stationary part is at least twice the
///    smallest achievable unmatched mass — the |size_a - size_b|
///    smallest weights of the larger chain (matched pairs contribute at
///    least the net mass they displace). The proximity part is a
///    matched-mass-weighted mean of cross distances, each pairing a
///    query state with a state inside b's ball, so with sep_i the
///    point-ball separation of query state i it is at least both
///      - min_i sep_i (weighted means never drop below the minimum), and
///      - half the sum of the min(size_a, size_b) smallest w_i * sep_i
///        terms: each matched pair's mass is at least w_a_i / 2, the
///        total matched mass is at most 1, and an adversarial matching
///        can at best leave the largest w_i * sep_i terms unmatched.
///    The bound takes the larger of the two, scaled by
///    proximity_scale_m. The second form is what keeps shared downtown
///    states from collapsing the bound: one near-zero sep_i only removes
///    its own mass, instead of zeroing the minimum.
///
/// The POI and stats-prox bounds are therefore *asymmetric*: the first
/// argument must be the query's summary (matching the asymmetric exact
/// distances, which the attacks always evaluate query-first).

#include <array>
#include <cstddef>
#include <vector>

#include "geo/geo.h"
#include "profiles/heatmap.h"
#include "profiles/markov_profile.h"
#include "profiles/poi_profile.h"

namespace mood::profiles {

/// Bucket count of the heatmap mass digest. 64 doubles keeps a summary in
/// a handful of cache lines while leaving bucket collisions rare at the
/// few-hundred-cell profiles the attacks build.
inline constexpr std::size_t kSummaryBuckets = 64;

/// Floating-point safety margins applied when deflating a computed lower
/// bound so that it stays below the *computed* exact divergence (see the
/// admissibility contract above). Relative margin on every bound, plus an
/// absolute floor per unit system.
inline constexpr double kLowerBoundRelMargin = 1e-9;
inline constexpr double kTvAbsMargin = 1e-7;      ///< total-variation slack
inline constexpr double kWeightAbsMargin = 1e-9;  ///< stationary-mass slack
inline constexpr double kBallAbsMarginM = 1e-6;   ///< metres slack

/// Bucket of a cell in the heatmap mass digest (deterministic — same mix
/// as CellIndexHash, reduced mod kSummaryBuckets).
std::size_t summary_bucket(const geo::CellIndex& cell);

/// Digest of a CompiledHeatmap: probability mass per bucket.
struct HeatmapSummary {
  std::array<double, kSummaryBuckets> mass{};
  std::size_t cells = 0;  ///< 0 marks an empty profile (infinite distances)
};

HeatmapSummary summarize(const CompiledHeatmap& map);

/// Admissible lower bound on topsoe_divergence(a, b); +infinity when
/// either profile is empty (matching the exact divergence).
double topsoe_lower_bound(const HeatmapSummary& a, const HeatmapSummary& b);

/// Covering ball of a point set: centroid + maximum haversine distance
/// from it to any member. Any cross distance between two sets is at least
/// haversine(center_a, center_b) - radius_a - radius_b.
struct ProfileBall {
  geo::TrigPoint center{};
  double radius_m = 0.0;
  std::size_t size = 0;  ///< 0 marks an empty profile (infinite distances)
};

/// Deflated ball-to-ball separation max(0, D - r_a - r_b - margins), in
/// metres. 0 when either ball is empty; callers handle the
/// empty => infinity case themselves.
double ball_separation_m(const ProfileBall& a, const ProfileBall& b);

/// Deflated point-to-ball separation max(0, D(p, center) - radius -
/// margins), in metres: a lower bound on the distance from `p` to any
/// point inside `ball` — the geometric core of the POI and stats-prox
/// bounds (also used against the index's cluster aggregates, whose balls
/// cover every member ball). 0 when the ball is empty.
double point_ball_separation_m(const geo::TrigPoint& p,
                               const ProfileBall& ball);

/// Two-ball cover of a point set: the points are partitioned around two
/// well-separated seeds (the point farthest from the centroid, then the
/// point farthest from that seed; each point joins the nearer seed) and
/// each part gets its own covering ball. [1] is empty for sets of size
/// < 2.
/// Every member point lies inside at least one part, so the distance
/// from any point p to any member is at least
/// min over non-empty parts of point_ball_separation_m(p, part).
using BallCover = std::array<ProfileBall, 2>;

/// Deflated separation of `p` from a two-ball cover: the minimum
/// point-ball separation over the non-empty parts. 0 when both parts are
/// empty.
double point_cover_separation_m(const geo::TrigPoint& p,
                                const BallCover& cover);

/// Digest of a CompiledPoiProfile: covering ball (the cluster aggregates
/// build on it), two-ball cover (the per-entry bound prunes with it),
/// plus the POI centres themselves (query-side, they drive the per-POI
/// mean bound; POI sets are small, so keeping them costs little).
struct PoiSummary {
  ProfileBall ball;
  BallCover cover;
  std::vector<geo::TrigPoint> centers;
};

PoiSummary summarize(const CompiledPoiProfile& profile);

/// Admissible lower bound on poi_profile_distance(a, b) (metres), with
/// `a` the query's summary (the exact distance is asymmetric: mean over
/// a's POIs of the nearest POI of b); +infinity when either profile is
/// empty.
double poi_profile_lower_bound(const PoiSummary& a, const PoiSummary& b);

/// Digest of a CompiledMarkovProfile: covering ball of the state centres,
/// the centres with their stationary weights (query-side, they drive the
/// per-state proximity bound), plus ascending prefix sums of the sorted
/// weights (weight_prefix[k] = sum of the k smallest weights), which
/// price the cheapest possible unmatched mass against a chain of any
/// other size.
struct MarkovSummary {
  ProfileBall ball;
  BallCover cover;
  std::vector<geo::TrigPoint> centers;
  std::vector<double> weights;        ///< aligned with centers
  std::vector<double> weight_prefix;  ///< size() + 1 entries, [0] = 0
};

MarkovSummary summarize(const CompiledMarkovProfile& profile);

/// Lower bound on the stats-prox *proximity part* (dimensionless) of
/// `query` against any chain with at least `min_states` states whose
/// centres all lie inside `cover` — shared by the per-entry bound (the
/// candidate's own two-ball cover) and the index's cluster bound (the
/// aggregate ball, passed as a single-part cover, covers every member).
/// 0 when the cover is empty.
double stats_prox_proximity_lower_bound(const MarkovSummary& query,
                                        const BallCover& cover,
                                        std::size_t min_states,
                                        double proximity_scale_m);

/// Admissible lower bound on stats_prox_distance(a, b,
/// proximity_scale_m), with `a` the query's summary; +infinity when
/// either chain is empty.
double stats_prox_lower_bound(const MarkovSummary& a, const MarkovSummary& b,
                              double proximity_scale_m);

}  // namespace mood::profiles
