#pragma once

/// \file poi_profile.h
/// POI-based mobility profile (Fig. 1, left): a user's set of meaningful
/// places. Used by POI-attack [Primault et al. 2014] to match an anonymous
/// trace to a known user by geographic proximity of their POIs.

#include <cstdint>
#include <memory>
#include <vector>

#include "clustering/incremental_stays.h"
#include "clustering/poi_extraction.h"
#include "mobility/trace.h"

namespace mood::profiles {

/// A user's set of Points of Interest.
class PoiProfile {
 public:
  PoiProfile() = default;
  explicit PoiProfile(std::vector<clustering::Poi> pois)
      : pois_(std::move(pois)) {}

  /// Builds the profile by running POI extraction on a trace.
  static PoiProfile from_trace(const mobility::Trace& trace,
                               const clustering::PoiParams& params = {});

  [[nodiscard]] const std::vector<clustering::Poi>& pois() const {
    return pois_;
  }
  [[nodiscard]] bool empty() const { return pois_.empty(); }
  [[nodiscard]] std::size_t size() const { return pois_.size(); }

 private:
  std::vector<clustering::Poi> pois_;
};

/// Asymmetric POI-set distance: mean over POIs of `a` of the distance to the
/// closest POI of `b`, in metres. Infinity if either profile is empty (an
/// empty profile can never be re-identified nor re-identify anyone).
double poi_profile_distance(const PoiProfile& a, const PoiProfile& b);

/// Immutable flat form of a PoiProfile for the inference hot path: just the
/// POI centres with precomputed trigonometry — all the distance reads.
///
/// Like CompiledHeatmap and CompiledMarkovProfile, the profile also has an
/// *updatable* form: incremental() retains the stay tracker and the merged
/// visit states, and apply_update() folds window deltas (incremental
/// stay-point maintenance with a bounded rebuild fallback when an eviction
/// splits a stay) instead of re-clustering the whole window. Bit-identical
/// to compiling PoiProfile::from_trace on the updated window while the
/// window still starts at the first record the profile ever saw; after
/// front evictions, to the same pipeline with the projection pinned at
/// that first-ever record.
class CompiledPoiProfile {
 public:
  CompiledPoiProfile() = default;
  explicit CompiledPoiProfile(const PoiProfile& source);

  // Incremental state behind a pointer — see CompiledMarkovProfile: the
  // trained hot-scan arrays stay flat; copies deep-copy the tracker.
  CompiledPoiProfile(const CompiledPoiProfile& other);
  CompiledPoiProfile& operator=(const CompiledPoiProfile& other);
  CompiledPoiProfile(CompiledPoiProfile&&) = default;
  CompiledPoiProfile& operator=(CompiledPoiProfile&&) = default;
  ~CompiledPoiProfile() = default;

  /// Compiles merged visit states (clustering::VisitAccumulator output)
  /// directly — bit-identical to CompiledPoiProfile(PoiProfile(states)).
  static CompiledPoiProfile from_states(
      const std::vector<clustering::Poi>& states);

  /// Builds an updatable profile of `trace` (retained stay tracker;
  /// apply_update allowed).
  static CompiledPoiProfile incremental(
      const mobility::Trace& trace, const clustering::PoiParams& params = {});

  /// Re-wraps already-compiled centres verbatim (checkpoint restore of
  /// the flat, non-updatable form the decision kernel holds).
  static CompiledPoiProfile from_compiled(std::vector<geo::TrigPoint> centers);

  /// Folds window deltas: `appended` records joined `window`'s back and
  /// `evicted` left its front since the last update. Precondition: built
  /// by incremental().
  void apply_update(const mobility::Trace& window, std::size_t appended,
                    std::size_t evicted);

  /// True when built by incremental() (tracker retained).
  [[nodiscard]] bool updatable() const { return stays_ != nullptr; }

  /// The retained stay tracker. Precondition: updatable().
  [[nodiscard]] const clustering::StayTracker& tracker() const;

  [[nodiscard]] const std::vector<geo::TrigPoint>& centers() const {
    return centers_;
  }
  [[nodiscard]] bool empty() const { return centers_.empty(); }
  [[nodiscard]] std::size_t size() const { return centers_.size(); }

 private:
  std::vector<geo::TrigPoint> centers_;
  /// Incremental state; non-null exactly for updatable() profiles.
  std::unique_ptr<clustering::TrackedVisitStates> stays_;
};

/// POI-set distance over compiled profiles. Bit-identical to the legacy
/// overload (same loop order; cached trigonometry rounds identically).
double poi_profile_distance(const CompiledPoiProfile& a,
                            const CompiledPoiProfile& b);

/// Bounded POI-set distance: nearest-POI terms are non-negative, so once
/// the running total alone pushes the final mean past `bound` the scan
/// bails out and returns infinity. Otherwise returns the exact distance,
/// bit-identical to the unbounded overload.
double poi_profile_distance_bounded(const CompiledPoiProfile& a,
                                    const CompiledPoiProfile& b, double bound);

}  // namespace mood::profiles
