#pragma once

/// \file poi_profile.h
/// POI-based mobility profile (Fig. 1, left): a user's set of meaningful
/// places. Used by POI-attack [Primault et al. 2014] to match an anonymous
/// trace to a known user by geographic proximity of their POIs.

#include <vector>

#include "clustering/poi_extraction.h"
#include "mobility/trace.h"

namespace mood::profiles {

/// A user's set of Points of Interest.
class PoiProfile {
 public:
  PoiProfile() = default;
  explicit PoiProfile(std::vector<clustering::Poi> pois)
      : pois_(std::move(pois)) {}

  /// Builds the profile by running POI extraction on a trace.
  static PoiProfile from_trace(const mobility::Trace& trace,
                               const clustering::PoiParams& params = {});

  [[nodiscard]] const std::vector<clustering::Poi>& pois() const {
    return pois_;
  }
  [[nodiscard]] bool empty() const { return pois_.empty(); }
  [[nodiscard]] std::size_t size() const { return pois_.size(); }

 private:
  std::vector<clustering::Poi> pois_;
};

/// Asymmetric POI-set distance: mean over POIs of `a` of the distance to the
/// closest POI of `b`, in metres. Infinity if either profile is empty (an
/// empty profile can never be re-identified nor re-identify anyone).
double poi_profile_distance(const PoiProfile& a, const PoiProfile& b);

/// Immutable flat form of a PoiProfile for the inference hot path: just the
/// POI centres with precomputed trigonometry — all the distance reads.
class CompiledPoiProfile {
 public:
  CompiledPoiProfile() = default;
  explicit CompiledPoiProfile(const PoiProfile& source);

  [[nodiscard]] const std::vector<geo::TrigPoint>& centers() const {
    return centers_;
  }
  [[nodiscard]] bool empty() const { return centers_.empty(); }
  [[nodiscard]] std::size_t size() const { return centers_.size(); }

 private:
  std::vector<geo::TrigPoint> centers_;
};

/// POI-set distance over compiled profiles. Bit-identical to the legacy
/// overload (same loop order; cached trigonometry rounds identically).
double poi_profile_distance(const CompiledPoiProfile& a,
                            const CompiledPoiProfile& b);

/// Bounded POI-set distance: nearest-POI terms are non-negative, so once
/// the running total alone pushes the final mean past `bound` the scan
/// bails out and returns infinity. Otherwise returns the exact distance,
/// bit-identical to the unbounded overload.
double poi_profile_distance_bounded(const CompiledPoiProfile& a,
                                    const CompiledPoiProfile& b, double bound);

}  // namespace mood::profiles
