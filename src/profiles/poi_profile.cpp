#include "profiles/poi_profile.h"

#include <limits>
#include <memory>

#include "geo/geo.h"
#include "support/error.h"

namespace mood::profiles {

PoiProfile PoiProfile::from_trace(const mobility::Trace& trace,
                                  const clustering::PoiParams& params) {
  // Merge repeated visits so each meaningful place appears once.
  auto seq = clustering::build_visit_sequence(
      clustering::extract_pois(trace, params), params.max_diameter_m);
  return PoiProfile(std::move(seq.states));
}

double poi_profile_distance(const PoiProfile& a, const PoiProfile& b) {
  if (a.empty() || b.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  double total = 0.0;
  for (const auto& pa : a.pois()) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& pb : b.pois()) {
      best = std::min(best, geo::haversine_m(pa.center, pb.center));
    }
    total += best;
  }
  return total / static_cast<double>(a.size());
}

CompiledPoiProfile::CompiledPoiProfile(const PoiProfile& source) {
  centers_.reserve(source.size());
  for (const auto& poi : source.pois()) {
    centers_.push_back(geo::trig_point(poi.center));
  }
}

CompiledPoiProfile CompiledPoiProfile::from_states(
    const std::vector<clustering::Poi>& states) {
  CompiledPoiProfile profile;
  profile.centers_.reserve(states.size());
  for (const auto& poi : states) {
    profile.centers_.push_back(geo::trig_point(poi.center));
  }
  return profile;
}

CompiledPoiProfile::CompiledPoiProfile(const CompiledPoiProfile& other)
    : centers_(other.centers_),
      stays_(other.stays_ ? std::make_unique<clustering::TrackedVisitStates>(
                                *other.stays_)
                          : nullptr) {}

CompiledPoiProfile& CompiledPoiProfile::operator=(
    const CompiledPoiProfile& other) {
  if (this != &other) *this = CompiledPoiProfile(other);
  return *this;
}

CompiledPoiProfile CompiledPoiProfile::from_compiled(
    std::vector<geo::TrigPoint> centers) {
  CompiledPoiProfile profile;
  profile.centers_ = std::move(centers);
  return profile;
}

CompiledPoiProfile CompiledPoiProfile::incremental(
    const mobility::Trace& trace, const clustering::PoiParams& params) {
  CompiledPoiProfile profile;
  profile.stays_ = std::make_unique<clustering::TrackedVisitStates>(params);
  profile.stays_->update(trace, trace.size(), 0);
  profile.centers_ = from_states(profile.stays_->states()).centers_;
  return profile;
}

void CompiledPoiProfile::apply_update(const mobility::Trace& window,
                                      std::size_t appended,
                                      std::size_t evicted) {
  support::expects(updatable(),
                   "CompiledPoiProfile::apply_update: profile was not built "
                   "by incremental() (stay tracker not retained)");
  stays_->update(window, appended, evicted);
  centers_ = from_states(stays_->states()).centers_;
}

const clustering::StayTracker& CompiledPoiProfile::tracker() const {
  support::expects(updatable(),
                   "CompiledPoiProfile::tracker: profile was not built by "
                   "incremental()");
  return stays_->tracker();
}

double poi_profile_distance(const CompiledPoiProfile& a,
                            const CompiledPoiProfile& b) {
  return poi_profile_distance_bounded(
      a, b, std::numeric_limits<double>::infinity());
}

double poi_profile_distance_bounded(const CompiledPoiProfile& a,
                                    const CompiledPoiProfile& b,
                                    double bound) {
  if (a.empty() || b.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  // The final distance is total / |a|; each nearest-POI term is >= 0 and
  // rounded division is monotone in the numerator, so once the partial
  // quotient exceeds `bound` the final one must too. (Comparing a
  // pre-scaled bound*|a| instead could disagree with the final division by
  // an ulp and break exactness of the decision.)
  const double n = static_cast<double>(a.size());
  double total = 0.0;
  for (const auto& pa : a.centers()) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& pb : b.centers()) {
      best = std::min(best, geo::haversine_m(pa, pb));
    }
    total += best;
    if (total / n > bound) {
      return std::numeric_limits<double>::infinity();
    }
  }
  return total / n;
}

}  // namespace mood::profiles
