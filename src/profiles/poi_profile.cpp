#include "profiles/poi_profile.h"

#include <limits>

#include "geo/geo.h"

namespace mood::profiles {

PoiProfile PoiProfile::from_trace(const mobility::Trace& trace,
                                  const clustering::PoiParams& params) {
  // Merge repeated visits so each meaningful place appears once.
  auto seq = clustering::build_visit_sequence(
      clustering::extract_pois(trace, params), params.max_diameter_m);
  return PoiProfile(std::move(seq.states));
}

double poi_profile_distance(const PoiProfile& a, const PoiProfile& b) {
  if (a.empty() || b.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  double total = 0.0;
  for (const auto& pa : a.pois()) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& pb : b.pois()) {
      best = std::min(best, geo::haversine_m(pa.center, pb.center));
    }
    total += best;
  }
  return total / static_cast<double>(a.size());
}

CompiledPoiProfile::CompiledPoiProfile(const PoiProfile& source) {
  centers_.reserve(source.size());
  for (const auto& poi : source.pois()) {
    centers_.push_back(geo::trig_point(poi.center));
  }
}

double poi_profile_distance(const CompiledPoiProfile& a,
                            const CompiledPoiProfile& b) {
  return poi_profile_distance_bounded(
      a, b, std::numeric_limits<double>::infinity());
}

double poi_profile_distance_bounded(const CompiledPoiProfile& a,
                                    const CompiledPoiProfile& b,
                                    double bound) {
  if (a.empty() || b.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  // The final distance is total / |a|; each nearest-POI term is >= 0 and
  // rounded division is monotone in the numerator, so once the partial
  // quotient exceeds `bound` the final one must too. (Comparing a
  // pre-scaled bound*|a| instead could disagree with the final division by
  // an ulp and break exactness of the decision.)
  const double n = static_cast<double>(a.size());
  double total = 0.0;
  for (const auto& pa : a.centers()) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& pb : b.centers()) {
      best = std::min(best, geo::haversine_m(pa, pb));
    }
    total += best;
    if (total / n > bound) {
      return std::numeric_limits<double>::infinity();
    }
  }
  return total / n;
}

}  // namespace mood::profiles
