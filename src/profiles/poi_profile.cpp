#include "profiles/poi_profile.h"

#include <limits>

#include "geo/geo.h"

namespace mood::profiles {

PoiProfile PoiProfile::from_trace(const mobility::Trace& trace,
                                  const clustering::PoiParams& params) {
  // Merge repeated visits so each meaningful place appears once.
  auto seq = clustering::build_visit_sequence(
      clustering::extract_pois(trace, params), params.max_diameter_m);
  return PoiProfile(std::move(seq.states));
}

double poi_profile_distance(const PoiProfile& a, const PoiProfile& b) {
  if (a.empty() || b.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  double total = 0.0;
  for (const auto& pa : a.pois()) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& pb : b.pois()) {
      best = std::min(best, geo::haversine_m(pa.center, pb.center));
    }
    total += best;
  }
  return total / static_cast<double>(a.size());
}

}  // namespace mood::profiles
