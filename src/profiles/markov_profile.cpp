#include "profiles/markov_profile.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>

#include "geo/geo.h"
#include "support/error.h"

namespace mood::profiles {

MarkovProfile MarkovProfile::from_trace(const mobility::Trace& trace,
                                        const clustering::PoiParams& params) {
  MarkovProfile profile;
  const auto seq = clustering::build_visit_sequence(
      clustering::extract_pois(trace, params), params.max_diameter_m);
  if (seq.states.empty()) return profile;

  // Stationary weight = share of stay records spent in the state.
  std::size_t total_records = 0;
  for (const auto& s : seq.states) total_records += s.record_count;

  // Rank states by decreasing record count (paper: "states are POIs ordered
  // by the number of records inside them").
  std::vector<std::size_t> rank(seq.states.size());
  std::iota(rank.begin(), rank.end(), 0);
  std::stable_sort(rank.begin(), rank.end(), [&](std::size_t a, std::size_t b) {
    return seq.states[a].record_count > seq.states[b].record_count;
  });
  std::vector<std::size_t> rank_of(seq.states.size());
  for (std::size_t r = 0; r < rank.size(); ++r) rank_of[rank[r]] = r;

  profile.states_.reserve(seq.states.size());
  for (std::size_t r = 0; r < rank.size(); ++r) {
    const auto& poi = seq.states[rank[r]];
    profile.states_.push_back(MarkovState{
        poi.center, static_cast<double>(poi.record_count) /
                        static_cast<double>(total_records)});
  }

  // Count transitions along the chronological visit sequence.
  const std::size_t n = profile.states_.size();
  std::vector<double> counts(n * n, 0.0);
  for (std::size_t v = 0; v + 1 < seq.visits.size(); ++v) {
    const std::size_t from = rank_of[seq.visits[v]];
    const std::size_t to = rank_of[seq.visits[v + 1]];
    counts[from * n + to] += 1.0;
  }
  // Normalise rows; unseen rows become uniform.
  for (std::size_t i = 0; i < n; ++i) {
    const double row_sum = std::accumulate(counts.begin() + i * n,
                                           counts.begin() + (i + 1) * n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      counts[i * n + j] =
          row_sum > 0.0 ? counts[i * n + j] / row_sum : 1.0 / n;
    }
  }
  profile.transitions_ = std::move(counts);
  return profile;
}

double MarkovProfile::transition(std::size_t i, std::size_t j) const {
  support::expects(i < size() && j < size(),
                   "MarkovProfile::transition out of range");
  return transitions_[i * size() + j];
}

double stats_prox_distance(const MarkovProfile& a, const MarkovProfile& b,
                           double proximity_scale_m) {
  support::expects(proximity_scale_m > 0.0,
                   "stats_prox_distance: scale must be positive");
  if (a.empty() || b.empty()) {
    return std::numeric_limits<double>::infinity();
  }

  // Greedy geographic matching: each state of the smaller chain grabs the
  // closest unmatched state of the other chain.
  const bool a_smaller = a.size() <= b.size();
  const auto& small = a_smaller ? a.states() : b.states();
  const auto& large = a_smaller ? b.states() : a.states();
  std::vector<bool> taken(large.size(), false);

  double stationary = 0.0;
  double proximity = 0.0;
  double matched_mass = 0.0;
  for (const auto& s : small) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_j = large.size();
    for (std::size_t j = 0; j < large.size(); ++j) {
      if (taken[j]) continue;
      const double d = geo::haversine_m(s.center, large[j].center);
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    taken[best_j] = true;
    const double pair_mass = (s.weight + large[best_j].weight) / 2.0;
    stationary += std::abs(s.weight - large[best_j].weight);
    proximity += pair_mass * (best / proximity_scale_m);
    matched_mass += pair_mass;
  }
  // Unmatched states of the larger chain contribute their full weight to
  // the stationary part (they have no counterpart at all).
  for (std::size_t j = 0; j < large.size(); ++j) {
    if (!taken[j]) stationary += large[j].weight;
  }
  if (matched_mass > 0.0) proximity /= matched_mass;
  return stationary + proximity;
}

CompiledMarkovProfile::CompiledMarkovProfile(const MarkovProfile& source) {
  states_.reserve(source.size());
  for (const auto& state : source.states()) {
    states_.push_back(
        CompiledMarkovState{geo::trig_point(state.center), state.weight});
  }
}

CompiledMarkovProfile CompiledMarkovProfile::from_states(
    const std::vector<clustering::Poi>& states) {
  CompiledMarkovProfile profile;
  if (states.empty()) return profile;

  // Same ranking and weight arithmetic as MarkovProfile::from_trace, so
  // the compiled states are bit-identical to routing through the full
  // MarkovProfile (whose transition matrix the compiled form never reads).
  std::size_t total_records = 0;
  for (const auto& s : states) total_records += s.record_count;

  std::vector<std::size_t> rank(states.size());
  std::iota(rank.begin(), rank.end(), 0);
  std::stable_sort(rank.begin(), rank.end(),
                   [&](std::size_t a, std::size_t b) {
                     return states[a].record_count > states[b].record_count;
                   });

  profile.states_.reserve(states.size());
  for (std::size_t r = 0; r < rank.size(); ++r) {
    const auto& poi = states[rank[r]];
    profile.states_.push_back(CompiledMarkovState{
        geo::trig_point(poi.center),
        static_cast<double>(poi.record_count) /
            static_cast<double>(total_records)});
  }
  return profile;
}

CompiledMarkovProfile::CompiledMarkovProfile(
    const CompiledMarkovProfile& other)
    : states_(other.states_),
      stays_(other.stays_ ? std::make_unique<clustering::TrackedVisitStates>(
                                *other.stays_)
                          : nullptr) {}

CompiledMarkovProfile& CompiledMarkovProfile::operator=(
    const CompiledMarkovProfile& other) {
  if (this != &other) *this = CompiledMarkovProfile(other);
  return *this;
}

CompiledMarkovProfile CompiledMarkovProfile::from_compiled(
    std::vector<CompiledMarkovState> states) {
  CompiledMarkovProfile profile;
  profile.states_ = std::move(states);
  return profile;
}

CompiledMarkovProfile CompiledMarkovProfile::incremental(
    const mobility::Trace& trace, const clustering::PoiParams& params) {
  CompiledMarkovProfile profile;
  profile.stays_ = std::make_unique<clustering::TrackedVisitStates>(params);
  profile.stays_->update(trace, trace.size(), 0);
  profile.states_ = from_states(profile.stays_->states()).states_;
  return profile;
}

void CompiledMarkovProfile::apply_update(const mobility::Trace& window,
                                         std::size_t appended,
                                         std::size_t evicted) {
  support::expects(updatable(),
                   "CompiledMarkovProfile::apply_update: profile was not "
                   "built by incremental() (stay tracker not retained)");
  stays_->update(window, appended, evicted);
  states_ = from_states(stays_->states()).states_;
}

const clustering::StayTracker& CompiledMarkovProfile::tracker() const {
  support::expects(updatable(),
                   "CompiledMarkovProfile::tracker: profile was not built "
                   "by incremental()");
  return stays_->tracker();
}

double stats_prox_distance(const CompiledMarkovProfile& a,
                           const CompiledMarkovProfile& b,
                           double proximity_scale_m) {
  return stats_prox_distance_bounded(a, b, proximity_scale_m,
                                     std::numeric_limits<double>::infinity());
}

double stats_prox_distance_bounded(const CompiledMarkovProfile& a,
                                   const CompiledMarkovProfile& b,
                                   double proximity_scale_m, double bound) {
  support::expects(proximity_scale_m > 0.0,
                   "stats_prox_distance: scale must be positive");
  if (a.empty() || b.empty()) {
    return std::numeric_limits<double>::infinity();
  }

  // Same greedy matching as the legacy overload, with two differences: the
  // haversine runs on cached trigonometry, and the accumulated stationary
  // distance bails out once it alone exceeds `bound` (the proximity part
  // and every remaining term are non-negative, so the final distance could
  // only be larger).
  const bool a_smaller = a.size() <= b.size();
  const auto& small = a_smaller ? a.states() : b.states();
  const auto& large = a_smaller ? b.states() : a.states();
  std::vector<bool> taken(large.size(), false);

  double stationary = 0.0;
  double proximity = 0.0;
  double matched_mass = 0.0;
  for (const auto& s : small) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_j = large.size();
    for (std::size_t j = 0; j < large.size(); ++j) {
      if (taken[j]) continue;
      const double d = geo::haversine_m(s.center, large[j].center);
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    taken[best_j] = true;
    const double pair_mass = (s.weight + large[best_j].weight) / 2.0;
    stationary += std::abs(s.weight - large[best_j].weight);
    proximity += pair_mass * (best / proximity_scale_m);
    matched_mass += pair_mass;
    if (stationary > bound) {
      return std::numeric_limits<double>::infinity();
    }
  }
  for (std::size_t j = 0; j < large.size(); ++j) {
    if (!taken[j]) {
      stationary += large[j].weight;
      if (stationary > bound) {
        return std::numeric_limits<double>::infinity();
      }
    }
  }
  if (matched_mass > 0.0) proximity /= matched_mass;
  return stationary + proximity;
}

}  // namespace mood::profiles
