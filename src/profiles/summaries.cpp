#include "profiles/summaries.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/cell_grid.h"

namespace mood::profiles {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Deflates a non-negative bound by the relative margin plus an absolute
/// floor, clamping at zero — the computed result is then safely below the
/// computed exact value whenever the undeflated bound is below the true
/// one (see the admissibility contract in the header).
double deflate(double bound, double abs_margin) {
  return std::max(0.0, bound * (1.0 - kLowerBoundRelMargin) - abs_margin);
}

/// Covering ball of a set of cached points: centroid + max haversine
/// radius. The centroid choice only affects bound tightness, never
/// admissibility — the radius is measured from whatever centre we pick.
ProfileBall ball_of(const std::vector<geo::TrigPoint>& points) {
  ProfileBall ball;
  ball.size = points.size();
  if (points.empty()) return ball;
  std::vector<geo::GeoPoint> raw;
  raw.reserve(points.size());
  for (const auto& p : points) {
    raw.push_back(geo::GeoPoint{geo::rad_to_deg(p.lat_rad), p.lon_deg});
  }
  ball.center = geo::trig_point(geo::centroid(raw));
  for (const auto& p : points) {
    ball.radius_m = std::max(ball.radius_m, geo::haversine_m(ball.center, p));
  }
  return ball;
}

/// Two-ball cover of a set of cached points (see BallCover in the
/// header): seeds are the point farthest from the covering ball's centre
/// and the point farthest from that seed (first index wins ties, so the
/// split is deterministic); every point joins the nearer seed's part.
BallCover cover_of(const std::vector<geo::TrigPoint>& points,
                   const ProfileBall& ball) {
  BallCover cover{};
  if (points.size() < 2) {
    cover[0] = ball;
    return cover;
  }
  std::size_t seed_a = 0;
  double best = -1.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double d = geo::haversine_m(ball.center, points[i]);
    if (d > best) {
      best = d;
      seed_a = i;
    }
  }
  std::size_t seed_b = 0;
  best = -1.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double d = geo::haversine_m(points[seed_a], points[i]);
    if (d > best) {
      best = d;
      seed_b = i;
    }
  }
  std::vector<geo::TrigPoint> part_a;
  std::vector<geo::TrigPoint> part_b;
  for (const auto& p : points) {
    if (geo::haversine_m(points[seed_a], p) <=
        geo::haversine_m(points[seed_b], p)) {
      part_a.push_back(p);
    } else {
      part_b.push_back(p);
    }
  }
  cover[0] = ball_of(part_a);
  cover[1] = ball_of(part_b);
  return cover;
}

}  // namespace

std::size_t summary_bucket(const geo::CellIndex& cell) {
  return geo::CellIndexHash{}(cell) % kSummaryBuckets;
}

HeatmapSummary summarize(const CompiledHeatmap& map) {
  HeatmapSummary summary;
  summary.cells = map.cell_count();
  for (const auto& cell : map.cells()) {
    summary.mass[summary_bucket(cell.cell)] += cell.probability;
  }
  return summary;
}

double topsoe_lower_bound(const HeatmapSummary& a, const HeatmapSummary& b) {
  if (a.cells == 0 || b.cells == 0) return kInf;
  double l1 = 0.0;
  for (std::size_t k = 0; k < kSummaryBuckets; ++k) {
    l1 += std::abs(a.mass[k] - b.mass[k]);
  }
  // TV of the bucketed masses, deflated: Pinsker can be asymptotically
  // tight for near-identical profiles, so the margin must absorb the
  // rounding of both the bucket sums and the exact Topsoe accumulation.
  const double tv = deflate(0.5 * l1, kTvAbsMargin);
  return tv * tv;
}

double ball_separation_m(const ProfileBall& a, const ProfileBall& b) {
  if (a.size == 0 || b.size == 0) return 0.0;
  const double d = geo::haversine_m(a.center, b.center);
  const double slack =
      kLowerBoundRelMargin * (d + a.radius_m + b.radius_m) + kBallAbsMarginM;
  return std::max(0.0, d - a.radius_m - b.radius_m - slack);
}

double point_ball_separation_m(const geo::TrigPoint& p,
                               const ProfileBall& ball) {
  if (ball.size == 0) return 0.0;
  const double d = geo::haversine_m(p, ball.center);
  const double slack =
      kLowerBoundRelMargin * (d + ball.radius_m) + kBallAbsMarginM;
  return std::max(0.0, d - ball.radius_m - slack);
}

double point_cover_separation_m(const geo::TrigPoint& p,
                                const BallCover& cover) {
  if (cover[0].size == 0 && cover[1].size == 0) return 0.0;
  double sep = kInf;
  for (const auto& part : cover) {
    if (part.size == 0) continue;
    sep = std::min(sep, point_ball_separation_m(p, part));
  }
  return sep;
}

PoiSummary summarize(const CompiledPoiProfile& profile) {
  PoiSummary summary;
  summary.ball = ball_of(profile.centers());
  summary.cover = cover_of(profile.centers(), summary.ball);
  summary.centers = profile.centers();
  return summary;
}

double poi_profile_lower_bound(const PoiSummary& a, const PoiSummary& b) {
  if (a.ball.size == 0 || b.ball.size == 0) return kInf;
  // With `a` the query: the nearest-POI term for query POI p is a cross
  // distance to a point inside one of b's cover balls, so it is at least
  // the (deflated) point-cover separation — and the exact distance, a
  // mean of those terms over the same denominator, is at least the mean
  // of the separations.
  double sum = 0.0;
  for (const auto& p : a.centers) {
    sum += point_cover_separation_m(p, b.cover);
  }
  return sum / static_cast<double>(a.centers.size());
}

MarkovSummary summarize(const CompiledMarkovProfile& profile) {
  MarkovSummary summary;
  std::vector<geo::TrigPoint> centers;
  centers.reserve(profile.states().size());
  summary.weights.reserve(profile.states().size());
  for (const auto& state : profile.states()) {
    centers.push_back(state.center);
    summary.weights.push_back(state.weight);
  }
  summary.ball = ball_of(centers);
  summary.cover = cover_of(centers, summary.ball);
  summary.centers = std::move(centers);
  std::vector<double> sorted = summary.weights;
  std::sort(sorted.begin(), sorted.end());
  summary.weight_prefix.resize(sorted.size() + 1, 0.0);
  for (std::size_t k = 0; k < sorted.size(); ++k) {
    summary.weight_prefix[k + 1] = summary.weight_prefix[k] + sorted[k];
  }
  return summary;
}

double stats_prox_proximity_lower_bound(const MarkovSummary& query,
                                        const BallCover& cover,
                                        std::size_t min_states,
                                        double proximity_scale_m) {
  if ((cover[0].size == 0 && cover[1].size == 0) || query.centers.empty()) {
    return 0.0;
  }
  // Every matched pair joins one query state to a state inside `cover`,
  // so its distance is at least that query state's point-cover separation
  // sep_i. Two admissible readings of the matched-mass-weighted mean:
  //  * it never drops below min_i sep_i;
  //  * each pair's mass is at least w_i / 2, the total matched mass is at
  //    most 1, and the matching covers min(|query|, |candidate|) query
  //    states — adversarially the ones with the *smallest* w_i * sep_i —
  //    so the mean is at least half the sum of the min_states smallest
  //    w_i * sep_i terms.
  // The second reading is what survives shared hotspot states: one
  // near-zero sep_i removes only its own mass instead of zeroing the
  // minimum.
  thread_local std::vector<double> mass_terms;
  mass_terms.clear();
  double min_separation = kInf;
  for (std::size_t i = 0; i < query.centers.size(); ++i) {
    const double sep = point_cover_separation_m(query.centers[i], cover);
    min_separation = std::min(min_separation, sep);
    mass_terms.push_back(query.weights[i] * sep);
  }
  const std::size_t matched = std::min(query.centers.size(), min_states);
  if (matched < mass_terms.size()) {
    std::nth_element(mass_terms.begin(),
                     mass_terms.begin() + static_cast<std::ptrdiff_t>(matched),
                     mass_terms.end());
  }
  double weighted = 0.0;
  for (std::size_t i = 0; i < matched; ++i) weighted += mass_terms[i];
  return std::max(min_separation, 0.5 * weighted) / proximity_scale_m;
}

double stats_prox_lower_bound(const MarkovSummary& a, const MarkovSummary& b,
                              double proximity_scale_m) {
  const std::size_t na = a.ball.size;
  const std::size_t nb = b.ball.size;
  if (na == 0 || nb == 0) return kInf;
  // Stationary part: the greedy matching pairs every state of the smaller
  // chain, leaving (larger - smaller) weights of the larger chain fully
  // unmatched — at best the smallest ones, mass U. The matched pairs'
  // |w_small - w_large| total at least |1 - (1 - U)| = U (each chain's
  // weights sum to 1), so stationary >= 2 U >= 2 * prefix[size diff].
  const auto& larger = na >= nb ? a : b;
  const std::size_t diff = na >= nb ? na - nb : nb - na;
  const double stationary =
      deflate(2.0 * larger.weight_prefix[diff], kWeightAbsMargin);
  // All stationary weights are positive, so the matched mass never
  // vanishes and the proximity mean is well defined.
  return stationary +
         stats_prox_proximity_lower_bound(a, b.cover, nb, proximity_scale_m);
}

}  // namespace mood::profiles
