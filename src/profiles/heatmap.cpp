#include "profiles/heatmap.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.h"

namespace mood::profiles {

Heatmap Heatmap::from_trace(const mobility::Trace& trace,
                            const geo::CellGrid& grid) {
  Heatmap map;
  for (const auto& record : trace.records()) {
    map.add(grid.cell_of(record.position));
  }
  return map;
}

double Heatmap::probability(const geo::CellIndex& cell) const {
  if (total_ <= 0.0) return 0.0;
  const auto it = counts_.find(cell);
  return it == counts_.end() ? 0.0 : it->second / total_;
}

void Heatmap::add(const geo::CellIndex& cell, double count) {
  support::expects(count >= 0.0, "Heatmap::add: negative count");
  counts_[cell] += count;
  total_ += count;
}

std::vector<std::pair<geo::CellIndex, double>> Heatmap::ranked_cells() const {
  std::vector<std::pair<geo::CellIndex, double>> cells(counts_.begin(),
                                                       counts_.end());
  std::sort(cells.begin(), cells.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return cells;
}

double topsoe_divergence(const Heatmap& a, const Heatmap& b) {
  if (a.empty() || b.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  // Terms are non-zero only where p or q is non-zero. One scan of `a` with
  // a single find into `b` per cell covers every shared and a-only cell;
  // the b-only cells each contribute q ln 2, and since b's probabilities
  // sum to one their total is ln 2 times the mass of b NOT shared with a —
  // no second scan (nor the former contains() + find() double lookup).
  double divergence = 0.0;
  double shared_q_mass = 0.0;
  bool any_shared = false;
  auto term = [](double p, double q) {
    if (p <= 0.0) return 0.0;
    return p * std::log(2.0 * p / (p + q));
  };
  for (const auto& [cell, count] : a.counts()) {
    const double p = count / a.total();
    const auto it = b.counts().find(cell);
    if (it == b.counts().end()) {
      divergence += term(p, 0.0);
      continue;
    }
    const double q = it->second / b.total();
    divergence += term(p, q) + term(q, p);
    shared_q_mass += q;
    any_shared = true;
  }
  // Disjoint supports hit the 2 ln 2 ceiling *exactly* (both
  // distributions carry unit mass), so return the constant instead of an
  // order-dependent sum of per-cell roundings: whole populations tie at
  // the ceiling (an anonymous map matching nobody), and re-identification
  // must break that tie identically in every implementation.
  if (!any_shared) return 2.0 * std::log(2.0);
  // max() guards the fully-shared case, where rounding can push the
  // accumulated mass a hair past one.
  return divergence + std::max(0.0, 1.0 - shared_q_mass) * std::log(2.0);
}

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// p ln(2p); 0 for p = 0 (the limit).
double self_term(double p) { return p <= 0.0 ? 0.0 : p * std::log(2.0 * p); }

std::vector<CompiledHeatmapCell> compile_cells(
    std::vector<std::pair<geo::CellIndex, double>> counts, double total) {
  std::sort(counts.begin(), counts.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<CompiledHeatmapCell> cells;
  cells.reserve(counts.size());
  for (const auto& [cell, count] : counts) {
    const double p = count / total;
    cells.push_back(
        CompiledHeatmapCell{cell, p, self_term(p), p * std::log(2.0)});
  }
  return cells;
}

/// Run-collapsed (cell, count) pairs of a record range, sorted by cell with
/// duplicates merged. Counts stay exact small integers, so merging them in
/// any grouping sums to the same doubles the hash-map path produces.
std::vector<std::pair<geo::CellIndex, double>> collapse_cells(
    const std::vector<mobility::Record>& records, const geo::CellGrid& grid) {
  std::vector<std::pair<geo::CellIndex, double>> runs;
  for (const auto& record : records) {
    const geo::CellIndex cell = grid.cell_of(record.position);
    if (!runs.empty() && runs.back().first == cell) {
      runs.back().second += 1.0;
    } else {
      runs.emplace_back(cell, 1.0);
    }
  }
  if (runs.empty()) return runs;
  std::sort(runs.begin(), runs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t out = 0;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].first == runs[out].first) {
      runs[out].second += runs[i].second;
    } else {
      runs[++out] = runs[i];
    }
  }
  runs.resize(out + 1);
  return runs;
}

}  // namespace

CompiledHeatmap::CompiledHeatmap(const Heatmap& source) {
  if (source.empty() || source.total() <= 0.0) return;
  std::vector<std::pair<geo::CellIndex, double>> counts(
      source.counts().begin(), source.counts().end());
  cells_ = compile_cells(std::move(counts), source.total());
}

CompiledHeatmap CompiledHeatmap::from_trace(const mobility::Trace& trace,
                                            const geo::CellGrid& grid) {
  CompiledHeatmap compiled;
  if (trace.empty()) return compiled;
  compiled.cells_ = compile_cells(collapse_cells(trace.records(), grid),
                                  static_cast<double>(trace.size()));
  return compiled;
}

CompiledHeatmap CompiledHeatmap::incremental(const mobility::Trace& trace,
                                             const geo::CellGrid& grid) {
  CompiledHeatmap compiled;
  compiled.updatable_ = true;
  if (trace.empty()) return compiled;
  compiled.counts_ = collapse_cells(trace.records(), grid);
  compiled.total_ = static_cast<double>(trace.size());
  // collapse_cells already sorted and merged, so compile_cells' sort is a
  // no-op pass; probabilities are bit-identical to from_trace.
  compiled.cells_ = compile_cells(compiled.counts_, compiled.total_);
  return compiled;
}

CompiledHeatmap CompiledHeatmap::from_counts(
    std::vector<std::pair<geo::CellIndex, double>> counts, double total) {
  support::expects(total >= 0.0 && (total > 0.0 || counts.empty()),
                   "CompiledHeatmap::from_counts: total does not match "
                   "the counts");
  CompiledHeatmap compiled;
  compiled.updatable_ = true;
  compiled.counts_ = std::move(counts);
  compiled.total_ = total;
  // counts_ arrive sorted (raw_counts() order), so compile_cells' sort is
  // a no-op pass and the cells are bit-identical to the captured heatmap.
  if (compiled.total_ > 0.0) {
    compiled.cells_ = compile_cells(compiled.counts_, compiled.total_);
  }
  return compiled;
}

void CompiledHeatmap::apply_update(const std::vector<mobility::Record>& added,
                                   const std::vector<mobility::Record>& removed,
                                   const geo::CellGrid& grid) {
  support::expects(updatable_,
                   "CompiledHeatmap::apply_update: heatmap was not built by "
                   "incremental() (raw counts not retained)");
  if (added.empty() && removed.empty()) return;
  auto delta = collapse_cells(added, grid);
  for (auto& [cell, count] : collapse_cells(removed, grid)) {
    delta.emplace_back(cell, -count);
  }
  std::sort(delta.begin(), delta.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Sorted merge of counts_ and delta into a fresh count vector. All
  // counts are exact integers, so additions and removals are exact and the
  // merged counts equal what collapse_cells would produce on the updated
  // window.
  std::vector<std::pair<geo::CellIndex, double>> merged;
  merged.reserve(counts_.size() + delta.size());
  std::size_t i = 0;
  std::size_t j = 0;
  const auto push = [&](const geo::CellIndex& cell, double count) {
    support::expects(count >= 0.0,
                     "CompiledHeatmap::apply_update: removal without a "
                     "matching count");
    if (count > 0.0) merged.emplace_back(cell, count);
  };
  while (i < counts_.size() || j < delta.size()) {
    if (j == delta.size() ||
        (i < counts_.size() && counts_[i].first < delta[j].first)) {
      merged.push_back(counts_[i]);
      ++i;
    } else if (i == counts_.size() || delta[j].first < counts_[i].first) {
      // Duplicate delta cells (one from added, one from removed) merge here.
      double count = delta[j].second;
      const geo::CellIndex cell = delta[j].first;
      while (++j < delta.size() && delta[j].first == cell) {
        count += delta[j].second;
      }
      push(cell, count);
    } else {
      double count = counts_[i].second + delta[j].second;
      const geo::CellIndex cell = delta[j].first;
      while (++j < delta.size() && delta[j].first == cell) {
        count += delta[j].second;
      }
      push(cell, count);
      ++i;
    }
  }
  counts_ = std::move(merged);
  total_ += static_cast<double>(added.size()) -
            static_cast<double>(removed.size());
  support::ensures(total_ >= 0.0 && (total_ > 0.0 || counts_.empty()),
                   "CompiledHeatmap::apply_update: count bookkeeping drifted");
  cells_ = total_ > 0.0 ? compile_cells(counts_, total_)
                        : std::vector<CompiledHeatmapCell>{};
}

double topsoe_divergence(const CompiledHeatmap& a, const CompiledHeatmap& b) {
  return topsoe_divergence_bounded(a, b, kInfinity);
}

double topsoe_divergence_bounded(const CompiledHeatmap& a,
                                 const CompiledHeatmap& b, double bound) {
  if (a.empty() || b.empty()) return kInfinity;
  const auto& ca = a.cells();
  const auto& cb = b.cells();
  // Disjoint supports return the 2 ln 2 ceiling exactly (see the legacy
  // overload). Two consequences for the bound logic: a bound at or within
  // rounding of the ceiling cannot prune soundly (the running sum may
  // overshoot the constant by an ulp before the merge proves
  // disjointness), so such bounds finish the merge — they would prune
  // next to nothing anyway, every divergence lies at or below the
  // ceiling. Bounds clearly below the ceiling bail as usual: a disjoint
  // pair's final value is the ceiling, which exceeds them regardless.
  const double ceiling = 2.0 * std::log(2.0);
  const bool can_bail = bound < ceiling * (1.0 - 1e-14);
  double divergence = 0.0;
  bool any_shared = false;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < ca.size() && j < cb.size()) {
    if (ca[i].cell == cb[j].cell) {
      // Shared cell: p ln(2p/(p+q)) + q ln(2q/(p+q))
      //            = p ln(2p) + q ln(2q) - (p+q) ln(p+q).
      // Non-negative by the log-sum inequality; the max() enforces that
      // under rounding too (p ~ q can produce a ~1e-17 negative), so the
      // running sum is monotone and the bound check below never bails on
      // a pair whose exact value is still within the bound.
      const double pq = ca[i].probability + cb[j].probability;
      divergence += std::max(
          0.0, ca[i].self_term + cb[j].self_term - pq * std::log(pq));
      any_shared = true;
      ++i;
      ++j;
    } else if (ca[i].cell < cb[j].cell) {
      divergence += ca[i].solo_term;
      ++i;
    } else {
      divergence += cb[j].solo_term;
      ++j;
    }
    if (can_bail && divergence > bound) return kInfinity;
  }
  if (!any_shared) return ceiling;
  for (; i < ca.size(); ++i) {
    divergence += ca[i].solo_term;
    if (divergence > bound) return kInfinity;
  }
  for (; j < cb.size(); ++j) {
    divergence += cb[j].solo_term;
    if (divergence > bound) return kInfinity;
  }
  return divergence;
}

}  // namespace mood::profiles
