#include "profiles/heatmap.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.h"

namespace mood::profiles {

Heatmap Heatmap::from_trace(const mobility::Trace& trace,
                            const geo::CellGrid& grid) {
  Heatmap map;
  for (const auto& record : trace.records()) {
    map.add(grid.cell_of(record.position));
  }
  return map;
}

double Heatmap::probability(const geo::CellIndex& cell) const {
  if (total_ <= 0.0) return 0.0;
  const auto it = counts_.find(cell);
  return it == counts_.end() ? 0.0 : it->second / total_;
}

void Heatmap::add(const geo::CellIndex& cell, double count) {
  support::expects(count >= 0.0, "Heatmap::add: negative count");
  counts_[cell] += count;
  total_ += count;
}

std::vector<std::pair<geo::CellIndex, double>> Heatmap::ranked_cells() const {
  std::vector<std::pair<geo::CellIndex, double>> cells(counts_.begin(),
                                                       counts_.end());
  std::sort(cells.begin(), cells.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return cells;
}

double topsoe_divergence(const Heatmap& a, const Heatmap& b) {
  if (a.empty() || b.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  // Terms are non-zero only where p or q is non-zero, so iterating both
  // support sets covers the whole sum. Cells present in both maps are
  // visited twice, so take care to add each side's term exactly once.
  double divergence = 0.0;
  auto term = [](double p, double q) {
    if (p <= 0.0) return 0.0;
    return p * std::log(2.0 * p / (p + q));
  };
  for (const auto& [cell, count] : a.counts()) {
    const double p = count / a.total();
    const double q = b.probability(cell);
    divergence += term(p, q) + term(q, p);
  }
  for (const auto& [cell, count] : b.counts()) {
    if (a.counts().contains(cell)) continue;  // already handled above
    const double q = count / b.total();
    divergence += term(q, 0.0);
  }
  return divergence;
}

}  // namespace mood::profiles
