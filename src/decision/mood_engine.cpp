#include "decision/mood_engine.h"

#include <limits>

#include "support/error.h"

namespace mood::decision {

std::string to_string(ProtectionLevel level) {
  switch (level) {
    case ProtectionLevel::kNone: return "none";
    case ProtectionLevel::kSingle: return "single-LPPM";
    case ProtectionLevel::kComposition: return "multi-LPPM";
    case ProtectionLevel::kFineGrained: return "fine-grained";
  }
  return "?";
}

double ProtectionResult::mean_distortion() const {
  double weighted = 0.0;
  std::size_t records = 0;
  for (const auto& piece : pieces) {
    weighted += piece.distortion * static_cast<double>(piece.original_records);
    records += piece.original_records;
  }
  return records == 0 ? 0.0 : weighted / static_cast<double>(records);
}

MoodEngine::MoodEngine(std::vector<const lppm::Lppm*> singles,
                       std::vector<lppm::Composition> compositions,
                       std::vector<const attacks::Attack*> attacks,
                       const metrics::UtilityMetric* metric, MoodConfig config)
    : singles_(std::move(singles)),
      compositions_(std::move(compositions)),
      attacks_(std::move(attacks)),
      metric_(metric),
      config_(config) {
  support::expects(!singles_.empty(), "MoodEngine: empty LPPM set");
  support::expects(!attacks_.empty(), "MoodEngine: empty attack set");
  support::expects(metric_ != nullptr, "MoodEngine: null utility metric");
  support::expects(config_.delta > 0, "MoodEngine: delta must be positive");
  support::expects(config_.preslice > 0,
                   "MoodEngine: preslice must be positive");
  for (const auto* single : singles_) {
    support::expects(single != nullptr, "MoodEngine: null LPPM");
  }
  for (const auto* attack : attacks_) {
    support::expects(attack != nullptr, "MoodEngine: null attack");
    support::expects(attack->trained_users() > 0,
                     "MoodEngine: attack '" + attack->name() +
                         "' is untrained");
  }
}

support::RngStream MoodEngine::rng_for(const mobility::Trace& trace,
                                       const std::string& lppm_name) const {
  // Keyed by owner, mechanism and the sub-trace's start time, so that every
  // (user, mechanism, sub-trace) triple draws an independent — yet fully
  // reproducible — noise stream regardless of evaluation order.
  const mobility::Timestamp t0 = trace.empty() ? 0 : trace.front().time;
  return support::RngStream(config_.seed)
      .fork(trace.user())
      .fork(lppm_name, static_cast<std::uint64_t>(t0));
}

std::optional<std::pair<mobility::Trace, double>> MoodEngine::try_mechanism(
    const lppm::Lppm& mechanism, const mobility::Trace& trace,
    ProtectionResult* cost) const {
  mobility::Trace output = mechanism.apply(trace, rng_for(trace, mechanism.name()));
  if (cost != nullptr) ++cost->lppm_applications;
  // Algorithm 1 lines 8-10: walk the attacks until one re-identifies.
  // reidentifies() routes through the targeted reidentifies_target query,
  // so each attack prices the owner once and prunes the rest of its
  // population scan against that distance (branch-and-bound).
  for (const auto* attack : attacks_) {
    if (cost != nullptr) ++cost->attack_invocations;
    if (attacks::reidentifies(*attack, output, trace.user())) {
      return std::nullopt;  // this mechanism failed
    }
  }
  const double distortion = metric_->distortion(trace, output);
  return std::make_pair(std::move(output), distortion);
}

std::optional<MoodEngine::Candidate> MoodEngine::search(
    const mobility::Trace& trace, ProtectionResult* cost) const {
  if (trace.empty()) return std::nullopt;

  // ---- Single-LPPM pass (lines 4-14): keep the argmin-STD winner.
  std::optional<Candidate> best;
  for (const auto* single : singles_) {
    auto outcome = try_mechanism(*single, trace, cost);
    if (!outcome) continue;
    if (!best || outcome->second < best->distortion) {
      best = Candidate{single->name(), ProtectionLevel::kSingle,
                       std::move(outcome->first), outcome->second};
    }
  }
  if (best) return best;

  // ---- Composition pass (lines 16-26) over C \ L.
  for (const auto& composition : compositions_) {
    auto outcome = try_mechanism(composition, trace, cost);
    if (!outcome) continue;
    if (!best || outcome->second < best->distortion) {
      best = Candidate{composition.name(), ProtectionLevel::kComposition,
                       std::move(outcome->first), outcome->second};
    }
    if (config_.first_hit) break;  // ablation mode: stop at the first hit
  }
  return best;
}

std::optional<MoodEngine::Candidate> MoodEngine::recheck(
    const std::string& lppm_name, const mobility::Trace& trace,
    ProtectionResult* cost) const {
  if (trace.empty()) return std::nullopt;
  for (const auto* single : singles_) {
    if (single->name() != lppm_name) continue;
    auto outcome = try_mechanism(*single, trace, cost);
    if (!outcome) return std::nullopt;
    return Candidate{single->name(), ProtectionLevel::kSingle,
                     std::move(outcome->first), outcome->second};
  }
  for (const auto& composition : compositions_) {
    if (composition.name() != lppm_name) continue;
    auto outcome = try_mechanism(composition, trace, cost);
    if (!outcome) return std::nullopt;
    return Candidate{composition.name(), ProtectionLevel::kComposition,
                     std::move(outcome->first), outcome->second};
  }
  throw support::PreconditionError("MoodEngine::recheck: unknown mechanism '" +
                                   lppm_name + "'");
}

void MoodEngine::protect_recursive(const mobility::Trace& trace,
                                   ProtectionResult& result) const {
  if (trace.empty()) return;

  if (auto candidate = search(trace, &result)) {
    result.pieces.push_back(ProtectedPiece{
        std::move(candidate->output), candidate->lppm, candidate->level,
        candidate->distortion, trace.size()});
    return;
  }

  // Lines 27-34: fine-grained split while the piece spans at least delta.
  if (trace.duration() >= config_.delta) {
    auto [left, right] = trace.split_in_half();
    protect_recursive(left, result);
    protect_recursive(right, result);
    return;
  }

  // Line 36: give up on this piece; its records are erased.
  result.lost_records += trace.size();
}

ProtectionResult MoodEngine::protect(const mobility::Trace& trace) const {
  ProtectionResult result;
  result.original_records = trace.size();
  protect_recursive(trace, result);

  if (result.pieces.empty()) {
    result.level = ProtectionLevel::kNone;
  } else if (result.pieces.size() == 1 && result.lost_records == 0 &&
             result.pieces.front().level != ProtectionLevel::kFineGrained &&
             result.pieces.front().original_records == trace.size()) {
    // The whole trace was protected without splitting.
    result.level = result.pieces.front().level;
  } else {
    result.level = ProtectionLevel::kFineGrained;
    for (auto& piece : result.pieces) {
      piece.level = ProtectionLevel::kFineGrained;
    }
    renew_ids(result.pieces, trace.user());
  }
  return result;
}

ProtectionResult MoodEngine::protect_crowdsensing(
    const mobility::Trace& trace) const {
  ProtectionResult result;
  result.original_records = trace.size();
  if (trace.empty()) return result;

  for (const auto& slice : trace.slices(config_.preslice)) {
    ProtectionResult partial;
    partial.original_records = slice.size();
    protect_recursive(slice, partial);
    result.lost_records += partial.lost_records;
    result.lppm_applications += partial.lppm_applications;
    result.attack_invocations += partial.attack_invocations;
    for (auto& piece : partial.pieces) {
      result.pieces.push_back(std::move(piece));
    }
  }
  // Daily chunks are published under per-chunk pseudonyms in the
  // crowdsensing scenario, so ids are always renewed here.
  result.level =
      result.pieces.empty() ? ProtectionLevel::kNone
                            : ProtectionLevel::kFineGrained;
  renew_ids(result.pieces, trace.user());
  return result;
}

void renew_ids(std::vector<ProtectedPiece>& pieces,
               const mobility::UserId& owner) {
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    pieces[i].trace.set_user(owner + "#" + std::to_string(i));
  }
}

}  // namespace mood::decision
