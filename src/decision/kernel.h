#pragma once

/// \file kernel.h
/// DecisionKernel — the one MooD decision procedure, shared by both
/// deployment modes.
///
/// The paper's pitch is a single decision procedure ("does any trained
/// attack re-identify this user's data, and if so, which mechanism
/// protects it at the least utility cost?") deployed offline for
/// experimentation and online behind a gateway. Before this layer existed
/// the repo kept two hand-synchronised copies of that procedure — the
/// batch evaluators in core and the stream engine's per-user drain loop —
/// bit-identical only because replay-equivalence tests said so. The kernel
/// makes the guarantee structural: both modes call the same functions.
///
///   * *Batch* (`ExperimentHarness`): one kernel pass per full test trace
///     — decide_trace() folds the whole trace once and finalises.
///   * *Stream* (`StreamEngine`): the kernel is driven by window deltas —
///     fold() appends pending records and evicts expired ones, decide()
///     issues the per-micro-batch verdict, finalize() canonicalises after
///     the last batch. Identical final windows therefore produce
///     bit-identical decisions by construction, not by test.
///
/// Per user the kernel owns the compiled profiles of all three standard
/// attacks, maintained incrementally:
///
///   * the AP heatmap exactly, via CompiledHeatmap::apply_update (integer
///     counts — bit-identical to a from-scratch compile);
///   * the PIT and POI profiles through ONE shared StayTracker (both
///     attacks cluster the same stay points when their PoiParams agree, as
///     the standard suite's do) plus a VisitAccumulator, compiled into
///     their flat forms with from_states — incremental stay-point
///     maintenance with a bounded rebuild fallback when an eviction splits
///     a stay. A staleness bound (KernelConfig::staleness_points) defers
///     even the incremental folds; finalize() always forces freshness.
///
/// Risk queries run the PR 3 targeted branch-and-bound predicates over the
/// compiled window profiles; mechanism selection applies the
/// keep/recheck/search policy: keep the held LPPM while a cheap
/// MoodEngine::recheck shows it still protects, full search() only on
/// expose->protect transitions or when the mechanism breaks.
///
/// Thread-safety: the kernel itself is immutable after construction;
/// fold/decide/finalize mutate only the caller-owned UserKernelState plus
/// the kernel's atomic counters, so distinct users may be driven
/// concurrently (the stream engine fans out one task per shard, the batch
/// evaluators one per user).

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "clustering/incremental_stays.h"
#include "decision/mood_engine.h"
#include "mobility/record.h"
#include "mobility/trace.h"
#include "profiles/heatmap.h"
#include "profiles/markov_profile.h"
#include "profiles/poi_profile.h"

namespace mood::attacks {
class ApAttack;
class PitAttack;
class PoiAttack;
}  // namespace mood::attacks

namespace mood::decision {

/// Verdict vocabulary of the decision procedure (consumed by both the
/// batch gateway evaluator and the stream engine).
enum class Decision {
  kExpose,   ///< no trained attack re-identifies the current window
  kProtect,  ///< at least one attack does; a mechanism must be applied
};

inline std::string to_string(Decision decision) {
  return decision == Decision::kExpose ? "expose" : "protect";
}

/// Final outcome of the decision procedure for one user.
struct Verdict {
  Decision decision = Decision::kExpose;
  /// Winning mechanism ("" when exposed, or when nothing protects).
  std::string winner;
};

/// Kernel tuning knobs (the window/staleness subset of the gateway's
/// StreamConfig; the batch evaluators run with the defaults — no window,
/// always fresh).
struct KernelConfig {
  mobility::Timestamp window_seconds = 0;  ///< sliding span; 0 = keep all
  std::size_t max_points = 0;              ///< per-user point cap; 0 = off
  std::size_t staleness_points = 0;  ///< PIT/POI refresh bound; 0 = every fold
};

/// Aggregate kernel counters (monotonic; snapshot via stats()).
struct KernelStats {
  std::uint64_t decisions = 0;         ///< per-user verdicts issued
  std::uint64_t exposed_events = 0;    ///< events carried by expose verdicts
  std::uint64_t protected_events = 0;  ///< events carried by protect verdicts
  std::uint64_t searches = 0;          ///< full mechanism selections
  std::uint64_t rechecks = 0;          ///< cheap current-winner re-checks
  std::uint64_t shed_decisions = 0;    ///< degraded held-verdict decisions
  std::uint64_t profile_refreshes = 0; ///< PIT/POI compiled-form refreshes
  std::uint64_t stay_updates = 0;      ///< incremental stay-tracker syncs
  std::uint64_t stay_rebuilds = 0;     ///< full re-extractions among them
  std::uint64_t heatmap_updates = 0;   ///< incremental AP folds
  std::uint64_t evicted_points = 0;    ///< records expired out of windows
  std::uint64_t lppm_applications = 0; ///< search/recheck cost counters
  std::uint64_t attack_invocations = 0;
  /// Population-index counters, pulled from the attacks at snapshot time
  /// (the index lives inside each trained attack; the kernel reads, never
  /// writes). All zero when queries run in scan/reference mode.
  std::uint64_t index_prunes = 0;    ///< candidates skipped via lower bounds
  std::uint64_t exact_evals = 0;     ///< candidates priced exactly
  std::uint64_t index_rebuilds = 0;  ///< full index (re)builds
};

/// Everything the kernel remembers about one user. Owned by the caller
/// (the stream engine keeps one per resident user; the batch evaluators
/// one per trace, transiently) and only ever mutated by kernel calls.
struct UserKernelState {
  /// Sliding window of recent records; carries the owner's user id (the
  /// engine keys noise streams and targeted queries on window.user()).
  mobility::Trace window;

  // ---- Incremental compiled profiles ---------------------------------
  profiles::CompiledHeatmap heatmap;  ///< AP side; exact integer folds
  bool heatmap_built = false;
  /// PIT/POI side: one shared stay tracker + merged visit states. The
  /// projection origin is pinned at the first record ever folded —
  /// captured in fold(), *before* any eviction, so the tracker state is a
  /// pure function of the record sequence however folds are chunked.
  clustering::TrackedVisitStates stays;
  bool stays_init = false;
  geo::GeoPoint stay_origin;
  bool stay_origin_set = false;
  profiles::CompiledMarkovProfile markov;
  profiles::CompiledPoiProfile poi;
  bool profiles_built = false;
  /// Window deltas not yet folded into the PIT/POI profiles (deferred
  /// under the staleness bound; stale_points = appended + evicted drives
  /// the policy).
  std::size_t stale_appended = 0;
  std::size_t stale_evicted = 0;
  std::size_t stale_points = 0;

  // ---- Last decision --------------------------------------------------
  bool has_decision = false;
  Decision decision = Decision::kExpose;
  std::string winner;  ///< mechanism currently applied ("" when none)
  /// Cumulative folded-event count at the last *full* search (max =
  /// never searched). The window is a pure function of the events folded
  /// so far, so equality with `events` means the last search saw exactly
  /// this window and the winner is canonical. (The window *size* is not a
  /// valid marker: under a point cap it pins at the cap while the content
  /// keeps sliding.)
  std::uint64_t searched_events = static_cast<std::uint64_t>(-1);

  // ---- Per-user counters ----------------------------------------------
  std::uint64_t events = 0;            ///< records folded so far
  std::uint64_t risk_transitions = 0;  ///< expose<->protect flips
  std::uint64_t searches = 0;          ///< full mechanism selections
  std::uint64_t rechecks = 0;          ///< cheap current-winner re-checks
  std::uint64_t degraded = 0;          ///< held-verdict (shed) decisions
};

class DecisionKernel {
 public:
  /// Takes ownership of a configured MoodEngine (typically
  /// harness.make_engine()); the engine's attacks must outlive the kernel.
  explicit DecisionKernel(MoodEngine engine, KernelConfig config = {});

  DecisionKernel(const DecisionKernel&) = delete;
  DecisionKernel& operator=(const DecisionKernel&) = delete;

  // ---- Streaming entry points ----------------------------------------
  /// Folds pending records into the window (evicting expired/over-cap
  /// points from the front) and maintains the AP heatmap incrementally;
  /// PIT/POI folds are deferred to the next refresh. The records are only
  /// read (taken by reference so the batch entry points fold whole test
  /// traces without copying them). Returns the number of records folded.
  std::size_t fold(UserKernelState& state,
                   const std::vector<mobility::Record>& pending) const;

  /// Issues one micro-batch verdict: refresh profiles (under the staleness
  /// bound), run the targeted risk queries, apply the keep/recheck/search
  /// selection policy. `folded` is fold()'s return value for this batch
  /// (events carried by the verdict); callers skip the call when 0.
  void decide(UserKernelState& state, std::size_t folded) const;

  /// Degraded micro-batch verdict — the overload-shedding path. Holds the
  /// user's last verdict instead of running the risk queries: a protected
  /// user with a held mechanism gets the cheap recheck only (its outcome
  /// is recorded in the cost counters but a failing recheck defers the
  /// full search instead of running it), everyone else just carries the
  /// held decision forward. A user with no verdict yet falls through to
  /// the full decide() — shedding never leaves a user undecided
  /// (fail-closed). Degraded verdicts are flagged in state.degraded and
  /// KernelStats::shed_decisions, and are repaired at finalize(): the
  /// fold already advanced state.events past searched_events, so the
  /// canonical pass re-searches exactly as if the shed never happened.
  void decide_degraded(UserKernelState& state, std::size_t folded) const;

  /// Loop-engine steady-state verdict — the admission-time cheap path.
  /// Holds the user's last verdict with zero risk queries: event
  /// accounting only (protected/exposed counters plus one decision).
  /// Unlike decide_degraded it is NOT an overload artefact — it never
  /// touches state.degraded or KernelStats::shed_decisions, so a clean
  /// loop-mode run keeps the resilience counters all-zero. A user with no
  /// verdict yet falls through to the full decide() (fail-closed), and
  /// finalize() repairs the held verdict canonically just as for
  /// shedding: the fold advanced state.events past searched_events.
  void decide_held(UserKernelState& state, std::size_t folded) const;

  /// Loop-engine cadence verdict: decide_held plus the one cheap check —
  /// does the held mechanism still defeat every attack on the grown
  /// window? A failing recheck defers the full search to the next slack
  /// cadence (or finalize()) instead of running it inline.
  void decide_recheck(UserKernelState& state, std::size_t folded) const;

  /// Canonical final decision: force-refresh stale profiles, re-run risk,
  /// and re-search at-risk users whose last full search did not see
  /// exactly this window — so the final verdict is what decide_trace()
  /// would produce on the final window. `folded` counts records folded by
  /// the caller since the last decide().
  void finalize(UserKernelState& state, std::size_t folded = 0) const;

  // ---- Batch entry points --------------------------------------------
  /// One kernel pass over a full trace: fold everything, finalise —
  /// structurally the same code path the stream drives incrementally.
  [[nodiscard]] Verdict decide_trace(const mobility::Trace& trace) const;

  /// The risk half only: would any trained attack re-identify the trace's
  /// owner from it? (The no-LPPM evaluator's per-user question.) Compiles
  /// the window profiles once and runs every attack's targeted
  /// branch-and-bound query against them.
  [[nodiscard]] bool at_risk_trace(const mobility::Trace& trace) const;

  /// Targeted risk query over a state with fresh profiles.
  [[nodiscard]] bool at_risk(const UserKernelState& state) const;

  /// Checkpoint-restore hook: re-enables the O(1) preslice bookkeeping on
  /// a freshly deserialized window. fold() only turns tracking on for
  /// *empty* windows, so a state restored mid-stream must call this once
  /// or its window_slices snapshots would read 0 forever. track_slices
  /// derives the same cut offsets the incremental bookkeeping maintains,
  /// so restored slice counts are bit-identical to an uninterrupted run.
  void restore_window_tracking(UserKernelState& state) const;

  [[nodiscard]] const MoodEngine& engine() const { return engine_; }
  [[nodiscard]] const KernelConfig& config() const { return config_; }
  [[nodiscard]] KernelStats stats() const;

 private:
  void refresh_profiles(UserKernelState& state, bool force) const;
  void select_mechanism(UserKernelState& state, bool force_search) const;
  void apply_verdict(UserKernelState& state, bool risk, std::size_t folded,
                     bool canonical) const;

  MoodEngine engine_;
  KernelConfig config_;

  // Typed fast-path views into engine_.attacks() (null when absent).
  const attacks::ApAttack* ap_ = nullptr;
  const attacks::PitAttack* pit_ = nullptr;
  const attacks::PoiAttack* poi_ = nullptr;
  /// Stay-clustering parameters of the shared tracker (the POI attack's,
  /// falling back to the PIT attack's) and whether the PIT attack can use
  /// it (its params match; always true for the standard suite).
  clustering::PoiParams stay_params_;
  bool has_stay_params_ = false;
  bool pit_shares_stays_ = false;

  mutable std::atomic<std::uint64_t> decisions_{0};
  mutable std::atomic<std::uint64_t> exposed_events_{0};
  mutable std::atomic<std::uint64_t> protected_events_{0};
  mutable std::atomic<std::uint64_t> searches_{0};
  mutable std::atomic<std::uint64_t> rechecks_{0};
  mutable std::atomic<std::uint64_t> shed_decisions_{0};
  mutable std::atomic<std::uint64_t> profile_refreshes_{0};
  mutable std::atomic<std::uint64_t> stay_updates_{0};
  mutable std::atomic<std::uint64_t> stay_rebuilds_{0};
  mutable std::atomic<std::uint64_t> heatmap_updates_{0};
  mutable std::atomic<std::uint64_t> evicted_points_{0};
  mutable std::atomic<std::uint64_t> lppm_applications_{0};
  mutable std::atomic<std::uint64_t> attack_invocations_{0};
};

}  // namespace mood::decision
