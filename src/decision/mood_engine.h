#pragma once

/// \file mood_engine.h
/// The paper's contribution: Algorithm 1 — MooD's fine-grained multi-LPPM
/// user-centric protection.
///
/// Given a trace T, the trained attack set A, the single-LPPM set L, the
/// composition set C \ L and a utility metric M, the engine:
///   1. applies every single LPPM; if at least one defeats *all* attacks,
///      returns the protective output with the lowest distortion (line 14);
///   2. otherwise applies every multi-LPPM composition; if any protects,
///      returns the one with the best utility (line 26);
///   3. otherwise, if the trace spans at least delta, splits it in half by
///      time and recurses on both halves (fine-grained protection,
///      lines 27-34), renewing sub-trace ids at the end;
///   4. otherwise erases the trace (it is counted as data loss).
///
/// The engine is immutable and thread-safe after construction: callers
/// typically fan protect() out across users with parallel_for.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "attacks/attack.h"
#include "lppm/composition.h"
#include "lppm/lppm.h"
#include "metrics/distortion.h"
#include "mobility/trace.h"

namespace mood::decision {

/// How a piece of data ended up protected.
enum class ProtectionLevel {
  kNone,         ///< nothing worked — data erased
  kSingle,       ///< one LPPM from L sufficed
  kComposition,  ///< a multi-LPPM composition from C \ L sufficed
  kFineGrained,  ///< protection came from time-split sub-traces
};

std::string to_string(ProtectionLevel level);

/// Engine tuning knobs.
struct MoodConfig {
  /// Recursion floor delta (paper §4.2: 4 h): traces shorter than this are
  /// erased instead of split further.
  mobility::Timestamp delta = 4 * mobility::kHour;

  /// Crowdsensing pre-slice period (paper §4.2: 24 h).
  mobility::Timestamp preslice = 24 * mobility::kHour;

  /// Root seed for all LPPM noise drawn by this engine.
  std::uint64_t seed = 0x4D00D;

  /// If true, the composition pass returns the first protective composition
  /// (ordered by increasing length) instead of evaluating all of them and
  /// keeping the best-utility one. Not paper-faithful — exists for the
  /// ablation bench quantifying the cost of exhaustive search.
  bool first_hit = false;
};

/// One protected output piece (the whole trace, or a sub-trace).
struct ProtectedPiece {
  mobility::Trace trace;            ///< obfuscated output
  std::string lppm;                 ///< winning LPPM/composition name
  ProtectionLevel level = ProtectionLevel::kNone;
  double distortion = 0.0;          ///< metric vs. the original piece
  std::size_t original_records = 0; ///< records of the original piece
};

/// Outcome of protecting one trace.
struct ProtectionResult {
  ProtectionLevel level = ProtectionLevel::kNone;
  std::vector<ProtectedPiece> pieces;
  std::size_t original_records = 0;
  std::size_t lost_records = 0;     ///< original records erased (Eq. 7)
  std::size_t lppm_applications = 0;   ///< search cost: LPPM invocations
  std::size_t attack_invocations = 0;  ///< search cost: attack calls

  /// All records survived into protected output.
  [[nodiscard]] bool fully_protected() const {
    return lost_records == 0 && !pieces.empty();
  }
  /// Record-weighted mean distortion over pieces (0 if none).
  [[nodiscard]] double mean_distortion() const;
  /// Original records that survived.
  [[nodiscard]] std::size_t protected_records() const {
    return original_records - lost_records;
  }
};

class MoodEngine {
 public:
  /// All pointers are non-owning and must outlive the engine. `attacks`
  /// must already be trained. `compositions` is C \ L (the engine runs the
  /// single pass from `singles` itself).
  MoodEngine(std::vector<const lppm::Lppm*> singles,
             std::vector<lppm::Composition> compositions,
             std::vector<const attacks::Attack*> attacks,
             const metrics::UtilityMetric* metric, MoodConfig config);

  /// Search result of the non-recursive part of Algorithm 1 (lines 4-26).
  struct Candidate {
    std::string lppm;
    ProtectionLevel level = ProtectionLevel::kNone;
    mobility::Trace output;
    double distortion = 0.0;
  };

  /// Runs the single-LPPM pass then the composition pass on one trace;
  /// no splitting. nullopt when nothing protects. `cost` (optional)
  /// accumulates search-effort counters.
  [[nodiscard]] std::optional<Candidate> search(
      const mobility::Trace& trace, ProtectionResult* cost = nullptr) const;

  /// Full Algorithm 1 (search + recursive fine-grained splitting).
  /// Sub-trace ids are renewed in the returned pieces.
  [[nodiscard]] ProtectionResult protect(const mobility::Trace& trace) const;

  /// Crowdsensing mode (paper §4.2): slice into `config.preslice` chunks
  /// first, then run Algorithm 1 on every chunk independently.
  [[nodiscard]] ProtectionResult protect_crowdsensing(
      const mobility::Trace& trace) const;

  /// Re-applies a previously selected mechanism (single or composition, by
  /// name) to `trace` and tests it against every attack — the streaming
  /// gateway's cheap "does the current choice still protect the grown
  /// window?" check, one LPPM application instead of a full search().
  /// The output is identical to what search() would produce for that
  /// mechanism (same deterministic noise stream). nullopt when the
  /// mechanism no longer protects; throws PreconditionError for names the
  /// engine does not know.
  [[nodiscard]] std::optional<Candidate> recheck(
      const std::string& lppm_name, const mobility::Trace& trace,
      ProtectionResult* cost = nullptr) const;

  /// The trained attack set this engine searches against (non-owning; in
  /// construction order). The streaming gateway derives its typed
  /// fast-path views from this.
  [[nodiscard]] const std::vector<const attacks::Attack*>& attacks() const {
    return attacks_;
  }

  [[nodiscard]] const MoodConfig& config() const { return config_; }
  [[nodiscard]] std::size_t candidate_count() const {
    return singles_.size() + compositions_.size();
  }

 private:
  /// Applies one mechanism and tests it against every attack (early exit on
  /// the first successful re-identification, as in Algorithm 1's while
  /// loop). Returns the protective output and its distortion, or nullopt.
  [[nodiscard]] std::optional<std::pair<mobility::Trace, double>> try_mechanism(
      const lppm::Lppm& mechanism, const mobility::Trace& trace,
      ProtectionResult* cost) const;

  void protect_recursive(const mobility::Trace& trace,
                         ProtectionResult& result) const;

  [[nodiscard]] support::RngStream rng_for(const mobility::Trace& trace,
                                           const std::string& lppm_name) const;

  std::vector<const lppm::Lppm*> singles_;
  std::vector<lppm::Composition> compositions_;
  std::vector<const attacks::Attack*> attacks_;
  const metrics::UtilityMetric* metric_;
  MoodConfig config_;
};

/// Renames every piece to "<owner>#<index>" — the renew_Ids step of
/// Algorithm 1 (line 34): sub-traces published under fresh pseudonyms so
/// they appear to come from distinct users.
void renew_ids(std::vector<ProtectedPiece>& pieces,
               const mobility::UserId& owner);

}  // namespace mood::decision
