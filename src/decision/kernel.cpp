#include "decision/kernel.h"

#include <utility>

#include "attacks/ap_attack.h"
#include "attacks/pit_attack.h"
#include "attacks/poi_attack.h"
#include "support/error.h"

namespace mood::decision {

namespace {
constexpr std::uint64_t kNeverSearched = static_cast<std::uint64_t>(-1);
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

DecisionKernel::DecisionKernel(MoodEngine engine, KernelConfig config)
    : engine_(std::move(engine)), config_(config) {
  for (const auto* attack : engine_.attacks()) {
    if (ap_ == nullptr) {
      ap_ = dynamic_cast<const attacks::ApAttack*>(attack);
      if (ap_ != nullptr) continue;
    }
    if (pit_ == nullptr) {
      pit_ = dynamic_cast<const attacks::PitAttack*>(attack);
      if (pit_ != nullptr) continue;
    }
    if (poi_ == nullptr) poi_ = dynamic_cast<const attacks::PoiAttack*>(attack);
  }
  // One stay tracker serves both stay-clustering attacks whenever their
  // parameters agree (they always do in the standard suite); a PIT attack
  // with divergent parameters falls back to from-scratch compiles.
  if (poi_ != nullptr) {
    stay_params_ = poi_->params();
    has_stay_params_ = true;
  } else if (pit_ != nullptr) {
    stay_params_ = pit_->params();
    has_stay_params_ = true;
  }
  pit_shares_stays_ =
      pit_ != nullptr && has_stay_params_ && pit_->params() == stay_params_;
}

std::size_t DecisionKernel::fold(UserKernelState& state,
                                 const std::vector<mobility::Record>& pending)
    const {
  if (pending.empty()) return 0;
  if (state.window.empty() && state.window.tracked_slice() == 0) {
    // Fresh (or LRU-recycled) window: enable O(1) preslice bookkeeping so
    // window-slice snapshots never re-scan the timestamps.
    state.window.track_slices(engine_.config().preslice);
  }
  if (!state.stay_origin_set) {
    // Pin the stay-clustering projection at the first record ever folded
    // — before any eviction can move the window front — so the PIT/POI
    // profile state cannot depend on how folds were chunked.
    state.stay_origin = pending.front().position;
    state.stay_origin_set = true;
  }
  for (const auto& record : pending) state.window.append(record);

  // Evict expired / over-cap points from the front. The newest record is
  // never evicted (its own age is zero), so the window stays non-empty.
  std::size_t expired = 0;
  const auto& records = state.window.records();
  if (config_.window_seconds > 0) {
    const mobility::Timestamp cutoff =
        state.window.back().time - config_.window_seconds;
    while (expired < records.size() && records[expired].time <= cutoff) {
      ++expired;
    }
  }
  if (config_.max_points > 0 && records.size() - expired > config_.max_points) {
    expired = records.size() - config_.max_points;
  }
  std::vector<mobility::Record> evicted(
      records.begin(), records.begin() + static_cast<std::ptrdiff_t>(expired));
  if (expired > 0) {
    state.window.drop_front(expired);
    evicted_points_.fetch_add(expired, kRelaxed);
  }

  if (ap_ != nullptr) {
    if (!state.heatmap_built) {
      state.heatmap =
          profiles::CompiledHeatmap::incremental(state.window, ap_->grid());
      state.heatmap_built = true;
    } else {
      state.heatmap.apply_update(pending, evicted, ap_->grid());
    }
    heatmap_updates_.fetch_add(1, kRelaxed);
  }
  // PIT/POI folds are deferred to the next refresh (possibly several folds
  // later under a staleness bound) — accumulate the window deltas.
  state.stale_appended += pending.size();
  state.stale_evicted += expired;
  state.stale_points += pending.size() + evicted.size();
  state.events += pending.size();
  return pending.size();
}

void DecisionKernel::refresh_profiles(UserKernelState& state,
                                      bool force) const {
  if (pit_ == nullptr && poi_ == nullptr) return;
  const bool stale = !state.profiles_built || state.stale_points > 0;
  if (!stale) return;
  if (!force && config_.staleness_points > 0 && state.profiles_built &&
      state.stale_points < config_.staleness_points) {
    return;  // within the staleness bound — keep serving the cached forms
  }

  if (has_stay_params_) {
    if (!state.stays_init) {
      state.stays =
          clustering::TrackedVisitStates(stay_params_, state.stay_origin);
      state.stays_init = true;
    }
    const std::uint64_t rebuilds_before = state.stays.tracker().rebuilds();
    state.stays.update(state.window, state.stale_appended,
                       state.stale_evicted);
    stay_updates_.fetch_add(1, kRelaxed);
    stay_rebuilds_.fetch_add(
        state.stays.tracker().rebuilds() - rebuilds_before, kRelaxed);
    const auto states = state.stays.states();
    if (pit_ != nullptr) {
      state.markov = pit_shares_stays_
                         ? profiles::CompiledMarkovProfile::from_states(states)
                         : pit_->compile_anonymous(state.window);
    }
    if (poi_ != nullptr) {
      state.poi = profiles::CompiledPoiProfile::from_states(states);
    }
  }
  state.profiles_built = true;
  state.stale_points = 0;
  state.stale_appended = 0;
  state.stale_evicted = 0;
  profile_refreshes_.fetch_add(1, kRelaxed);
}

bool DecisionKernel::at_risk(const UserKernelState& state) const {
  // Same predicate as the batch no-LPPM evaluator: does any trained attack
  // re-identify the raw window? Walked in suite order; the OR is
  // order-independent, the early exit only saves work.
  const mobility::UserId& owner = state.window.user();
  for (const auto* attack : engine_.attacks()) {
    attack_invocations_.fetch_add(1, kRelaxed);
    bool caught = false;
    if (attack == ap_) {
      caught = ap_->reidentifies_compiled(state.heatmap, owner);
    } else if (attack == pit_) {
      caught = pit_->reidentifies_compiled(state.markov, owner);
    } else if (attack == poi_) {
      caught = poi_->reidentifies_compiled(state.poi, owner);
    } else {
      caught = attack->reidentifies_target(state.window, owner);
    }
    if (caught) return true;
  }
  return false;
}

void DecisionKernel::select_mechanism(UserKernelState& state,
                                      bool force_search) const {
  ProtectionResult cost;
  if (!force_search && !state.winner.empty()) {
    // Cheap path: does the mechanism selected earlier still defeat every
    // attack on the grown window?
    ++state.rechecks;
    rechecks_.fetch_add(1, kRelaxed);
    if (engine_.recheck(state.winner, state.window, &cost)) {
      lppm_applications_.fetch_add(cost.lppm_applications, kRelaxed);
      attack_invocations_.fetch_add(cost.attack_invocations, kRelaxed);
      return;
    }
  }
  const auto candidate = engine_.search(state.window, &cost);
  lppm_applications_.fetch_add(cost.lppm_applications, kRelaxed);
  attack_invocations_.fetch_add(cost.attack_invocations, kRelaxed);
  state.winner = candidate ? candidate->lppm : std::string{};
  state.searched_events = state.events;
  ++state.searches;
  searches_.fetch_add(1, kRelaxed);
}

void DecisionKernel::apply_verdict(UserKernelState& state, bool risk,
                                   std::size_t folded, bool canonical) const {
  const Decision decision = risk ? Decision::kProtect : Decision::kExpose;
  if (state.has_decision && decision != state.decision) {
    ++state.risk_transitions;
  }
  state.has_decision = true;
  state.decision = decision;

  if (risk) {
    if (canonical) {
      // Canonicalise: unless the last full search already saw exactly this
      // window (same folded-event count — window size is ambiguous under
      // a point cap), re-search so the reported winner is what
      // decide_trace's search would pick on the final window.
      if (state.searched_events != state.events) {
        select_mechanism(state, /*force_search=*/true);
      }
    } else {
      select_mechanism(state, /*force_search=*/state.winner.empty());
    }
    protected_events_.fetch_add(folded, kRelaxed);
  } else {
    state.winner.clear();
    state.searched_events = kNeverSearched;
    exposed_events_.fetch_add(folded, kRelaxed);
  }
}

void DecisionKernel::decide(UserKernelState& state, std::size_t folded) const {
  if (folded == 0) return;
  refresh_profiles(state, /*force=*/false);
  apply_verdict(state, at_risk(state), folded, /*canonical=*/false);
  decisions_.fetch_add(1, kRelaxed);
}

void DecisionKernel::decide_degraded(UserKernelState& state,
                                     std::size_t folded) const {
  if (folded == 0) return;
  if (!state.has_decision) {
    // Fail-closed: shedding never leaves a user undecided — a first-ever
    // verdict always takes the full path.
    decide(state, folded);
    return;
  }
  // Hold the last verdict. No profile refresh, no risk queries, no flip
  // accounting — the canonical finalize() repairs all of it because the
  // fold already advanced state.events past searched_events.
  if (state.decision == Decision::kProtect) {
    if (!state.winner.empty()) {
      // The one cheap check shedding keeps: does the held mechanism still
      // defeat every attack? A failing recheck defers the full search
      // (that is the point of shedding) instead of running it.
      ++state.rechecks;
      rechecks_.fetch_add(1, kRelaxed);
      ProtectionResult cost;
      (void)engine_.recheck(state.winner, state.window, &cost);
      lppm_applications_.fetch_add(cost.lppm_applications, kRelaxed);
      attack_invocations_.fetch_add(cost.attack_invocations, kRelaxed);
    }
    protected_events_.fetch_add(folded, kRelaxed);
  } else {
    exposed_events_.fetch_add(folded, kRelaxed);
  }
  ++state.degraded;
  shed_decisions_.fetch_add(1, kRelaxed);
  decisions_.fetch_add(1, kRelaxed);
}

void DecisionKernel::decide_held(UserKernelState& state,
                                 std::size_t folded) const {
  if (folded == 0) return;
  if (!state.has_decision) {
    decide(state, folded);
    return;
  }
  // Pure hold: no profile refresh, no risk queries, no selection. The
  // verdict's event accounting still happens so stats() stays an exact
  // partition of folded events; finalize() repairs the verdict itself.
  if (state.decision == Decision::kProtect) {
    protected_events_.fetch_add(folded, kRelaxed);
  } else {
    exposed_events_.fetch_add(folded, kRelaxed);
  }
  decisions_.fetch_add(1, kRelaxed);
}

void DecisionKernel::decide_recheck(UserKernelState& state,
                                    std::size_t folded) const {
  if (folded == 0) return;
  if (!state.has_decision) {
    decide(state, folded);
    return;
  }
  if (state.decision == Decision::kProtect) {
    if (!state.winner.empty()) {
      // Same cheap check decide_degraded keeps: a failing recheck defers
      // the full search to the next slack cadence rather than stalling
      // the worker inline.
      ++state.rechecks;
      rechecks_.fetch_add(1, kRelaxed);
      ProtectionResult cost;
      (void)engine_.recheck(state.winner, state.window, &cost);
      lppm_applications_.fetch_add(cost.lppm_applications, kRelaxed);
      attack_invocations_.fetch_add(cost.attack_invocations, kRelaxed);
    }
    protected_events_.fetch_add(folded, kRelaxed);
  } else {
    exposed_events_.fetch_add(folded, kRelaxed);
  }
  decisions_.fetch_add(1, kRelaxed);
}

void DecisionKernel::finalize(UserKernelState& state,
                              std::size_t folded) const {
  if (state.window.empty()) return;
  refresh_profiles(state, /*force=*/true);
  apply_verdict(state, at_risk(state), folded, /*canonical=*/true);
  if (folded > 0) decisions_.fetch_add(1, kRelaxed);
}

Verdict DecisionKernel::decide_trace(const mobility::Trace& trace) const {
  UserKernelState state;
  state.window.set_user(trace.user());
  const std::size_t folded = fold(state, trace.records());
  finalize(state, folded);
  return Verdict{state.decision, state.winner};
}

bool DecisionKernel::at_risk_trace(const mobility::Trace& trace) const {
  if (trace.empty()) return false;
  UserKernelState state;
  state.window.set_user(trace.user());
  fold(state, trace.records());
  refresh_profiles(state, /*force=*/true);
  return at_risk(state);
}

void DecisionKernel::restore_window_tracking(UserKernelState& state) const {
  if (!state.window.empty() && state.window.tracked_slice() == 0) {
    state.window.track_slices(engine_.config().preslice);
  }
}

KernelStats DecisionKernel::stats() const {
  KernelStats s;
  s.decisions = decisions_.load();
  s.exposed_events = exposed_events_.load();
  s.protected_events = protected_events_.load();
  s.searches = searches_.load();
  s.rechecks = rechecks_.load();
  s.shed_decisions = shed_decisions_.load();
  s.profile_refreshes = profile_refreshes_.load();
  s.stay_updates = stay_updates_.load();
  s.stay_rebuilds = stay_rebuilds_.load();
  s.heatmap_updates = heatmap_updates_.load();
  s.evicted_points = evicted_points_.load();
  s.lppm_applications = lppm_applications_.load();
  s.attack_invocations = attack_invocations_.load();
  for (const attacks::Attack* attack : engine_.attacks()) {
    const attacks::IndexStats index = attack->index_stats();
    s.index_prunes += index.pruned_candidates;
    s.exact_evals += index.exact_evaluations;
    s.index_rebuilds += index.rebuilds;
  }
  return s;
}

}  // namespace mood::decision
