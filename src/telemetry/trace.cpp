#include "telemetry/trace.h"

#include <cstdio>
#include <cstring>

#include "support/error.h"

namespace mood::telemetry {

namespace detail {

std::uint32_t thread_slot() noexcept {
  static std::atomic<std::uint32_t> next_slot{0};
  thread_local const std::uint32_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

TraceSession& TraceSession::instance() {
  static TraceSession session;
  return session;
}

void TraceSession::start(std::size_t capacity) {
  support::expects(capacity > 0, "trace capacity must be positive");
  support::expects(!enabled(), "trace session already started");
  ring_.assign(capacity, SpanRecord{});
  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  origin_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_release);
}

void TraceSession::stop() { enabled_.store(false, std::memory_order_release); }

std::uint64_t TraceSession::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

void TraceSession::record(const SpanRecord& span) noexcept {
  // Drop-newest once full: slots are claimed with one fetch_add, never
  // reused, so concurrent writers cannot collide on a slot and memory
  // stays bounded at the capacity chosen in start(). The trace keeps
  // the head of the run; dropped() reports what was shed.
  const std::uint64_t index = next_.fetch_add(1, std::memory_order_relaxed);
  if (index >= ring_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ring_[index] = span;
}

std::uint64_t TraceSession::span_count() const noexcept {
  const std::uint64_t claimed = next_.load(std::memory_order_relaxed);
  return claimed < ring_.size() ? claimed : ring_.size();
}

namespace {

void append_json_string(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

void TraceSession::dump_chrome_json(std::ostream& out) const {
  const std::uint64_t spans = span_count();
  out << "{\"traceEvents\":[";
  std::string line;
  for (std::uint64_t i = 0; i < spans; ++i) {
    const SpanRecord& span = ring_[static_cast<std::size_t>(i)];
    line.clear();
    if (i > 0) line += ",";
    line += "\n{\"name\":";
    append_json_string(line, span.name != nullptr ? span.name : "?");
    line += ",\"cat\":\"mood\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    // Perfetto rows group by tid: shard-tagged spans land on the shard
    // row, untagged spans on a per-OS-thread row offset by 1000.
    line += std::to_string(span.shard != SpanTags::kNoShard
                               ? span.shard
                               : 1000 + span.thread);
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), ",\"ts\":%.3f,\"dur\":%.3f",
                  double(span.start_ns) / 1e3, double(span.dur_ns) / 1e3);
    line += buffer;
    line += ",\"args\":{";
    bool first = true;
    const auto arg = [&](const char* key, std::string_view value,
                         bool quoted) {
      if (!first) line += ",";
      first = false;
      line += "\"";
      line += key;
      line += "\":";
      if (quoted) {
        append_json_string(line, value);
      } else {
        line += value;
      }
    };
    if (span.shard != SpanTags::kNoShard) {
      arg("shard", std::to_string(span.shard), false);
    }
    if (span.batch != SpanTags::kNoBatch) {
      arg("batch", std::to_string(span.batch), false);
    }
    if (span.user[0] != '\0') {
      arg("user", std::string_view(span.user,
                                   ::strnlen(span.user, sizeof(span.user))),
          true);
    }
    line += "}}";
    out << line;
  }
  out << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"spans\":\""
      << spans << "\",\"dropped\":\"" << dropped() << "\"}}\n";
}

ScopedSpan::ScopedSpan(const char* name, SpanTags tags) noexcept {
  TraceSession& session = TraceSession::instance();
  if (!session.enabled()) return;
  active_ = true;
  record_.name = name;
  record_.shard = tags.shard;
  record_.batch = tags.batch;
  record_.thread = detail::thread_slot();
  if (!tags.user.empty()) {
    const std::size_t n =
        tags.user.size() < sizeof(record_.user) - 1 ? tags.user.size()
                                                    : sizeof(record_.user) - 1;
    std::memcpy(record_.user, tags.user.data(), n);
    record_.user[n] = '\0';
  }
  record_.start_ns = session.now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  TraceSession& session = TraceSession::instance();
  // A span that started inside the session still records if stop()
  // raced it; the ring is never deallocated while stopped, only on the
  // next start(), so this is safe.
  const std::uint64_t end = session.now_ns();
  record_.dur_ns = end > record_.start_ns ? end - record_.start_ns : 0;
  session.record(record_);
}

}  // namespace mood::telemetry
