#include "telemetry/metrics.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "support/error.h"

namespace mood::telemetry {

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (const char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Counter

Counter::Counter(std::size_t lanes) : lanes_(lanes > 0 ? lanes : 1) {}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const CounterLane& lane : lanes_) {
    total += lane.value.load(std::memory_order_relaxed);
  }
  return total;
}

// ---------------------------------------------------------------------------
// Histogram layout

std::size_t Histogram::bucket_index(double seconds) noexcept {
  // Zero, negatives and NaN all land in the underflow bucket: latency
  // sites never produce them on purpose, and the underflow bucket keeps
  // them visible without poisoning the distribution.
  if (!(seconds > 0.0)) return 0;
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(seconds));
  std::memcpy(&bits, &seconds, sizeof(bits));
  const int exponent = int((bits >> 52) & 0x7ff) - 1023;
  if (exponent < kMinExp) return 0;  // subnormals included (exponent -1023)
  if (exponent >= kMaxExp) return kBucketCount - 1;  // +inf included
  const auto sub = std::size_t((bits >> 48) & 0xf);  // top 4 mantissa bits
  return 1 + std::size_t(exponent - kMinExp) * kSubdivisions + sub;
}

double Histogram::bucket_upper_bound(std::size_t index) noexcept {
  if (index == 0) return std::ldexp(1.0, kMinExp);
  if (index >= kBucketCount - 1) {
    return std::numeric_limits<double>::infinity();
  }
  const std::size_t slot = index - 1;
  const int exponent = kMinExp + int(slot / kSubdivisions);
  const auto sub = double(slot % kSubdivisions);
  return std::ldexp(1.0 + (sub + 1.0) / kSubdivisions, exponent);
}

double Histogram::bucket_lower_bound(std::size_t index) noexcept {
  if (index == 0) return 0.0;
  if (index >= kBucketCount - 1) return std::ldexp(1.0, kMaxExp);
  const std::size_t slot = index - 1;
  const int exponent = kMinExp + int(slot / kSubdivisions);
  const auto sub = double(slot % kSubdivisions);
  return std::ldexp(1.0 + sub / kSubdivisions, exponent);
}

double Histogram::bucket_midpoint(std::size_t index) noexcept {
  if (index >= kBucketCount - 1) return bucket_lower_bound(index);
  return 0.5 * (bucket_lower_bound(index) + bucket_upper_bound(index));
}

// ---------------------------------------------------------------------------
// Histogram recording

Histogram::Histogram(std::size_t lanes) : lanes_(lanes > 0 ? lanes : 1) {}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot merged;
  std::array<std::uint64_t, kBucketCount> totals{};
  for (const Lane& lane : lanes_) {
    for (std::size_t b = 0; b < kBucketCount; ++b) {
      totals[b] += lane.counts[b].load(std::memory_order_relaxed);
    }
    merged.count += lane.count.load(std::memory_order_relaxed);
    merged.sum += lane.sum.load(std::memory_order_relaxed);
  }
  for (std::size_t b = 0; b < kBucketCount; ++b) {
    if (totals[b] > 0) {
      merged.buckets.push_back({std::uint32_t(b), totals[b]});
    }
  }
  return merged;
}

HistogramSnapshot Histogram::lane_snapshot(std::size_t lane) const {
  support::expects(lane < lanes_.size(), "histogram lane out of range");
  const Lane& l = lanes_[lane];
  HistogramSnapshot view;
  view.count = l.count.load(std::memory_order_relaxed);
  view.sum = l.sum.load(std::memory_order_relaxed);
  for (std::size_t b = 0; b < kBucketCount; ++b) {
    const std::uint64_t n = l.counts[b].load(std::memory_order_relaxed);
    if (n > 0) view.buckets.push_back({std::uint32_t(b), n});
  }
  return view;
}

double HistogramSnapshot::percentile(double q) const noexcept {
  if (count == 0 || buckets.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(q * count), reported at the bucket midpoint.
  const auto rank =
      std::max<std::uint64_t>(1, std::uint64_t(std::ceil(q * double(count))));
  std::uint64_t cumulative = 0;
  for (const Bucket& bucket : buckets) {
    cumulative += bucket.count;
    if (cumulative >= rank) return Histogram::bucket_midpoint(bucket.index);
  }
  return Histogram::bucket_midpoint(buckets.back().index);
}

double HistogramSnapshot::max() const noexcept {
  if (buckets.empty()) return 0.0;
  const std::uint32_t top = buckets.back().index;
  if (top >= Histogram::kBucketCount - 1) {
    return Histogram::bucket_lower_bound(top);  // overflow: lower bound
  }
  return Histogram::bucket_upper_bound(top);
}

// ---------------------------------------------------------------------------
// Registry

MetricsRegistry::MetricsRegistry(std::size_t lanes)
    : lanes_(lanes > 0 ? lanes : 1) {}

Counter& MetricsRegistry::counter(std::string_view name) {
  support::expects(valid_metric_name(name),
                   "metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*");
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[std::string(name)];
  support::expects(!entry.gauge && !entry.histogram,
                   "metric already registered with a different kind");
  if (!entry.counter) entry.counter = std::make_unique<Counter>(lanes_);
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  support::expects(valid_metric_name(name),
                   "metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*");
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[std::string(name)];
  support::expects(!entry.counter && !entry.histogram,
                   "metric already registered with a different kind");
  if (!entry.gauge) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  support::expects(valid_metric_name(name),
                   "metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*");
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[std::string(name)];
  support::expects(!entry.counter && !entry.gauge,
                   "metric already registered with a different kind");
  if (!entry.histogram) entry.histogram = std::make_unique<Histogram>(lanes_);
  return *entry.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, entry] : entries_) {
    if (entry.counter) {
      out.counters.emplace_back(name, entry.counter->value());
    } else if (entry.gauge) {
      out.gauges.emplace_back(name, entry.gauge->value());
    } else if (entry.histogram) {
      MetricsSnapshot::HistogramEntry h;
      h.name = name;
      h.merged = entry.histogram->snapshot();
      h.lanes.reserve(entry.histogram->lane_count());
      for (std::size_t lane = 0; lane < entry.histogram->lane_count();
           ++lane) {
        h.lanes.push_back(entry.histogram->lane_snapshot(lane));
      }
      out.histograms.push_back(std::move(h));
    }
  }
  return out;
}

}  // namespace mood::telemetry
