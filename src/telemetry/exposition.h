#pragma once

/// \file exposition.h
/// Prometheus-style text exposition of a MetricsSnapshot, plus the
/// crash-consistent file rewrite used by `mood replay --metrics-out`.
///
/// Format (text exposition format 0.0.4 subset):
///   # TYPE <name> counter|gauge|histogram
///   <name> <value>
///   <name>_bucket{le="<bound>"} <cumulative>        (merged histogram)
///   <name>_bucket{shard="i",le="<bound>"} <cum>     (per-shard lanes)
///   <name>_sum / <name>_count                        (+ shard variants)
/// Bucket lines are sparse — emitted only where the cumulative count
/// changes — and always close with le="+Inf", so any Prometheus
/// scraper reconstructs the full cumulative distribution.

#include <string>

#include "telemetry/metrics.h"

namespace mood::telemetry {

/// Render the snapshot as Prometheus text exposition. Deterministic:
/// instruments sort by name, buckets ascend by bound.
std::string render_exposition(const MetricsSnapshot& snapshot);

/// Atomically replace `path` with `text` using the snapshot idiom:
/// write to `<path>.tmp`, fsync, rename over `path`, fsync the
/// directory. Readers always observe a complete exposition. Throws
/// IoError on failure (the caller decides whether that is fatal).
void write_exposition_file(const std::string& path, const std::string& text);

}  // namespace mood::telemetry
