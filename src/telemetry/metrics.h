#pragma once

/// \file metrics.h
/// The gateway's metrics registry: named counters, gauges and fixed
/// log-bucketed latency histograms with per-shard lock-free recording.
///
/// Design contract (see ARCHITECTURE.md "Telemetry"):
///  - The hot path (Counter::add, Histogram::record) is a handful of
///    relaxed atomic operations on a pre-allocated, cache-line padded
///    lane — a couple of nanoseconds, zero allocation, no locks.
///  - Each instrument owns one lane per shard; writers pick their lane
///    (typically the shard index) and never contend, readers merge the
///    lanes at snapshot time. Lane 0 is the conventional home for
///    engine-level (non-sharded) sites.
///  - Histograms share one fixed log-bucketed layout: 16 subdivisions
///    per power-of-two octave between 2^-24 s (~60 ns) and 2^7 s
///    (128 s), plus an underflow and an overflow bucket. The bucket
///    index is derived from the IEEE-754 bit pattern (exponent + top 4
///    mantissa bits), so recording never searches bound tables.
///  - Percentiles are derived from bucket midpoints; with 16 buckets
///    per octave the relative error is at most (1/16)/2 ~= 3.2%, well
///    inside the <=5% bound the stream report documents.
///
/// Registration (MetricsRegistry::counter/gauge/histogram) takes a
/// mutex and may allocate; it happens once at wiring time, never on the
/// hot path. Returned references stay valid for the registry lifetime.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <map>
#include <memory>
#include <mutex>

namespace mood::telemetry {

/// One cache line of counter state so per-shard lanes never false-share.
struct alignas(64) CounterLane {
  std::atomic<std::uint64_t> value{0};
};

/// Monotonic counter with one lock-free lane per shard.
class Counter {
 public:
  explicit Counter(std::size_t lanes);

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Hot path: one relaxed fetch_add on the caller's lane.
  void add(std::uint64_t n = 1, std::size_t lane = 0) noexcept {
    lanes_[lane < lanes_.size() ? lane : 0].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Merged value across all lanes (relaxed reads; exact once writers
  /// are quiescent, monotonically fresh while they are not).
  std::uint64_t value() const noexcept;

  std::size_t lane_count() const noexcept { return lanes_.size(); }

 private:
  std::vector<CounterLane> lanes_;
};

/// Last-write-wins instantaneous value (resident users, backlog, ...).
/// Gauges are set from bookkeeping code, not the per-event hot path, so
/// a single atomic slot suffices.
class Gauge {
 public:
  Gauge() = default;

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Read-side view of one histogram (one lane or the lane merge).
/// Buckets are sparse: only non-empty buckets appear, ascending by
/// index. `index` addresses the fixed global layout (see Histogram).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  /// Exact sum of recorded values (so mean() has no bucket error).
  double sum = 0.0;
  struct Bucket {
    std::uint32_t index = 0;
    std::uint64_t count = 0;
  };
  std::vector<Bucket> buckets;

  /// Nearest-rank percentile reported at the bucket's arithmetic
  /// midpoint; q in [0,1]. Returns 0 when empty. Relative error is
  /// bounded by the bucket resolution (<= ~3.2%).
  double percentile(double q) const noexcept;
  /// Upper bound of the highest non-empty bucket (a conservative max);
  /// for the overflow bucket this degrades to its lower bound, 2^7 s.
  double max() const noexcept;
  double mean() const noexcept { return count > 0 ? sum / double(count) : 0.0; }
  bool empty() const noexcept { return count == 0; }
};

/// Fixed log-bucketed latency histogram (seconds) with per-shard lanes.
class Histogram {
 public:
  /// Bucket layout constants: kSubdivisions buckets per power-of-two
  /// octave, octaves [kMinExp, kMaxExp). Bucket 0 is underflow
  /// (value < 2^kMinExp, including zero and negatives), the last
  /// bucket is overflow (value >= 2^kMaxExp).
  static constexpr int kSubdivisions = 16;
  static constexpr int kMinExp = -24;  // 2^-24 s ~= 59.6 ns
  static constexpr int kMaxExp = 7;    // 2^7 s = 128 s
  static constexpr std::size_t kBucketCount =
      std::size_t(kMaxExp - kMinExp) * kSubdivisions + 2;

  /// Bucket for a value: bit-extracted from the IEEE-754 double
  /// (biased exponent + top 4 mantissa bits), no table search. Regular
  /// bucket b covers [lower, upper) with bounds (1 + j/16) * 2^e.
  static std::size_t bucket_index(double seconds) noexcept;
  /// Exclusive upper bound of a bucket; +infinity for the overflow
  /// bucket, 2^kMinExp for the underflow bucket.
  static double bucket_upper_bound(std::size_t index) noexcept;
  /// Inclusive lower bound (0 for the underflow bucket).
  static double bucket_lower_bound(std::size_t index) noexcept;
  /// The value percentiles report for a bucket: the arithmetic
  /// midpoint of its bounds (lower bound for the overflow bucket).
  static double bucket_midpoint(std::size_t index) noexcept;

  explicit Histogram(std::size_t lanes);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Hot path: two relaxed fetch_adds (bucket + count) and one atomic
  /// double accumulate on the caller's lane.
  void record(double seconds, std::size_t lane = 0) noexcept {
    Lane& l = lanes_[lane < lanes_.size() ? lane : 0];
    l.counts[bucket_index(seconds)].fetch_add(1, std::memory_order_relaxed);
    l.count.fetch_add(1, std::memory_order_relaxed);
    l.sum.fetch_add(seconds, std::memory_order_relaxed);
  }

  std::size_t lane_count() const noexcept { return lanes_.size(); }

  /// Merge of all lanes.
  HistogramSnapshot snapshot() const;
  /// One lane only (per-shard view).
  HistogramSnapshot lane_snapshot(std::size_t lane) const;

 private:
  struct alignas(64) Lane {
    std::array<std::atomic<std::uint64_t>, kBucketCount> counts{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  std::vector<Lane> lanes_;
};

/// Everything a registry knows at one instant, for exposition and
/// report serialization. Entries are sorted by name.
struct MetricsSnapshot {
  struct HistogramEntry {
    std::string name;
    HistogramSnapshot merged;
    /// Per-lane views, lane order (empty lanes included so lane index
    /// == shard index survives into the exposition).
    std::vector<HistogramSnapshot> lanes;
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramEntry> histograms;
};

/// Named instrument registry. One per StreamEngine; `lanes` is the
/// shard count every instrument is created with.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::size_t lanes = 1);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Create-or-get by name. Names must match the Prometheus grammar
  /// [a-zA-Z_:][a-zA-Z0-9_:]* ; re-registering a name as a different
  /// kind throws PreconditionError.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  std::size_t lane_count() const noexcept { return lanes_; }

  /// Stable, name-sorted view of every instrument.
  MetricsSnapshot snapshot() const;

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  std::size_t lanes_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace mood::telemetry
