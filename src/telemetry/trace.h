#pragma once

/// \file trace.h
/// Span-style tracing for the streaming pipeline: a bounded ring of
/// fixed-size span records dumped as Chrome `trace_event` JSON
/// (load the file in Perfetto / chrome://tracing).
///
/// Usage:
///   MOOD_TRACE("stream.drain", {.shard = s, .batch = n});
///   MOOD_TRACE("stream.decide", {.shard = s, .user = id, .batch = n});
/// The span covers the enclosing scope (RAII). Span names must be
/// string literals (or otherwise outlive the session) — records store
/// the pointer, never a copy.
///
/// Cost contract:
///  - Tracing disabled at runtime (the default): one relaxed atomic
///    load per span, no clock reads, no allocation.
///  - Tracing enabled: two steady_clock reads plus one relaxed
///    fetch_add claiming a preallocated slot. Memory is bounded by the
///    capacity passed to TraceSession::start(); once full, new spans
///    are dropped and counted (the trace keeps the run's head, the
///    dump records how many spans were shed).
///  - Compiled out (-DMOOD_DISABLE_TRACING): MOOD_TRACE expands to
///    nothing; the tag expressions are not evaluated.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace mood::telemetry {

/// Optional tags attached to a span; defaulted fields are omitted from
/// the dumped JSON.
struct SpanTags {
  static constexpr std::uint32_t kNoShard = 0xffffffffu;
  static constexpr std::uint64_t kNoBatch = ~std::uint64_t{0};
  std::uint32_t shard = kNoShard;
  std::string_view user{};
  std::uint64_t batch = kNoBatch;
};

/// One completed span in the ring. Fixed size: the user tag is a
/// truncated copy so records never own heap memory.
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t shard = SpanTags::kNoShard;
  std::uint32_t thread = 0;
  std::uint64_t batch = SpanTags::kNoBatch;
  char user[24] = {};
};

/// Process-wide trace collector. start()/stop() bracket a recording
/// session; spans emitted while stopped cost one atomic load.
class TraceSession {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  static TraceSession& instance();

  /// Begin recording into a fresh ring of `capacity` spans. Must not
  /// be called while spans are in flight (wire it before the replay
  /// loop starts).
  void start(std::size_t capacity = kDefaultCapacity);
  /// Stop recording; the collected spans stay available for dump().
  void stop();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Claim a slot and store the record; drops (and counts) once the
  /// ring is full. Called by ScopedSpan, not user code.
  void record(const SpanRecord& span) noexcept;

  std::uint64_t span_count() const noexcept;
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since the session started (span timestamps are
  /// relative to this origin).
  std::uint64_t now_ns() const noexcept;

  /// Dump the session as Chrome trace_event JSON ("X" complete events,
  /// microsecond timestamps; tid = shard when tagged, else a stable
  /// per-OS-thread id offset by 1000).
  void dump_chrome_json(std::ostream& out) const;

 private:
  TraceSession() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_{0};
  std::vector<SpanRecord> ring_;
  std::atomic<std::uint64_t> dropped_{0};
  std::chrono::steady_clock::time_point origin_{};
};

/// RAII span: measures construction→destruction and records it into
/// the session ring. Use through MOOD_TRACE, not directly.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, SpanTags tags = {}) noexcept;
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanRecord record_{};
  bool active_ = false;
};

namespace detail {
/// Stable small id for the calling OS thread (for the tid field of
/// untagged spans).
std::uint32_t thread_slot() noexcept;
}  // namespace detail

}  // namespace mood::telemetry

#define MOOD_TRACE_CONCAT_INNER(a, b) a##b
#define MOOD_TRACE_CONCAT(a, b) MOOD_TRACE_CONCAT_INNER(a, b)

#ifdef MOOD_DISABLE_TRACING
/// Compiled out: no object, tag expressions never evaluated.
#define MOOD_TRACE(...) ((void)0)
#else
#define MOOD_TRACE(...)                                      \
  const ::mood::telemetry::ScopedSpan MOOD_TRACE_CONCAT(     \
      mood_trace_span_, __LINE__) {                          \
    __VA_ARGS__                                              \
  }
#endif
