#include "telemetry/exposition.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "support/error.h"

namespace mood::telemetry {

namespace {

/// Shortest round-trip-ish decimal for a bound/value; %.17g would be
/// exact but unreadable, %.9g keeps bucket bounds (sums of powers of
/// two) exact for every bound in the fixed layout.
std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  return buffer;
}

void append_histogram_series(std::string& out, const std::string& name,
                             const HistogramSnapshot& h,
                             const std::string& label_prefix) {
  // Sparse cumulative buckets: one line per bound where the cumulative
  // count changes, closed by the mandatory +Inf bucket.
  std::uint64_t cumulative = 0;
  for (const auto& bucket : h.buckets) {
    cumulative += bucket.count;
    const double bound = Histogram::bucket_upper_bound(bucket.index);
    if (bucket.index >= Histogram::kBucketCount - 1) continue;  // +Inf below
    out += name + "_bucket{" + label_prefix + "le=\"" + format_double(bound) +
           "\"} " + std::to_string(cumulative) + "\n";
  }
  out += name + "_bucket{" + label_prefix + "le=\"+Inf\"} " +
         std::to_string(h.count) + "\n";
  if (label_prefix.empty()) {
    out += name + "_sum " + format_double(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
  } else {
    // label_prefix ends with a comma for the le= label; strip it for
    // the sum/count series.
    const std::string labels =
        "{" + label_prefix.substr(0, label_prefix.size() - 1) + "}";
    out += name + "_sum" + labels + " " + format_double(h.sum) + "\n";
    out += name + "_count" + labels + " " + std::to_string(h.count) + "\n";
  }
}

[[noreturn]] void throw_errno(const char* op, const std::string& path) {
  throw support::IoError(std::string(op) + " '" + path +
                         "': " + std::strerror(errno));
}

struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
  void close_now() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
};

}  // namespace

std::string render_exposition(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + format_double(value) + "\n";
  }
  for (const auto& entry : snapshot.histograms) {
    out += "# TYPE " + entry.name + " histogram\n";
    append_histogram_series(out, entry.name, entry.merged, "");
    if (entry.lanes.size() > 1) {
      for (std::size_t lane = 0; lane < entry.lanes.size(); ++lane) {
        append_histogram_series(out, entry.name, entry.lanes[lane],
                                "shard=\"" + std::to_string(lane) + "\",");
      }
    }
  }
  return out;
}

void write_exposition_file(const std::string& path, const std::string& text) {
  // Same crash-consistency protocol as mood-snapshot/1 writes: readers
  // (a scraper, `mood metrics`) either see the previous exposition or
  // the new one, never a torn file.
  const std::string tmp_path = path + ".tmp";
  Fd fd{::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
               0644)};
  if (fd.fd < 0) throw_errno("open", tmp_path);
  const char* data = text.data();
  std::size_t remaining = text.size();
  while (remaining > 0) {
    const ::ssize_t wrote = ::write(fd.fd, data, remaining);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw_errno("write", tmp_path);
    }
    data += wrote;
    remaining -= static_cast<std::size_t>(wrote);
  }
  if (::fsync(fd.fd) != 0) throw_errno("fsync", tmp_path);
  fd.close_now();
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    throw_errno("rename", path);
  }
  std::string dir = path;
  if (const auto slash = dir.find_last_of('/'); slash != std::string::npos) {
    dir.resize(slash);
  } else {
    dir = ".";
  }
  Fd dirfd{::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC)};
  if (dirfd.fd >= 0) ::fsync(dirfd.fd);  // best-effort directory durability
}

}  // namespace mood::telemetry
