#pragma once

/// \file snapshot.h
/// mood-snapshot/1 — the gateway's versioned checkpoint format, and the
/// crash-consistent file protocol around it.
///
/// A deployed gateway (the paper's pitch) must survive restarts without
/// silently changing its published decisions, so restore *correctness* is
/// the bar: a run killed at any checkpoint boundary and restored must
/// produce the byte-identical mood-stream/1 decision set as an
/// uninterrupted run. The snapshot therefore serializes the complete
/// per-user kernel state — not just the windows: under a staleness bound
/// the cached PIT/POI profiles reflect the window *at the last refresh*,
/// including records since evicted, so they cannot be rebuilt from the
/// current window and are captured directly (tracker internals via
/// clustering::*Snapshot, compiled flat forms verbatim).
///
/// ## File layout (little-endian throughout)
///
///   offset 0   magic   "MOODSNAP"            (8 bytes)
///          8   u32     version (= 1)
///         12   u32     section count (= 3)
///         16   sections, each:
///                u32   section id            (1 CONFIG, 2 STATS, 3 USERS)
///                u64   payload length
///                      payload bytes
///                u32   CRC-32 (IEEE 802.3) of the payload
///
/// Integers are fixed-width little-endian; doubles are their IEEE-754
/// bit pattern as u64; strings are u64 length + raw bytes; bools one
/// byte. Section payloads:
///
///   CONFIG  identity fingerprint: SnapshotContext (seed, dataset name,
///           total_events, batch_events) + the StreamConfig window knobs
///           (shards, window_seconds, max_points, max_users_per_shard,
///           staleness_points) + the resilience knobs (on_bad_record as
///           u8, max_pending_per_shard, shed watermarks, drain_budget).
///           Restore refuses a mismatch.
///   STATS   stream_position, batches, the full cumulative StreamStats
///           (including the resilience counters), the per-shard LRU
///           clocks, and the per-shard shed latches (hysteresis state).
///   USERS   user count, then one UserSnapshot per resident user, sorted
///           by user id: window records, pending queue, heatmap raw
///           counts, stay-tracker snapshot, compiled PIT/POI states,
///           staleness deltas, verdict, per-user counters, LRU stamp,
///           quarantine state (flag, reason, dead letters) and the
///           admission timestamp watermark.
///
/// ## Crash-consistency protocol
///
/// write_snapshot_file(): encode to `dir/.snapshot.tmp`, fsync the file,
/// rename(2) it to `snapshot-<seq>.moodsnap` (seq = highest existing +
/// 1), fsync the directory, then prune to the newest two snapshots. A
/// crash at any point leaves either the previous snapshots untouched
/// (tmp never becomes visible without a complete fsync'd payload) or the
/// new snapshot fully committed. Failure paths never unlink the partial
/// tmp file — an injected write error leaves the directory byte-identical
/// to a process killed at the same point, which is what the fault-
/// injection tests rely on (see support/failpoint.h; the named points
/// here are snapshot.write.{open,payload,fsync,rename,commit} and
/// snapshot.read.{open,file}).
///
/// read_latest_snapshot(): try candidates newest-first; a candidate that
/// fails structural validation (bad magic, unknown version, truncated or
/// CRC-mismatching section) is renamed aside to `<name>.quarantined` for
/// forensics and the previous good snapshot used — never a partial
/// restore, because decode parses and validates the entire file into a
/// SnapshotData value before the engine applies anything. SnapshotError
/// derives support::UsageError so the CLI maps "this is not a usable
/// snapshot" to exit 2, not a crash.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "clustering/incremental_stays.h"
#include "geo/cell_grid.h"
#include "geo/geo.h"
#include "mobility/record.h"
#include "mobility/trace.h"
#include "profiles/markov_profile.h"
#include "stream/engine.h"
#include "support/error.h"

namespace mood::stream {

/// A snapshot file failed structural validation: bad magic, unknown
/// version, truncated payload, CRC mismatch, or a fingerprint that does
/// not match the running gateway. UsageError-style (CLI exit 2): the
/// invocation named an unusable snapshot; nothing crashed.
class SnapshotError : public support::UsageError {
 public:
  explicit SnapshotError(const std::string& what)
      : support::UsageError(what) {}
};

inline constexpr char kSnapshotMagic[8] = {'M', 'O', 'O', 'D',
                                           'S', 'N', 'A', 'P'};
inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr const char* kSnapshotSuffix = ".moodsnap";

/// Complete captured state of one resident user — a plain-value mirror of
/// UserState + decision::UserKernelState.
struct UserSnapshot {
  mobility::UserId user;
  std::vector<mobility::Record> window;   ///< sliding window, in order
  std::vector<mobility::Record> pending;  ///< ingested, not yet folded

  bool heatmap_built = false;
  double heatmap_total = 0.0;
  std::vector<std::pair<geo::CellIndex, double>> heatmap_counts;

  bool stays_init = false;
  bool stay_origin_set = false;
  geo::GeoPoint stay_origin;
  clustering::TrackedVisitStatesSnapshot stays;  ///< valid when stays_init

  bool profiles_built = false;
  std::vector<profiles::CompiledMarkovState> markov_states;
  std::vector<geo::TrigPoint> poi_centers;
  std::uint64_t stale_appended = 0;
  std::uint64_t stale_evicted = 0;
  std::uint64_t stale_points = 0;

  bool has_decision = false;
  std::uint8_t decision = 0;  ///< decision::Decision as its enum value
  std::string winner;
  std::uint64_t searched_events = static_cast<std::uint64_t>(-1);

  std::uint64_t events = 0;
  std::uint64_t risk_transitions = 0;
  std::uint64_t searches = 0;
  std::uint64_t rechecks = 0;
  std::uint64_t degraded = 0;    ///< held-verdict (shed) decisions
  std::uint64_t last_touch = 0;  ///< shard LRU stamp

  // ---- Resilience (see resilience.h) ---------------------------------
  bool quarantined = false;
  std::string quarantine_reason;
  std::uint64_t dead_letters = 0;
  bool has_last_time = false;           ///< admission watermark validity
  mobility::Timestamp last_time = 0;    ///< newest admitted timestamp
};

/// One decoded (or to-be-encoded) mood-snapshot/1 document.
struct SnapshotData {
  SnapshotContext context;
  StreamConfig config;  ///< window-knob subset is fingerprinted
  std::uint64_t stream_position = 0;  ///< events ingested when captured
  std::uint64_t batches = 0;          ///< drains run when captured
  StreamStats stats;                  ///< cumulative counters when captured
  std::vector<std::uint64_t> shard_clocks;  ///< per-shard LRU clocks
  std::vector<std::uint8_t> shard_shedding; ///< per-shard shed latches
  std::vector<UserSnapshot> users;          ///< sorted by user id
};

/// CRC-32 (IEEE 802.3, reflected, init/final 0xFFFFFFFF) — the per-section
/// guard. Exposed for the format tests.
[[nodiscard]] std::uint32_t snapshot_crc32(std::string_view bytes);

/// Serializes `data` to the documented byte layout.
[[nodiscard]] std::string encode_snapshot(const SnapshotData& data);

/// Parses and fully validates one snapshot document. Throws SnapshotError
/// on any structural defect; never returns a partially decoded value.
[[nodiscard]] SnapshotData decode_snapshot(std::string_view bytes);

/// Commits `bytes` to `dir` through the crash-consistent protocol (tmp +
/// fsync + rename + directory fsync, then prune to the newest two).
/// Creates `dir` if missing. Returns the committed file path. Throws
/// support::IoError on failure, leaving any partial tmp file in place.
std::string write_snapshot_file(const std::string& dir,
                                const std::string& bytes);

/// Snapshot files in `dir`, newest (highest sequence) first. Throws
/// support::IoError when `dir` cannot be read.
[[nodiscard]] std::vector<std::string> list_snapshot_files(
    const std::string& dir);

/// Reads the newest snapshot that decodes cleanly. A candidate that fails
/// structural validation (SnapshotError) is renamed aside to
/// `<name>.quarantined` for forensics — never deleted, never silently
/// skipped — and counted into `*quarantined_files` when the pointer is
/// given; a candidate that cannot be *read* (transient I/O failure) is
/// skipped without the rename. Each casualty is logged at warn level.
/// Throws SnapshotError when the directory holds no usable snapshot.
[[nodiscard]] SnapshotData read_latest_snapshot(
    const std::string& dir, std::size_t* quarantined_files = nullptr);

}  // namespace mood::stream
