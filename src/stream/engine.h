#pragma once

/// \file engine.h
/// StreamEngine — the online MooD gateway's ingest and scheduling layer.
///
/// The batch harness answers "is this user protected?" once per dataset;
/// the gateway answers it continuously. Since PR 5 the per-user decision
/// procedure itself — window folding, incremental compiled profiles for
/// all three attacks, targeted branch-and-bound risk queries, the
/// keep/recheck/search mechanism-selection policy — lives in
/// decision::DecisionKernel, shared verbatim with the batch evaluators
/// (ExperimentHarness::evaluate_gateway). What remains here is the online
/// plumbing around it:
///
///   * ingest(): events enqueue O(1) into the sharded UserStateStore
///     (any thread);
///   * drain(): one task per shard on the shared ThreadPool; every user
///     that received points since the last drain is folded
///     (kernel.fold — window deltas + incremental profile maintenance)
///     and decided (kernel.decide — risk + mechanism selection);
///   * finish(): folds leftovers and kernel.finalize()s every resident
///     user, so the final per-user decisions and winners are exactly what
///     the kernel's batch pass computes on the final window — a
///     structural property now, since both modes execute the same kernel
///     code, and still CI-verified end to end by `mood replay`.
///
/// Determinism invariants (CI-enforced):
///   * A user's decision sequence is a pure function of that user's event
///     sequence and the micro-batch boundaries — never of the shard
///     count, --jobs, or wall-clock timing. The kernel's incremental
///     profile state is likewise a pure function of the window content
///     (chunk-independent), so batch size cannot leak into decisions.
///   * finish() canonicalises winners whatever staleness or recheck
///     short-cuts were taken mid-stream.
///
/// PR 8 adds the resilience layer (see resilience.h): a validating
/// admission path in ingest() with per-user quarantine, fault isolation
/// around each user's fold/decide, and count-triggered overload control
/// (backpressure signal, shed hysteresis, drain budget). All off by
/// default; every trigger is event-count based, so the invariants above
/// extend to chaos runs — a poisoned user never perturbs a healthy one.
///
/// PR 10 adds the continuous execution mode (EngineMode::kLoop): one
/// long-lived worker thread per shard, fed by a lock-free SPSC ring
/// (spsc_queue.h) the producer pushes into from ingest(). Each worker
/// runs dequeue → fold → admission-time cheap path: a full risk+search
/// decision only on the per-user slack cadence (loop_slack), an inline
/// held-mechanism recheck on the recheck cadence (loop_recheck), and a
/// pure held verdict otherwise — the shed/degrade idiom, but as the
/// steady state, with the canonical finish() unchanged. The decision
/// tier is a pure function of the user's own folded-event ordinal, so
/// counters and decisions stay deterministic (independent of timing,
/// shard count, and checkpoint cut position), and finish() makes the
/// final decisions bit-identical to batch mode — batch is retained as
/// the determinism oracle (`--engine=loop|batch`).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "decision/kernel.h"
#include "stream/event.h"
#include "stream/resilience.h"
#include "stream/user_state.h"
#include "telemetry/metrics.h"

namespace mood::stream {

/// Observability knobs (see src/telemetry). Telemetry is timing-only: no
/// knob here may influence a decision, so none of them participate in the
/// snapshot config fingerprint.
struct TelemetryConfig {
  /// Per-stage latency histograms (ingest admission, per-user decide,
  /// shard drain, checkpoint write). Costs two steady_clock reads per
  /// instrumented section; off leaves the stage histograms empty. The
  /// replay-latency histogram is independent of this knob — it replaces
  /// the old sort-all-samples percentile pass outright.
  bool stage_timers = true;
};

/// Execution mode of the decision pipeline.
enum class EngineMode : std::uint8_t {
  /// ingest()/drain() micro-batches — the determinism oracle, and the
  /// code-level default so direct engine users keep the PR ≤ 9 contract.
  kBatch = 0,
  /// Long-lived per-shard workers fed by SPSC ingest rings; decisions
  /// happen at admission time, drain() is unused. The CLI default.
  kLoop = 1,
};

[[nodiscard]] const char* to_string(EngineMode mode);
/// Parses "batch"/"loop"; throws support::Error on anything else.
[[nodiscard]] EngineMode parse_engine_mode(const std::string& name);

/// Gateway tuning knobs. The window/staleness subset configures the
/// embedded DecisionKernel; the rest is scheduling.
struct StreamConfig {
  std::size_t shards = 8;               ///< user-state shards (> 0)
  mobility::Timestamp window_seconds = 0;  ///< sliding window span; 0 = keep all
  std::size_t max_points = 0;           ///< per-user point cap; 0 = unbounded
  std::size_t max_users_per_shard = 0;  ///< LRU capacity; 0 = unbounded
  std::size_t staleness_points = 0;     ///< PIT/POI refresh bound; 0 = every fold
  bool parallel_drain = true;           ///< shard tasks on the shared pool
  /// Execution mode (see EngineMode). Decision-relevant mid-stream (the
  /// loop cadences below shape the decision sequence), so it participates
  /// in the snapshot config fingerprint.
  EngineMode engine = EngineMode::kBatch;
  /// Loop mode: full risk+search decision every `loop_slack`-th folded
  /// event of a user (plus always on their first). 0 = full decision
  /// every event (the batch-per-event oracle, slow).
  std::size_t loop_slack = 64;
  /// Loop mode: inline held-mechanism recheck every `loop_recheck`-th
  /// folded event of a user (between slack cadences). 0 = never.
  std::size_t loop_recheck = 16;
  /// Loop mode: start the shard workers lazily on the first ingest
  /// (default). Tests set false and call start_loop() explicitly to
  /// pre-fill the rings — e.g. to drive the shed latch deterministically.
  /// Timing-only, never serialized.
  bool loop_autostart = true;
  /// Fault-tolerance knobs (see resilience.h); the defaults are strict —
  /// everything off — so the batch-equivalence gates are untouched.
  ResilienceConfig resilience;
  /// Observability knobs; never serialized, never decision-relevant.
  TelemetryConfig telemetry;
};

/// Aggregate gateway counters (monotonic; snapshot via stats()). Mostly a
/// re-export of the kernel's counters plus the store/scheduler ones.
struct StreamStats {
  std::uint64_t events = 0;            ///< ingested
  std::uint64_t batches = 0;           ///< drain() calls
  std::uint64_t decisions = 0;         ///< per-user-per-batch verdicts
  std::uint64_t exposed_events = 0;    ///< events carried by expose verdicts
  std::uint64_t protected_events = 0;  ///< events carried by protect verdicts
  std::uint64_t searches = 0;          ///< full mechanism selections
  std::uint64_t rechecks = 0;          ///< cheap current-winner re-checks
  std::uint64_t profile_refreshes = 0; ///< PIT/POI compiled-form refreshes
  std::uint64_t stay_updates = 0;      ///< incremental stay-tracker syncs
  std::uint64_t stay_rebuilds = 0;     ///< full re-extractions among them
  std::uint64_t heatmap_updates = 0;   ///< incremental AP folds
  std::uint64_t evicted_points = 0;    ///< records expired out of windows
  std::uint64_t evicted_users = 0;     ///< LRU evictions (store)
  std::uint64_t lppm_applications = 0; ///< search/recheck cost counters
  std::uint64_t attack_invocations = 0;
  /// Population-index counters (via the kernel, from the trained
  /// attacks). Zero when queries run in scan/reference mode.
  std::uint64_t index_prunes = 0;    ///< candidates skipped via lower bounds
  std::uint64_t exact_evals = 0;     ///< candidates priced exactly
  std::uint64_t index_rebuilds = 0;  ///< full index (re)builds
  /// Checkpoint counters (see snapshot.h). Reported separately from the
  /// decision-cost block so restore bit-identity diffs stay clean.
  std::uint64_t checkpoints = 0;         ///< snapshots committed
  std::uint64_t checkpoint_bytes = 0;    ///< bytes committed
  std::uint64_t checkpoint_failures = 0; ///< writes aborted (I/O failure)
  /// Resilience counters (see resilience.h); all zero at the strict
  /// defaults. Reported in the mood-stream/1 `resilience` block.
  std::uint64_t bad_records = 0;         ///< malformed events at admission
  std::uint64_t dead_letters = 0;        ///< events dropped via quarantine
  std::uint64_t quarantined_users = 0;   ///< users ever quarantined
  std::uint64_t shed_decisions = 0;      ///< degraded held-verdict decisions
  std::uint64_t degraded_batches = 0;    ///< shard drains that shed work
  std::uint64_t backpressure_events = 0; ///< ingests over the shard bound
  /// Snapshot files renamed aside (.quarantined) during restore — this
  /// process's forensics, raw like the checkpoint counters.
  std::uint64_t quarantined_snapshots = 0;
};

/// Periodic checkpointing knobs. Disabled unless both are set. A
/// checkpoint is written at the end of any drain() whose cumulative
/// ingested-event position advanced `every_events` or more past the last
/// checkpoint — an event-count cadence, so checkpoint boundaries are a
/// deterministic function of the event stream and batch size, never of
/// wall-clock timing.
struct CheckpointPolicy {
  std::string dir;                  ///< snapshot directory; "" = disabled
  std::uint64_t every_events = 0;   ///< cadence in events; 0 = disabled
};

/// Identity fingerprint stored in every snapshot alongside the
/// StreamConfig. restore refuses a snapshot whose fingerprint (or config)
/// does not match the running gateway — resuming someone else's state
/// would silently change published decisions.
struct SnapshotContext {
  std::uint64_t seed = 0;          ///< generator + harness seed
  std::string dataset;             ///< dataset display name
  std::uint64_t total_events = 0;  ///< full replay stream length
  std::uint64_t batch_events = 0;  ///< micro-batch size (drain cadence)
};

struct SnapshotData;  // full definition in stream/snapshot.h

/// Final state of one user after finish().
struct UserDecision {
  mobility::UserId user;
  Decision decision = Decision::kExpose;
  std::string winner;                 ///< "" when exposed or nothing protects
  std::uint64_t events = 0;
  std::uint64_t risk_transitions = 0;
  std::uint64_t searches = 0;
  std::size_t window_points = 0;
  std::size_t window_slices = 0;      ///< preslice partitions (tracked, O(1))
  /// Resilience flags: a quarantined user's decision is the held last
  /// verdict (state frozen, reason recorded); `degraded` counts verdicts
  /// issued on the shed path (always repaired by the canonical finish).
  bool quarantined = false;
  std::string quarantine_reason;
  std::uint64_t dead_letters = 0;
  std::uint64_t degraded = 0;
};

/// What ingest() did with one event — the admission verdict callers can
/// react to (the replay driver counts; a real service would also slow its
/// reads on kAdmittedSlow).
enum class IngestStatus : std::uint8_t {
  kAdmitted,     ///< enqueued on the fast path
  kAdmittedSlow, ///< enqueued, but the shard backlog crossed the
                 ///< backpressure bound — an explicit slow-down signal
  kRejected,     ///< malformed, dropped (kSkip; kFail throws instead)
  kQuarantined,  ///< malformed, and it tripped quarantine on its user
  kDeadLettered, ///< user already quarantined; event dropped
};

class StreamEngine {
 public:
  /// Takes ownership of a configured MoodEngine (typically
  /// harness.make_engine()) and wraps it in the shared decision kernel;
  /// the engine's attacks must outlive this object.
  StreamEngine(decision::MoodEngine engine, StreamConfig config);

  /// Joins the loop workers (loop mode); worker faults pending at
  /// destruction are swallowed — call finish()/quiesce() to observe them.
  ~StreamEngine();
  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Admits one event (thread-safe, O(1)). The admission path classifies
  /// malformed events — non-finite or out-of-range coordinates, per-user
  /// timestamp regressions, oversized/empty ids — and handles them per
  /// config().resilience.on_bad_record: kFail throws BadRecordError (the
  /// strict default), kSkip drops the record, kQuarantine freezes the
  /// carrying user. Every presented event advances stream_position(),
  /// admitted or not, so checkpoint/resume indices stay aligned with the
  /// replay stream.
  ///
  /// Loop mode: the stateless checks (id shape, coordinate range) still
  /// classify here on the producer, but the stateful half of admission —
  /// monotonicity, quarantine — happens asynchronously on the shard
  /// worker, so ingest() returns kAdmitted (or kAdmittedSlow once the
  /// ring depth crosses max_pending_per_shard) for events a worker later
  /// rejects; their outcomes surface in stats() and decisions(). A worker
  /// fault (e.g. BadRecordError under the strict policy) is rethrown here
  /// on a subsequent ingest, or at quiesce()/finish().
  IngestStatus ingest(const StreamEvent& event);

  /// Decides every user with pending points; returns users decided.
  /// Batch mode only (loop workers decide at admission time).
  std::size_t drain();

  // ---- Loop mode (EngineMode::kLoop) ---------------------------------
  /// Starts the per-shard workers. Implicit on the first ingest when
  /// config().loop_autostart; explicit start lets tests pre-fill rings.
  /// No-op when already started or in batch mode.
  void start_loop();

  /// Blocks until every event pushed so far has been fully processed by
  /// its shard worker (the rings are empty and the last decision done),
  /// then returns with all worker-side state visible to the caller.
  /// Rethrows a captured worker fault. This is the checkpoint-cut
  /// protocol: capture_snapshot() in loop mode is only meaningful after a
  /// quiesce. No-op in batch mode or before the workers started.
  void quiesce();

  /// Producer-side cadence pump: when the checkpoint or metrics-export
  /// cadence has elapsed, quiesces the workers and runs it. Call once per
  /// ingested event (run_replay does); two integer compares when nothing
  /// is due, so checkpoint cuts stay an event-count-deterministic
  /// function of the stream. No-op in batch mode (drain() pumps there).
  void pump_cadences();

  /// Final flush: folds leftovers and runs the kernel's canonical
  /// finalize on every resident user (full search on the final window for
  /// every at-risk user not already searched there). Call once, after the
  /// last drain(); excluded from throughput accounting by the replay
  /// driver.
  void finish();

  /// Snapshot of every resident user's final state, sorted by user id.
  [[nodiscard]] std::vector<UserDecision> decisions() const;

  [[nodiscard]] StreamStats stats() const;
  [[nodiscard]] const StreamConfig& config() const { return config_; }
  [[nodiscard]] const decision::DecisionKernel& kernel() const {
    return kernel_;
  }
  [[nodiscard]] const decision::MoodEngine& engine() const {
    return kernel_.engine();
  }
  [[nodiscard]] std::size_t user_count() const { return store_.user_count(); }

  // ---- Checkpoint / restore ------------------------------------------
  /// Enables periodic crash-consistent snapshots (see snapshot.h for the
  /// mood-snapshot/1 format and the write protocol). `context` is the
  /// identity fingerprint embedded in every snapshot.
  void configure_checkpoints(CheckpointPolicy policy, SnapshotContext context);

  /// Serializes the complete gateway state — every resident user's
  /// window, incremental profiles, verdict and counters, plus shard/LRU
  /// metadata and the cumulative stats — as of now. Call between drains
  /// (drain() itself calls it on the checkpoint cadence).
  [[nodiscard]] SnapshotData capture_snapshot() const;

  /// Rehydrates a captured snapshot into this engine. Two-phase by
  /// construction: `data` was already fully decoded and CRC-validated, so
  /// no partial restore can occur here. Must run on a freshly constructed
  /// engine with the same StreamConfig (enforced); continuing the stream
  /// from data.stream_position then reproduces the uninterrupted run's
  /// decisions and counters bit-identically.
  void restore_snapshot(const SnapshotData& data);

  /// Writes one snapshot through the crash-consistent protocol to the
  /// configured directory, immediately. Returns bytes committed. Throws
  /// support::IoError on failure (drain()'s periodic path catches it and
  /// counts a checkpoint_failure instead — a gateway outlives a full
  /// disk).
  std::uint64_t checkpoint_now();

  /// Cumulative ingested-event position: events ingested this process
  /// plus the restored snapshot's position (the replay resume index).
  [[nodiscard]] std::uint64_t stream_position() const;

  /// Folds snapshot-restore forensics into stats(): `n` snapshot files
  /// were renamed aside (.quarantined) while locating the restore source.
  void note_quarantined_snapshots(std::uint64_t n);

  // ---- Telemetry (see src/telemetry and ARCHITECTURE.md) -------------
  /// The engine's metrics registry: every gateway counter site records
  /// here (one lane per shard), and external wiring may add instruments
  /// of its own. Per-process and timing-adjacent — registry contents are
  /// never serialized into snapshots and never feed back into decisions.
  [[nodiscard]] telemetry::MetricsRegistry& metrics() { return registry_; }

  /// Name-sorted snapshot of every instrument, with the gateway's
  /// instantaneous gauges (resident users, pending backlog, continued
  /// stats mirror) refreshed first. The input to the exposition writer
  /// and the mood-stream/1 latency block.
  [[nodiscard]] telemetry::MetricsSnapshot metrics_snapshot() const;

  /// Enables periodic Prometheus-style exposition rewrites to `path`
  /// (atomic tmp->fsync->rename, see telemetry/exposition.h) at the end
  /// of any drain() whose stream position advanced `every_events` or
  /// more past the last export — the same event-count cadence contract
  /// as checkpoints. 0 disables the periodic path; export_metrics_now()
  /// still works.
  void configure_metrics_export(std::string path, std::uint64_t every_events);

  /// Writes one exposition now; returns bytes written. Throws IoError on
  /// failure (the periodic path catches, counts and retries instead).
  std::uint64_t export_metrics_now() const;

  /// Owning shard of a user id (stable within a run) — the histogram
  /// lane replay latency recording keys on.
  [[nodiscard]] std::size_t shard_of(const mobility::UserId& user) const {
    return store_.shard_of(user);
  }

  /// Records one end-to-end decision latency (seconds) into the
  /// mood_replay_latency_seconds histogram on the user's shard lane.
  /// Called by run_replay once per event, after the deciding drain.
  void record_decision_latency(const mobility::UserId& user, double seconds) {
    replay_latency_->record(seconds, store_.shard_of(user));
  }

  /// Merged / per-shard views of the replay-latency histogram. Session-
  /// scoped like wall-clock throughput: a restored gateway cannot
  /// retroactively measure the crashed process's timings.
  [[nodiscard]] telemetry::HistogramSnapshot replay_latency() const {
    return replay_latency_->snapshot();
  }
  [[nodiscard]] std::vector<telemetry::HistogramSnapshot>
  replay_latency_shards() const;

 private:
  /// Folds state.pending through the kernel; returns points folded.
  /// Under the quarantine policy it first scans the batch for non-finite
  /// coordinates (in-memory poison that slipped past admission — in
  /// practice the `stream.drain.corrupt` fail point) and throws
  /// BadRecordError so the caller quarantines instead of corrupting the
  /// compiled profiles.
  std::size_t fold_pending(UserState& state);

  enum class DecideOutcome : std::uint8_t {
    kSkipped,      ///< user already quarantined — untouched
    kFull,         ///< full fold+decide (counts against a drain budget)
    kDegraded,     ///< held-verdict shed path
    kQuarantined,  ///< a fault escaped; the user was quarantined here
  };

  /// Fault-isolation wrapper shared by the batch and loop decide paths:
  /// runs `run` directly under strict policies, or quarantines the user
  /// (freeze + dead-letter `queued` points) when a fault escapes under
  /// kQuarantine. Defined in engine.cpp (instantiated there only).
  template <typename Run>
  DecideOutcome run_isolated(UserState& state, std::size_t queued, Run&& run);

  /// One user's fold+decide under the fault-isolation policy; shared by
  /// drain() and finish() (`canonical` selects finalize over decide).
  DecideOutcome decide_user(UserState& state, bool canonical, bool degrade);

  // ---- Loop-mode internals (engine == kLoop; see LoopState) ----------
  struct LoopItem;   // one queued ingest (engine.cpp)
  struct LoopState;  // per-shard rings, workers, counters (engine.cpp)

  /// ingest()'s loop branch: stateless classification on the producer,
  /// then push into the owning shard's ring (blocking, never dropping,
  /// when full). Returns kAdmittedSlow past the max_pending bound.
  IngestStatus loop_ingest(const StreamEvent& event);

  /// Allocates the per-shard rings without spawning workers (the
  /// autostart-off pre-fill path); start_loop() spawns on top.
  void ensure_loop_lanes();

  /// One worker's run loop: pop → loop_process → progress counter.
  /// Faults are captured into LoopState and rethrown on the producer.
  void loop_worker(std::size_t shard);

  /// Processes one dequeued item: shed-latch check on the ring depth,
  /// stateful admission + fold + tier decide under the shard lock,
  /// latency accounting. Throws on strict-policy faults.
  void loop_process(std::size_t shard, LoopItem& item);

  /// The admitted-event decision: fold, then pick the tier — full decide
  /// on the slack cadence (or first verdict), inline recheck on the
  /// recheck cadence, held verdict otherwise; decide_degraded while the
  /// shed latch is engaged. Runs under the shard lock on the worker.
  void loop_decide_user(UserState& state, std::size_t shard, bool shed);

  /// Joins the workers; rethrows the first captured fault unless
  /// `swallow` (destructor path).
  void stop_loop(bool swallow);

  /// Rethrows the first captured worker fault, if any (producer side).
  void check_loop_failure();

  /// drain()-tail hook: checkpoint when the cadence has elapsed.
  void maybe_checkpoint();

  /// drain()-tail hook: rewrite the metrics exposition when the export
  /// cadence has elapsed. Failures are counted, never fatal.
  void maybe_export_metrics();

  /// Refreshes the mirror gauges (resident users, backlog, continued
  /// stats) ahead of a snapshot/exposition.
  void refresh_gauges() const;

  /// This process's own counters, before restore continuation is applied.
  [[nodiscard]] StreamStats raw_stats() const;

  decision::DecisionKernel kernel_;
  StreamConfig config_;
  /// Declared before store_ (the store registers its eviction counter
  /// here) and mutable so const observers (stats(), metrics_snapshot())
  /// can refresh gauges and take instrument references.
  mutable telemetry::MetricsRegistry registry_;
  UserStateStore store_;

  // ---- Registry-backed counter sites (one instrument per former
  // atomic member; cached references so the hot path never touches the
  // registry map). All raw per-process values; stats() applies the
  // restore continuation on top.
  telemetry::Counter* events_ = nullptr;
  telemetry::Counter* batches_ = nullptr;
  telemetry::Counter* checkpoints_ = nullptr;
  telemetry::Counter* checkpoint_bytes_ = nullptr;
  telemetry::Counter* checkpoint_failures_ = nullptr;
  telemetry::Counter* bad_records_ = nullptr;
  telemetry::Counter* dead_letters_ = nullptr;
  telemetry::Counter* quarantined_users_ = nullptr;
  telemetry::Counter* degraded_batches_ = nullptr;
  telemetry::Counter* backpressure_events_ = nullptr;
  telemetry::Counter* quarantined_snapshots_ = nullptr;
  telemetry::Counter* metrics_export_failures_ = nullptr;
  // Stage histograms (lane = shard; empty when telemetry.stage_timers is
  // off) and the always-on replay-latency histogram.
  telemetry::Histogram* stage_ingest_ = nullptr;
  telemetry::Histogram* stage_decide_ = nullptr;
  telemetry::Histogram* stage_drain_ = nullptr;
  telemetry::Histogram* stage_checkpoint_ = nullptr;
  /// Loop mode: ring residence time (arrival → worker dequeue), lane =
  /// shard. Empty in batch mode or with the stage timers off.
  telemetry::Histogram* stage_dequeue_ = nullptr;
  telemetry::Histogram* replay_latency_ = nullptr;

  /// Loop-mode machinery (rings, worker threads, fault slot); null in
  /// batch mode. The pointee is owned here and joined in stop_loop().
  std::unique_ptr<LoopState> loop_;

  CheckpointPolicy checkpoint_policy_;
  SnapshotContext snapshot_context_;
  /// Restored stream position; stats()/stream_position() add it on top of
  /// this process's own counters so a restored gateway reports cumulative
  /// numbers, bit-identical to an uninterrupted run.
  std::uint64_t position_offset_ = 0;
  std::uint64_t last_checkpoint_position_ = 0;
  /// Counter continuation across restore: stats() = baseline + (raw -
  /// floor). `baseline` is the restored snapshot's cumulative stats;
  /// `floor` is this process's raw stats captured right after restore —
  /// it subtracts out counters the fresh process accrued before resuming
  /// (e.g. the attack-training index rebuilds, which the baseline already
  /// includes once).
  StreamStats stats_baseline_;
  StreamStats stats_floor_;

  // ---- Metrics export (see telemetry/exposition.h) --------------------
  std::string metrics_path_;
  std::uint64_t metrics_every_events_ = 0;
  std::uint64_t last_metrics_position_ = 0;

  /// Per-shard shed latch (the hysteresis state). Only the shard's own
  /// drain task reads/writes its slot, so no atomics are needed; the
  /// latches round-trip through snapshots so a restored gateway sheds
  /// exactly like the uninterrupted run.
  std::vector<std::uint8_t> shedding_;
};

}  // namespace mood::stream
