#pragma once

/// \file engine.h
/// StreamEngine — the online MooD gateway's decision pipeline.
///
/// The batch harness answers "is this user protected?" once per dataset;
/// the gateway answers it continuously. Events enqueue O(1) into the
/// sharded UserStateStore (ingest path, any thread); drain() then decides
/// every user that received points since the last drain — one task per
/// shard on the shared ThreadPool — in three steps per user:
///
///   1. *Fold*: pending points append to the sliding window (configurable
///      time span / point cap; expired points evicted from the front) and
///      the per-user compiled profiles are maintained: the AP heatmap
///      incrementally and exactly (CompiledHeatmap::apply_update — counts
///      are integers, so the folded form is bit-identical to a from-
///      scratch compile), the PIT/POI profiles by full recompile under a
///      staleness bound (staleness_points; 0 = recompile every fold).
///   2. *Risk*: every trained attack runs its targeted
///      "re-identifies this user?" query against the compiled window
///      profiles (the PR 3 branch-and-bound fast path — no full argmin).
///   3. *Select*: no attack bites -> expose (publish raw). Otherwise
///      protect: if the previously selected mechanism still defeats all
///      attacks on the grown window (one LPPM application — recheck), keep
///      it; else re-run the full MooD mechanism search. This is the
///      "re-select only when the decision may have changed" rule: clean
///      users are never touched, and at-risk users pay a full search only
///      on expose->protect transitions or when their mechanism breaks.
///
/// Determinism invariants (CI-enforced):
///   * A user's decision sequence is a pure function of that user's event
///     sequence and the micro-batch boundaries — never of the shard
///     count, --jobs, or wall-clock timing.
///   * finish() folds any leftovers, refreshes stale profiles, and re-runs
///     risk + full search for at-risk users, so the *final* per-user
///     decisions and winners are exactly the batch evaluators' answers on
///     the final window (bit-identical when the window is unbounded),
///     whatever staleness or recheck short-cuts were taken mid-stream.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/mood_engine.h"
#include "stream/event.h"
#include "stream/user_state.h"

namespace mood::attacks {
class ApAttack;
class PitAttack;
class PoiAttack;
}  // namespace mood::attacks

namespace mood::stream {

/// Gateway tuning knobs.
struct StreamConfig {
  std::size_t shards = 8;               ///< user-state shards (> 0)
  mobility::Timestamp window_seconds = 0;  ///< sliding window span; 0 = keep all
  std::size_t max_points = 0;           ///< per-user point cap; 0 = unbounded
  std::size_t max_users_per_shard = 0;  ///< LRU capacity; 0 = unbounded
  std::size_t staleness_points = 0;     ///< PIT/POI rebuild bound; 0 = every fold
  bool parallel_drain = true;           ///< shard tasks on the shared pool
};

/// Aggregate gateway counters (monotonic; snapshot via stats()).
struct StreamStats {
  std::uint64_t events = 0;            ///< ingested
  std::uint64_t batches = 0;           ///< drain() calls
  std::uint64_t decisions = 0;         ///< per-user-per-batch verdicts
  std::uint64_t exposed_events = 0;    ///< events carried by expose verdicts
  std::uint64_t protected_events = 0;  ///< events carried by protect verdicts
  std::uint64_t searches = 0;          ///< full mechanism selections
  std::uint64_t rechecks = 0;          ///< cheap current-winner re-checks
  std::uint64_t profile_rebuilds = 0;  ///< PIT/POI window recompiles
  std::uint64_t heatmap_updates = 0;   ///< incremental AP folds
  std::uint64_t evicted_points = 0;    ///< records expired out of windows
  std::uint64_t evicted_users = 0;     ///< LRU evictions (store)
  std::uint64_t lppm_applications = 0; ///< search/recheck cost counters
  std::uint64_t attack_invocations = 0;
};

/// Final state of one user after finish().
struct UserDecision {
  mobility::UserId user;
  Decision decision = Decision::kExpose;
  std::string winner;                 ///< "" when exposed or nothing protects
  std::uint64_t events = 0;
  std::uint64_t risk_transitions = 0;
  std::uint64_t searches = 0;
  std::size_t window_points = 0;
  std::size_t window_slices = 0;      ///< preslice partitions (tracked, O(1))
};

class StreamEngine {
 public:
  /// Takes ownership of a configured MoodEngine (typically
  /// harness.make_engine()); its attacks must outlive this object.
  StreamEngine(core::MoodEngine engine, StreamConfig config);

  /// Enqueues one event (thread-safe, O(1)).
  void ingest(const StreamEvent& event);

  /// Decides every user with pending points; returns users decided.
  std::size_t drain();

  /// Final flush: folds leftovers, refreshes stale profiles, re-runs risk
  /// and canonicalises winners (full search on the final window for every
  /// at-risk user not already searched there). Call once, after the last
  /// drain(); excluded from throughput accounting by the replay driver.
  void finish();

  /// Snapshot of every resident user's final state, sorted by user id.
  [[nodiscard]] std::vector<UserDecision> decisions() const;

  [[nodiscard]] StreamStats stats() const;
  [[nodiscard]] const StreamConfig& config() const { return config_; }
  [[nodiscard]] const core::MoodEngine& engine() const { return engine_; }
  [[nodiscard]] std::size_t user_count() const { return store_.user_count(); }

 private:
  /// Folds pending points into the window + profiles, then decides.
  void decide(UserState& state);
  /// finish()-path: refresh + canonical re-decision (no new points).
  void finalize(UserState& state);
  /// Folds state.pending into window/profiles; returns points folded.
  std::size_t fold(UserState& state);
  void refresh_profiles(UserState& state, bool force);
  [[nodiscard]] bool at_risk(const UserState& state);
  void select_mechanism(UserState& state, bool force_search);

  core::MoodEngine engine_;
  StreamConfig config_;
  UserStateStore store_;

  // Typed fast-path views into engine_.attacks() (null when absent).
  const attacks::ApAttack* ap_ = nullptr;
  const attacks::PitAttack* pit_ = nullptr;
  const attacks::PoiAttack* poi_ = nullptr;

  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> decisions_{0};
  std::atomic<std::uint64_t> exposed_events_{0};
  std::atomic<std::uint64_t> protected_events_{0};
  std::atomic<std::uint64_t> searches_{0};
  std::atomic<std::uint64_t> rechecks_{0};
  std::atomic<std::uint64_t> profile_rebuilds_{0};
  std::atomic<std::uint64_t> heatmap_updates_{0};
  std::atomic<std::uint64_t> evicted_points_{0};
  std::atomic<std::uint64_t> lppm_applications_{0};
  std::atomic<std::uint64_t> attack_invocations_{0};
};

}  // namespace mood::stream
