#include "stream/replay.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <set>
#include <thread>

#include "support/error.h"

namespace mood::stream {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// LatencySummary from the merged histogram: nearest-rank percentiles at
/// bucket midpoints (<= ~3.2% relative error, see replay.h), exact mean.
LatencySummary summarize(const telemetry::HistogramSnapshot& histogram) {
  LatencySummary summary;
  if (histogram.empty()) return summary;
  summary.p50 = histogram.percentile(0.50);
  summary.p95 = histogram.percentile(0.95);
  summary.p99 = histogram.percentile(0.99);
  summary.max = histogram.max();
  summary.mean = histogram.mean();
  return summary;
}

}  // namespace

std::vector<StreamEvent> make_event_stream(
    const std::vector<mobility::TrainTestPair>& pairs) {
  std::vector<StreamEvent> events;
  std::size_t total = 0;
  for (const auto& pair : pairs) total += pair.test.size();
  events.reserve(total);
  for (const auto& pair : pairs) {
    for (const auto& record : pair.test.records()) {
      events.push_back(StreamEvent{pair.test.user(), record, 0});
    }
  }
  // Stable sort on time only: records of one user stay in their original
  // relative order on ties, so each user's sub-stream equals their test
  // trace record for record.
  std::stable_sort(events.begin(), events.end(),
                   [](const StreamEvent& a, const StreamEvent& b) {
                     return a.record.time < b.record.time;
                   });
  for (std::size_t i = 0; i < events.size(); ++i) {
    events[i].seq = static_cast<std::uint64_t>(i);
  }
  return events;
}

std::size_t inject_poison(std::vector<StreamEvent>& events,
                          const PoisonSpec& spec) {
  if (spec.users == 0 || events.empty()) return 0;
  support::expects(spec.stride > 0, "inject_poison: stride must be > 0");

  // Victims: the first `users` ids in sorted order — a pure function of
  // the stream content, so chaos runs are reproducible.
  std::set<mobility::UserId> ids;
  for (const StreamEvent& event : events) ids.insert(event.user);
  std::set<mobility::UserId> victims;
  for (const auto& id : ids) {
    if (victims.size() >= spec.users) break;
    victims.insert(id);
  }

  // Rotate through the malformed kinds the admission path classifies.
  // Everything is in-place: stream length and order never change, so the
  // micro-batch boundaries healthy users see are identical to the clean
  // stream's.
  std::size_t victim_event = 0;
  std::size_t poisoned = 0;
  for (StreamEvent& event : events) {
    if (victims.count(event.user) == 0) continue;
    if (victim_event++ % spec.stride != 0) continue;
    switch (poisoned % 4) {
      case 0:
        event.record.position.lat = std::numeric_limits<double>::quiet_NaN();
        break;
      case 1:
        event.record.position.lon = std::numeric_limits<double>::infinity();
        break;
      case 2:
        event.record.position.lat = 95.0;  // finite but off the planet
        break;
      default:
        event.record.time -= 7 * mobility::kDay;  // timestamp regression
        break;
    }
    ++poisoned;
  }
  return poisoned;
}

ReplayResult run_replay(StreamEngine& engine,
                        const std::vector<StreamEvent>& events,
                        const ReplayOptions& options) {
  const bool loop = engine.config().engine == EngineMode::kLoop;
  support::expects(options.batch_events > 0,
                   "run_replay: batch_events must be > 0");
  support::expects(options.target_rate >= 0.0 &&
                       options.time_compression >= 0.0,
                   "run_replay: pacing knobs must be non-negative");
  const std::size_t resume = options.resume_events;
  support::expects(resume <= events.size(),
                   "run_replay: resume_events is past the stream end");
  // Loop mode has no micro-batch boundaries; any quiesced checkpoint
  // position is a valid resume point.
  support::expects(loop || resume % options.batch_events == 0 ||
                       resume == events.size(),
                   "run_replay: resume_events must fall on a micro-batch "
                   "boundary");

  ReplayResult result;
  if (events.size() == resume) {
    engine.finish();
    result.decisions = engine.decisions();
    result.stats = engine.stats();
    result.events = static_cast<std::size_t>(result.stats.events);
    result.batches = static_cast<std::size_t>(result.stats.batches);
    result.latency_histogram = engine.replay_latency();
    result.latency_per_shard = engine.replay_latency_shards();
    result.latency = summarize(result.latency_histogram);
    return result;
  }

  const bool paced = options.target_rate > 0.0 ||
                     options.time_compression > 0.0;
  const mobility::Timestamp t0 = events[resume].record.time;
  // Scheduled arrival offset (seconds from *session* start) of event i.
  const auto scheduled = [&](std::size_t i) {
    if (options.target_rate > 0.0) {
      return static_cast<double>(i - resume) / options.target_rate;
    }
    return static_cast<double>(events[i].record.time - t0) /
           options.time_compression;
  };

  // Per-batch arrival stamps only — O(batch_events) memory however long
  // the stream is. Latencies go straight into the engine's per-shard
  // log-bucketed histogram once the deciding drain completes.
  std::vector<double> arrivals(loop ? 0 : options.batch_events, 0.0);
  const Clock::time_point start = Clock::now();
  const auto pace = [&](std::size_t i) {
    const double due = scheduled(i);
    if (seconds_since(start) < due) {
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(due)));
    }
  };

  if (loop) {
    // Open-loop arrival process: pace each event individually, hand it
    // straight to the shard workers, and pump the checkpoint/export
    // cadences (two integer compares when nothing is due). The workers
    // record each event's arrival→decision latency themselves.
    for (std::size_t i = resume; i < events.size(); ++i) {
      if (paced) pace(i);
      engine.ingest(events[i]);
      engine.pump_cadences();
    }
    // The throughput clock covers the full decision work: stop it only
    // once every queued event is decided.
    engine.quiesce();
  } else {
    std::size_t next = resume;
    while (next < events.size()) {
      const std::size_t batch_end =
          std::min(next + options.batch_events, events.size());
      for (std::size_t i = next; i < batch_end; ++i) {
        if (paced) pace(i);
        engine.ingest(events[i]);
        arrivals[i - next] = seconds_since(start);
      }
      engine.drain();
      const double done = seconds_since(start);
      for (std::size_t i = next; i < batch_end; ++i) {
        engine.record_decision_latency(
            events[i].user, std::max(0.0, done - arrivals[i - next]));
      }
      next = batch_end;
    }
  }
  result.wall_seconds = seconds_since(start);

  // The flush is not serving work: it runs after the clock stops.
  engine.finish();

  result.session_events = events.size() - resume;
  result.events_per_second =
      result.wall_seconds > 0.0
          ? static_cast<double>(result.session_events) / result.wall_seconds
          : 0.0;
  result.latency_histogram = engine.replay_latency();
  result.latency_per_shard = engine.replay_latency_shards();
  result.latency = summarize(result.latency_histogram);
  result.decisions = engine.decisions();
  result.stats = engine.stats();
  // Cumulative across a restore (continued engine counters); equal to the
  // plain stream length / batch count when no restore happened.
  result.events = static_cast<std::size_t>(result.stats.events);
  result.batches = static_cast<std::size_t>(result.stats.batches);
  return result;
}

}  // namespace mood::stream
