#pragma once

/// \file resilience.h
/// Resilience vocabulary of the online MooD gateway: admission policy for
/// malformed events, per-user quarantine, and the overload-control knobs.
///
/// PR 7 built the crash-recovery half of "gateway as a real service"
/// (checkpoint/restore); this layer is the stay-alive half. Three defences
/// compose, all disabled by default so the strict path — and the CI
/// batch-equivalence and restore bit-identity gates — is untouched:
///
///   * **Admission** (StreamEngine::ingest): every event is classified
///     before it can touch user state. Non-finite or out-of-range
///     coordinates, per-user timestamp regressions, and oversized/empty
///     user ids are malformed. BadRecordPolicy decides their fate:
///     kFail aborts the run (the strict default), kSkip drops the one
///     record, kQuarantine freezes the *carrying user* — the poison is
///     evidence the source is compromised, so subsequent events of that
///     user are dead-lettered rather than trusted.
///   * **Fault isolation** (drain path, kQuarantine only): an exception
///     out of one user's fold/decide — including FailPoint-injected
///     corruption and throws — quarantines that user and never unwinds
///     the shard drain. A quarantined user's kernel state is frozen and
///     their published decision holds at the last verdict.
///   * **Overload control**: a per-shard pending-queue bound raises an
///     explicit backpressure signal (counted, surfaced to the caller —
///     never silently dropping events); a load-shed policy with
///     hysteresis degrades a backlogged shard's drains to held-decision
///     rechecks (full search() deferred); a drain budget downgrades the
///     tail of a batch the same way. Every trigger is event-count based,
///     so chaos outcomes are reproducible — wall-clock never decides.
///
/// Degraded verdicts are explicitly flagged (per-user `degraded` counts,
/// the `resilience` block of mood-stream/1) and are repaired at finish():
/// the kernel's canonical finalize re-searches any window whose last full
/// search is stale, so a run's *final* decisions are a pure function of
/// the final windows whatever degradation happened mid-stream.

#include <cstddef>
#include <string>

#include "support/error.h"

namespace mood::stream {

/// What ingest does with a malformed event.
enum class BadRecordPolicy {
  kFail,        ///< throw BadRecordError — abort the run (strict default)
  kSkip,        ///< drop the one record, count it, keep the user live
  kQuarantine,  ///< freeze the carrying user; dead-letter their stream
};

inline std::string to_string(BadRecordPolicy policy) {
  switch (policy) {
    case BadRecordPolicy::kFail:
      return "fail";
    case BadRecordPolicy::kSkip:
      return "skip";
    default:
      return "quarantine";
  }
}

/// Parses the --on-bad-record spelling. Throws support::UsageError on
/// anything but fail | skip | quarantine.
inline BadRecordPolicy parse_bad_record_policy(const std::string& word) {
  if (word == "fail") return BadRecordPolicy::kFail;
  if (word == "skip") return BadRecordPolicy::kSkip;
  if (word == "quarantine") return BadRecordPolicy::kQuarantine;
  throw support::UsageError("--on-bad-record must be fail | skip | "
                            "quarantine, got '" +
                            word + "'");
}

/// A malformed event reached ingest under BadRecordPolicy::kFail. Derives
/// support::Error (CLI exit 1): the data is poisoned, the invocation was
/// fine.
class BadRecordError : public support::Error {
 public:
  explicit BadRecordError(const std::string& what) : support::Error(what) {}
};

/// Gateway resilience knobs (a member of StreamConfig). The defaults turn
/// every feature off: strict admission, no quarantine, no backpressure
/// accounting, no shedding, unbounded drains.
struct ResilienceConfig {
  BadRecordPolicy on_bad_record = BadRecordPolicy::kFail;

  /// Per-shard pending-event bound; a shard whose backlog crosses it
  /// raises the backpressure signal on ingest (counted + returned to the
  /// caller; events are never dropped for pressure). 0 = unbounded.
  std::size_t max_pending_per_shard = 0;

  /// Load-shed engage threshold: a shard whose pending backlog at drain
  /// time reaches this many events enters shed mode and degrades its
  /// decisions to held-verdict rechecks. 0 = shedding off.
  std::size_t shed_high_watermark = 0;

  /// Load-shed release threshold (hysteresis): a shedding shard leaves
  /// shed mode at the first drain whose backlog is at or below this.
  /// Must be <= shed_high_watermark; 0 with shedding on means "release
  /// only on an empty backlog".
  std::size_t shed_low_watermark = 0;

  /// Max full decisions per shard per drain; users beyond the budget (in
  /// deterministic first-dirty order) get the degraded path this batch.
  /// 0 = unbounded.
  std::size_t drain_budget = 0;
};

/// Why an event or user left the healthy path. The stable vocabulary used
/// in quarantine reasons and dead-letter records.
enum class AdmissionFault {
  kBadCoordinate,     ///< NaN/Inf or out-of-range lat/lon
  kNonMonotonicTime,  ///< timestamp regressed within one user's stream
  kOversizedId,       ///< empty user id, or one past the id length cap
  kDecideFault,       ///< exception escaped the user's fold/decide path
};

inline const char* to_string(AdmissionFault fault) {
  switch (fault) {
    case AdmissionFault::kBadCoordinate:
      return "bad coordinate";
    case AdmissionFault::kNonMonotonicTime:
      return "non-monotonic timestamp";
    case AdmissionFault::kOversizedId:
      return "oversized user id";
    default:
      return "decide fault";
  }
}

/// Longest admissible user id, in bytes. Generously above any real id
/// scheme; an id past it is treated as corruption, not identity.
inline constexpr std::size_t kMaxUserIdBytes = 256;

}  // namespace mood::stream
