#include "stream/user_state.h"

#include <algorithm>
#include <limits>

#include "support/error.h"

namespace mood::stream {

UserStateStore::UserStateStore(StoreConfig config) : config_(config) {
  support::expects(config_.shards > 0,
                   "UserStateStore: shard count must be > 0");
  telemetry::MetricsRegistry* registry = config_.registry;
  if (registry == nullptr) {
    own_registry_ =
        std::make_unique<telemetry::MetricsRegistry>(config_.shards);
    registry = own_registry_.get();
  }
  evictions_ = &registry->counter("mood_store_evicted_users_total");
  shards_ = std::vector<Shard>(config_.shards);
}

std::size_t UserStateStore::shard_of(const mobility::UserId& user) const {
  return std::hash<mobility::UserId>{}(user) % shards_.size();
}

void UserStateStore::evict_one(Shard& shard, std::size_t shard_index) {
  auto victim = shard.states.end();
  bool victim_clean = false;
  for (auto it = shard.states.begin(); it != shard.states.end(); ++it) {
    const bool clean = it->second.pending.empty();
    if (victim == shard.states.end() || (clean && !victim_clean) ||
        (clean == victim_clean &&
         it->second.last_touch < victim->second.last_touch)) {
      victim = it;
      victim_clean = clean;
    }
  }
  if (victim == shard.states.end()) return;
  shard.backlog -= victim->second.pending.size();
  if (!victim_clean) {
    // A dirty victim's queued points die with it; drop it from the dirty
    // list so drain_shard does not chase a dangling id.
    shard.dirty.erase(
        std::remove(shard.dirty.begin(), shard.dirty.end(), victim->first),
        shard.dirty.end());
  }
  shard.states.erase(victim);
  evictions_->add(1, shard_index);
}

UserState* UserStateStore::admit_locked(Shard& shard, std::size_t shard_index,
                                        const StreamEvent& event,
                                        BadRecordPolicy policy, bool poisoned,
                                        const char* poison_reason,
                                        bool track_dirty,
                                        AdmitResult& result) {
  result.shard = shard_index;
  auto it = shard.states.find(event.user);

  if (it != shard.states.end() && it->second.quarantined) {
    it->second.dead_letters += 1;
    it->second.last_touch = ++shard.clock;
    result.status = AdmitResult::Status::kDeadLettered;
    result.reason = to_string(AdmissionFault::kDecideFault);
    result.dead_letters = 1;
    result.shard_backlog = shard.backlog;
    return nullptr;
  }

  // Stateful classification: the engine flags statelessly detectable
  // poison; the store adds the per-user monotonicity check (strict
  // regressions only — equal timestamps are legal).
  const char* fault = poisoned ? poison_reason : nullptr;
  if (fault == nullptr && it != shard.states.end() &&
      it->second.has_last_time && event.record.time < it->second.last_time) {
    fault = to_string(AdmissionFault::kNonMonotonicTime);
  }

  if (fault != nullptr && policy != BadRecordPolicy::kQuarantine) {
    // kFail / kSkip: drop without creating state; the engine decides
    // whether the drop aborts the run.
    result.status = AdmitResult::Status::kRejected;
    result.reason = fault;
    result.shard_backlog = shard.backlog;
    return nullptr;
  }

  if (it == shard.states.end()) {
    if (config_.max_users_per_shard > 0 &&
        shard.states.size() >= config_.max_users_per_shard) {
      evict_one(shard, shard_index);
    }
    it = shard.states.emplace(event.user, UserState{}).first;
    it->second.user = event.user;
    // The window must carry the owner's id: the kernel keys its noise
    // streams and targeted attack queries on window.user().
    it->second.kernel.window.set_user(event.user);
  }
  UserState& state = it->second;
  state.last_touch = ++shard.clock;

  if (fault != nullptr) {
    // Quarantine trips on the poisoned event: freeze the kernel state,
    // dead-letter the event plus any pending points (they share the
    // compromised source), and drop the user from the dirty list.
    state.quarantined = true;
    state.quarantine_reason = fault;
    const std::uint64_t flushed = state.pending.size() + 1;
    shard.backlog -= state.pending.size();
    state.pending.clear();
    state.dead_letters += flushed;
    shard.dirty.erase(
        std::remove(shard.dirty.begin(), shard.dirty.end(), event.user),
        shard.dirty.end());
    result.status = AdmitResult::Status::kQuarantined;
    result.reason = fault;
    result.dead_letters = flushed;
    result.shard_backlog = shard.backlog;
    return nullptr;
  }

  if (track_dirty && state.pending.empty()) shard.dirty.push_back(event.user);
  state.pending.push_back(event.record);
  state.has_last_time = true;
  state.last_time = event.record.time;
  shard.backlog += 1;
  result.status = AdmitResult::Status::kAdmitted;
  result.shard_backlog = shard.backlog;
  return &state;
}

AdmitResult UserStateStore::enqueue(const StreamEvent& event,
                                    BadRecordPolicy policy, bool poisoned,
                                    const char* poison_reason) {
  const std::size_t shard_index = shard_of(event.user);
  Shard& shard = shards_[shard_index];
  const std::lock_guard lock(shard.mutex);
  AdmitResult result;
  admit_locked(shard, shard_index, event, policy, poisoned, poison_reason,
               /*track_dirty=*/true, result);
  return result;
}

AdmitResult UserStateStore::admit_and_process(
    const StreamEvent& event, BadRecordPolicy policy, bool poisoned,
    const char* poison_reason, const std::function<void(UserState&)>& fn) {
  const std::size_t shard_index = shard_of(event.user);
  Shard& shard = shards_[shard_index];
  const std::lock_guard lock(shard.mutex);
  AdmitResult result;
  UserState* state =
      admit_locked(shard, shard_index, event, policy, poisoned, poison_reason,
                   /*track_dirty=*/false, result);
  if (state != nullptr) {
    // fn folds (or flushes, if it quarantines) the pending queue; account
    // the backlog by the before/after delta exactly as drain_shard does.
    const std::size_t before = state->pending.size();
    fn(*state);
    shard.backlog = shard.backlog - before + state->pending.size();
    result.shard_backlog = shard.backlog;
  }
  return result;
}

std::size_t UserStateStore::pending_events(std::size_t shard) const {
  support::expects(shard < shards_.size(),
                   "UserStateStore::pending_events: shard out of range");
  const std::lock_guard lock(shards_[shard].mutex);
  return shards_[shard].backlog;
}

std::size_t UserStateStore::drain_shard(
    std::size_t shard_index, const std::function<void(UserState&)>& fn) {
  support::expects(shard_index < shards_.size(),
                   "UserStateStore::drain_shard: shard out of range");
  Shard& shard = shards_[shard_index];
  const std::lock_guard lock(shard.mutex);
  std::size_t visited = 0;
  for (const auto& user : shard.dirty) {
    const auto it = shard.states.find(user);
    if (it == shard.states.end()) continue;  // evicted while dirty
    // fn folds (or flushes) pending points; account the backlog by the
    // before/after delta rather than trusting fn to report it.
    const std::size_t before = it->second.pending.size();
    fn(it->second);
    shard.backlog = shard.backlog - before + it->second.pending.size();
    ++visited;
  }
  shard.dirty.clear();
  return visited;
}

void UserStateStore::for_each(const std::function<void(UserState&)>& fn) {
  for (Shard& shard : shards_) {
    const std::lock_guard lock(shard.mutex);
    for (auto& [user, state] : shard.states) {
      const std::size_t before = state.pending.size();
      fn(state);
      shard.backlog = shard.backlog - before + state.pending.size();
    }
  }
}

void UserStateStore::for_each(
    const std::function<void(const UserState&)>& fn) const {
  for (const Shard& shard : shards_) {
    const std::lock_guard lock(shard.mutex);
    for (const auto& [user, state] : shard.states) fn(state);
  }
}

std::size_t UserStateStore::user_count() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard lock(shard.mutex);
    n += shard.states.size();
  }
  return n;
}

void UserStateStore::restore_user(UserState state) {
  Shard& shard = shards_[shard_of(state.user)];
  const std::lock_guard lock(shard.mutex);
  const bool dirty = !state.pending.empty();
  const mobility::UserId user = state.user;
  if (const auto it = shard.states.find(user); it != shard.states.end()) {
    shard.backlog -= it->second.pending.size();
  }
  shard.backlog += state.pending.size();
  shard.states.insert_or_assign(user, std::move(state));
  if (dirty &&
      std::find(shard.dirty.begin(), shard.dirty.end(), user) ==
          shard.dirty.end()) {
    shard.dirty.push_back(user);
  }
}

std::vector<std::uint64_t> UserStateStore::shard_clocks() const {
  std::vector<std::uint64_t> clocks;
  clocks.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    const std::lock_guard lock(shard.mutex);
    clocks.push_back(shard.clock);
  }
  return clocks;
}

void UserStateStore::restore_shard_clocks(
    const std::vector<std::uint64_t>& clocks) {
  support::expects(clocks.size() == shards_.size(),
                   "UserStateStore::restore_shard_clocks: shard count "
                   "mismatch");
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::lock_guard lock(shards_[i].mutex);
    shards_[i].clock = clocks[i];
  }
}

std::uint64_t UserStateStore::eviction_count() const {
  return evictions_->value();
}

}  // namespace mood::stream
