#include "stream/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>

#include "stream/snapshot.h"
#include "stream/spsc_queue.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/logging.h"
#include "support/thread_pool.h"
#include "telemetry/exposition.h"
#include "telemetry/trace.h"

namespace mood::stream {

namespace {

using Clock = std::chrono::steady_clock;

/// Elapsed seconds for the stage histograms; only evaluated when the
/// stage timers are on.
double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The counters that continue across a restore as baseline + (raw -
/// floor). The checkpoint counters are deliberately absent: they describe
/// *this process's* checkpoint activity (reported outside the decision
/// cost block), not the logical stream, so they stay raw.
constexpr std::uint64_t StreamStats::* kContinuedStats[] = {
    &StreamStats::events,          &StreamStats::batches,
    &StreamStats::decisions,       &StreamStats::exposed_events,
    &StreamStats::protected_events, &StreamStats::searches,
    &StreamStats::rechecks,        &StreamStats::profile_refreshes,
    &StreamStats::stay_updates,    &StreamStats::stay_rebuilds,
    &StreamStats::heatmap_updates, &StreamStats::evicted_points,
    &StreamStats::evicted_users,   &StreamStats::lppm_applications,
    &StreamStats::attack_invocations, &StreamStats::index_prunes,
    &StreamStats::exact_evals,     &StreamStats::index_rebuilds,
    &StreamStats::bad_records,     &StreamStats::dead_letters,
    &StreamStats::quarantined_users, &StreamStats::shed_decisions,
    &StreamStats::degraded_batches, &StreamStats::backpressure_events,
};

/// Same bounds the dataset loader enforces (mobility/io.cpp); a finite
/// fix outside them is corrupt, not exotic.
bool valid_coordinate(const geo::GeoPoint& p) {
  return std::isfinite(p.lat) && std::isfinite(p.lon) && p.lat > -89.0 &&
         p.lat < 89.0 && p.lon >= -180.0 && p.lon <= 180.0;
}

/// Mirror gauges published at exposition time: the continued (restore-
/// aware) StreamStats, one gauge per field, named for the stream report
/// vocabulary. Gauges, not counters, because stats() already applies the
/// continuation math — re-counting would double-apply it.
struct StatGauge {
  const char* name;
  std::uint64_t StreamStats::* field;
};
constexpr StatGauge kStatGauges[] = {
    {"mood_gateway_events", &StreamStats::events},
    {"mood_gateway_batches", &StreamStats::batches},
    {"mood_gateway_decisions", &StreamStats::decisions},
    {"mood_gateway_exposed_events", &StreamStats::exposed_events},
    {"mood_gateway_protected_events", &StreamStats::protected_events},
    {"mood_gateway_searches", &StreamStats::searches},
    {"mood_gateway_rechecks", &StreamStats::rechecks},
    {"mood_gateway_profile_refreshes", &StreamStats::profile_refreshes},
    {"mood_gateway_stay_updates", &StreamStats::stay_updates},
    {"mood_gateway_stay_rebuilds", &StreamStats::stay_rebuilds},
    {"mood_gateway_heatmap_updates", &StreamStats::heatmap_updates},
    {"mood_gateway_evicted_points", &StreamStats::evicted_points},
    {"mood_gateway_evicted_users", &StreamStats::evicted_users},
    {"mood_gateway_lppm_applications", &StreamStats::lppm_applications},
    {"mood_gateway_attack_invocations", &StreamStats::attack_invocations},
    {"mood_gateway_index_prunes", &StreamStats::index_prunes},
    {"mood_gateway_exact_evals", &StreamStats::exact_evals},
    {"mood_gateway_index_rebuilds", &StreamStats::index_rebuilds},
    {"mood_gateway_shed_decisions", &StreamStats::shed_decisions},
};

/// Loop-mode ring capacity. With a backpressure bound, the ring is the
/// bounded buffer --max-pending promises: the kAdmittedSlow signal fires
/// at the bound, and the producer only blocks (never drops) at 2x it.
/// Unbounded configs get a deep default so the producer rarely stalls.
std::size_t ring_capacity(const ResilienceConfig& res) {
  if (res.max_pending_per_shard > 0) {
    return std::max<std::size_t>(2 * res.max_pending_per_shard, 2);
  }
  return 8192;
}

/// Worker/producer wait loop backoff: spin briefly (the common
/// sub-microsecond case), then sleep — bounded idle CPU at a latency cost
/// far below the p99 target.
void backoff(std::size_t& spins) {
  if (++spins < 64) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}
}  // namespace

const char* to_string(EngineMode mode) {
  return mode == EngineMode::kLoop ? "loop" : "batch";
}

EngineMode parse_engine_mode(const std::string& name) {
  if (name == "batch") return EngineMode::kBatch;
  if (name == "loop") return EngineMode::kLoop;
  throw support::UsageError("unknown engine mode '" + name +
                            "' (expected batch|loop)");
}

/// One queued ingest: the event, its arrival stamp (latency accounting
/// starts at admission, like the batch replay driver's), and the
/// producer's stateless poison classification.
struct StreamEngine::LoopItem {
  StreamEvent event;
  Clock::time_point arrival;
  const char* fault = nullptr;
};

/// Loop-mode machinery: one SPSC ring + worker thread per shard, plus the
/// producer-visible fault slot. Owned by the engine, torn down (joined)
/// in stop_loop().
struct StreamEngine::LoopState {
  struct Lane {
    explicit Lane(std::size_t capacity) : ring(capacity) {}
    SpscQueue<LoopItem> ring;
    /// Producer / worker progress counters; quiesce() waits for
    /// processed == pushed (acquire on processed pairs with the worker's
    /// release, making all worker-side state visible at the cut).
    alignas(64) std::atomic<std::uint64_t> pushed{0};
    alignas(64) std::atomic<std::uint64_t> processed{0};
    std::thread worker;
  };

  /// deque: Lane is neither movable nor copyable (atomics, thread).
  std::deque<Lane> lanes;
  bool started = false;
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::mutex failure_mutex;
  std::exception_ptr failure;  ///< first captured worker fault
};

StreamEngine::StreamEngine(decision::MoodEngine engine, StreamConfig config)
    : kernel_(std::move(engine),
              decision::KernelConfig{config.window_seconds, config.max_points,
                                     config.staleness_points}),
      config_(config),
      registry_(config.shards),
      store_(StoreConfig{config.shards, config.max_users_per_shard,
                         &registry_}),
      shedding_(config.shards, 0) {
  support::expects(config_.shards > 0, "StreamEngine: shards must be > 0");
  support::expects(
      config_.resilience.shed_low_watermark <=
              config_.resilience.shed_high_watermark ||
          config_.resilience.shed_high_watermark == 0,
      "StreamEngine: shed_low_watermark must not exceed shed_high_watermark");
  // Wire every counter site once; the hot paths below only ever touch
  // these cached instruments (lock-free lanes), never the registry map.
  events_ = &registry_.counter("mood_stream_events_total");
  batches_ = &registry_.counter("mood_stream_batches_total");
  checkpoints_ = &registry_.counter("mood_stream_checkpoints_total");
  checkpoint_bytes_ = &registry_.counter("mood_stream_checkpoint_bytes_total");
  checkpoint_failures_ =
      &registry_.counter("mood_stream_checkpoint_failures_total");
  bad_records_ = &registry_.counter("mood_stream_bad_records_total");
  dead_letters_ = &registry_.counter("mood_stream_dead_letters_total");
  quarantined_users_ =
      &registry_.counter("mood_stream_quarantined_users_total");
  degraded_batches_ = &registry_.counter("mood_stream_degraded_batches_total");
  backpressure_events_ =
      &registry_.counter("mood_stream_backpressure_events_total");
  quarantined_snapshots_ =
      &registry_.counter("mood_stream_quarantined_snapshots_total");
  metrics_export_failures_ =
      &registry_.counter("mood_stream_metrics_export_failures_total");
  stage_ingest_ = &registry_.histogram("mood_stage_ingest_seconds");
  stage_decide_ = &registry_.histogram("mood_stage_decide_seconds");
  stage_drain_ = &registry_.histogram("mood_stage_drain_seconds");
  stage_checkpoint_ = &registry_.histogram("mood_stage_checkpoint_seconds");
  stage_dequeue_ = &registry_.histogram("mood_stage_dequeue_seconds");
  replay_latency_ = &registry_.histogram("mood_replay_latency_seconds");
}

StreamEngine::~StreamEngine() {
  try {
    stop_loop(/*swallow=*/true);
  } catch (...) {
    // Joining only; nothing here may throw past a destructor.
  }
}

void StreamEngine::ensure_loop_lanes() {
  if (loop_ != nullptr) return;
  loop_ = std::make_unique<LoopState>();
  const std::size_t capacity = ring_capacity(config_.resilience);
  for (std::size_t shard = 0; shard < config_.shards; ++shard) {
    loop_->lanes.emplace_back(capacity);
  }
}

void StreamEngine::start_loop() {
  if (config_.engine != EngineMode::kLoop) return;
  ensure_loop_lanes();
  if (loop_->started) return;
  loop_->started = true;
  for (std::size_t shard = 0; shard < loop_->lanes.size(); ++shard) {
    loop_->lanes[shard].worker =
        std::thread([this, shard] { loop_worker(shard); });
  }
  support::log_info("loop engine started ", loop_->lanes.size(),
                    " shard workers (ring capacity ",
                    loop_->lanes.front().ring.capacity(), ")");
}

void StreamEngine::check_loop_failure() {
  if (loop_ == nullptr || !loop_->failed.load(std::memory_order_acquire)) {
    return;
  }
  stop_loop(/*swallow=*/false);
}

void StreamEngine::stop_loop(bool swallow) {
  if (loop_ == nullptr) return;
  loop_->stop.store(true, std::memory_order_release);
  for (auto& lane : loop_->lanes) {
    if (lane.worker.joinable()) lane.worker.join();
  }
  std::exception_ptr failure;
  {
    const std::lock_guard lock(loop_->failure_mutex);
    failure = loop_->failure;
  }
  loop_.reset();
  if (failure != nullptr && !swallow) std::rethrow_exception(failure);
}

void StreamEngine::quiesce() {
  if (config_.engine != EngineMode::kLoop || loop_ == nullptr ||
      !loop_->started) {
    return;
  }
  for (auto& lane : loop_->lanes) {
    // The producer is the only pusher, so `pushed` is stable here; wait
    // for this lane's worker to catch up. A worker fault can stall
    // `processed` forever (the worker exits), so re-check it each spin.
    const std::uint64_t target = lane.pushed.load(std::memory_order_relaxed);
    std::size_t spins = 0;
    while (lane.processed.load(std::memory_order_acquire) < target) {
      if (loop_->failed.load(std::memory_order_acquire)) {
        stop_loop(/*swallow=*/false);
        return;
      }
      backoff(spins);
    }
  }
  // A fault on the very last item: its processed increment landed after
  // the failed flag (both released, acquired above), so check once more.
  check_loop_failure();
}

void StreamEngine::pump_cadences() {
  if (config_.engine != EngineMode::kLoop) return;
  const std::uint64_t position = stream_position();
  const bool checkpoint_due =
      !checkpoint_policy_.dir.empty() && checkpoint_policy_.every_events > 0 &&
      position - last_checkpoint_position_ >= checkpoint_policy_.every_events;
  const bool export_due =
      !metrics_path_.empty() && metrics_every_events_ > 0 &&
      position - last_metrics_position_ >= metrics_every_events_;
  if (!checkpoint_due && !export_due) return;
  // Checkpoint cut: quiesce first, so the rings are empty (the snapshot's
  // position covers every pushed event) and worker-side state is visible.
  quiesce();
  maybe_checkpoint();
  maybe_export_metrics();
}

IngestStatus StreamEngine::ingest(const StreamEvent& event) {
  if (config_.engine == EngineMode::kLoop) return loop_ingest(event);
  // Every presented event advances the stream position, admitted or not:
  // checkpoint/resume indexes into the replay stream, and a resumed run
  // must skip exactly the events this run consumed — including the ones
  // it dropped.
  events_->add(1);
  const bool timed = config_.telemetry.stage_timers;
  const Clock::time_point t0 = timed ? Clock::now() : Clock::time_point{};
  const ResilienceConfig& res = config_.resilience;

  // Stateless classification first. An unattributable event (empty or
  // oversized id) cannot be quarantined — there is no user to trust the
  // id of — so skip/quarantine both dead-letter it without state.
  if (event.user.empty() || event.user.size() > kMaxUserIdBytes) {
    bad_records_->add(1);
    if (res.on_bad_record == BadRecordPolicy::kFail) {
      throw BadRecordError(
          std::string("gateway admission: ") +
          to_string(AdmissionFault::kOversizedId) + " (" +
          std::to_string(event.user.size()) + " bytes) at position " +
          std::to_string(stream_position() - 1));
    }
    dead_letters_->add(1);
    return IngestStatus::kDeadLettered;
  }
  const char* fault = valid_coordinate(event.record.position)
                          ? nullptr
                          : to_string(AdmissionFault::kBadCoordinate);

  const AdmitResult admitted =
      store_.enqueue(event, res.on_bad_record, fault != nullptr, fault);
  switch (admitted.status) {
    case AdmitResult::Status::kRejected:
      bad_records_->add(1, admitted.shard);
      if (res.on_bad_record == BadRecordPolicy::kFail) {
        throw BadRecordError(std::string("gateway admission: ") +
                             admitted.reason + " from user '" + event.user +
                             "' at position " +
                             std::to_string(stream_position() - 1));
      }
      return IngestStatus::kRejected;
    case AdmitResult::Status::kQuarantined:
      bad_records_->add(1, admitted.shard);
      dead_letters_->add(admitted.dead_letters, admitted.shard);
      quarantined_users_->add(1, admitted.shard);
      support::log_warn("quarantined user '", event.user, "' at position ",
                        stream_position() - 1, ": ", admitted.reason);
      return IngestStatus::kQuarantined;
    case AdmitResult::Status::kDeadLettered:
      dead_letters_->add(admitted.dead_letters, admitted.shard);
      return IngestStatus::kDeadLettered;
    case AdmitResult::Status::kAdmitted:
      break;
  }
  // Admission latency of accepted events (classification + enqueue under
  // the shard lock), on the owning shard's lane.
  if (timed) stage_ingest_->record(seconds_since(t0), admitted.shard);
  if (res.max_pending_per_shard > 0 &&
      admitted.shard_backlog > res.max_pending_per_shard) {
    // Explicit backpressure: the signal is counted and surfaced, never
    // acted on internally — an early drain here would make batch
    // boundaries depend on shard hashing and break determinism.
    backpressure_events_->add(1, admitted.shard);
    return IngestStatus::kAdmittedSlow;
  }
  return IngestStatus::kAdmitted;
}

IngestStatus StreamEngine::loop_ingest(const StreamEvent& event) {
  ensure_loop_lanes();
  if (config_.loop_autostart && !loop_->started) start_loop();
  check_loop_failure();

  events_->add(1);
  const bool timed = config_.telemetry.stage_timers;
  const Clock::time_point arrival = Clock::now();
  const ResilienceConfig& res = config_.resilience;

  // Stateless classification stays on the producer: an unattributable
  // event (empty or oversized id) never reaches a worker, exactly like
  // the batch path; bad coordinates are flagged here (cheap, and keeps
  // the classification vocabulary identical) but dispositioned by the
  // worker, which owns the stateful half.
  if (event.user.empty() || event.user.size() > kMaxUserIdBytes) {
    bad_records_->add(1);
    if (res.on_bad_record == BadRecordPolicy::kFail) {
      throw BadRecordError(
          std::string("gateway admission: ") +
          to_string(AdmissionFault::kOversizedId) + " (" +
          std::to_string(event.user.size()) + " bytes) at position " +
          std::to_string(stream_position() - 1));
    }
    dead_letters_->add(1);
    // Latency parity: every presented event leaves one sample, whichever
    // side of the ring dispositions it.
    replay_latency_->record(seconds_since(arrival), store_.shard_of(event.user));
    return IngestStatus::kDeadLettered;
  }
  const char* fault = valid_coordinate(event.record.position)
                          ? nullptr
                          : to_string(AdmissionFault::kBadCoordinate);

  const std::size_t shard = store_.shard_of(event.user);
  LoopState::Lane& lane = loop_->lanes[shard];
  // Count before pushing so a worker-side depth read never underflows
  // (processed <= pushed always holds).
  const std::uint64_t pushed =
      lane.pushed.load(std::memory_order_relaxed) + 1;
  lane.pushed.store(pushed, std::memory_order_relaxed);

  LoopItem item{event, arrival, fault};
  std::size_t spins = 0;
  while (!lane.ring.try_push(std::move(item))) {
    // Ring full: block, never drop — backpressure is a signal, not a
    // loss. A worker fault would stall this forever, so re-check it.
    check_loop_failure();
    backoff(spins);
  }
  if (timed) stage_ingest_->record(seconds_since(arrival), shard);

  if (res.max_pending_per_shard > 0) {
    const std::uint64_t depth =
        pushed - lane.processed.load(std::memory_order_relaxed);
    if (depth > res.max_pending_per_shard) {
      backpressure_events_->add(1, shard);
      return IngestStatus::kAdmittedSlow;
    }
  }
  return IngestStatus::kAdmitted;
}

void StreamEngine::loop_worker(std::size_t shard) {
  LoopState& loop = *loop_;
  LoopState::Lane& lane = loop.lanes[shard];
  LoopItem item;
  std::size_t spins = 0;
  while (true) {
    if (!lane.ring.try_pop(item)) {
      // Stop (or a sibling's fault) only takes effect once this ring is
      // empty, so stop_loop() after quiesce() never strands items.
      if (loop.stop.load(std::memory_order_acquire)) break;
      if (loop.failed.load(std::memory_order_acquire)) break;
      backoff(spins);
      continue;
    }
    spins = 0;
    try {
      loop_process(shard, item);
    } catch (...) {
      {
        const std::lock_guard lock(loop.failure_mutex);
        if (loop.failure == nullptr) loop.failure = std::current_exception();
      }
      loop.failed.store(true, std::memory_order_release);
      lane.processed.fetch_add(1, std::memory_order_release);
      break;  // the producer joins us and rethrows
    }
    lane.processed.fetch_add(1, std::memory_order_release);
  }
}

void StreamEngine::loop_process(std::size_t shard, LoopItem& item) {
  LoopState::Lane& lane = loop_->lanes[shard];
  const ResilienceConfig& res = config_.resilience;
  const bool timed = config_.telemetry.stage_timers;
  if (timed) stage_dequeue_->record(seconds_since(item.arrival), shard);

  // Shed hysteresis on the instantaneous ring depth (the loop-mode
  // backlog), evaluated per dequeue by the only thread touching the
  // latch. Unlike the event-count-deterministic batch latch, ring depth
  // is timing-dependent — degraded verdicts are repaired by the
  // canonical finish(), so decisions stay deterministic regardless.
  bool shed = false;
  if (res.shed_high_watermark > 0) {
    const std::uint64_t depth =
        lane.pushed.load(std::memory_order_relaxed) -
        lane.processed.load(std::memory_order_relaxed);
    std::uint8_t& latch = shedding_[shard];
    if (latch != 0) {
      if (depth <= res.shed_low_watermark) {
        latch = 0;
        support::log_info("shed released on shard ", shard, " (ring depth ",
                          depth, " <= low ", res.shed_low_watermark, ")");
      }
    } else if (depth >= res.shed_high_watermark) {
      latch = 1;
      // One degraded episode per engagement (the batch analogue counts
      // one per shard drain that shed).
      degraded_batches_->add(1, shard);
      support::log_info("shed engaged on shard ", shard, " (ring depth ",
                        depth, " >= high ", res.shed_high_watermark, ")");
    }
    shed = latch != 0;
  }

  const Clock::time_point d0 = timed ? Clock::now() : Clock::time_point{};
  const AdmitResult admitted = store_.admit_and_process(
      item.event, res.on_bad_record, item.fault != nullptr, item.fault,
      [&](UserState& state) { loop_decide_user(state, shard, shed); });
  switch (admitted.status) {
    case AdmitResult::Status::kRejected:
      bad_records_->add(1, shard);
      if (res.on_bad_record == BadRecordPolicy::kFail) {
        // event.seq is the stream position run_replay stamps; the
        // producer-side counter would race here.
        throw BadRecordError(std::string("gateway admission: ") +
                             admitted.reason + " from user '" +
                             item.event.user + "' at position " +
                             std::to_string(item.event.seq));
      }
      break;
    case AdmitResult::Status::kQuarantined:
      bad_records_->add(1, shard);
      dead_letters_->add(admitted.dead_letters, shard);
      quarantined_users_->add(1, shard);
      support::log_warn("quarantined user '", item.event.user,
                        "' at position ", item.event.seq, ": ",
                        admitted.reason);
      break;
    case AdmitResult::Status::kDeadLettered:
      dead_letters_->add(admitted.dead_letters, shard);
      break;
    case AdmitResult::Status::kAdmitted:
      if (timed) stage_decide_->record(seconds_since(d0), shard);
      break;
  }
  // Every presented event leaves one end-to-end sample: arrival at
  // ingest() to decision (or disposition) complete.
  replay_latency_->record(seconds_since(item.arrival), shard);
}

void StreamEngine::loop_decide_user(UserState& state, std::size_t shard,
                                    bool shed) {
  MOOD_TRACE("stream.decide", {.shard = static_cast<std::uint32_t>(shard),
                               .user = state.user});
  const std::size_t queued = state.pending.size();
  if (MOOD_FAIL_POINT("stream.drain.corrupt") ==
          testing::FailAction::kCorrupt &&
      !state.pending.empty()) {
    state.pending.front().position.lat =
        std::numeric_limits<double>::quiet_NaN();
  }
  (void)run_isolated(state, queued, [&]() -> DecideOutcome {
    MOOD_FAIL_POINT("stream.decide.user");  // kThrow fires inside hit()
    const std::size_t folded = fold_pending(state);
    if (folded == 0) return DecideOutcome::kFull;
    decision::UserKernelState& k = state.kernel;
    if (shed) {
      kernel_.decide_degraded(k, folded);
      return DecideOutcome::kDegraded;
    }
    // The decision tier is a pure function of this user's folded-event
    // ordinal (k.events counts exactly the admitted, folded events), so
    // mid-stream counters are deterministic — independent of timing,
    // shard count, and checkpoint cut position.
    if (!k.has_decision || config_.loop_slack == 0 ||
        k.events % config_.loop_slack == 0) {
      kernel_.decide(k, folded);
    } else if (config_.loop_recheck > 0 &&
               k.events % config_.loop_recheck == 0) {
      kernel_.decide_recheck(k, folded);
    } else {
      kernel_.decide_held(k, folded);
    }
    return DecideOutcome::kFull;
  });
}

std::size_t StreamEngine::fold_pending(UserState& state) {
  const std::vector<mobility::Record> pending = std::move(state.pending);
  state.pending.clear();
  if (config_.resilience.on_bad_record == BadRecordPolicy::kQuarantine) {
    // In-memory poison (post-admission corruption; in practice the
    // stream.drain.corrupt fail point) must not reach the compiled
    // profiles — NaNs poison every distance they touch.
    for (const mobility::Record& record : pending) {
      if (!std::isfinite(record.position.lat) ||
          !std::isfinite(record.position.lon)) {
        throw BadRecordError("poisoned pending record (non-finite "
                             "coordinate) for user '" +
                             state.user + "'");
      }
    }
  }
  return kernel_.fold(state.kernel, pending);
}

StreamEngine::DecideOutcome StreamEngine::decide_user(UserState& state,
                                                      bool canonical,
                                                      bool degrade) {
  if (state.quarantined) {
    // Frozen. Anything still queued (quarantine tripped mid-drain) is
    // dead-lettered, never folded.
    if (!state.pending.empty()) {
      dead_letters_->add(state.pending.size());
      state.dead_letters += state.pending.size();
      state.pending.clear();
    }
    return DecideOutcome::kSkipped;
  }
  const std::size_t queued = state.pending.size();
  if (MOOD_FAIL_POINT("stream.drain.corrupt") ==
          testing::FailAction::kCorrupt &&
      !state.pending.empty()) {
    state.pending.front().position.lat =
        std::numeric_limits<double>::quiet_NaN();
  }
  const auto run = [&]() -> DecideOutcome {
    MOOD_FAIL_POINT("stream.decide.user");  // kThrow fires inside hit()
    const std::size_t folded = fold_pending(state);
    if (canonical) {
      kernel_.finalize(state.kernel, folded);
      return DecideOutcome::kFull;
    }
    if (degrade) {
      kernel_.decide_degraded(state.kernel, folded);
      return DecideOutcome::kDegraded;
    }
    kernel_.decide(state.kernel, folded);
    return DecideOutcome::kFull;
  };
  return run_isolated(state, queued, run);
}

template <typename Run>
StreamEngine::DecideOutcome StreamEngine::run_isolated(UserState& state,
                                                       std::size_t queued,
                                                       Run&& run) {
  if (config_.resilience.on_bad_record != BadRecordPolicy::kQuarantine) {
    return run();  // strict: a decision-path fault aborts, as before PR 8
  }
  try {
    return run();
  } catch (const std::exception& e) {
    // Per-user fault isolation: freeze this user, hold their last
    // verdict, keep the shard drain alive. The queued points died with
    // the fault (folded or not, they produced no decision).
    state.quarantined = true;
    state.quarantine_reason = e.what();
    state.pending.clear();
    state.dead_letters += queued;
    dead_letters_->add(queued);
    quarantined_users_->add(1);
    support::log_warn("quarantined user '", state.user,
                      "' on decision fault: ", e.what());
    return DecideOutcome::kQuarantined;
  }
}

std::size_t StreamEngine::drain() {
  support::expects(config_.engine == EngineMode::kBatch,
                   "StreamEngine::drain: batch mode only (loop workers "
                   "decide at admission time)");
  std::atomic<std::size_t> decided{0};
  const ResilienceConfig& res = config_.resilience;
  const bool timed = config_.telemetry.stage_timers;
  // The batch tag spans carry: this drain's ordinal (0-based).
  const std::uint64_t batch = batches_->value();
  const auto drain_one = [&](std::size_t shard) {
    MOOD_TRACE("stream.drain",
               {.shard = static_cast<std::uint32_t>(shard), .batch = batch});
    const Clock::time_point t0 = timed ? Clock::now() : Clock::time_point{};
    // Shed hysteresis, evaluated once per shard per drain on the pending
    // backlog: engage at the high watermark, release at the low one. The
    // latch is only touched by this shard's own drain task.
    bool shed = false;
    if (res.shed_high_watermark > 0) {
      const std::size_t backlog = store_.pending_events(shard);
      std::uint8_t& latch = shedding_[shard];
      if (latch != 0) {
        if (backlog <= res.shed_low_watermark) {
          latch = 0;
          support::log_info("shed released on shard ", shard, " at batch ",
                            batch, " (backlog ", backlog, " <= low ",
                            res.shed_low_watermark, ")");
        }
      } else if (backlog >= res.shed_high_watermark) {
        latch = 1;
        support::log_info("shed engaged on shard ", shard, " at batch ",
                          batch, " (backlog ", backlog, " >= high ",
                          res.shed_high_watermark, ")");
      }
      shed = latch != 0;
    }
    std::size_t full_decides = 0;
    std::size_t degraded_decides = 0;
    decided.fetch_add(
        store_.drain_shard(
            shard,
            [&](UserState& state) {
              // Degrade when shedding, or past the drain budget (the
              // budget caps *full* decisions per shard per batch; the
              // tail of the dirty list gets held-verdict rechecks).
              const bool degrade =
                  shed || (res.drain_budget > 0 &&
                           full_decides >= res.drain_budget);
              MOOD_TRACE("stream.decide",
                         {.shard = static_cast<std::uint32_t>(shard),
                          .user = state.user,
                          .batch = batch});
              const Clock::time_point u0 =
                  timed ? Clock::now() : Clock::time_point{};
              switch (decide_user(state, /*canonical=*/false, degrade)) {
                case DecideOutcome::kFull:
                  ++full_decides;
                  break;
                case DecideOutcome::kDegraded:
                  ++degraded_decides;
                  break;
                default:
                  break;
              }
              if (timed) stage_decide_->record(seconds_since(u0), shard);
            }),
        std::memory_order_relaxed);
    if (degraded_decides > 0) degraded_batches_->add(1, shard);
    if (timed) stage_drain_->record(seconds_since(t0), shard);
  };
  if (config_.parallel_drain && store_.shard_count() > 1) {
    support::parallel_for(store_.shard_count(), drain_one);
  } else {
    for (std::size_t s = 0; s < store_.shard_count(); ++s) drain_one(s);
  }
  batches_->add(1);
  // Checkpoint boundary: every pending queue and dirty list is empty here
  // (the drain above folded or dead-lettered them all), so the captured
  // state is exactly "the stream up to this position, fully decided".
  maybe_checkpoint();
  maybe_export_metrics();
  return decided.load();
}

void StreamEngine::finish() {
  if (config_.engine == EngineMode::kLoop && loop_ != nullptr) {
    // Drain the rings and retire the workers; a captured worker fault
    // surfaces here (both calls rethrow). After this the engine is
    // single-threaded again and the canonical pass below owns all state.
    quiesce();
    stop_loop(/*swallow=*/false);
  }
  MOOD_TRACE("stream.finish");
  store_.for_each([&](UserState& state) {
    // Fold any points that arrived after the last drain (the replay
    // driver always drains, so this is a safety net for direct engine
    // users), then run the kernel's canonical final decision. Quarantined
    // users stay frozen; a fault here quarantines like the drain path.
    decide_user(state, /*canonical=*/true, /*degrade=*/false);
  });
}

std::vector<UserDecision> StreamEngine::decisions() const {
  std::vector<UserDecision> out;
  store_.for_each([&](const UserState& state) {
    const decision::UserKernelState& k = state.kernel;
    UserDecision d;
    d.user = state.user;
    d.decision = k.decision;
    d.winner = k.winner;
    d.events = k.events;
    d.risk_transitions = k.risk_transitions;
    d.searches = k.searches;
    d.window_points = k.window.size();
    d.window_slices = k.window.tracked_slice() > 0
                          ? k.window.slice_count(k.window.tracked_slice())
                          : 0;
    d.quarantined = state.quarantined;
    d.quarantine_reason = state.quarantine_reason;
    d.dead_letters = state.dead_letters;
    d.degraded = k.degraded;
    out.push_back(std::move(d));
  });
  std::sort(out.begin(), out.end(),
            [](const UserDecision& a, const UserDecision& b) {
              return a.user < b.user;
            });
  return out;
}

StreamStats StreamEngine::raw_stats() const {
  const decision::KernelStats kernel = kernel_.stats();
  StreamStats s;
  s.events = events_->value();
  s.batches = batches_->value();
  s.decisions = kernel.decisions;
  s.exposed_events = kernel.exposed_events;
  s.protected_events = kernel.protected_events;
  s.searches = kernel.searches;
  s.rechecks = kernel.rechecks;
  s.profile_refreshes = kernel.profile_refreshes;
  s.stay_updates = kernel.stay_updates;
  s.stay_rebuilds = kernel.stay_rebuilds;
  s.heatmap_updates = kernel.heatmap_updates;
  s.evicted_points = kernel.evicted_points;
  s.evicted_users = store_.eviction_count();
  s.lppm_applications = kernel.lppm_applications;
  s.attack_invocations = kernel.attack_invocations;
  s.index_prunes = kernel.index_prunes;
  s.exact_evals = kernel.exact_evals;
  s.index_rebuilds = kernel.index_rebuilds;
  s.checkpoints = checkpoints_->value();
  s.checkpoint_bytes = checkpoint_bytes_->value();
  s.checkpoint_failures = checkpoint_failures_->value();
  s.bad_records = bad_records_->value();
  s.dead_letters = dead_letters_->value();
  s.quarantined_users = quarantined_users_->value();
  s.shed_decisions = kernel.shed_decisions;
  s.degraded_batches = degraded_batches_->value();
  s.backpressure_events = backpressure_events_->value();
  s.quarantined_snapshots = quarantined_snapshots_->value();
  return s;
}

void StreamEngine::note_quarantined_snapshots(std::uint64_t n) {
  quarantined_snapshots_->add(n);
}

StreamStats StreamEngine::stats() const {
  StreamStats s = raw_stats();
  // Continuation across restore: the baseline is the restored snapshot's
  // cumulative counters; the floor is what this process had accrued when
  // the restore completed (e.g. the attack-training index rebuild, which
  // the baseline already counts once). Both are all-zero when no restore
  // happened, leaving s untouched.
  for (const auto field : kContinuedStats) {
    s.*field = stats_baseline_.*field + (s.*field - stats_floor_.*field);
  }
  return s;
}

std::uint64_t StreamEngine::stream_position() const {
  return position_offset_ + events_->value();
}

void StreamEngine::configure_checkpoints(CheckpointPolicy policy,
                                         SnapshotContext context) {
  checkpoint_policy_ = std::move(policy);
  snapshot_context_ = std::move(context);
}

SnapshotData StreamEngine::capture_snapshot() const {
  SnapshotData data;
  data.context = snapshot_context_;
  data.config = config_;
  data.stream_position = stream_position();
  data.stats = stats();
  data.batches = data.stats.batches;
  data.shard_clocks = store_.shard_clocks();
  store_.for_each([&](const UserState& state) {
    const decision::UserKernelState& k = state.kernel;
    UserSnapshot u;
    u.user = state.user;
    u.window = k.window.records();
    u.pending = state.pending;
    u.heatmap_built = k.heatmap_built;
    if (k.heatmap_built) {
      u.heatmap_total = k.heatmap.raw_total();
      u.heatmap_counts = k.heatmap.raw_counts();
    }
    u.stays_init = k.stays_init;
    u.stay_origin_set = k.stay_origin_set;
    u.stay_origin = k.stay_origin;
    if (k.stays_init) u.stays = k.stays.snapshot();
    u.profiles_built = k.profiles_built;
    u.markov_states = k.markov.states();
    u.poi_centers = k.poi.centers();
    u.stale_appended = k.stale_appended;
    u.stale_evicted = k.stale_evicted;
    u.stale_points = k.stale_points;
    u.has_decision = k.has_decision;
    u.decision = static_cast<std::uint8_t>(k.decision);
    u.winner = k.winner;
    u.searched_events = k.searched_events;
    u.events = k.events;
    u.risk_transitions = k.risk_transitions;
    u.searches = k.searches;
    u.rechecks = k.rechecks;
    u.degraded = k.degraded;
    u.last_touch = state.last_touch;
    u.quarantined = state.quarantined;
    u.quarantine_reason = state.quarantine_reason;
    u.dead_letters = state.dead_letters;
    u.has_last_time = state.has_last_time;
    u.last_time = state.last_time;
    data.users.push_back(std::move(u));
  });
  std::sort(data.users.begin(), data.users.end(),
            [](const UserSnapshot& a, const UserSnapshot& b) {
              return a.user < b.user;
            });
  data.shard_shedding.assign(shedding_.begin(), shedding_.end());
  return data;
}

void StreamEngine::restore_snapshot(const SnapshotData& data) {
  support::expects(events_->value() == 0 && batches_->value() == 0 &&
                       position_offset_ == 0 && store_.user_count() == 0,
                   "StreamEngine::restore_snapshot: must run on a freshly "
                   "constructed engine");
  // Resuming under different knobs would silently change published
  // decisions; the CLI additionally fingerprints seed/dataset/stream shape
  // before calling here.
  if (data.config.shards != config_.shards ||
      data.config.window_seconds != config_.window_seconds ||
      data.config.max_points != config_.max_points ||
      data.config.max_users_per_shard != config_.max_users_per_shard ||
      data.config.staleness_points != config_.staleness_points) {
    throw SnapshotError(
        "snapshot gateway config does not match this gateway (shards/"
        "window/max-points/max-users/staleness must all agree)");
  }
  const ResilienceConfig& snap = data.config.resilience;
  const ResilienceConfig& mine = config_.resilience;
  if (snap.on_bad_record != mine.on_bad_record ||
      snap.max_pending_per_shard != mine.max_pending_per_shard ||
      snap.shed_high_watermark != mine.shed_high_watermark ||
      snap.shed_low_watermark != mine.shed_low_watermark ||
      snap.drain_budget != mine.drain_budget) {
    throw SnapshotError(
        "snapshot resilience config does not match this gateway "
        "(on-bad-record/max-pending/shed watermarks/drain-budget must all "
        "agree)");
  }
  // The execution mode and loop cadences shape the mid-stream decision
  // sequence (and therefore the continued counters), so a resumed run
  // must keep them. loop_autostart is timing-only and excluded.
  if (data.config.engine != config_.engine ||
      data.config.loop_slack != config_.loop_slack ||
      data.config.loop_recheck != config_.loop_recheck) {
    throw SnapshotError(
        "snapshot engine mode does not match this gateway "
        "(engine/loop-slack/loop-recheck must all agree)");
  }

  for (const UserSnapshot& u : data.users) {
    UserState state;
    state.user = u.user;
    state.pending = u.pending;
    state.last_touch = u.last_touch;
    decision::UserKernelState& k = state.kernel;
    // The restored window arrives sorted (it was captured from a Trace),
    // so this constructor preserves it verbatim — including duplicate
    // timestamps, whose relative order a re-sort could not disturb anyway
    // (stable, and only invoked when actually unsorted).
    k.window = mobility::Trace(u.user, u.window);
    kernel_.restore_window_tracking(k);
    k.heatmap_built = u.heatmap_built;
    if (u.heatmap_built) {
      k.heatmap = profiles::CompiledHeatmap::from_counts(u.heatmap_counts,
                                                         u.heatmap_total);
    }
    k.stays_init = u.stays_init;
    k.stay_origin = u.stay_origin;
    k.stay_origin_set = u.stay_origin_set;
    if (u.stays_init) {
      k.stays = clustering::TrackedVisitStates::from_snapshot(u.stays);
    }
    k.profiles_built = u.profiles_built;
    k.markov = profiles::CompiledMarkovProfile::from_compiled(u.markov_states);
    k.poi = profiles::CompiledPoiProfile::from_compiled(u.poi_centers);
    k.stale_appended = static_cast<std::size_t>(u.stale_appended);
    k.stale_evicted = static_cast<std::size_t>(u.stale_evicted);
    k.stale_points = static_cast<std::size_t>(u.stale_points);
    k.has_decision = u.has_decision;
    k.decision = static_cast<decision::Decision>(u.decision);
    k.winner = u.winner;
    k.searched_events = u.searched_events;
    k.events = u.events;
    k.risk_transitions = u.risk_transitions;
    k.searches = u.searches;
    k.rechecks = u.rechecks;
    k.degraded = u.degraded;
    state.quarantined = u.quarantined;
    state.quarantine_reason = u.quarantine_reason;
    state.dead_letters = u.dead_letters;
    state.has_last_time = u.has_last_time;
    state.last_time = u.last_time;
    store_.restore_user(std::move(state));
  }
  store_.restore_shard_clocks(data.shard_clocks);
  support::expects(data.shard_shedding.size() == shedding_.size(),
                   "StreamEngine::restore_snapshot: shed-latch count "
                   "mismatch");
  shedding_.assign(data.shard_shedding.begin(), data.shard_shedding.end());
  position_offset_ = data.stream_position;
  last_checkpoint_position_ = data.stream_position;
  last_metrics_position_ = data.stream_position;
  stats_baseline_ = data.stats;
  stats_floor_ = raw_stats();
  support::log_info("restored gateway state at position ",
                    data.stream_position, " (", data.users.size(),
                    " users, ", data.stats.batches, " batches)");
}

std::uint64_t StreamEngine::checkpoint_now() {
  support::expects(!checkpoint_policy_.dir.empty(),
                   "StreamEngine::checkpoint_now: no checkpoint directory "
                   "configured");
  MOOD_TRACE("stream.checkpoint");
  const Clock::time_point t0 = config_.telemetry.stage_timers
                                   ? Clock::now()
                                   : Clock::time_point{};
  const SnapshotData data = capture_snapshot();
  const std::string bytes = encode_snapshot(data);
  write_snapshot_file(checkpoint_policy_.dir, bytes);
  last_checkpoint_position_ = data.stream_position;
  checkpoints_->add(1);
  checkpoint_bytes_->add(bytes.size());
  if (config_.telemetry.stage_timers) {
    stage_checkpoint_->record(seconds_since(t0));
  }
  support::log_info("checkpoint committed at position ",
                    data.stream_position, " (", bytes.size(), " bytes)");
  return bytes.size();
}

void StreamEngine::maybe_checkpoint() {
  if (checkpoint_policy_.dir.empty() || checkpoint_policy_.every_events == 0) {
    return;
  }
  if (stream_position() - last_checkpoint_position_ <
      checkpoint_policy_.every_events) {
    return;
  }
  try {
    checkpoint_now();
  } catch (const support::Error& e) {
    // A gateway outlives a full disk: count it, keep deciding, retry at
    // the next cadence. The fault-injection tests assert both halves.
    checkpoint_failures_->add(1);
    support::log_warn("checkpoint failed at position ", stream_position(),
                      ": ", e.what());
  }
}

// ---------------------------------------------------------------------------
// Telemetry surface

void StreamEngine::refresh_gauges() const {
  const StreamStats s = stats();
  for (const StatGauge& g : kStatGauges) {
    registry_.gauge(g.name).set(static_cast<double>(s.*g.field));
  }
  registry_.gauge("mood_gateway_resident_users")
      .set(static_cast<double>(store_.user_count()));
  std::size_t backlog = 0;
  for (std::size_t shard = 0; shard < store_.shard_count(); ++shard) {
    backlog += store_.pending_events(shard);
  }
  registry_.gauge("mood_gateway_pending_events")
      .set(static_cast<double>(backlog));
  if (config_.engine == EngineMode::kLoop) {
    // Instantaneous ingest-ring depths. The registry's gauges are
    // single-series (no label support), so the per-shard views get
    // suffixed names alongside the total.
    std::uint64_t total = 0;
    for (std::size_t shard = 0; shard < store_.shard_count(); ++shard) {
      std::uint64_t depth = 0;
      if (loop_ != nullptr) {
        const LoopState::Lane& lane = loop_->lanes[shard];
        depth = lane.pushed.load(std::memory_order_relaxed) -
                lane.processed.load(std::memory_order_relaxed);
      }
      total += depth;
      registry_.gauge("mood_queue_depth_shard" + std::to_string(shard))
          .set(static_cast<double>(depth));
    }
    registry_.gauge("mood_queue_depth").set(static_cast<double>(total));
  }
}

telemetry::MetricsSnapshot StreamEngine::metrics_snapshot() const {
  refresh_gauges();
  return registry_.snapshot();
}

void StreamEngine::configure_metrics_export(std::string path,
                                            std::uint64_t every_events) {
  metrics_path_ = std::move(path);
  metrics_every_events_ = every_events;
  last_metrics_position_ = stream_position();
}

std::uint64_t StreamEngine::export_metrics_now() const {
  support::expects(!metrics_path_.empty(),
                   "StreamEngine::export_metrics_now: no metrics path "
                   "configured");
  const std::string text = telemetry::render_exposition(metrics_snapshot());
  telemetry::write_exposition_file(metrics_path_, text);
  return text.size();
}

void StreamEngine::maybe_export_metrics() {
  if (metrics_path_.empty() || metrics_every_events_ == 0) return;
  if (stream_position() - last_metrics_position_ < metrics_every_events_) {
    return;
  }
  last_metrics_position_ = stream_position();
  try {
    export_metrics_now();
  } catch (const support::Error& e) {
    // Same stance as checkpoints: observability must never take the
    // gateway down. Count, log, retry at the next cadence.
    metrics_export_failures_->add(1);
    support::log_warn("metrics export failed at position ",
                      stream_position(), ": ", e.what());
  }
}

std::vector<telemetry::HistogramSnapshot> StreamEngine::replay_latency_shards()
    const {
  std::vector<telemetry::HistogramSnapshot> lanes;
  lanes.reserve(replay_latency_->lane_count());
  for (std::size_t lane = 0; lane < replay_latency_->lane_count(); ++lane) {
    lanes.push_back(replay_latency_->lane_snapshot(lane));
  }
  return lanes;
}

}  // namespace mood::stream
