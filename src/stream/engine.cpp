#include "stream/engine.h"

#include <algorithm>
#include <utility>

#include "support/error.h"
#include "support/thread_pool.h"

namespace mood::stream {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

StreamEngine::StreamEngine(decision::MoodEngine engine, StreamConfig config)
    : kernel_(std::move(engine),
              decision::KernelConfig{config.window_seconds, config.max_points,
                                     config.staleness_points}),
      config_(config),
      store_(StoreConfig{config.shards, config.max_users_per_shard}) {
  support::expects(config_.shards > 0, "StreamEngine: shards must be > 0");
}

void StreamEngine::ingest(const StreamEvent& event) {
  store_.enqueue(event);
  events_.fetch_add(1, kRelaxed);
}

std::size_t StreamEngine::fold_pending(UserState& state) {
  const std::vector<mobility::Record> pending = std::move(state.pending);
  state.pending.clear();
  return kernel_.fold(state.kernel, pending);
}

std::size_t StreamEngine::drain() {
  std::atomic<std::size_t> decided{0};
  const auto drain_one = [&](std::size_t shard) {
    decided.fetch_add(
        store_.drain_shard(shard,
                           [&](UserState& state) {
                             kernel_.decide(state.kernel,
                                            fold_pending(state));
                           }),
        kRelaxed);
  };
  if (config_.parallel_drain && store_.shard_count() > 1) {
    support::parallel_for(store_.shard_count(), drain_one);
  } else {
    for (std::size_t s = 0; s < store_.shard_count(); ++s) drain_one(s);
  }
  batches_.fetch_add(1, kRelaxed);
  return decided.load();
}

void StreamEngine::finish() {
  store_.for_each([&](UserState& state) {
    // Fold any points that arrived after the last drain (the replay
    // driver always drains, so this is a safety net for direct engine
    // users), then run the kernel's canonical final decision.
    kernel_.finalize(state.kernel, fold_pending(state));
  });
}

std::vector<UserDecision> StreamEngine::decisions() const {
  std::vector<UserDecision> out;
  store_.for_each([&](const UserState& state) {
    const decision::UserKernelState& k = state.kernel;
    UserDecision d;
    d.user = state.user;
    d.decision = k.decision;
    d.winner = k.winner;
    d.events = k.events;
    d.risk_transitions = k.risk_transitions;
    d.searches = k.searches;
    d.window_points = k.window.size();
    d.window_slices = k.window.tracked_slice() > 0
                          ? k.window.slice_count(k.window.tracked_slice())
                          : 0;
    out.push_back(std::move(d));
  });
  std::sort(out.begin(), out.end(),
            [](const UserDecision& a, const UserDecision& b) {
              return a.user < b.user;
            });
  return out;
}

StreamStats StreamEngine::stats() const {
  const decision::KernelStats kernel = kernel_.stats();
  StreamStats s;
  s.events = events_.load();
  s.batches = batches_.load();
  s.decisions = kernel.decisions;
  s.exposed_events = kernel.exposed_events;
  s.protected_events = kernel.protected_events;
  s.searches = kernel.searches;
  s.rechecks = kernel.rechecks;
  s.profile_refreshes = kernel.profile_refreshes;
  s.stay_updates = kernel.stay_updates;
  s.stay_rebuilds = kernel.stay_rebuilds;
  s.heatmap_updates = kernel.heatmap_updates;
  s.evicted_points = kernel.evicted_points;
  s.evicted_users = store_.eviction_count();
  s.lppm_applications = kernel.lppm_applications;
  s.attack_invocations = kernel.attack_invocations;
  s.index_prunes = kernel.index_prunes;
  s.exact_evals = kernel.exact_evals;
  s.index_rebuilds = kernel.index_rebuilds;
  return s;
}

}  // namespace mood::stream
