#include "stream/engine.h"

#include <algorithm>
#include <utility>

#include "attacks/ap_attack.h"
#include "attacks/pit_attack.h"
#include "attacks/poi_attack.h"
#include "support/error.h"
#include "support/thread_pool.h"

namespace mood::stream {

namespace {
constexpr std::size_t kNeverSearched = static_cast<std::size_t>(-1);
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

StreamEngine::StreamEngine(core::MoodEngine engine, StreamConfig config)
    : engine_(std::move(engine)),
      config_(config),
      store_(StoreConfig{config.shards, config.max_users_per_shard}) {
  support::expects(config_.shards > 0, "StreamEngine: shards must be > 0");
  for (const auto* attack : engine_.attacks()) {
    if (ap_ == nullptr) {
      ap_ = dynamic_cast<const attacks::ApAttack*>(attack);
      if (ap_ != nullptr) continue;
    }
    if (pit_ == nullptr) {
      pit_ = dynamic_cast<const attacks::PitAttack*>(attack);
      if (pit_ != nullptr) continue;
    }
    if (poi_ == nullptr) poi_ = dynamic_cast<const attacks::PoiAttack*>(attack);
  }
}

void StreamEngine::ingest(const StreamEvent& event) {
  store_.enqueue(event);
  events_.fetch_add(1, kRelaxed);
}

std::size_t StreamEngine::fold(UserState& state) {
  if (state.pending.empty()) return 0;
  if (state.window.empty() && state.window.tracked_slice() == 0) {
    // Fresh (or LRU-recycled) window: enable O(1) preslice bookkeeping so
    // window_slices snapshots never re-scan the timestamps.
    state.window.track_slices(engine_.config().preslice);
  }
  std::vector<mobility::Record> added = std::move(state.pending);
  state.pending.clear();
  for (const auto& record : added) state.window.append(record);

  // Evict expired / over-cap points from the front. The newest record is
  // never evicted (its own age is zero), so the window stays non-empty.
  std::size_t expired = 0;
  const auto& records = state.window.records();
  if (config_.window_seconds > 0) {
    const mobility::Timestamp cutoff =
        state.window.back().time - config_.window_seconds;
    while (expired < records.size() && records[expired].time <= cutoff) {
      ++expired;
    }
  }
  if (config_.max_points > 0 && records.size() - expired > config_.max_points) {
    expired = records.size() - config_.max_points;
  }
  std::vector<mobility::Record> evicted(
      records.begin(), records.begin() + static_cast<std::ptrdiff_t>(expired));
  if (expired > 0) {
    state.window.drop_front(expired);
    evicted_points_.fetch_add(expired, kRelaxed);
  }

  if (ap_ != nullptr) {
    if (!state.heatmap_built) {
      state.heatmap = profiles::CompiledHeatmap::incremental(state.window,
                                                             ap_->grid());
      state.heatmap_built = true;
    } else {
      state.heatmap.apply_update(added, evicted, ap_->grid());
    }
    heatmap_updates_.fetch_add(1, kRelaxed);
  }
  state.stale_points += added.size() + evicted.size();
  state.events += added.size();
  return added.size();
}

void StreamEngine::refresh_profiles(UserState& state, bool force) {
  if (pit_ == nullptr && poi_ == nullptr) return;
  const bool stale = !state.profiles_built || state.stale_points > 0;
  if (!stale) return;
  if (!force && config_.staleness_points > 0 && state.profiles_built &&
      state.stale_points < config_.staleness_points) {
    return;  // within the staleness bound — keep serving the cached forms
  }
  if (pit_ != nullptr) state.markov = pit_->compile_anonymous(state.window);
  if (poi_ != nullptr) state.poi = poi_->compile_anonymous(state.window);
  state.profiles_built = true;
  state.stale_points = 0;
  profile_rebuilds_.fetch_add(1, kRelaxed);
}

bool StreamEngine::at_risk(const UserState& state) {
  // Same predicate as the batch no-LPPM evaluator: does any trained attack
  // re-identify the raw window? Walked in suite order; the OR is
  // order-independent, the early exit only saves work.
  for (const auto* attack : engine_.attacks()) {
    attack_invocations_.fetch_add(1, kRelaxed);
    bool caught = false;
    if (attack == ap_) {
      caught = ap_->reidentifies_compiled(state.heatmap, state.user);
    } else if (attack == pit_) {
      caught = pit_->reidentifies_compiled(state.markov, state.user);
    } else if (attack == poi_) {
      caught = poi_->reidentifies_compiled(state.poi, state.user);
    } else {
      caught = attack->reidentifies_target(state.window, state.user);
    }
    if (caught) return true;
  }
  return false;
}

void StreamEngine::select_mechanism(UserState& state, bool force_search) {
  core::ProtectionResult cost;
  if (!force_search && !state.winner.empty()) {
    // Cheap path: does the mechanism selected earlier still defeat every
    // attack on the grown window?
    ++state.rechecks;
    rechecks_.fetch_add(1, kRelaxed);
    if (engine_.recheck(state.winner, state.window, &cost)) {
      lppm_applications_.fetch_add(cost.lppm_applications, kRelaxed);
      attack_invocations_.fetch_add(cost.attack_invocations, kRelaxed);
      return;
    }
  }
  const auto candidate = engine_.search(state.window, &cost);
  lppm_applications_.fetch_add(cost.lppm_applications, kRelaxed);
  attack_invocations_.fetch_add(cost.attack_invocations, kRelaxed);
  state.winner = candidate ? candidate->lppm : std::string{};
  state.searched_points = state.window.size();
  ++state.searches;
  searches_.fetch_add(1, kRelaxed);
}

void StreamEngine::decide(UserState& state) {
  const std::size_t folded = fold(state);
  if (folded == 0) return;
  refresh_profiles(state, /*force=*/false);

  const bool risk = at_risk(state);
  const Decision decision = risk ? Decision::kProtect : Decision::kExpose;
  if (state.has_decision && decision != state.decision) {
    ++state.risk_transitions;
  }
  state.has_decision = true;
  state.decision = decision;

  if (risk) {
    select_mechanism(state, /*force_search=*/state.winner.empty());
    protected_events_.fetch_add(folded, kRelaxed);
  } else {
    state.winner.clear();
    state.searched_points = kNeverSearched;
    exposed_events_.fetch_add(folded, kRelaxed);
  }
  decisions_.fetch_add(1, kRelaxed);
}

void StreamEngine::finalize(UserState& state) {
  // Fold any points that arrived after the last drain (the replay driver
  // always drains, so this is a safety net for direct engine users).
  const std::size_t folded = fold(state);
  if (state.window.empty()) return;
  refresh_profiles(state, /*force=*/true);

  const bool risk = at_risk(state);
  const Decision decision = risk ? Decision::kProtect : Decision::kExpose;
  if (state.has_decision && decision != state.decision) {
    ++state.risk_transitions;
  }
  state.has_decision = true;
  state.decision = decision;

  if (risk) {
    // Canonicalise: unless the last full search already saw exactly this
    // window, re-search so the reported winner is what the batch
    // evaluator's search would pick on the final window.
    if (state.searched_points != state.window.size()) {
      select_mechanism(state, /*force_search=*/true);
    }
    protected_events_.fetch_add(folded, kRelaxed);
  } else {
    state.winner.clear();
    state.searched_points = kNeverSearched;
    exposed_events_.fetch_add(folded, kRelaxed);
  }
  if (folded > 0) decisions_.fetch_add(1, kRelaxed);
}

std::size_t StreamEngine::drain() {
  std::atomic<std::size_t> decided{0};
  const auto drain_one = [&](std::size_t shard) {
    decided.fetch_add(
        store_.drain_shard(shard, [&](UserState& state) { decide(state); }),
        kRelaxed);
  };
  if (config_.parallel_drain && store_.shard_count() > 1) {
    support::parallel_for(store_.shard_count(), drain_one);
  } else {
    for (std::size_t s = 0; s < store_.shard_count(); ++s) drain_one(s);
  }
  batches_.fetch_add(1, kRelaxed);
  return decided.load();
}

void StreamEngine::finish() {
  store_.for_each([&](UserState& state) { finalize(state); });
}

std::vector<UserDecision> StreamEngine::decisions() const {
  std::vector<UserDecision> out;
  store_.for_each([&](const UserState& state) {
    UserDecision d;
    d.user = state.user;
    d.decision = state.decision;
    d.winner = state.winner;
    d.events = state.events;
    d.risk_transitions = state.risk_transitions;
    d.searches = state.searches;
    d.window_points = state.window.size();
    d.window_slices = state.window.tracked_slice() > 0
                          ? state.window.slice_count(
                                state.window.tracked_slice())
                          : 0;
    out.push_back(std::move(d));
  });
  std::sort(out.begin(), out.end(),
            [](const UserDecision& a, const UserDecision& b) {
              return a.user < b.user;
            });
  return out;
}

StreamStats StreamEngine::stats() const {
  StreamStats s;
  s.events = events_.load();
  s.batches = batches_.load();
  s.decisions = decisions_.load();
  s.exposed_events = exposed_events_.load();
  s.protected_events = protected_events_.load();
  s.searches = searches_.load();
  s.rechecks = rechecks_.load();
  s.profile_rebuilds = profile_rebuilds_.load();
  s.heatmap_updates = heatmap_updates_.load();
  s.evicted_points = evicted_points_.load();
  s.evicted_users = store_.eviction_count();
  s.lppm_applications = lppm_applications_.load();
  s.attack_invocations = attack_invocations_.load();
  return s;
}

}  // namespace mood::stream
