#include "stream/engine.h"

#include <algorithm>
#include <utility>

#include "stream/snapshot.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/thread_pool.h"

namespace mood::stream {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;

/// The counters that continue across a restore as baseline + (raw -
/// floor). The checkpoint counters are deliberately absent: they describe
/// *this process's* checkpoint activity (reported outside the decision
/// cost block), not the logical stream, so they stay raw.
constexpr std::uint64_t StreamStats::* kContinuedStats[] = {
    &StreamStats::events,          &StreamStats::batches,
    &StreamStats::decisions,       &StreamStats::exposed_events,
    &StreamStats::protected_events, &StreamStats::searches,
    &StreamStats::rechecks,        &StreamStats::profile_refreshes,
    &StreamStats::stay_updates,    &StreamStats::stay_rebuilds,
    &StreamStats::heatmap_updates, &StreamStats::evicted_points,
    &StreamStats::evicted_users,   &StreamStats::lppm_applications,
    &StreamStats::attack_invocations, &StreamStats::index_prunes,
    &StreamStats::exact_evals,     &StreamStats::index_rebuilds,
};
}  // namespace

StreamEngine::StreamEngine(decision::MoodEngine engine, StreamConfig config)
    : kernel_(std::move(engine),
              decision::KernelConfig{config.window_seconds, config.max_points,
                                     config.staleness_points}),
      config_(config),
      store_(StoreConfig{config.shards, config.max_users_per_shard}) {
  support::expects(config_.shards > 0, "StreamEngine: shards must be > 0");
}

void StreamEngine::ingest(const StreamEvent& event) {
  store_.enqueue(event);
  events_.fetch_add(1, kRelaxed);
}

std::size_t StreamEngine::fold_pending(UserState& state) {
  const std::vector<mobility::Record> pending = std::move(state.pending);
  state.pending.clear();
  return kernel_.fold(state.kernel, pending);
}

std::size_t StreamEngine::drain() {
  std::atomic<std::size_t> decided{0};
  const auto drain_one = [&](std::size_t shard) {
    decided.fetch_add(
        store_.drain_shard(shard,
                           [&](UserState& state) {
                             kernel_.decide(state.kernel,
                                            fold_pending(state));
                           }),
        kRelaxed);
  };
  if (config_.parallel_drain && store_.shard_count() > 1) {
    support::parallel_for(store_.shard_count(), drain_one);
  } else {
    for (std::size_t s = 0; s < store_.shard_count(); ++s) drain_one(s);
  }
  batches_.fetch_add(1, kRelaxed);
  // Checkpoint boundary: every pending queue and dirty list is empty here
  // (the drain above folded them all), so the captured state is exactly
  // "the stream up to this position, fully decided".
  maybe_checkpoint();
  return decided.load();
}

void StreamEngine::finish() {
  store_.for_each([&](UserState& state) {
    // Fold any points that arrived after the last drain (the replay
    // driver always drains, so this is a safety net for direct engine
    // users), then run the kernel's canonical final decision.
    kernel_.finalize(state.kernel, fold_pending(state));
  });
}

std::vector<UserDecision> StreamEngine::decisions() const {
  std::vector<UserDecision> out;
  store_.for_each([&](const UserState& state) {
    const decision::UserKernelState& k = state.kernel;
    UserDecision d;
    d.user = state.user;
    d.decision = k.decision;
    d.winner = k.winner;
    d.events = k.events;
    d.risk_transitions = k.risk_transitions;
    d.searches = k.searches;
    d.window_points = k.window.size();
    d.window_slices = k.window.tracked_slice() > 0
                          ? k.window.slice_count(k.window.tracked_slice())
                          : 0;
    out.push_back(std::move(d));
  });
  std::sort(out.begin(), out.end(),
            [](const UserDecision& a, const UserDecision& b) {
              return a.user < b.user;
            });
  return out;
}

StreamStats StreamEngine::raw_stats() const {
  const decision::KernelStats kernel = kernel_.stats();
  StreamStats s;
  s.events = events_.load();
  s.batches = batches_.load();
  s.decisions = kernel.decisions;
  s.exposed_events = kernel.exposed_events;
  s.protected_events = kernel.protected_events;
  s.searches = kernel.searches;
  s.rechecks = kernel.rechecks;
  s.profile_refreshes = kernel.profile_refreshes;
  s.stay_updates = kernel.stay_updates;
  s.stay_rebuilds = kernel.stay_rebuilds;
  s.heatmap_updates = kernel.heatmap_updates;
  s.evicted_points = kernel.evicted_points;
  s.evicted_users = store_.eviction_count();
  s.lppm_applications = kernel.lppm_applications;
  s.attack_invocations = kernel.attack_invocations;
  s.index_prunes = kernel.index_prunes;
  s.exact_evals = kernel.exact_evals;
  s.index_rebuilds = kernel.index_rebuilds;
  s.checkpoints = checkpoints_.load(kRelaxed);
  s.checkpoint_bytes = checkpoint_bytes_.load(kRelaxed);
  s.checkpoint_failures = checkpoint_failures_.load(kRelaxed);
  return s;
}

StreamStats StreamEngine::stats() const {
  StreamStats s = raw_stats();
  // Continuation across restore: the baseline is the restored snapshot's
  // cumulative counters; the floor is what this process had accrued when
  // the restore completed (e.g. the attack-training index rebuild, which
  // the baseline already counts once). Both are all-zero when no restore
  // happened, leaving s untouched.
  for (const auto field : kContinuedStats) {
    s.*field = stats_baseline_.*field + (s.*field - stats_floor_.*field);
  }
  return s;
}

std::uint64_t StreamEngine::stream_position() const {
  return position_offset_ + events_.load(kRelaxed);
}

void StreamEngine::configure_checkpoints(CheckpointPolicy policy,
                                         SnapshotContext context) {
  checkpoint_policy_ = std::move(policy);
  snapshot_context_ = std::move(context);
}

SnapshotData StreamEngine::capture_snapshot() const {
  SnapshotData data;
  data.context = snapshot_context_;
  data.config = config_;
  data.stream_position = stream_position();
  data.stats = stats();
  data.batches = data.stats.batches;
  data.shard_clocks = store_.shard_clocks();
  store_.for_each([&](const UserState& state) {
    const decision::UserKernelState& k = state.kernel;
    UserSnapshot u;
    u.user = state.user;
    u.window = k.window.records();
    u.pending = state.pending;
    u.heatmap_built = k.heatmap_built;
    if (k.heatmap_built) {
      u.heatmap_total = k.heatmap.raw_total();
      u.heatmap_counts = k.heatmap.raw_counts();
    }
    u.stays_init = k.stays_init;
    u.stay_origin_set = k.stay_origin_set;
    u.stay_origin = k.stay_origin;
    if (k.stays_init) u.stays = k.stays.snapshot();
    u.profiles_built = k.profiles_built;
    u.markov_states = k.markov.states();
    u.poi_centers = k.poi.centers();
    u.stale_appended = k.stale_appended;
    u.stale_evicted = k.stale_evicted;
    u.stale_points = k.stale_points;
    u.has_decision = k.has_decision;
    u.decision = static_cast<std::uint8_t>(k.decision);
    u.winner = k.winner;
    u.searched_events = k.searched_events;
    u.events = k.events;
    u.risk_transitions = k.risk_transitions;
    u.searches = k.searches;
    u.rechecks = k.rechecks;
    u.last_touch = state.last_touch;
    data.users.push_back(std::move(u));
  });
  std::sort(data.users.begin(), data.users.end(),
            [](const UserSnapshot& a, const UserSnapshot& b) {
              return a.user < b.user;
            });
  return data;
}

void StreamEngine::restore_snapshot(const SnapshotData& data) {
  support::expects(events_.load() == 0 && batches_.load() == 0 &&
                       position_offset_ == 0 && store_.user_count() == 0,
                   "StreamEngine::restore_snapshot: must run on a freshly "
                   "constructed engine");
  // Resuming under different knobs would silently change published
  // decisions; the CLI additionally fingerprints seed/dataset/stream shape
  // before calling here.
  if (data.config.shards != config_.shards ||
      data.config.window_seconds != config_.window_seconds ||
      data.config.max_points != config_.max_points ||
      data.config.max_users_per_shard != config_.max_users_per_shard ||
      data.config.staleness_points != config_.staleness_points) {
    throw SnapshotError(
        "snapshot gateway config does not match this gateway (shards/"
        "window/max-points/max-users/staleness must all agree)");
  }

  for (const UserSnapshot& u : data.users) {
    UserState state;
    state.user = u.user;
    state.pending = u.pending;
    state.last_touch = u.last_touch;
    decision::UserKernelState& k = state.kernel;
    // The restored window arrives sorted (it was captured from a Trace),
    // so this constructor preserves it verbatim — including duplicate
    // timestamps, whose relative order a re-sort could not disturb anyway
    // (stable, and only invoked when actually unsorted).
    k.window = mobility::Trace(u.user, u.window);
    kernel_.restore_window_tracking(k);
    k.heatmap_built = u.heatmap_built;
    if (u.heatmap_built) {
      k.heatmap = profiles::CompiledHeatmap::from_counts(u.heatmap_counts,
                                                         u.heatmap_total);
    }
    k.stays_init = u.stays_init;
    k.stay_origin = u.stay_origin;
    k.stay_origin_set = u.stay_origin_set;
    if (u.stays_init) {
      k.stays = clustering::TrackedVisitStates::from_snapshot(u.stays);
    }
    k.profiles_built = u.profiles_built;
    k.markov = profiles::CompiledMarkovProfile::from_compiled(u.markov_states);
    k.poi = profiles::CompiledPoiProfile::from_compiled(u.poi_centers);
    k.stale_appended = static_cast<std::size_t>(u.stale_appended);
    k.stale_evicted = static_cast<std::size_t>(u.stale_evicted);
    k.stale_points = static_cast<std::size_t>(u.stale_points);
    k.has_decision = u.has_decision;
    k.decision = static_cast<decision::Decision>(u.decision);
    k.winner = u.winner;
    k.searched_events = u.searched_events;
    k.events = u.events;
    k.risk_transitions = u.risk_transitions;
    k.searches = u.searches;
    k.rechecks = u.rechecks;
    store_.restore_user(std::move(state));
  }
  store_.restore_shard_clocks(data.shard_clocks);
  position_offset_ = data.stream_position;
  last_checkpoint_position_ = data.stream_position;
  stats_baseline_ = data.stats;
  stats_floor_ = raw_stats();
}

std::uint64_t StreamEngine::checkpoint_now() {
  support::expects(!checkpoint_policy_.dir.empty(),
                   "StreamEngine::checkpoint_now: no checkpoint directory "
                   "configured");
  const SnapshotData data = capture_snapshot();
  const std::string bytes = encode_snapshot(data);
  write_snapshot_file(checkpoint_policy_.dir, bytes);
  last_checkpoint_position_ = data.stream_position;
  checkpoints_.fetch_add(1, kRelaxed);
  checkpoint_bytes_.fetch_add(bytes.size(), kRelaxed);
  return bytes.size();
}

void StreamEngine::maybe_checkpoint() {
  if (checkpoint_policy_.dir.empty() || checkpoint_policy_.every_events == 0) {
    return;
  }
  if (stream_position() - last_checkpoint_position_ <
      checkpoint_policy_.every_events) {
    return;
  }
  try {
    checkpoint_now();
  } catch (const support::Error& e) {
    // A gateway outlives a full disk: count it, keep deciding, retry at
    // the next cadence. The fault-injection tests assert both halves.
    checkpoint_failures_.fetch_add(1, kRelaxed);
    support::log_warn("checkpoint failed at position ", stream_position(),
                      ": ", e.what());
  }
}

}  // namespace mood::stream
