#pragma once

// Single-producer single-consumer lock-free ring buffer — the ingest lane
// between the gateway's producer thread and one per-shard worker in
// `--engine=loop` mode (engine.h). One queue per shard keeps the contract
// strictly SPSC: the thread calling StreamEngine::ingest is the only
// pusher, the shard's worker the only popper.
//
// Memory-ordering contract (pinned by tests/spsc_queue_test.cpp, which
// runs under ASan/UBSan in CI and TSan locally):
//   - try_push stores the slot, then publishes with a release store of
//     tail_; try_pop acquires tail_ before reading the slot. The pop-side
//     release of head_ / push-side acquire of head_ mirror it so a slot is
//     never overwritten before the consumer finished moving out of it.
//   - head_ and tail_ live on their own cache lines (alignas) with a
//     relaxed mirror of the opposing index next to each, so the steady
//     state is one cache-line ping per wrap, not per element.
//
// Capacity is rounded up to a power of two so wrap is a mask, not a mod.
// The ring holds at most capacity() elements (indices are monotonically
// increasing 64-bit counters, so the classic "one empty slot" tax does
// not apply).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/error.h"

namespace mood::stream {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t min_capacity) {
    support::expects(min_capacity > 0, "SpscQueue capacity must be positive");
    std::size_t capacity = 1;
    while (capacity < min_capacity) capacity <<= 1;
    slots_.resize(capacity);
    mask_ = capacity - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side. Moves `value` into the ring and returns true, or
  /// returns false (leaving `value` untouched) when the ring is full.
  bool try_push(T&& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= slots_.size()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= slots_.size()) return false;
    }
    slots_[static_cast<std::size_t>(tail) & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Moves the oldest element into `out` and returns true,
  /// or returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[static_cast<std::size_t>(head) & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate element count; exact only when called from a thread that
  /// is both producer and consumer (e.g. after the worker has quiesced).
  std::size_t size_approx() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  bool empty_approx() const { return size_approx() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Consumer-owned line: head_ plus the consumer's stale view of tail_.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_cache_ = 0;
  // Producer-owned line: tail_ plus the producer's stale view of head_.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t head_cache_ = 0;
  // Pad so the producer line does not share with whatever follows.
  alignas(64) std::byte pad_[64] = {};
};

}  // namespace mood::stream
