#pragma once

/// \file event.h
/// The wire unit of the online MooD gateway: one timestamped location fix
/// attributed to a user, plus the gateway's per-event verdict vocabulary.
///
/// The batch harness evaluates whole test traces; the gateway instead
/// consumes a globally time-ordered stream of these events (see replay.h
/// for the dataset -> stream conversion) and answers, per micro-batch and
/// per user, whether the user's current sliding window can be published
/// raw (expose) or needs a protection mechanism (protect).

#include <cstdint>

#include "decision/kernel.h"
#include "mobility/record.h"
#include "mobility/trace.h"

namespace mood::stream {

/// One location fix arriving at the gateway.
struct StreamEvent {
  mobility::UserId user;
  mobility::Record record;
  /// Global arrival index (assigned by make_event_stream; ties in record
  /// time keep each user's original record order).
  std::uint64_t seq = 0;
};

/// The verdict vocabulary now lives with the decision kernel (shared by
/// the batch gateway evaluator); re-exported here as the gateway's wire
/// vocabulary.
using decision::Decision;
using decision::to_string;

}  // namespace mood::stream
