#pragma once

/// \file event.h
/// The wire unit of the online MooD gateway: one timestamped location fix
/// attributed to a user, plus the gateway's per-event verdict vocabulary.
///
/// The batch harness evaluates whole test traces; the gateway instead
/// consumes a globally time-ordered stream of these events (see replay.h
/// for the dataset -> stream conversion) and answers, per micro-batch and
/// per user, whether the user's current sliding window can be published
/// raw (expose) or needs a protection mechanism (protect).

#include <cstdint>
#include <string>

#include "mobility/record.h"
#include "mobility/trace.h"

namespace mood::stream {

/// One location fix arriving at the gateway.
struct StreamEvent {
  mobility::UserId user;
  mobility::Record record;
  /// Global arrival index (assigned by make_event_stream; ties in record
  /// time keep each user's original record order).
  std::uint64_t seq = 0;
};

/// Gateway verdict for a user's events in one micro-batch.
enum class Decision {
  kExpose,   ///< no trained attack re-identifies the current window
  kProtect,  ///< at least one attack does; a mechanism must be applied
};

inline std::string to_string(Decision decision) {
  return decision == Decision::kExpose ? "expose" : "protect";
}

}  // namespace mood::stream
