#pragma once

/// \file replay.h
/// Replay — drive the online gateway from an offline dataset and measure
/// it.
///
/// Converts per-user test traces into one globally time-ordered event
/// stream and pushes it through a StreamEngine in fixed-size micro-batches,
/// optionally paced (a target event rate, or dataset-time compression),
/// measuring sustained throughput and per-event decision latency
/// (p50/p95/p99). Batch boundaries are event-count based and therefore
/// deterministic: pacing and thread counts shape the latency numbers, never
/// the decisions.
///
/// Latency accounting: an event's latency runs from its (scheduled)
/// arrival at the gateway to the completion of the drain() that decided
/// its micro-batch — ingest queueing plus decision time, which is what a
/// caller blocked on the gateway would observe. finish() runs after the
/// clock stops (it is a flush, not serving work).
///
/// Since PR 9 the percentiles come from the engine's per-shard
/// log-bucketed latency histogram (mood_replay_latency_seconds, see
/// telemetry/metrics.h) instead of buffering every sample for one big
/// sort: memory is O(batch_events) instead of O(stream length), at the
/// price of bucket resolution. With 16 log buckets per power-of-two
/// octave the reported p50/p95/p99/max carry a relative error of at most
/// (1/16)/2 ~= 3.2% — comfortably inside a 5% bound — while count and
/// mean stay exact (the histogram accumulates the true sum).

#include <cstdint>
#include <vector>

#include "mobility/dataset.h"
#include "stream/engine.h"
#include "stream/event.h"
#include "telemetry/metrics.h"

namespace mood::stream {

/// Replay pacing + batching knobs.
struct ReplayOptions {
  /// Events per wall-clock second pushed into the gateway; 0 = unpaced
  /// (maximum sustainable rate — the throughput-bench mode).
  double target_rate = 0.0;
  /// Dataset seconds replayed per wall-clock second; 0 = off. Ignored when
  /// target_rate is set. (A 30-day dataset at 86400 replays in ~30 s.)
  double time_compression = 0.0;
  /// Micro-batch size: drain() runs after this many events (and once more
  /// for the trailing partial batch). Must be > 0.
  std::size_t batch_events = 256;
  /// Resume position: skip the first `resume_events` events (already
  /// folded into the engine by restore_snapshot) and continue from there.
  /// Batch engines: must be a multiple of batch_events (or ==
  /// events.size()), so the resumed run's micro-batch boundaries — which
  /// decisions may depend on — line up with the uninterrupted run's.
  /// Checkpoints fire at drain() boundaries, so any restored position
  /// satisfies this. Loop engines have no batch boundaries: any position
  /// a loop checkpoint produced (the engine quiesces first, so the
  /// position covers every processed event) is valid.
  std::size_t resume_events = 0;
};

/// Nearest-rank latency percentiles over the decided events, in seconds,
/// derived from the log-bucketed histogram (bucket-midpoint values,
/// <= ~3.2% relative error; mean is exact).
struct LatencySummary {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

/// Outcome of one replay run. After a resume, `events`/`batches` are
/// cumulative across the restored prefix (mirroring the engine's
/// continued counters) while the wall-clock, throughput, and latency
/// numbers describe this session only — a restore cannot retroactively
/// measure the crashed process's timings.
struct ReplayResult {
  std::size_t events = 0;
  std::size_t batches = 0;
  std::size_t session_events = 0;  ///< events ingested by this process
  double wall_seconds = 0.0;       ///< first arrival -> last drain done
  double events_per_second = 0.0;  ///< session_events / wall_seconds
  LatencySummary latency;
  /// The full latency distribution behind `latency`: merged across
  /// shards, plus one per-shard view (index == shard). Serialized as the
  /// mood-stream/1 `replay.latency` histogram block.
  telemetry::HistogramSnapshot latency_histogram;
  std::vector<telemetry::HistogramSnapshot> latency_per_shard;
  std::vector<UserDecision> decisions;  ///< final per-user state (sorted)
  StreamStats stats;                    ///< engine counters after finish()
};

/// Flattens the test halves of `pairs` into one event stream sorted by
/// record time; ties keep each user's original record order, so every
/// user's sub-stream re-assembles their test trace exactly. `seq` is the
/// global stream position.
std::vector<StreamEvent> make_event_stream(
    const std::vector<mobility::TrainTestPair>& pairs);

/// Deterministic poison injection for chaos drills (the CLI's
/// --poison-users/--poison-stride flags and the chaos-smoke CI job).
struct PoisonSpec {
  /// Poison the first `users` user ids (in sorted id order) that appear
  /// in the stream. 0 = no-op.
  std::size_t users = 0;
  /// Corrupt every stride-th event of a poisoned user (1 = every event).
  std::size_t stride = 3;
};

/// Corrupts events of the selected users *in place* — rotating through
/// malformed-coordinate and time-regression kinds — and returns the
/// number of events poisoned. Stream length and order are untouched, so
/// micro-batch boundaries (and therefore every healthy user's decision
/// inputs) are byte-identical to the clean stream: under
/// --on-bad-record=quarantine a chaos run must reproduce healthy users'
/// decisions exactly, and this is the property that makes it testable.
std::size_t inject_poison(std::vector<StreamEvent>& events,
                          const PoisonSpec& spec);

/// Ingests `events` in order through `engine`, then finish()es and
/// snapshots decisions. The execution mode follows the engine's config:
/// batch engines drain every options.batch_events; loop engines stream
/// every event straight to the shard workers (pumping the checkpoint/
/// export cadences per event) and quiesce before the clock stops, so
/// events_per_second covers the full decision work. Pacing
/// (target_rate/time_compression) is per-event in both modes — but only
/// loop mode turns it into per-event decision latency; batch latency is
/// floored by batch accumulation. The engine should be freshly
/// constructed (its counters and state are not reset).
ReplayResult run_replay(StreamEngine& engine,
                        const std::vector<StreamEvent>& events,
                        const ReplayOptions& options = {});

}  // namespace mood::stream
