#pragma once

/// \file user_state.h
/// Sharded in-memory per-user state for the online MooD gateway.
///
/// The store is the gateway's only mutable state: N shards, each guarded
/// by its own mutex, each holding a user-id-keyed map of UserState. Events
/// enqueue O(1) into the owning user's pending queue (ingest path); the
/// decision pipeline later drains every shard's dirty users in parallel
/// (one task per shard on the shared ThreadPool — see engine.h). A user's
/// state is only ever touched under its shard's lock, and a user maps to
/// exactly one shard, so per-user processing is race-free by construction
/// and decisions are independent of the shard count.
///
/// Capacity: max_users_per_shard bounds resident states; admission above
/// the bound evicts the least-recently-updated user (preferring users with
/// no undecided events). Eviction forgets the window — a re-appearing user
/// starts cold — so decisions with a cap engaged are an approximation by
/// design; the unbounded default is exact.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "decision/kernel.h"
#include "mobility/record.h"
#include "mobility/trace.h"
#include "stream/event.h"
#include "stream/resilience.h"
#include "telemetry/metrics.h"

namespace mood::stream {

/// Everything the gateway remembers about one user: the ingest-side queue
/// and LRU bookkeeping (owned here) plus the decision kernel's per-user
/// state — window, incremental compiled profiles, last verdict — which
/// only DecisionKernel calls mutate. Touched only by the owning shard's
/// drain task, under the shard lock.
struct UserState {
  mobility::UserId user;

  /// Points ingested but not yet folded into the window ("dirty" queue).
  std::vector<mobility::Record> pending;

  /// Kernel-owned state: sliding window, compiled profiles (AP heatmap
  /// exactly incremental; PIT/POI through the shared stay tracker),
  /// decision + per-user counters. kernel.window carries the user id.
  decision::UserKernelState kernel;

  /// LRU clock value of the last enqueue (store-maintained).
  std::uint64_t last_touch = 0;

  // ---- Quarantine (see stream/resilience.h) --------------------------
  /// Frozen by the resilience layer: a quarantined user's kernel state is
  /// immutable, every later event of theirs is dead-lettered, and their
  /// published decision holds at the last verdict.
  bool quarantined = false;
  std::string quarantine_reason;  ///< why (empty unless quarantined)
  std::uint64_t dead_letters = 0; ///< events dropped on this user's behalf

  /// Per-user timestamp monotonicity watermark (admission path). Tracks
  /// the newest admitted time so a regression is classified at ingest.
  bool has_last_time = false;
  mobility::Timestamp last_time = 0;
};

/// What UserStateStore::enqueue did with one event under the admission
/// policy — the store's half of the classification (the engine handles
/// stateless checks like coordinate range and id size before calling in).
struct AdmitResult {
  enum class Status : std::uint8_t {
    kAdmitted,     ///< appended to the user's pending queue
    kRejected,     ///< dropped (fail/skip policy); no state was created
    kQuarantined,  ///< this event tripped quarantine on its user
    kDeadLettered, ///< user already quarantined; event dropped
  };
  Status status = Status::kAdmitted;
  /// Human-readable fault description (stable vocabulary from
  /// to_string(AdmissionFault)); nullptr when admitted.
  const char* reason = nullptr;
  /// Events dead-lettered by this call (the event itself, plus any
  /// pending points flushed when quarantine trips).
  std::uint64_t dead_letters = 0;
  /// Pending events resident in the owning shard after this call — the
  /// engine's backpressure input, read under the same lock acquisition.
  std::size_t shard_backlog = 0;
  /// Owning shard of the event's user — the telemetry lane the engine
  /// records admission latency and resilience counters on.
  std::size_t shard = 0;
};

/// Store tuning knobs (a subset of StreamConfig, see engine.h).
struct StoreConfig {
  std::size_t shards = 8;              ///< > 0
  std::size_t max_users_per_shard = 0; ///< 0 = unbounded
  /// Metrics registry the store's counters (LRU evictions) register in;
  /// must outlive the store. nullptr = the store keeps a private
  /// registry (standalone/test use), so counter sites are unconditional.
  telemetry::MetricsRegistry* registry = nullptr;
};

/// Sharded user-state map. enqueue() is thread-safe; drain_shard() hands
/// out states under the shard lock.
class UserStateStore {
 public:
  explicit UserStateStore(StoreConfig config);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Owning shard of a user id (stable within a run; decisions do not
  /// depend on the mapping, only load distribution does).
  [[nodiscard]] std::size_t shard_of(const mobility::UserId& user) const;

  /// Admits the event into its user's pending queue, creating the state
  /// (and LRU-evicting above the capacity bound) as needed. The store
  /// handles the stateful half of admission: events for a quarantined
  /// user are dead-lettered, and a per-user timestamp regression — or a
  /// `poisoned` verdict the engine computed statelessly (`poison_reason`
  /// says why) — is rejected or trips quarantine per `policy`. The
  /// default arguments are the strict fast path PR ≤ 7 callers used.
  AdmitResult enqueue(const StreamEvent& event,
                      BadRecordPolicy policy = BadRecordPolicy::kFail,
                      bool poisoned = false,
                      const char* poison_reason = nullptr);

  /// Loop-engine admission: same classification as enqueue(), but when the
  /// event is admitted, `fn` runs on the user's state immediately, under
  /// the same single lock acquisition — dequeue→fold→decide without a
  /// second lookup. The user is NOT pushed onto the dirty list (fn is
  /// expected to fold the pending queue; the before/after backlog delta is
  /// accounted exactly as drain_shard does), so a worker processing every
  /// event inline never grows the dirty list it would never drain.
  AdmitResult admit_and_process(const StreamEvent& event,
                                BadRecordPolicy policy, bool poisoned,
                                const char* poison_reason,
                                const std::function<void(UserState&)>& fn);

  /// Pending (ingested, not yet folded) events resident in `shard` — the
  /// backlog the overload-control policy reads. Maintained incrementally;
  /// taking the count costs one lock acquisition.
  [[nodiscard]] std::size_t pending_events(std::size_t shard) const;

  /// Runs fn on every dirty user of `shard` (in first-dirty order) under
  /// the shard lock, then clears the dirty list. Returns the number of
  /// users visited.
  std::size_t drain_shard(std::size_t shard,
                          const std::function<void(UserState&)>& fn);

  /// Runs fn on every resident state, shard by shard, under each shard's
  /// lock — the final-flush path.
  void for_each(const std::function<void(UserState&)>& fn);

  /// Read-only traversal for snapshots (same locking).
  void for_each(const std::function<void(const UserState&)>& fn) const;

  [[nodiscard]] std::size_t user_count() const;
  [[nodiscard]] std::uint64_t eviction_count() const;

  // ---- Checkpoint / restore hooks (see stream/snapshot.h) ------------
  /// Inserts one fully rehydrated state into its owning shard, replacing
  /// any resident state for the same user. Re-marks the user dirty when
  /// its pending queue is non-empty (cannot happen for checkpoint-boundary
  /// snapshots — drain() folds every queue — but keeps ad-hoc snapshots
  /// honest).
  void restore_user(UserState state);

  /// Per-shard LRU clocks, in shard order. Captured alongside last_touch
  /// stamps so restored eviction ordering matches the uninterrupted run.
  [[nodiscard]] std::vector<std::uint64_t> shard_clocks() const;
  void restore_shard_clocks(const std::vector<std::uint64_t>& clocks);

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<mobility::UserId, UserState> states;
    /// Users with pending points, in the order they first became dirty.
    std::vector<mobility::UserId> dirty;
    std::uint64_t clock = 0;
    /// Sum of resident pending-queue sizes (the backpressure signal).
    std::size_t backlog = 0;
  };

  /// Evicts one user to make room; prefers the least-recently-touched
  /// clean (no-pending) state, falling back to the least-recently-touched
  /// overall. Caller holds the shard lock. `shard_index` is the eviction
  /// counter's telemetry lane.
  void evict_one(Shard& shard, std::size_t shard_index);

  /// The admission classification shared by enqueue() and
  /// admit_and_process(). Caller holds the shard lock. When the event is
  /// admitted and `track_dirty`, the user joins the dirty list (the
  /// micro-batch drain contract); loop-mode callers pass false and
  /// process the state inline instead. Returns the state pointer on
  /// kAdmitted (nullptr otherwise).
  UserState* admit_locked(Shard& shard, std::size_t shard_index,
                          const StreamEvent& event, BadRecordPolicy policy,
                          bool poisoned, const char* poison_reason,
                          bool track_dirty, AdmitResult& result);

  StoreConfig config_;
  /// Backing registry when the caller did not supply one.
  std::unique_ptr<telemetry::MetricsRegistry> own_registry_;
  /// LRU evictions, one lane per shard (mood_store_evicted_users_total).
  telemetry::Counter* evictions_ = nullptr;
  std::vector<Shard> shards_;
};

}  // namespace mood::stream
