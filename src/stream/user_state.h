#pragma once

/// \file user_state.h
/// Sharded in-memory per-user state for the online MooD gateway.
///
/// The store is the gateway's only mutable state: N shards, each guarded
/// by its own mutex, each holding a user-id-keyed map of UserState. Events
/// enqueue O(1) into the owning user's pending queue (ingest path); the
/// decision pipeline later drains every shard's dirty users in parallel
/// (one task per shard on the shared ThreadPool — see engine.h). A user's
/// state is only ever touched under its shard's lock, and a user maps to
/// exactly one shard, so per-user processing is race-free by construction
/// and decisions are independent of the shard count.
///
/// Capacity: max_users_per_shard bounds resident states; admission above
/// the bound evicts the least-recently-updated user (preferring users with
/// no undecided events). Eviction forgets the window — a re-appearing user
/// starts cold — so decisions with a cap engaged are an approximation by
/// design; the unbounded default is exact.

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mobility/record.h"
#include "mobility/trace.h"
#include "profiles/heatmap.h"
#include "profiles/markov_profile.h"
#include "profiles/poi_profile.h"
#include "stream/event.h"

namespace mood::stream {

/// Everything the gateway remembers about one user. Mutated only by the
/// owning shard's drain task, under the shard lock.
struct UserState {
  mobility::UserId user;

  /// Sliding window of recent records (tracked-slice bookkeeping enabled
  /// by the engine so preslice partitions stay O(1) per append).
  mobility::Trace window;

  /// Points ingested but not yet folded into the window ("dirty" queue).
  std::vector<mobility::Record> pending;

  // ---- Incremental profile state (see engine.h for the policy) --------
  /// AP side: maintained exactly via CompiledHeatmap::apply_update.
  profiles::CompiledHeatmap heatmap;
  bool heatmap_built = false;
  /// PIT / POI side: rebuilt from the window under a staleness bound.
  profiles::CompiledMarkovProfile markov;
  profiles::CompiledPoiProfile poi;
  bool profiles_built = false;
  /// Points folded since the last markov/poi rebuild.
  std::size_t stale_points = 0;

  // ---- Last decision --------------------------------------------------
  bool has_decision = false;
  Decision decision = Decision::kExpose;
  /// Mechanism currently applied for a protect-decision user ("" when the
  /// whole-window search found nothing protective).
  std::string winner;
  /// Window size at the last *full* search (SIZE_MAX = never searched):
  /// when it equals the final window size the winner is canonical, i.e.
  /// exactly what the batch evaluator's search would pick.
  std::size_t searched_points = static_cast<std::size_t>(-1);

  // ---- Per-user counters ----------------------------------------------
  std::uint64_t events = 0;            ///< events folded so far
  std::uint64_t exposed_events = 0;    ///< events decided expose
  std::uint64_t risk_transitions = 0;  ///< expose<->protect flips
  std::uint64_t searches = 0;          ///< full mechanism selections
  std::uint64_t rechecks = 0;          ///< cheap current-winner re-checks

  /// LRU clock value of the last enqueue (store-maintained).
  std::uint64_t last_touch = 0;
};

/// Store tuning knobs (a subset of StreamConfig, see engine.h).
struct StoreConfig {
  std::size_t shards = 8;              ///< > 0
  std::size_t max_users_per_shard = 0; ///< 0 = unbounded
};

/// Sharded user-state map. enqueue() is thread-safe; drain_shard() hands
/// out states under the shard lock.
class UserStateStore {
 public:
  explicit UserStateStore(StoreConfig config);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Owning shard of a user id (stable within a run; decisions do not
  /// depend on the mapping, only load distribution does).
  [[nodiscard]] std::size_t shard_of(const mobility::UserId& user) const;

  /// Appends the event's record to its user's pending queue, creating the
  /// state (and LRU-evicting above the capacity bound) as needed.
  void enqueue(const StreamEvent& event);

  /// Runs fn on every dirty user of `shard` (in first-dirty order) under
  /// the shard lock, then clears the dirty list. Returns the number of
  /// users visited.
  std::size_t drain_shard(std::size_t shard,
                          const std::function<void(UserState&)>& fn);

  /// Runs fn on every resident state, shard by shard, under each shard's
  /// lock — the final-flush path.
  void for_each(const std::function<void(UserState&)>& fn);

  /// Read-only traversal for snapshots (same locking).
  void for_each(const std::function<void(const UserState&)>& fn) const;

  [[nodiscard]] std::size_t user_count() const;
  [[nodiscard]] std::uint64_t eviction_count() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<mobility::UserId, UserState> states;
    /// Users with pending points, in the order they first became dirty.
    std::vector<mobility::UserId> dirty;
    std::uint64_t clock = 0;
    std::uint64_t evictions = 0;
  };

  /// Evicts one user to make room; prefers the least-recently-touched
  /// clean (no-pending) state, falling back to the least-recently-touched
  /// overall. Caller holds the shard lock.
  void evict_one(Shard& shard);

  StoreConfig config_;
  std::vector<Shard> shards_;
};

}  // namespace mood::stream
