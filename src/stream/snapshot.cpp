#include "stream/snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <optional>
#include <system_error>

#include "support/failpoint.h"
#include "support/logging.h"
#include "telemetry/trace.h"

namespace mood::stream {

namespace fs = std::filesystem;
using mood::testing::FailAction;

namespace {

constexpr std::uint32_t kSectionConfig = 1;
constexpr std::uint32_t kSectionStats = 2;
constexpr std::uint32_t kSectionUsers = 3;
constexpr std::uint32_t kSectionCount = 3;
constexpr char kTmpName[] = ".snapshot.tmp";
constexpr char kFilePrefix[] = "snapshot-";
constexpr std::size_t kKeepSnapshots = 2;

// ---- Little-endian primitives ----------------------------------------
// Byte-by-byte so the wire format is identical on any host; doubles travel
// as their IEEE-754 bit pattern.

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_double(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_bool(std::string& out, bool v) { put_u8(out, v ? 1 : 0); }

void put_string(std::string& out, const std::string& s) {
  put_u64(out, s.size());
  out.append(s);
}

/// Bounds-checked sequential reader over one payload. Every overrun or
/// malformed value throws SnapshotError — decode never returns a partial
/// document.
class Reader {
 public:
  Reader(std::string_view bytes, const char* what)
      : bytes_(bytes), what_(what) {}

  std::uint8_t get_u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }

  std::uint32_t get_u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t get_u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  double get_double() { return std::bit_cast<double>(get_u64()); }

  bool get_bool() {
    const std::uint8_t v = get_u8();
    if (v > 1) fail("boolean byte out of range");
    return v != 0;
  }

  std::string get_string() {
    const std::uint64_t len = get_u64();
    need(len);
    std::string s(bytes_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  void skip(std::uint64_t n) {
    need(n);
    pos_ += static_cast<std::size_t>(n);
  }

  /// Validates an element count against the bytes actually left, so a
  /// corrupt length cannot drive a giant allocation before the next
  /// bounds check fires.
  std::size_t get_count(std::size_t min_element_bytes) {
    const std::uint64_t count = get_u64();
    if (min_element_bytes > 0 && count > remaining() / min_element_bytes) {
      fail("element count exceeds remaining payload");
    }
    return static_cast<std::size_t>(count);
  }

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

  void expect_done() const {
    if (pos_ != bytes_.size()) fail("trailing bytes");
  }

  [[noreturn]] void fail(const char* detail) const {
    throw SnapshotError(std::string("mood-snapshot/1: malformed ") + what_ +
                        ": " + detail);
  }

 private:
  void need(std::uint64_t n) {
    if (n > remaining()) fail("truncated payload");
  }

  std::string_view bytes_;
  const char* what_;
  std::size_t pos_ = 0;
};

// ---- Composite encoders/decoders -------------------------------------

void put_record(std::string& out, const mobility::Record& r) {
  put_double(out, r.position.lat);
  put_double(out, r.position.lon);
  put_i64(out, r.time);
}

mobility::Record get_record(Reader& in) {
  mobility::Record r;
  r.position.lat = in.get_double();
  r.position.lon = in.get_double();
  r.time = in.get_i64();
  return r;
}

void put_records(std::string& out, const std::vector<mobility::Record>& v) {
  put_u64(out, v.size());
  for (const auto& r : v) put_record(out, r);
}

std::vector<mobility::Record> get_records(Reader& in) {
  const std::size_t count = in.get_count(24);
  std::vector<mobility::Record> v;
  v.reserve(count);
  for (std::size_t i = 0; i < count; ++i) v.push_back(get_record(in));
  return v;
}

void put_poi(std::string& out, const clustering::Poi& p) {
  put_double(out, p.center.lat);
  put_double(out, p.center.lon);
  put_u64(out, p.record_count);
  put_i64(out, p.dwell);
  put_i64(out, p.start);
  put_i64(out, p.end);
}

clustering::Poi get_poi(Reader& in) {
  clustering::Poi p;
  p.center.lat = in.get_double();
  p.center.lon = in.get_double();
  p.record_count = static_cast<std::size_t>(in.get_u64());
  p.dwell = in.get_i64();
  p.start = in.get_i64();
  p.end = in.get_i64();
  return p;
}

void put_stay_tracker(std::string& out,
                      const clustering::StayTrackerSnapshot& s) {
  put_double(out, s.params.max_diameter_m);
  put_i64(out, s.params.min_dwell);
  put_u64(out, s.params.min_points);
  put_bool(out, s.has_origin);
  put_double(out, s.origin.lat);
  put_double(out, s.origin.lon);
  put_u64(out, s.finals.size());
  for (const auto& stay : s.finals) {
    put_poi(out, stay.poi);
    put_u64(out, stay.start);
    put_u64(out, stay.end);
  }
  put_bool(out, s.run_valid);
  put_u64(out, s.run_anchor);
  put_u64(out, s.run_j);
  put_double(out, s.run_sx);
  put_double(out, s.run_sy);
  put_i64(out, s.run_t_start);
  put_i64(out, s.run_t_end);
  put_u64(out, s.base);
  put_u64(out, s.size);
  put_u64(out, s.generation);
  put_u64(out, s.updates);
  put_u64(out, s.rebuilds);
}

clustering::StayTrackerSnapshot get_stay_tracker(Reader& in) {
  clustering::StayTrackerSnapshot s;
  s.params.max_diameter_m = in.get_double();
  s.params.min_dwell = in.get_i64();
  s.params.min_points = static_cast<std::size_t>(in.get_u64());
  s.has_origin = in.get_bool();
  s.origin.lat = in.get_double();
  s.origin.lon = in.get_double();
  const std::size_t finals = in.get_count(64);
  s.finals.reserve(finals);
  for (std::size_t i = 0; i < finals; ++i) {
    clustering::StayTrackerSnapshot::Stay stay;
    stay.poi = get_poi(in);
    stay.start = in.get_u64();
    stay.end = in.get_u64();
    s.finals.push_back(stay);
  }
  s.run_valid = in.get_bool();
  s.run_anchor = in.get_u64();
  s.run_j = in.get_u64();
  s.run_sx = in.get_double();
  s.run_sy = in.get_double();
  s.run_t_start = in.get_i64();
  s.run_t_end = in.get_i64();
  s.base = in.get_u64();
  s.size = in.get_u64();
  s.generation = in.get_u64();
  s.updates = in.get_u64();
  s.rebuilds = in.get_u64();
  return s;
}

void put_visit_states(std::string& out,
                      const clustering::TrackedVisitStatesSnapshot& s) {
  put_stay_tracker(out, s.stays);
  put_double(out, s.visits.merge_distance_m);
  put_u64(out, s.visits.states.size());
  for (const auto& poi : s.visits.states) put_poi(out, poi);
  put_u64(out, s.visits.folded);
  put_u64(out, s.synced_generation);
}

clustering::TrackedVisitStatesSnapshot get_visit_states(Reader& in) {
  clustering::TrackedVisitStatesSnapshot s;
  s.stays = get_stay_tracker(in);
  s.visits.merge_distance_m = in.get_double();
  const std::size_t states = in.get_count(48);
  s.visits.states.reserve(states);
  for (std::size_t i = 0; i < states; ++i) {
    s.visits.states.push_back(get_poi(in));
  }
  s.visits.folded = static_cast<std::size_t>(in.get_u64());
  s.synced_generation = in.get_u64();
  return s;
}

void put_user(std::string& out, const UserSnapshot& u) {
  put_string(out, u.user);
  put_records(out, u.window);
  put_records(out, u.pending);

  put_bool(out, u.heatmap_built);
  put_double(out, u.heatmap_total);
  put_u64(out, u.heatmap_counts.size());
  for (const auto& [cell, count] : u.heatmap_counts) {
    put_i32(out, cell.ix);
    put_i32(out, cell.iy);
    put_double(out, count);
  }

  put_bool(out, u.stays_init);
  put_bool(out, u.stay_origin_set);
  put_double(out, u.stay_origin.lat);
  put_double(out, u.stay_origin.lon);
  if (u.stays_init) put_visit_states(out, u.stays);

  put_bool(out, u.profiles_built);
  put_u64(out, u.markov_states.size());
  for (const auto& state : u.markov_states) {
    put_double(out, state.center.lat_rad);
    put_double(out, state.center.lon_deg);
    put_double(out, state.center.cos_lat);
    put_double(out, state.weight);
  }
  put_u64(out, u.poi_centers.size());
  for (const auto& center : u.poi_centers) {
    put_double(out, center.lat_rad);
    put_double(out, center.lon_deg);
    put_double(out, center.cos_lat);
  }
  put_u64(out, u.stale_appended);
  put_u64(out, u.stale_evicted);
  put_u64(out, u.stale_points);

  put_bool(out, u.has_decision);
  put_u8(out, u.decision);
  put_string(out, u.winner);
  put_u64(out, u.searched_events);

  put_u64(out, u.events);
  put_u64(out, u.risk_transitions);
  put_u64(out, u.searches);
  put_u64(out, u.rechecks);
  put_u64(out, u.degraded);
  put_u64(out, u.last_touch);

  put_bool(out, u.quarantined);
  put_string(out, u.quarantine_reason);
  put_u64(out, u.dead_letters);
  put_bool(out, u.has_last_time);
  put_i64(out, u.last_time);
}

UserSnapshot get_user(Reader& in) {
  UserSnapshot u;
  u.user = in.get_string();
  u.window = get_records(in);
  u.pending = get_records(in);

  u.heatmap_built = in.get_bool();
  u.heatmap_total = in.get_double();
  const std::size_t cells = in.get_count(16);
  u.heatmap_counts.reserve(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    geo::CellIndex cell;
    cell.ix = in.get_i32();
    cell.iy = in.get_i32();
    const double count = in.get_double();
    u.heatmap_counts.emplace_back(cell, count);
  }

  u.stays_init = in.get_bool();
  u.stay_origin_set = in.get_bool();
  u.stay_origin.lat = in.get_double();
  u.stay_origin.lon = in.get_double();
  if (u.stays_init) u.stays = get_visit_states(in);

  u.profiles_built = in.get_bool();
  const std::size_t markov = in.get_count(32);
  u.markov_states.reserve(markov);
  for (std::size_t i = 0; i < markov; ++i) {
    profiles::CompiledMarkovState state;
    state.center.lat_rad = in.get_double();
    state.center.lon_deg = in.get_double();
    state.center.cos_lat = in.get_double();
    state.weight = in.get_double();
    u.markov_states.push_back(state);
  }
  const std::size_t pois = in.get_count(24);
  u.poi_centers.reserve(pois);
  for (std::size_t i = 0; i < pois; ++i) {
    geo::TrigPoint center;
    center.lat_rad = in.get_double();
    center.lon_deg = in.get_double();
    center.cos_lat = in.get_double();
    u.poi_centers.push_back(center);
  }
  u.stale_appended = in.get_u64();
  u.stale_evicted = in.get_u64();
  u.stale_points = in.get_u64();

  u.has_decision = in.get_bool();
  u.decision = in.get_u8();
  if (u.decision > 1) in.fail("decision byte out of range");
  u.winner = in.get_string();
  u.searched_events = in.get_u64();

  u.events = in.get_u64();
  u.risk_transitions = in.get_u64();
  u.searches = in.get_u64();
  u.rechecks = in.get_u64();
  u.degraded = in.get_u64();
  u.last_touch = in.get_u64();

  u.quarantined = in.get_bool();
  u.quarantine_reason = in.get_string();
  if (!u.quarantined && !u.quarantine_reason.empty()) {
    in.fail("quarantine reason on a non-quarantined user");
  }
  u.dead_letters = in.get_u64();
  u.has_last_time = in.get_bool();
  u.last_time = in.get_i64();
  return u;
}

std::string encode_config_section(const SnapshotData& data) {
  std::string out;
  put_u64(out, data.context.seed);
  put_string(out, data.context.dataset);
  put_u64(out, data.context.total_events);
  put_u64(out, data.context.batch_events);
  put_u64(out, data.config.shards);
  put_i64(out, data.config.window_seconds);
  put_u64(out, data.config.max_points);
  put_u64(out, data.config.max_users_per_shard);
  put_u64(out, data.config.staleness_points);
  const ResilienceConfig& res = data.config.resilience;
  put_u8(out, static_cast<std::uint8_t>(res.on_bad_record));
  put_u64(out, res.max_pending_per_shard);
  put_u64(out, res.shed_high_watermark);
  put_u64(out, res.shed_low_watermark);
  put_u64(out, res.drain_budget);
  // PR 10: execution mode + loop cadences. Decision-relevant mid-stream
  // (the loop tier policy keys on them), so they live in the fingerprint;
  // loop_autostart is timing-only and excluded.
  put_u8(out, static_cast<std::uint8_t>(data.config.engine));
  put_u64(out, data.config.loop_slack);
  put_u64(out, data.config.loop_recheck);
  return out;
}

void decode_config_section(Reader& in, SnapshotData& data) {
  data.context.seed = in.get_u64();
  data.context.dataset = in.get_string();
  data.context.total_events = in.get_u64();
  data.context.batch_events = in.get_u64();
  data.config.shards = static_cast<std::size_t>(in.get_u64());
  data.config.window_seconds = in.get_i64();
  data.config.max_points = static_cast<std::size_t>(in.get_u64());
  data.config.max_users_per_shard = static_cast<std::size_t>(in.get_u64());
  data.config.staleness_points = static_cast<std::size_t>(in.get_u64());
  ResilienceConfig& res = data.config.resilience;
  const std::uint8_t policy = in.get_u8();
  if (policy > static_cast<std::uint8_t>(BadRecordPolicy::kQuarantine)) {
    in.fail("bad-record policy byte out of range");
  }
  res.on_bad_record = static_cast<BadRecordPolicy>(policy);
  res.max_pending_per_shard = static_cast<std::size_t>(in.get_u64());
  res.shed_high_watermark = static_cast<std::size_t>(in.get_u64());
  res.shed_low_watermark = static_cast<std::size_t>(in.get_u64());
  res.drain_budget = static_cast<std::size_t>(in.get_u64());
  const std::uint8_t engine = in.get_u8();
  if (engine > static_cast<std::uint8_t>(EngineMode::kLoop)) {
    in.fail("engine mode byte out of range");
  }
  data.config.engine = static_cast<EngineMode>(engine);
  data.config.loop_slack = static_cast<std::size_t>(in.get_u64());
  data.config.loop_recheck = static_cast<std::size_t>(in.get_u64());
  in.expect_done();
}

std::string encode_stats_section(const SnapshotData& data) {
  std::string out;
  put_u64(out, data.stream_position);
  put_u64(out, data.batches);
  const StreamStats& s = data.stats;
  for (const std::uint64_t v :
       {s.events, s.batches, s.decisions, s.exposed_events, s.protected_events,
        s.searches, s.rechecks, s.profile_refreshes, s.stay_updates,
        s.stay_rebuilds, s.heatmap_updates, s.evicted_points, s.evicted_users,
        s.lppm_applications, s.attack_invocations, s.index_prunes,
        s.exact_evals, s.index_rebuilds, s.checkpoints, s.checkpoint_bytes,
        s.checkpoint_failures, s.bad_records, s.dead_letters,
        s.quarantined_users, s.shed_decisions, s.degraded_batches,
        s.backpressure_events, s.quarantined_snapshots}) {
    put_u64(out, v);
  }
  put_u64(out, data.shard_clocks.size());
  for (const std::uint64_t clock : data.shard_clocks) put_u64(out, clock);
  put_u64(out, data.shard_shedding.size());
  for (const std::uint8_t latch : data.shard_shedding) put_u8(out, latch);
  return out;
}

void decode_stats_section(Reader& in, SnapshotData& data) {
  data.stream_position = in.get_u64();
  data.batches = in.get_u64();
  StreamStats& s = data.stats;
  for (std::uint64_t* field :
       {&s.events, &s.batches, &s.decisions, &s.exposed_events,
        &s.protected_events, &s.searches, &s.rechecks, &s.profile_refreshes,
        &s.stay_updates, &s.stay_rebuilds, &s.heatmap_updates,
        &s.evicted_points, &s.evicted_users, &s.lppm_applications,
        &s.attack_invocations, &s.index_prunes, &s.exact_evals,
        &s.index_rebuilds, &s.checkpoints, &s.checkpoint_bytes,
        &s.checkpoint_failures, &s.bad_records, &s.dead_letters,
        &s.quarantined_users, &s.shed_decisions, &s.degraded_batches,
        &s.backpressure_events, &s.quarantined_snapshots}) {
    *field = in.get_u64();
  }
  const std::size_t shards = in.get_count(8);
  data.shard_clocks.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    data.shard_clocks.push_back(in.get_u64());
  }
  const std::size_t latches = in.get_count(1);
  data.shard_shedding.reserve(latches);
  for (std::size_t i = 0; i < latches; ++i) {
    const std::uint8_t latch = in.get_u8();
    if (latch > 1) in.fail("shed latch byte out of range");
    data.shard_shedding.push_back(latch);
  }
  in.expect_done();
}

std::string encode_users_section(const SnapshotData& data) {
  std::string out;
  put_u64(out, data.users.size());
  for (const auto& user : data.users) put_user(out, user);
  return out;
}

void decode_users_section(Reader& in, SnapshotData& data) {
  const std::size_t count = in.get_count(1);
  data.users.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    data.users.push_back(get_user(in));
    if (i > 0 && !(data.users[i - 1].user < data.users[i].user)) {
      in.fail("users not strictly sorted by id");
    }
  }
  in.expect_done();
}

// ---- File helpers ----------------------------------------------------

/// Closes the wrapped descriptor on every exit path — fail points throw
/// from arbitrary protocol steps and must not leak descriptors.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
  void close_now() {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
};

[[noreturn]] void throw_errno(const std::string& op, const std::string& path) {
  throw support::IoError(op + " '" + path + "' failed: " +
                         std::strerror(errno));
}

/// Parses `snapshot-<seq>.moodsnap`; nullopt for anything else.
std::optional<std::uint64_t> parse_sequence(const std::string& filename) {
  const std::string prefix = kFilePrefix;
  const std::string suffix = kSnapshotSuffix;
  if (filename.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (filename.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (filename.compare(filename.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
    return std::nullopt;
  }
  const std::string digits = filename.substr(
      prefix.size(), filename.size() - prefix.size() - suffix.size());
  if (digits.empty()) return std::nullopt;
  std::uint64_t seq = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return seq;
}

/// Snapshot (sequence, filename) pairs in `dir`, newest first.
std::vector<std::pair<std::uint64_t, std::string>> scan_snapshots(
    const std::string& dir) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    throw support::IoError("cannot read checkpoint directory '" + dir +
                           "': " + ec.message());
  }
  std::vector<std::pair<std::uint64_t, std::string>> found;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (const auto seq = parse_sequence(name)) found.emplace_back(*seq, name);
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return found;
}

/// Reads a whole snapshot file. Honors the snapshot.read.* fail points:
/// kTorn at snapshot.read.file returns only a prefix of the bytes — the
/// short-read case decode must reject.
std::string read_file(const std::string& path) {
  if (MOOD_FAIL_POINT("snapshot.read.open") == FailAction::kTorn) {
    throw support::IoError("fail point 'snapshot.read.open' injected an I/O "
                           "error (torn degraded to error)");
  }
  Fd fd{::open(path.c_str(), O_RDONLY | O_CLOEXEC)};
  if (fd.fd < 0) throw_errno("open", path);
  struct stat st{};
  if (::fstat(fd.fd, &st) != 0) throw_errno("stat", path);
  std::string bytes;
  bytes.resize(static_cast<std::size_t>(st.st_size));
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ::ssize_t n =
        ::read(fd.fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("read", path);
    }
    if (n == 0) break;  // file shrank underneath us; decode will reject
    off += static_cast<std::size_t>(n);
  }
  bytes.resize(off);
  if (MOOD_FAIL_POINT("snapshot.read.file") == FailAction::kTorn) {
    bytes.resize(bytes.size() / 2);  // injected short read
  }
  return bytes;
}

void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
  std::size_t off = 0;
  while (off < size) {
    const ::ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write", path);
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::uint32_t snapshot_crc32(std::string_view bytes) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char b : bytes) {
    crc = table[(crc ^ static_cast<std::uint8_t>(b)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string encode_snapshot(const SnapshotData& data) {
  const std::array<std::pair<std::uint32_t, std::string>, kSectionCount>
      sections = {{{kSectionConfig, encode_config_section(data)},
                   {kSectionStats, encode_stats_section(data)},
                   {kSectionUsers, encode_users_section(data)}}};
  std::string out;
  out.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  put_u32(out, kSnapshotVersion);
  put_u32(out, kSectionCount);
  for (const auto& [id, payload] : sections) {
    put_u32(out, id);
    put_u64(out, payload.size());
    out.append(payload);
    put_u32(out, snapshot_crc32(payload));
  }
  return out;
}

SnapshotData decode_snapshot(std::string_view bytes) {
  Reader header(bytes, "header");
  if (bytes.size() < sizeof(kSnapshotMagic) + 8 ||
      bytes.compare(0, sizeof(kSnapshotMagic),
                    std::string_view(kSnapshotMagic,
                                     sizeof(kSnapshotMagic))) != 0) {
    throw SnapshotError("mood-snapshot/1: bad magic (not a snapshot file)");
  }
  header.skip(sizeof(kSnapshotMagic));
  const std::uint32_t version = header.get_u32();
  if (version != kSnapshotVersion) {
    throw SnapshotError("mood-snapshot/1: unsupported snapshot version " +
                        std::to_string(version));
  }
  const std::uint32_t section_count = header.get_u32();
  if (section_count != kSectionCount) {
    throw SnapshotError("mood-snapshot/1: expected " +
                        std::to_string(kSectionCount) + " sections, found " +
                        std::to_string(section_count));
  }

  SnapshotData data;
  bool seen[kSectionCount + 1] = {};
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint32_t id = header.get_u32();
    const std::uint64_t len = header.get_u64();
    if (len > header.remaining()) {
      throw SnapshotError("mood-snapshot/1: truncated section " +
                          std::to_string(id));
    }
    const std::string_view payload =
        bytes.substr(bytes.size() - header.remaining(), len);
    header.skip(len);
    const std::uint32_t stored_crc = header.get_u32();
    if (snapshot_crc32(payload) != stored_crc) {
      throw SnapshotError("mood-snapshot/1: CRC mismatch in section " +
                          std::to_string(id));
    }
    if (id < 1 || id > kSectionCount || seen[id]) {
      throw SnapshotError("mood-snapshot/1: unexpected section id " +
                          std::to_string(id));
    }
    seen[id] = true;
    switch (id) {
      case kSectionConfig: {
        Reader in(payload, "CONFIG section");
        decode_config_section(in, data);
        break;
      }
      case kSectionStats: {
        Reader in(payload, "STATS section");
        decode_stats_section(in, data);
        break;
      }
      case kSectionUsers: {
        Reader in(payload, "USERS section");
        decode_users_section(in, data);
        break;
      }
      default:
        break;
    }
  }
  header.expect_done();
  if (data.shard_clocks.size() != data.config.shards) {
    throw SnapshotError(
        "mood-snapshot/1: shard clock count does not match config");
  }
  if (data.shard_shedding.size() != data.config.shards) {
    throw SnapshotError(
        "mood-snapshot/1: shed latch count does not match config");
  }
  return data;
}

std::string write_snapshot_file(const std::string& dir,
                                const std::string& bytes) {
  MOOD_TRACE("snapshot.write");
  std::error_code ec;
  fs::create_directories(dir, ec);  // open() below reports real failures

  // Sequence before tmp write so a concurrent reader never sees the number
  // go backwards; the tmp file itself is invisible to list/read.
  std::uint64_t seq = 1;
  {
    std::error_code scan_ec;
    if (fs::directory_iterator probe(dir, scan_ec); !scan_ec) {
      for (const auto& [existing, name] : scan_snapshots(dir)) {
        seq = std::max(seq, existing + 1);
        (void)name;
      }
    }
  }

  const std::string tmp_path = dir + "/" + kTmpName;
  if (MOOD_FAIL_POINT("snapshot.write.open") == FailAction::kTorn) {
    throw support::IoError("fail point 'snapshot.write.open' injected an I/O "
                           "error (torn degraded to error)");
  }
  Fd fd{::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
               0644)};
  if (fd.fd < 0) throw_errno("open", tmp_path);

  // The one site that honors kTorn literally: commit half the payload to
  // disk, then fail — the partial tmp file stays behind, exactly the disk
  // state a process killed mid-write leaves.
  if (MOOD_FAIL_POINT("snapshot.write.payload") == FailAction::kTorn) {
    write_all(fd.fd, bytes.data(), bytes.size() / 2, tmp_path);
    ::fsync(fd.fd);
    throw support::IoError("fail point 'snapshot.write.payload' tore the "
                           "write after " +
                           std::to_string(bytes.size() / 2) + " bytes");
  }
  write_all(fd.fd, bytes.data(), bytes.size(), tmp_path);

  if (MOOD_FAIL_POINT("snapshot.write.fsync") == FailAction::kTorn) {
    throw support::IoError("fail point 'snapshot.write.fsync' injected an "
                           "I/O error (torn degraded to error)");
  }
  if (::fsync(fd.fd) != 0) throw_errno("fsync", tmp_path);
  fd.close_now();

  const std::string final_path =
      dir + "/" + kFilePrefix + std::to_string(seq) + kSnapshotSuffix;
  if (MOOD_FAIL_POINT("snapshot.write.rename") == FailAction::kTorn) {
    throw support::IoError("fail point 'snapshot.write.rename' injected an "
                           "I/O error (torn degraded to error)");
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    throw_errno("rename", final_path);
  }

  // Make the rename itself durable. A failure here leaves a fully valid,
  // readable snapshot whose directory entry might not survive a power
  // loss — the caller records it as a checkpoint failure and the next
  // cadence retries.
  if (MOOD_FAIL_POINT("snapshot.write.commit") == FailAction::kTorn) {
    throw support::IoError("fail point 'snapshot.write.commit' injected an "
                           "I/O error (torn degraded to error)");
  }
  {
    Fd dirfd{::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC)};
    if (dirfd.fd < 0) throw_errno("open", dir);
    if (::fsync(dirfd.fd) != 0) throw_errno("fsync", dir);
  }

  // Prune to the newest kKeepSnapshots (best-effort; stale extras are
  // harmless — restore prefers the newest valid file anyway).
  const auto files = scan_snapshots(dir);
  for (std::size_t i = kKeepSnapshots; i < files.size(); ++i) {
    std::error_code rm_ec;
    fs::remove(dir + "/" + files[i].second, rm_ec);
    if (rm_ec) {
      support::log_warn("checkpoint: could not prune ", files[i].second, ": ",
                        rm_ec.message());
    }
  }
  return final_path;
}

std::vector<std::string> list_snapshot_files(const std::string& dir) {
  std::vector<std::string> paths;
  for (const auto& [seq, name] : scan_snapshots(dir)) {
    (void)seq;
    paths.push_back(dir + "/" + name);
  }
  return paths;
}

SnapshotData read_latest_snapshot(const std::string& dir,
                                  std::size_t* quarantined_files) {
  MOOD_TRACE("snapshot.read");
  const auto files = list_snapshot_files(dir);
  for (const auto& path : files) {
    try {
      return decode_snapshot(read_file(path));
    } catch (const SnapshotError& e) {
      // Structurally bad (torn write, bit rot): rename it aside for
      // forensics instead of leaving a known-bad candidate in the
      // rotation. Best-effort — a failed rename degrades to the old
      // skip-and-warn behavior.
      const std::string aside = path + ".quarantined";
      std::error_code ec;
      fs::rename(path, aside, ec);
      if (ec) {
        support::log_warn("checkpoint: skipping corrupt '", path,
                          "' (could not quarantine: ", ec.message(),
                          "): ", e.what());
      } else {
        support::log_warn("checkpoint: quarantined corrupt '", path, "' -> '",
                          aside, "': ", e.what());
        if (quarantined_files != nullptr) ++*quarantined_files;
      }
    } catch (const support::IoError& e) {
      // Unreadable is not the same as corrupt — the bytes might be fine
      // next time (transient I/O) — so skip without the rename.
      support::log_warn("checkpoint: skipping unreadable '", path,
                        "': ", e.what());
    }
  }
  throw SnapshotError("no usable snapshot in '" + dir + "' (" +
                      std::to_string(files.size()) + " candidate file(s))");
}

}  // namespace mood::stream
