#pragma once

/// \file table.h
/// Aligned plain-text tables for human-facing result output.
///
/// Shared by the figure benches and `mood report` so every tool renders the
/// same way: left-aligned first column (names), right-aligned value columns,
/// widths computed from content. Cells are plain strings — format numbers
/// with the helpers below so precision stays consistent across tools.

#include <array>
#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace mood::report {

/// Column-aligned text table with a header row.
class Table {
 public:
  /// Creates a table with fixed column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends one row. Precondition: `cells.size()` equals the header count.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Renders with two-space column gaps and a dashed rule under the header.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision decimal, e.g. format_double(3.14159, 2) == "3.14".
std::string format_double(double value, int decimals);

/// Ratio in [0,1] rendered as a percentage, e.g. "42.3%".
std::string format_percent(double ratio, int decimals = 1);

/// Distortion-band counters rendered "low/med/high/extreme".
std::string format_bands(const std::array<std::size_t, 4>& bands);

}  // namespace mood::report
