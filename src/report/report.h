#pragma once

/// \file report.h
/// Structured result reporting: the one place where experiment outcomes
/// become JSON documents and CSV tables.
///
/// Every front end — the `mood` CLI, the figure benches, the examples —
/// serializes through these functions, so a result produced anywhere can be
/// consumed anywhere (`mood report` aggregates and compares the emitted
/// files). The JSON document layout is versioned through the top-level
/// `schema` member, currently `"mood-result/1"`:
///
/// \verbatim
/// {
///   "schema": "mood-result/1",
///   "meta": {            // RunMetadata: provenance of the run
///     "tool": "mood evaluate", "dataset": "PrivaMov", "seed": 7,
///     "wall_seconds": 12.3, "timings": {"harness": 1.9, "GeoI": 2.2},
///     "config": { ... every ExperimentConfig knob ... }
///   },
///   "dataset": {         // summary statistics of the evaluated dataset
///     "name": "PrivaMov", "users": 41, "records": 102345,
///     "first_time": 1546300800, "last_time": 1548892800,
///     "span_days": 30.0, "mean_records_per_user": 2496.2
///   },
///   "strategies": [      // one uniform object per evaluated strategy
///     {
///       "strategy": "GeoI", "users": 41,
///       "non_protected_users": 12, "non_protected_ratio": 0.2926,
///       "data_loss": 0.3105,
///       "distortion_bands": {"low": 10, "medium": 9, "high": 8,
///                             "extremely_high": 2},
///       "wall_seconds": 2.2,
///       "per_user": [ {"user": "u01", "protected": true, ...}, ... ]
///     },
///     {
///       "strategy": "MooD-full", ...,  // same members as above, plus:
///       "search_cost": {"lppm_applications": 410,
///                        "attack_invocations": 1290}
///     }
///   ]
/// }
/// \endverbatim
///
/// `data_loss` and the ratios are fractions in [0, 1]; distortions are
/// metres; timestamps are Unix seconds. `per_user` is optional (large) and
/// `search_cost` appears only on the full-pipeline strategy ("MooD-full",
/// serialized from MoodResult — the other evaluators don't count search
/// effort).

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "core/inference_bench.h"
#include "decision/mood_engine.h"
#include "mobility/dataset.h"
#include "report/json.h"
#include "stream/engine.h"
#include "stream/replay.h"
#include "telemetry/metrics.h"

namespace mood::report {

/// Identifier of the result-document layout produced by make_report().
inline constexpr const char* kResultSchema = "mood-result/1";

/// Identifier of the perf-benchmark layout produced by
/// make_bench_report() (`mood bench`, bench/perf_attack_inference):
///
/// \verbatim
/// {
///   "schema": "mood-bench/1",
///   "meta": { ... RunMetadata, as in mood-result/1 ... },
///   "dataset": { ... dataset_summary() ... },
///   "agreement": true,   // every case decided identically on both paths
///   "benchmarks": [
///     {
///       "name": "ap-attack-reidentify",  // or "evaluate-mood-full"
///       "queries": 531,
///       "reference_passes": 3, "optimized_passes": 12,  // passes timed
///       "reference_seconds": 2.42,   // per pass, pre-optimization scans
///       "optimized_seconds": 0.19,   // per pass, production path (index
///                                    // by default, scans with --index=off)
///       "speedup": 12.7,
///       "agreement": true, "mismatch": "",
///       "scan_seconds": 0.31, "scan_passes": 4,  // --index=ab only: the
///                                    // linear-scan oracle, timed separately
///       "index": {                   // present when the index was timed
///         "queries": 1593, "candidates": 846083,
///         "pruned_candidates": 812000, "exact_evaluations": 31000,
///         "prune_rate": 0.9597, "exact_evaluations_per_query": 19.5
///       }
///     }, ...
///   ]
/// }
/// \endverbatim
inline constexpr const char* kBenchSchema = "mood-bench/1";

/// Identifier of the online-gateway replay layout produced by
/// make_stream_report() (`mood replay`, bench/replay_throughput):
///
/// \verbatim
/// {
///   "schema": "mood-stream/1",
///   "meta": { ... RunMetadata, as in mood-result/1 ... },
///   "dataset": { ... dataset_summary() ... },
///   "stream": {          // gateway + replay configuration
///     "shards": 8, "window_seconds": 0, "max_points": 0,
///     "max_users_per_shard": 0, "staleness_points": 0,
///     "batch_events": 256, "target_rate": 0.0, "time_compression": 0.0
///   },
///   "replay": {          // measured outcome
///     "events": 24576, "batches": 96, "users": 20,
///     "wall_seconds": 1.84, "events_per_second": 13356.5,
///     "latency_seconds": {"p50": ..., "p95": ..., "p99": ...,
///                          "max": ..., "mean": ...},
///     "latency": {         // full distribution behind latency_seconds:
///                          // the per-shard log-bucketed histogram
///                          // (telemetry/metrics.h). Percentiles are
///                          // bucket midpoints (<= ~3.2% relative
///                          // error); count/sum/mean are exact. Like
///                          // "checkpoint", this block is per-process
///                          // timing and lives outside "cost".
///       "unit": "seconds", "count": 24576, "sum": 18.4,
///       "p50": ..., "p95": ..., "p99": ..., "max": ..., "mean": ...,
///       "buckets": [[upper_bound, count], ...],   // sparse, ascending;
///                          // the overflow bucket's bound serializes as
///                          // the string "+Inf"
///       "per_shard": [     // lane views, index == shard
///         {"shard": 0, "count": ..., "p50": ..., "p95": ..., "p99": ...,
///          "buckets": [[upper_bound, count], ...]}, ...
///       ]
///     },
///     "decisions": {"exposed_events": ..., "protected_events": ...,
///                    "exposed_users": ..., "protected_users": ...},
///     "cost": {"searches": ..., "rechecks": ...,
///               "profile_refreshes": ..., "stay_updates": ...,
///               "stay_rebuilds": ..., "heatmap_updates": ...,
///               "evicted_points": ..., "evicted_users": ...,
///               "lppm_applications": ..., "attack_invocations": ...,
///               "index_prunes": ..., "exact_evals": ...,
///               "index_rebuilds": ...},
///     "checkpoint": {"written": 3, "bytes": 183200, "failures": 0,
///                     "resume_events": 0,    // this process's checkpoint
///                     "quarantined_snapshots": 0},  // corrupt snapshot
///                          // files renamed aside during restore
///                          // activity (mood-snapshot/1 files written /
///                          // the restore position) — deliberately
///                          // outside "cost": a restored run's per_user +
///                          // cost + decisions are bit-identical to the
///                          // uninterrupted run's, only this block and
///                          // the timing numbers differ
///     "resilience": {      // fault-tolerance counters (resilience.h);
///                          // all zero at the strict defaults
///       "bad_records": 0, "dead_letters": 0, "quarantined_users": 0,
///       "shed_decisions": 0, "degraded_batches": 0,
///       "backpressure_events": 0},
///     "batch_match": true  // replayed final decisions == batch evaluators
///                          // (null when verification was skipped)
///   },
///   "per_user": [        // final gateway state, sorted by user
///     {"user": "u01", "decision": "protect", "winner": "GeoI",
///      "events": 640, "risk_transitions": 1, "searches": 2,
///      "window_points": 640, "window_slices": 12,
///      "quarantined": false, "quarantine_reason": "",
///      "dead_letters": 0, "degraded": 0}, ...
///   ]
/// }
/// \endverbatim
///
/// Latencies are seconds; `window_slices` counts the 24 h preslice
/// partitions of the user's final window. Decisions are deterministic in
/// the event stream and batch size — identical across --jobs and shard
/// counts; only the timing numbers vary.
inline constexpr const char* kStreamSchema = "mood-stream/1";

/// Provenance of one run: which tool produced it, on what data, with which
/// seed, and where the wall-clock time went. Timings are (phase, seconds)
/// pairs in execution order.
struct RunMetadata {
  std::string tool;
  std::string dataset;
  std::uint64_t seed = 0;
  double wall_seconds = 0.0;
  std::vector<std::pair<std::string, double>> timings;
};

// ---- Domain -> JSON --------------------------------------------------

/// Every ExperimentConfig knob, flat, using the CLI flag spellings
/// (geoi_epsilon, trl_radius_m, ...) so a result file documents exactly
/// how to re-run it.
Json to_json(const core::ExperimentConfig& config);

Json to_json(const RunMetadata& meta);

/// {"user", "protected", "distortion", "records", "winner"}.
Json to_json(const core::UserOutcome& outcome);

/// Uniform strategy object (see file comment). `include_users` controls
/// the potentially large "per_user" array.
Json to_json(const core::StrategyResult& result, bool include_users = true);

/// Full per-user MooD pipeline outcome, including slicing and search-cost
/// counters.
Json to_json(const core::MoodUserOutcome& outcome);

/// Uniform strategy object for the full pipeline, reported under the
/// strategy name "MooD-full" with aggregate "search_cost".
Json to_json(const core::MoodResult& result, bool include_users = true);

/// Single-trace Algorithm 1 outcome (engine-level; used by examples that
/// drive MoodEngine::protect directly), including the published pieces.
Json to_json(const core::ProtectionResult& result);

/// Summary statistics of a dataset: user/record counts, covered time span,
/// record volume per user. Callers may add context-specific members (e.g.
/// the harness's active-user count) to the returned object.
Json dataset_summary(const mobility::Dataset& dataset);

/// Assembles the versioned result document from its parts.
Json make_report(const RunMetadata& meta, const core::ExperimentConfig& config,
                 Json dataset, std::vector<Json> strategies);

/// One A/B benchmark case (see kBenchSchema).
Json to_json(const core::InferenceBenchCase& result);

/// Assembles the versioned "mood-bench/1" document from its parts.
Json make_bench_report(const RunMetadata& meta, Json dataset,
                       const std::vector<core::InferenceBenchCase>& cases);

/// One summary row per benchmark case (header first): name, queries,
/// reference_s, optimized_s, speedup, agreement.
std::vector<std::vector<std::string>> bench_summary_rows(
    const std::vector<core::InferenceBenchCase>& cases);

/// Final gateway state of one user (see kStreamSchema's "per_user").
Json to_json(const stream::UserDecision& decision);

/// One latency histogram as a JSON object: exact count/sum, sparse
/// [upper_bound, count] bucket pairs (ascending; "+Inf" for the overflow
/// bucket's bound), and derived p50/p95/p99/max/mean. The building block
/// of the mood-stream/1 "latency" block.
Json to_json(const telemetry::HistogramSnapshot& histogram);

/// Assembles the versioned "mood-stream/1" document from its parts.
/// `batch_match` is the batch-equivalence verification verdict: true /
/// false when it ran, nullopt (serialized as null) when skipped (e.g.
/// windowed replays, whose final windows are deliberately partial).
Json make_stream_report(const RunMetadata& meta, Json dataset,
                        const stream::StreamConfig& config,
                        const stream::ReplayOptions& options,
                        const stream::ReplayResult& result,
                        std::optional<bool> batch_match,
                        bool include_users = true);

/// Key-figure rows (header first) for one replay result: events, rate,
/// latency percentiles, decision split, profile-maintenance cost — the
/// human-readable companion of the mood-stream/1 document.
std::vector<std::vector<std::string>> stream_summary_rows(
    const stream::ReplayResult& result);

/// Same key-figure rows extracted from an already-serialized mood-stream/1
/// document (`mood report` renders foreign stream files through this).
std::vector<std::vector<std::string>> stream_summary_rows(
    const Json& stream_document);

/// One summary row per benchmark case extracted from a mood-bench/1
/// document (header first): name, queries, reference_s, optimized_s,
/// speedup, agreement.
std::vector<std::vector<std::string>> bench_summary_rows(
    const Json& bench_document);

// ---- Domain -> CSV ---------------------------------------------------

/// Per-user rows (header first): user, protected, distortion_m, records,
/// winner.
std::vector<std::vector<std::string>> user_outcome_rows(
    const core::StrategyResult& result);

/// Per-user rows (header first) for the full pipeline: user, level,
/// records, lost_records, subtraces, protected_subtraces, distortion_m,
/// winner, lppm_applications, attack_invocations.
std::vector<std::vector<std::string>> mood_outcome_rows(
    const core::MoodResult& result);

/// One summary row per strategy object of a result document (header
/// first): strategy, users, non_protected, data_loss, bands, seconds.
/// Accepts any JSON produced by make_report().
std::vector<std::vector<std::string>> strategy_summary_rows(
    const Json& report_document);

// ---- Files -----------------------------------------------------------

/// Pretty-prints `document` to `path` ("-" writes to stdout). Throws
/// support::IoError on failure.
void write_json_file(const std::string& path, const Json& document);

/// Parses a JSON document from `path` ("-" reads stdin). Throws
/// support::IoError on failure.
Json read_json_file(const std::string& path);

}  // namespace mood::report
