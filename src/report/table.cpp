#include "report/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "support/error.h"

namespace mood::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  support::expects(!headers_.empty(), "Table: at least one column required");
}

void Table::add_row(std::vector<std::string> cells) {
  support::expects(cells.size() == headers_.size(),
                   "Table::add_row: cell count != header count");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out << "  ";
      const std::size_t pad = widths[c] - cells[c].size();
      // First column left-aligned (names), the rest right-aligned (values).
      if (c == 0) {
        out << cells[c] << std::string(pad, ' ');
      } else {
        out << std::string(pad, ' ') << cells[c];
      }
    }
    out << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w;
  out << std::string(total + 2 * (widths.size() - 1), '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string format_double(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

std::string format_percent(double ratio, int decimals) {
  return format_double(100.0 * ratio, decimals) + "%";
}

std::string format_bands(const std::array<std::size_t, 4>& bands) {
  return std::to_string(bands[0]) + "/" + std::to_string(bands[1]) + "/" +
         std::to_string(bands[2]) + "/" + std::to_string(bands[3]);
}

}  // namespace mood::report
