#include "report/report.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>

#include "report/table.h"
#include "support/error.h"

namespace mood::report {

namespace {

/// Fixed-precision decimal for the human-readable summary tables.
std::string fixed(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

/// Distortions can be +infinity (empty output); numbers stored as doubles
/// already serialize non-finite values to null, so no clamping needed here.
Json bands_json(const std::array<std::size_t, 4>& bands) {
  Json object = Json::object();
  object["low"] = bands[0];
  object["medium"] = bands[1];
  object["high"] = bands[2];
  object["extremely_high"] = bands[3];
  return object;
}

}  // namespace

Json to_json(const core::ExperimentConfig& config) {
  Json object = Json::object();
  object["train_fraction"] = config.train_fraction;
  object["min_records"] = config.min_records;
  object["poi_max_diameter_m"] = config.attack_params.poi.max_diameter_m;
  object["poi_min_dwell_s"] =
      static_cast<std::int64_t>(config.attack_params.poi.min_dwell);
  object["poi_min_points"] = config.attack_params.poi.min_points;
  object["heatmap_cell_m"] = config.attack_params.heatmap_cell_m;
  object["pit_proximity_scale_m"] = config.attack_params.pit_proximity_scale_m;
  object["geoi_epsilon"] = config.geoi_epsilon;
  object["trl_radius_m"] = config.trl_radius_m;
  object["hmc_hot_coverage"] = config.hmc_hot_coverage;
  object["hmc_max_cells"] = config.hmc_max_cells;
  object["hmc_budget_m"] = config.hmc_budget_m;
  object["mood_delta_s"] = static_cast<std::int64_t>(config.mood.delta);
  object["mood_preslice_s"] = static_cast<std::int64_t>(config.mood.preslice);
  object["mood_first_hit"] = config.mood.first_hit;
  return object;
}

Json to_json(const RunMetadata& meta) {
  Json object = Json::object();
  object["tool"] = meta.tool;
  object["dataset"] = meta.dataset;
  object["seed"] = static_cast<std::int64_t>(meta.seed);
  object["wall_seconds"] = meta.wall_seconds;
  Json timings = Json::object();
  for (const auto& [phase, seconds] : meta.timings) {
    timings[phase] = seconds;
  }
  object["timings"] = std::move(timings);
  return object;
}

Json to_json(const core::UserOutcome& outcome) {
  Json object = Json::object();
  object["user"] = outcome.user;
  object["protected"] = outcome.is_protected;
  object["distortion_m"] = outcome.distortion;
  object["records"] = outcome.records;
  object["winner"] = outcome.winner;
  return object;
}

Json to_json(const core::StrategyResult& result, bool include_users) {
  Json object = Json::object();
  object["strategy"] = result.strategy;
  object["users"] = result.user_count();
  object["non_protected_users"] = result.non_protected_users();
  object["non_protected_ratio"] = result.non_protected_ratio();
  object["data_loss"] = result.data_loss();
  object["distortion_bands"] = bands_json(result.distortion_bands());
  object["wall_seconds"] = result.wall_seconds;
  if (include_users) {
    Json users = Json::array();
    for (const auto& user : result.users) users.push_back(to_json(user));
    object["per_user"] = std::move(users);
  }
  return object;
}

Json to_json(const core::MoodUserOutcome& outcome) {
  Json object = Json::object();
  object["user"] = outcome.user;
  object["level"] = core::to_string(outcome.level);
  object["protected"] = outcome.fully_protected();
  object["records"] = outcome.records;
  object["lost_records"] = outcome.lost_records;
  object["subtraces"] = outcome.subtraces;
  object["protected_subtraces"] = outcome.protected_subtraces;
  object["distortion_m"] = outcome.distortion;
  object["winner"] = outcome.winner;
  object["lppm_applications"] = outcome.lppm_applications;
  object["attack_invocations"] = outcome.attack_invocations;
  return object;
}

Json to_json(const core::MoodResult& result, bool include_users) {
  Json object = Json::object();
  object["strategy"] = "MooD-full";
  object["users"] = result.users.size();
  object["non_protected_users"] = result.non_protected_users();
  object["non_protected_ratio"] =
      result.users.empty()
          ? 0.0
          : static_cast<double>(result.non_protected_users()) /
                static_cast<double>(result.users.size());
  object["data_loss"] = result.data_loss();
  object["distortion_bands"] = bands_json(result.distortion_bands());
  object["wall_seconds"] = result.wall_seconds;
  Json cost = Json::object();
  cost["lppm_applications"] = result.total_lppm_applications();
  cost["attack_invocations"] = result.total_attack_invocations();
  object["search_cost"] = std::move(cost);
  if (include_users) {
    Json users = Json::array();
    for (const auto& user : result.users) users.push_back(to_json(user));
    object["per_user"] = std::move(users);
  }
  return object;
}

Json to_json(const core::ProtectionResult& result) {
  Json object = Json::object();
  object["level"] = core::to_string(result.level);
  object["original_records"] = result.original_records;
  object["lost_records"] = result.lost_records;
  object["protected_records"] = result.protected_records();
  object["fully_protected"] = result.fully_protected();
  object["mean_distortion_m"] = result.mean_distortion();
  Json cost = Json::object();
  cost["lppm_applications"] = result.lppm_applications;
  cost["attack_invocations"] = result.attack_invocations;
  object["search_cost"] = std::move(cost);
  Json pieces = Json::array();
  for (const auto& piece : result.pieces) {
    Json entry = Json::object();
    entry["user"] = piece.trace.user();
    entry["lppm"] = piece.lppm;
    entry["level"] = core::to_string(piece.level);
    entry["records"] = piece.trace.size();
    entry["original_records"] = piece.original_records;
    entry["distortion_m"] = piece.distortion;
    pieces.push_back(std::move(entry));
  }
  object["pieces"] = std::move(pieces);
  return object;
}

Json dataset_summary(const mobility::Dataset& dataset) {
  Json object = Json::object();
  object["name"] = dataset.name();
  object["users"] = dataset.user_count();
  object["records"] = dataset.record_count();

  mobility::Timestamp first = std::numeric_limits<mobility::Timestamp>::max();
  mobility::Timestamp last = std::numeric_limits<mobility::Timestamp>::min();
  bool any = false;
  for (const auto& trace : dataset.traces()) {
    if (trace.empty()) continue;
    any = true;
    first = std::min(first, trace.front().time);
    last = std::max(last, trace.back().time);
  }
  if (any) {
    object["first_time"] = static_cast<std::int64_t>(first);
    object["last_time"] = static_cast<std::int64_t>(last);
    object["span_days"] =
        static_cast<double>(last - first) / (24.0 * 3600.0);
  }
  object["mean_records_per_user"] =
      dataset.user_count() == 0
          ? 0.0
          : static_cast<double>(dataset.record_count()) /
                static_cast<double>(dataset.user_count());
  return object;
}

Json make_report(const RunMetadata& meta, const core::ExperimentConfig& config,
                 Json dataset, std::vector<Json> strategies) {
  Json document = Json::object();
  document["schema"] = kResultSchema;
  Json meta_json = to_json(meta);
  meta_json["config"] = to_json(config);
  document["meta"] = std::move(meta_json);
  document["dataset"] = std::move(dataset);
  Json list = Json::array();
  for (auto& strategy : strategies) list.push_back(std::move(strategy));
  document["strategies"] = std::move(list);
  return document;
}

Json to_json(const core::InferenceBenchCase& result) {
  Json object = Json::object();
  object["name"] = result.name;
  object["queries"] = result.queries;
  object["reference_passes"] = result.reference_passes;
  object["optimized_passes"] = result.optimized_passes;
  object["reference_seconds"] = result.reference_seconds;
  object["optimized_seconds"] = result.optimized_seconds;
  object["speedup"] = result.speedup();
  object["agreement"] = result.agreement;
  object["mismatch"] = result.mismatch;
  if (result.scan_passes > 0) {
    object["scan_seconds"] = result.scan_seconds;
    object["scan_passes"] = result.scan_passes;
  }
  if (result.index_timed) {
    Json index = Json::object();
    index["queries"] = result.index_queries;
    index["candidates"] = result.index_candidates;
    index["pruned_candidates"] = result.index_pruned;
    index["exact_evaluations"] = result.index_exact_evals;
    index["prune_rate"] = result.prune_rate();
    index["exact_evaluations_per_query"] = result.exact_evals_per_query();
    object["index"] = std::move(index);
  }
  return object;
}

Json make_bench_report(const RunMetadata& meta, Json dataset,
                       const std::vector<core::InferenceBenchCase>& cases) {
  Json document = Json::object();
  document["schema"] = kBenchSchema;
  document["meta"] = to_json(meta);
  document["dataset"] = std::move(dataset);
  document["agreement"] = core::all_agree(cases);
  Json list = Json::array();
  for (const auto& benchmark : cases) list.push_back(to_json(benchmark));
  document["benchmarks"] = std::move(list);
  return document;
}

std::vector<std::vector<std::string>> bench_summary_rows(
    const std::vector<core::InferenceBenchCase>& cases) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"benchmark", "queries", "reference_s", "optimized_s",
                  "speedup", "prune", "agreement"});
  for (const auto& benchmark : cases) {
    rows.push_back({benchmark.name, std::to_string(benchmark.queries),
                    fixed(benchmark.reference_seconds, 3),
                    fixed(benchmark.optimized_seconds, 3),
                    fixed(benchmark.speedup(), 1) + "x",
                    benchmark.index_timed
                        ? fixed(100.0 * benchmark.prune_rate(), 1) + "%"
                        : "-",
                    benchmark.agreement ? "yes" : "NO"});
  }
  return rows;
}

Json to_json(const stream::UserDecision& decision) {
  Json object = Json::object();
  object["user"] = decision.user;
  object["decision"] = stream::to_string(decision.decision);
  object["winner"] = decision.winner;
  object["events"] = decision.events;
  object["risk_transitions"] = decision.risk_transitions;
  object["searches"] = decision.searches;
  object["window_points"] = decision.window_points;
  object["window_slices"] = decision.window_slices;
  object["quarantined"] = decision.quarantined;
  object["quarantine_reason"] = decision.quarantine_reason;
  object["dead_letters"] = decision.dead_letters;
  object["degraded"] = decision.degraded;
  return object;
}

Json to_json(const telemetry::HistogramSnapshot& histogram) {
  Json object = Json::object();
  object["count"] = histogram.count;
  object["sum"] = histogram.sum;
  object["p50"] = histogram.percentile(0.50);
  object["p95"] = histogram.percentile(0.95);
  object["p99"] = histogram.percentile(0.99);
  object["max"] = histogram.max();
  object["mean"] = histogram.mean();
  Json buckets = Json::array();
  for (const auto& bucket : histogram.buckets) {
    Json pair = Json::array();
    const double upper = telemetry::Histogram::bucket_upper_bound(bucket.index);
    // JSON has no infinity literal; the overflow bucket's bound is the
    // string "+Inf", matching the exposition format's `le` label.
    if (std::isfinite(upper)) {
      pair.push_back(upper);
    } else {
      pair.push_back(std::string("+Inf"));
    }
    pair.push_back(bucket.count);
    buckets.push_back(std::move(pair));
  }
  object["buckets"] = std::move(buckets);
  return object;
}

Json make_stream_report(const RunMetadata& meta, Json dataset,
                        const stream::StreamConfig& config,
                        const stream::ReplayOptions& options,
                        const stream::ReplayResult& result,
                        std::optional<bool> batch_match, bool include_users) {
  Json document = Json::object();
  document["schema"] = kStreamSchema;
  document["meta"] = to_json(meta);
  document["dataset"] = std::move(dataset);

  Json stream_doc = Json::object();
  stream_doc["engine"] = stream::to_string(config.engine);
  stream_doc["loop_slack"] = config.loop_slack;
  stream_doc["loop_recheck"] = config.loop_recheck;
  stream_doc["shards"] = config.shards;
  stream_doc["window_seconds"] =
      static_cast<std::int64_t>(config.window_seconds);
  stream_doc["max_points"] = config.max_points;
  stream_doc["max_users_per_shard"] = config.max_users_per_shard;
  stream_doc["staleness_points"] = config.staleness_points;
  stream_doc["batch_events"] = options.batch_events;
  stream_doc["target_rate"] = options.target_rate;
  stream_doc["time_compression"] = options.time_compression;
  stream_doc["stage_timers"] = config.telemetry.stage_timers;
  document["stream"] = std::move(stream_doc);

  Json replay = Json::object();
  replay["events"] = result.events;
  replay["batches"] = result.batches;
  replay["users"] = result.decisions.size();
  replay["wall_seconds"] = result.wall_seconds;
  replay["events_per_second"] = result.events_per_second;
  Json latency = Json::object();
  latency["p50"] = result.latency.p50;
  latency["p95"] = result.latency.p95;
  latency["p99"] = result.latency.p99;
  latency["max"] = result.latency.max;
  latency["mean"] = result.latency.mean;
  replay["latency_seconds"] = std::move(latency);
  // Full distribution behind the summary above: the gateway's per-shard
  // log-bucketed histogram (telemetry/metrics.h). "latency_seconds" stays
  // for consumers of older documents; new tooling should prefer this.
  Json latency_hist = to_json(result.latency_histogram);
  latency_hist["unit"] = "seconds";
  Json per_shard = Json::array();
  for (std::size_t shard = 0; shard < result.latency_per_shard.size();
       ++shard) {
    Json view = to_json(result.latency_per_shard[shard]);
    view["shard"] = shard;
    per_shard.push_back(std::move(view));
  }
  latency_hist["per_shard"] = std::move(per_shard);
  replay["latency"] = std::move(latency_hist);
  std::size_t exposed_users = 0;
  for (const auto& decision : result.decisions) {
    exposed_users += decision.decision == stream::Decision::kExpose ? 1 : 0;
  }
  Json decisions = Json::object();
  decisions["exposed_events"] = result.stats.exposed_events;
  decisions["protected_events"] = result.stats.protected_events;
  decisions["exposed_users"] = exposed_users;
  decisions["protected_users"] = result.decisions.size() - exposed_users;
  replay["decisions"] = std::move(decisions);
  Json cost = Json::object();
  cost["searches"] = result.stats.searches;
  cost["rechecks"] = result.stats.rechecks;
  cost["profile_refreshes"] = result.stats.profile_refreshes;
  cost["stay_updates"] = result.stats.stay_updates;
  cost["stay_rebuilds"] = result.stats.stay_rebuilds;
  cost["heatmap_updates"] = result.stats.heatmap_updates;
  cost["evicted_points"] = result.stats.evicted_points;
  cost["evicted_users"] = result.stats.evicted_users;
  cost["lppm_applications"] = result.stats.lppm_applications;
  cost["attack_invocations"] = result.stats.attack_invocations;
  cost["index_prunes"] = result.stats.index_prunes;
  cost["exact_evals"] = result.stats.exact_evals;
  cost["index_rebuilds"] = result.stats.index_rebuilds;
  replay["cost"] = std::move(cost);
  // Checkpoint activity is *this process's*, reported outside "cost" so a
  // restored run's per_user + cost + decisions diff clean against an
  // uninterrupted run (the CI restart drill relies on that).
  Json checkpoint = Json::object();
  checkpoint["written"] = result.stats.checkpoints;
  checkpoint["bytes"] = result.stats.checkpoint_bytes;
  checkpoint["failures"] = result.stats.checkpoint_failures;
  checkpoint["resume_events"] = options.resume_events;
  checkpoint["quarantined_snapshots"] = result.stats.quarantined_snapshots;
  replay["checkpoint"] = std::move(checkpoint);
  // Fault-tolerance counters (resilience.h) — all zero at the strict
  // defaults, so a default replay's document diffs clean against pre-PR 8
  // consumers that ignore unknown members.
  Json resilience = Json::object();
  resilience["bad_records"] = result.stats.bad_records;
  resilience["dead_letters"] = result.stats.dead_letters;
  resilience["quarantined_users"] = result.stats.quarantined_users;
  resilience["shed_decisions"] = result.stats.shed_decisions;
  resilience["degraded_batches"] = result.stats.degraded_batches;
  resilience["backpressure_events"] = result.stats.backpressure_events;
  replay["resilience"] = std::move(resilience);
  replay["batch_match"] = batch_match ? Json(*batch_match) : Json();
  document["replay"] = std::move(replay);

  if (include_users) {
    Json users = Json::array();
    for (const auto& decision : result.decisions) {
      users.push_back(to_json(decision));
    }
    document["per_user"] = std::move(users);
  }
  return document;
}

std::vector<std::vector<std::string>> stream_summary_rows(
    const stream::ReplayResult& result) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"metric", "value"});
  std::size_t exposed_users = 0;
  for (const auto& decision : result.decisions) {
    exposed_users += decision.decision == stream::Decision::kExpose ? 1 : 0;
  }
  rows.push_back({"events", std::to_string(result.events)});
  rows.push_back({"batches", std::to_string(result.batches)});
  rows.push_back({"users", std::to_string(result.decisions.size())});
  rows.push_back({"wall_seconds", fixed(result.wall_seconds, 3)});
  rows.push_back({"events_per_second", fixed(result.events_per_second, 1)});
  rows.push_back({"latency_p50_ms", fixed(result.latency.p50 * 1e3, 3)});
  rows.push_back({"latency_p95_ms", fixed(result.latency.p95 * 1e3, 3)});
  rows.push_back({"latency_p99_ms", fixed(result.latency.p99 * 1e3, 3)});
  rows.push_back({"exposed_users", std::to_string(exposed_users)});
  rows.push_back({"protected_users",
                  std::to_string(result.decisions.size() - exposed_users)});
  rows.push_back({"searches", std::to_string(result.stats.searches)});
  rows.push_back({"rechecks", std::to_string(result.stats.rechecks)});
  rows.push_back({"profile_refreshes",
                  std::to_string(result.stats.profile_refreshes)});
  rows.push_back(
      {"stay_rebuilds", std::to_string(result.stats.stay_rebuilds)});
  if (result.stats.checkpoints > 0 || result.stats.checkpoint_failures > 0) {
    rows.push_back({"checkpoints", std::to_string(result.stats.checkpoints)});
    rows.push_back({"checkpoint_failures",
                    std::to_string(result.stats.checkpoint_failures)});
  }
  if (result.stats.bad_records > 0 || result.stats.dead_letters > 0 ||
      result.stats.quarantined_users > 0 || result.stats.shed_decisions > 0 ||
      result.stats.degraded_batches > 0 ||
      result.stats.backpressure_events > 0) {
    rows.push_back({"bad_records", std::to_string(result.stats.bad_records)});
    rows.push_back(
        {"dead_letters", std::to_string(result.stats.dead_letters)});
    rows.push_back({"quarantined_users",
                    std::to_string(result.stats.quarantined_users)});
    rows.push_back(
        {"shed_decisions", std::to_string(result.stats.shed_decisions)});
    rows.push_back(
        {"degraded_batches", std::to_string(result.stats.degraded_batches)});
    rows.push_back({"backpressure_events",
                    std::to_string(result.stats.backpressure_events)});
  }
  return rows;
}

std::vector<std::vector<std::string>> stream_summary_rows(
    const Json& stream_document) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"metric", "value"});
  const Json* replay = stream_document.find("replay");
  if (replay == nullptr) return rows;
  auto count = [&](const Json& object, const char* key) {
    return std::to_string(object.int_or(key, 0));
  };
  rows.push_back({"events", count(*replay, "events")});
  rows.push_back({"batches", count(*replay, "batches")});
  rows.push_back({"users", count(*replay, "users")});
  rows.push_back(
      {"wall_seconds", fixed(replay->number_or("wall_seconds", 0.0), 3)});
  rows.push_back({"events_per_second",
                  fixed(replay->number_or("events_per_second", 0.0), 1)});
  if (const Json* latency = replay->find("latency_seconds")) {
    rows.push_back(
        {"latency_p50_ms", fixed(latency->number_or("p50", 0.0) * 1e3, 3)});
    rows.push_back(
        {"latency_p95_ms", fixed(latency->number_or("p95", 0.0) * 1e3, 3)});
    rows.push_back(
        {"latency_p99_ms", fixed(latency->number_or("p99", 0.0) * 1e3, 3)});
  }
  // Per-shard latency (the "latency" histogram block, PR 9+ documents).
  if (const Json* latency = replay->find("latency")) {
    if (const Json* per_shard = latency->find("per_shard");
        per_shard != nullptr && per_shard->is_array()) {
      for (const Json& shard : per_shard->items()) {
        const std::string label =
            "latency_shard" + std::to_string(shard.int_or("shard", 0));
        rows.push_back({label + "_events", count(shard, "count")});
        rows.push_back({label + "_p95_ms",
                        fixed(shard.number_or("p95", 0.0) * 1e3, 3)});
      }
    }
  }
  if (const Json* decisions = replay->find("decisions")) {
    rows.push_back({"exposed_users", count(*decisions, "exposed_users")});
    rows.push_back({"protected_users", count(*decisions, "protected_users")});
  }
  if (const Json* cost = replay->find("cost")) {
    rows.push_back({"searches", count(*cost, "searches")});
    rows.push_back({"rechecks", count(*cost, "rechecks")});
    rows.push_back({"profile_refreshes", count(*cost, "profile_refreshes")});
    rows.push_back({"stay_rebuilds", count(*cost, "stay_rebuilds")});
  }
  if (const Json* checkpoint = replay->find("checkpoint")) {
    if (checkpoint->int_or("written", 0) > 0 ||
        checkpoint->int_or("failures", 0) > 0) {
      rows.push_back({"checkpoints", count(*checkpoint, "written")});
      rows.push_back(
          {"checkpoint_failures", count(*checkpoint, "failures")});
    }
  }
  if (const Json* resilience = replay->find("resilience")) {
    if (resilience->int_or("bad_records", 0) > 0 ||
        resilience->int_or("dead_letters", 0) > 0 ||
        resilience->int_or("quarantined_users", 0) > 0 ||
        resilience->int_or("shed_decisions", 0) > 0 ||
        resilience->int_or("degraded_batches", 0) > 0 ||
        resilience->int_or("backpressure_events", 0) > 0) {
      rows.push_back({"bad_records", count(*resilience, "bad_records")});
      rows.push_back({"dead_letters", count(*resilience, "dead_letters")});
      rows.push_back(
          {"quarantined_users", count(*resilience, "quarantined_users")});
      rows.push_back(
          {"shed_decisions", count(*resilience, "shed_decisions")});
      rows.push_back(
          {"degraded_batches", count(*resilience, "degraded_batches")});
      rows.push_back(
          {"backpressure_events", count(*resilience, "backpressure_events")});
    }
  }
  return rows;
}

std::vector<std::vector<std::string>> bench_summary_rows(
    const Json& bench_document) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"benchmark", "queries", "reference_s", "optimized_s",
                  "speedup", "prune", "agreement"});
  const Json* benchmarks = bench_document.find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) return rows;
  for (const Json& benchmark : benchmarks->items()) {
    const Json* index = benchmark.find("index");
    rows.push_back(
        {benchmark.string_or("name", "?"),
         std::to_string(benchmark.int_or("queries", 0)),
         fixed(benchmark.number_or("reference_seconds", 0.0), 3),
         fixed(benchmark.number_or("optimized_seconds", 0.0), 3),
         fixed(benchmark.number_or("speedup", 0.0), 1) + "x",
         index != nullptr
             ? fixed(100.0 * index->number_or("prune_rate", 0.0), 1) + "%"
             : "-",
         [&] {
           const Json* agree = benchmark.find("agreement");
           return agree != nullptr && agree->is_bool() && agree->as_bool();
         }() ? "yes"
             : "NO"});
  }
  return rows;
}

std::vector<std::vector<std::string>> user_outcome_rows(
    const core::StrategyResult& result) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"user", "protected", "distortion_m", "records", "winner"});
  for (const auto& user : result.users) {
    rows.push_back({user.user, user.is_protected ? "1" : "0",
                    format_double(user.distortion, 1),
                    std::to_string(user.records), user.winner});
  }
  return rows;
}

std::vector<std::vector<std::string>> mood_outcome_rows(
    const core::MoodResult& result) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"user", "level", "records", "lost_records", "subtraces",
                  "protected_subtraces", "distortion_m", "winner",
                  "lppm_applications", "attack_invocations"});
  for (const auto& user : result.users) {
    rows.push_back({user.user, core::to_string(user.level),
                    std::to_string(user.records),
                    std::to_string(user.lost_records),
                    std::to_string(user.subtraces),
                    std::to_string(user.protected_subtraces),
                    format_double(user.distortion, 1), user.winner,
                    std::to_string(user.lppm_applications),
                    std::to_string(user.attack_invocations)});
  }
  return rows;
}

std::vector<std::vector<std::string>> strategy_summary_rows(
    const Json& report_document) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"dataset", "strategy", "users", "non_protected", "data_loss",
                  "bands(l/m/h/x)", "seconds"});
  const Json* meta = report_document.find("meta");
  const std::string dataset =
      meta != nullptr ? meta->string_or("dataset", "?") : "?";
  const Json* strategies = report_document.find("strategies");
  if (strategies == nullptr || !strategies->is_array()) return rows;
  for (const Json& strategy : strategies->items()) {
    std::array<std::size_t, 4> bands{0, 0, 0, 0};
    if (const Json* b = strategy.find("distortion_bands")) {
      bands[0] = static_cast<std::size_t>(b->int_or("low", 0));
      bands[1] = static_cast<std::size_t>(b->int_or("medium", 0));
      bands[2] = static_cast<std::size_t>(b->int_or("high", 0));
      bands[3] = static_cast<std::size_t>(b->int_or("extremely_high", 0));
    }
    rows.push_back({dataset, strategy.string_or("strategy", "?"),
                    std::to_string(strategy.int_or("users", 0)),
                    std::to_string(strategy.int_or("non_protected_users", 0)),
                    format_percent(strategy.number_or("data_loss", 0.0)),
                    format_bands(bands),
                    format_double(strategy.number_or("wall_seconds", 0.0), 2)});
  }
  return rows;
}

void write_json_file(const std::string& path, const Json& document) {
  if (path == "-") {
    document.write(std::cout);
    return;
  }
  std::ofstream out(path);
  if (!out) throw support::IoError("cannot open for writing: " + path);
  document.write(out);
  out.flush();
  if (!out) throw support::IoError("failed writing: " + path);
}

Json read_json_file(const std::string& path) {
  std::ostringstream buffer;
  if (path == "-") {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream in(path);
    if (!in) throw support::IoError("cannot open for reading: " + path);
    buffer << in.rdbuf();
  }
  return Json::parse(buffer.str());
}

}  // namespace mood::report
