#include "report/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "support/error.h"

namespace mood::report {

namespace {

using support::IoError;
using support::PreconditionError;

const char* type_name(Json::Type type) {
  switch (type) {
    case Json::Type::kNull: return "null";
    case Json::Type::kBool: return "bool";
    case Json::Type::kInt: return "int";
    case Json::Type::kDouble: return "double";
    case Json::Type::kString: return "string";
    case Json::Type::kArray: return "array";
    case Json::Type::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void type_error(std::string_view wanted, Json::Type got) {
  throw PreconditionError("Json: expected " + std::string(wanted) + ", got " +
                          type_name(got));
}

/// Whether a double holds an integer exactly representable as int64_t, so
/// the narrowing cast below is defined. 2^63 itself is not representable.
bool integral_in_int64_range(double value) {
  return std::isfinite(value) && value == std::floor(value) &&
         value >= -9223372036854775808.0 /* -2^63 */ &&
         value < 9223372036854775808.0 /* 2^63 */;
}

void append_escaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";  // JSON has no NaN/Infinity
    return;
  }
  char buffer[32];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof buffer, value);
  out.append(buffer, end);
  // Keep numbers recognisably floating-point ("1" -> "1e0" would be odd;
  // emit "1.0" style instead) so round-tripping preserves the type.
  std::string_view written(buffer, static_cast<std::size_t>(end - buffer));
  if (written.find('.') == std::string_view::npos &&
      written.find('e') == std::string_view::npos &&
      written.find("inf") == std::string_view::npos) {
    out += ".0";
  }
}

/// Strict RFC 8259 recursive-descent parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw IoError("Json::parse: " + message + " at byte " +
                  std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json object = Json::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object[key] = parse_value();
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') return object;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json array = Json::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    for (;;) {
      array.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') return array;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    return value;
  }

  void append_utf8(std::string& out, unsigned codepoint) {
    if (codepoint < 0x80) {
      out.push_back(static_cast<char>(codepoint));
    } else if (codepoint < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (codepoint >> 6)));
      out.push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
    } else if (codepoint < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (codepoint >> 12)));
      out.push_back(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (codepoint >> 18)));
      out.push_back(static_cast<char>(0x80 | ((codepoint >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned codepoint = parse_hex4();
          if (codepoint >= 0xD800 && codepoint <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (!consume_literal("\\u")) fail("lone high surrogate");
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
            codepoint =
                0x10000 + ((codepoint - 0xD800) << 10) + (low - 0xDC00);
          } else if (codepoint >= 0xDC00 && codepoint <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, codepoint);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("invalid number");

    const bool integral =
        token.find('.') == std::string_view::npos &&
        token.find('e') == std::string_view::npos &&
        token.find('E') == std::string_view::npos;
    if (integral) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return Json(value);
      }
      // Overflowing integer literals fall through to double.
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      pos_ = start;
      fail("invalid number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::array() {
  Json value;
  value.type_ = Type::kArray;
  return value;
}

Json Json::object() {
  Json value;
  value.type_ = Type::kObject;
  return value;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

std::int64_t Json::as_int() const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kDouble && integral_in_int64_range(double_)) {
    return static_cast<std::int64_t>(double_);
  }
  type_error("integer", type_);
}

double Json::as_double() const {
  if (type_ == Type::kInt) return static_cast<double>(int_);
  if (type_ == Type::kDouble) return double_;
  type_error("number", type_);
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const Json::Array& Json::items() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const Json::Members& Json::members() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return members_;
}

Json& Json::operator[](std::string_view key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [name, value] : members_) {
    if (name == key) return value;
  }
  members_.emplace_back(std::string(key), Json());
  return members_.back().second;
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(value));
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double Json::number_or(std::string_view key, double fallback) const {
  const Json* value = find(key);
  return value != nullptr && value->is_number() ? value->as_double() : fallback;
}

std::int64_t Json::int_or(std::string_view key, std::int64_t fallback) const {
  const Json* value = find(key);
  if (value == nullptr) return fallback;
  if (value->type_ == Type::kInt) return value->int_;
  // Tolerant reader: a non-integral or out-of-range number is "absent",
  // never an exception — malformed input files must not look like bugs.
  if (value->type_ == Type::kDouble &&
      integral_in_int64_range(value->double_)) {
    return static_cast<std::int64_t>(value->double_);
  }
  return fallback;
}

std::string Json::string_or(std::string_view key, std::string fallback) const {
  const Json* value = find(key);
  return value != nullptr && value->is_string() ? value->as_string()
                                                : std::move(fallback);
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return members_.size();
  return 0;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int levels) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * levels), ' ');
  };

  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kInt: out += std::to_string(int_); return;
    case Type::kDouble: append_double(out, double_); return;
    case Type::kString: append_escaped(out, string_); return;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline_pad(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back(']');
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline_pad(depth + 1);
        append_escaped(out, members_[i].first);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::write(std::ostream& out, int indent) const {
  out << dump(indent);
  if (indent >= 0) out << '\n';
}

Json Json::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace mood::report
