#pragma once

/// \file json.h
/// Self-contained JSON document model: build, serialize, parse.
///
/// The reporting subsystem needs machine-readable output (every result the
/// CLI, benches and examples emit is a JSON document) and needs to read its
/// own output back (`mood report` aggregates result files) — so this module
/// provides both directions with no third-party dependency.
///
/// Design notes:
///  * Objects preserve insertion order (vector of pairs, linear lookup):
///    result documents stay diff-friendly and small enough that O(n) member
///    access never matters.
///  * Doubles serialize via std::to_chars (shortest round-trip form); NaN
///    and infinities become `null`, since JSON has no representation for
///    them and result consumers (python -m json.tool, jq) reject bare NaN.
///  * The parser is strict RFC 8259: it throws support::IoError with a
///    byte offset on malformed input, and decodes \uXXXX escapes
///    (including surrogate pairs) to UTF-8.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mood::report {

/// One JSON value: null, boolean, number (integer or double), string,
/// array, or object. Value semantics throughout.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Members = std::vector<std::pair<std::string, Json>>;

  /// Default-constructs null.
  Json() = default;
  Json(std::nullptr_t) : Json() {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(int value) : type_(Type::kInt), int_(value) {}
  Json(unsigned value) : type_(Type::kInt), int_(value) {}
  Json(std::int64_t value) : type_(Type::kInt), int_(value) {}
  Json(std::size_t value)
      : type_(Type::kInt), int_(static_cast<std::int64_t>(value)) {}
  Json(double value) : type_(Type::kDouble), double_(value) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}

  /// Empty aggregate factories (distinguish `[]` / `{}` from null).
  static Json array();
  static Json object();

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors. Throw support::PreconditionError on type mismatch
  /// (reading a result file with an unexpected shape is a caller error,
  /// and should fail with a message rather than UB).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;    ///< kInt, or integral kDouble
  [[nodiscard]] double as_double() const;       ///< any number
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& items() const;     ///< array elements
  [[nodiscard]] const Members& members() const; ///< object members, in order

  // ---- Building ------------------------------------------------------

  /// Object member access; inserts a null member if absent. Converts a
  /// null value to an object first (so `doc["a"]["b"] = 1` just works).
  Json& operator[](std::string_view key);

  /// Appends to an array (converting null to an array first).
  void push_back(Json value);

  /// Object lookup without insertion; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// find() + typed access with a fallback — for tolerant readers.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  [[nodiscard]] std::int64_t int_or(std::string_view key,
                                    std::int64_t fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string fallback) const;

  /// Array / object element count (0 for scalars).
  [[nodiscard]] std::size_t size() const;

  // ---- Serialization -------------------------------------------------

  /// Serializes to a string. `indent < 0` gives the compact single-line
  /// form; `indent >= 0` pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Streams dump(indent) plus a trailing newline when pretty-printing.
  void write(std::ostream& out, int indent = 2) const;

  /// Parses a complete JSON document (trailing whitespace allowed, trailing
  /// garbage is an error). Throws support::IoError on malformed input.
  static Json parse(std::string_view text);

  friend bool operator==(const Json&, const Json&) = default;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Members members_;
};

}  // namespace mood::report
