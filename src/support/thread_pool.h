#pragma once

/// \file thread_pool.h
/// A fixed-size thread pool and a blocking parallel_for built on top of it.
///
/// MooD's hot paths — training attacks across users and the per-user
/// protection search — are embarrassingly parallel over immutable shared
/// state, so a plain chunked parallel_for is all the machinery we need.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mood::support {

/// Fixed-size pool of worker threads executing queued tasks FIFO.
/// Thread-safe; destruction drains the queue and joins all workers.
class ThreadPool {
 public:
  /// Creates `threads` workers (default: hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future resolves when it has run.
  std::future<void> submit(std::function<void()> task);

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Process-wide shared pool, sized to the machine. Use this instead of
  /// constructing nested pools inside library code.
  static ThreadPool& shared();

  /// Sets the worker count of the shared pool (0 = hardware concurrency).
  ///
  /// Contract (enforced, not advisory): the shared pool is built lazily
  /// exactly once, on the first shared() call — which parallel_for and
  /// everything built on it (harness evaluators, the stream gateway's
  /// drain) performs implicitly. configure_shared must therefore run
  /// before ANY of those; once the pool exists, reconfiguration throws
  /// PreconditionError instead of silently keeping the old worker count.
  /// Calling it several times before the pool is built is fine (the last
  /// value wins). This backs the CLI's --jobs flag; call it from main()
  /// before touching the library, never from library code.
  static void configure_shared(std::size_t threads);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs fn(i) for every i in [0, count), chunked across the shared pool.
/// Blocks until all iterations completed. Exceptions from iterations are
/// rethrown (the first one encountered) after all chunks finish.
///
/// fn must be safe to invoke concurrently for distinct i.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

}  // namespace mood::support
