#include "support/rng.h"

#include <cmath>
#include <numbers>

#include "support/error.h"

namespace mood::support {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV offset basis
  for (unsigned char c : label) {
    h ^= c;
    h *= 0x100000001B3ULL;  // FNV prime
  }
  return h;
}

std::uint64_t derive_seed(std::uint64_t parent, std::string_view label,
                          std::uint64_t index) {
  std::uint64_t h = splitmix64(parent ^ hash_label(label));
  return splitmix64(h ^ (0x9E3779B97F4A7C15ULL * (index + 1)));
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

RngStream::RngStream(std::uint64_t seed) : seed_(seed) {
  // Whiten the seed into four non-zero state words via splitmix64, the
  // initialisation recommended by the xoshiro authors.
  std::uint64_t s = seed;
  for (auto& word : state_) {
    s = splitmix64(s);
    word = s;
  }
}

RngStream RngStream::fork(std::string_view label, std::uint64_t index) const {
  return RngStream(derive_seed(seed_, label, index));
}

std::uint64_t RngStream::next() {
  // xoshiro256** step.
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double RngStream::uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double RngStream::uniform(double lo, double hi) {
  expects(lo <= hi, "RngStream::uniform: lo must be <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t RngStream::uniform_index(std::uint64_t n) {
  expects(n > 0, "RngStream::uniform_index: n must be > 0");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (~0ULL - n + 1) % n;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double RngStream::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller: two uniforms -> two independent standard normals.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double RngStream::normal(double mean, double stddev) {
  expects(stddev >= 0.0, "RngStream::normal: stddev must be >= 0");
  return mean + stddev * normal();
}

double RngStream::exponential(double lambda) {
  expects(lambda > 0.0, "RngStream::exponential: lambda must be > 0");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

bool RngStream::bernoulli(double p) {
  expects(p >= 0.0 && p <= 1.0, "RngStream::bernoulli: p must be in [0,1]");
  return uniform() < p;
}

}  // namespace mood::support
