#pragma once

/// \file csv.h
/// Minimal CSV reading/writing used for trace import/export and bench output.
///
/// Supports the RFC-4180 subset MooD needs: comma separator, optional
/// double-quote quoting with "" escapes, one record per line, optional
/// header row. No embedded newlines inside quoted fields (mobility exports
/// never contain them).
///
/// The parser is the gateway's first line of defence against hostile or
/// truncated input (fuzzed rows reach it via `mood replay --input`), so it
/// rejects two classes a well-formed export can never produce: embedded
/// NUL bytes (binary garbage spliced into a text file) and fields longer
/// than kMaxCsvFieldBytes (a missing delimiter turning the rest of the
/// file into one "field"). Both throw typed IoError, never truncate.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace mood::support {

/// Upper bound on one field's decoded length. Far above any real trace
/// field (user ids, coordinates, timestamps) yet small enough to stop a
/// quote-desync from swallowing a whole file into one allocation.
inline constexpr std::size_t kMaxCsvFieldBytes = 64 * 1024;

/// Splits one CSV line into fields, honouring double-quote quoting.
/// Throws IoError on unterminated quotes, embedded NUL bytes, and fields
/// longer than kMaxCsvFieldBytes.
std::vector<std::string> parse_csv_line(std::string_view line);

/// Joins fields into a CSV line, quoting any field containing a comma,
/// quote, or leading/trailing whitespace.
std::string format_csv_line(const std::vector<std::string>& fields);

/// Reads an entire CSV document from a stream. Skips blank lines.
/// Throws IoError on malformed content.
std::vector<std::vector<std::string>> read_csv(std::istream& in);

/// Reads an entire CSV file from disk. Throws IoError if unreadable.
std::vector<std::vector<std::string>> read_csv_file(const std::string& path);

/// Writes rows to a stream as CSV.
void write_csv(std::ostream& out,
               const std::vector<std::vector<std::string>>& rows);

/// Writes rows to a file on disk. Throws IoError on failure.
void write_csv_file(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace mood::support
