#pragma once

/// \file logging.h
/// Leveled stderr logger. Thread-safe (one line per call, atomic write).
/// The level defaults to `info` and can be lowered for tests or raised for
/// verbose experiment runs via MOOD_LOG=debug|info|warn|error|off.
/// Lines are timestamped (ISO-8601 UTC, millisecond precision):
///   2026-08-08T12:34:56.789Z [warn] quarantined user 'u17' ...

#include <sstream>
#include <string>

namespace mood::support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Current minimum level; initialised from MOOD_LOG on first use.
LogLevel log_level();

/// Overrides the level programmatically (e.g. tests silencing output).
void set_log_level(LogLevel level);

/// Emits one formatted line ("<stamp> [level] message") if level >=
/// threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  return oss.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_line(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace mood::support
