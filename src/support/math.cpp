#include "support/math.h"

#include <cmath>

#include "support/error.h"

namespace mood::support {

double lambert_w_minus1(double x) {
  constexpr double kMinusOneOverE = -0.367879441171442321595;  // -1/e
  expects(x >= kMinusOneOverE && x < 0.0,
          "lambert_w_minus1: argument outside [-1/e, 0)");

  // At the branch point the value is exactly -1.
  if (x <= kMinusOneOverE + 1e-16) return -1.0;

  // Initial guess. Near the branch point use the square-root expansion
  // w = -1 - p - p^2/3 with p = sqrt(2(1 + e x)); elsewhere the asymptotic
  // log-log series w = L1 - L2 + L2/L1.
  double w;
  const double p2 = 2.0 * (1.0 + std::exp(1.0) * x);
  if (p2 < 0.25) {
    const double p = -std::sqrt(p2);
    w = -1.0 + p - p2 / 6.0;
  } else {
    const double l1 = std::log(-x);
    const double l2 = std::log(-l1);
    w = l1 - l2 + l2 / l1;
  }

  // Halley iterations.
  for (int iter = 0; iter < 32; ++iter) {
    const double ew = std::exp(w);
    const double f = w * ew - x;
    const double denominator =
        ew * (w + 1.0) - (w + 2.0) * f / (2.0 * w + 2.0);
    const double step = f / denominator;
    w -= step;
    if (std::abs(step) < 1e-14 * (1.0 + std::abs(w))) break;
  }
  return w;
}

}  // namespace mood::support
