#pragma once

/// \file rng.h
/// Deterministic, forkable random-number streams.
///
/// Every stochastic component in MooD (LPPM noise, synthetic mobility,
/// tie-breaking) draws from a named RngStream derived from a root seed.
/// Deriving a child stream hashes the parent seed with a label, so the same
/// (root seed, label path) always yields the same sequence regardless of the
/// order in which sibling streams are consumed. That property is what makes
/// the composition search (which applies LPPMs in many different orders)
/// reproducible and order-stable.

#include <cstdint>
#include <random>
#include <string_view>

namespace mood::support {

/// splitmix64 — used to whiten seeds before feeding the engine.
std::uint64_t splitmix64(std::uint64_t x);

/// FNV-1a hash of a label, used to derive named child streams.
std::uint64_t hash_label(std::string_view label);

/// Combine a parent seed with a label (and an optional index) into a child
/// seed. Deterministic and well-distributed.
std::uint64_t derive_seed(std::uint64_t parent, std::string_view label,
                          std::uint64_t index = 0);

/// A deterministic random stream with value-semantics.
///
/// Wraps xoshiro256** (public-domain, Blackman/Vigna). We implement the
/// engine ourselves instead of using std::mt19937_64 so that streams are
/// cheap to copy/fork and the exact sequence is pinned down by this
/// repository (libstdc++ distributions of `std::*_distribution` are not
/// portable across standard libraries; ours are).
class RngStream {
 public:
  using result_type = std::uint64_t;

  /// Creates a stream from a whitened seed.
  explicit RngStream(std::uint64_t seed = 0xC0FFEE);

  /// Forks a child stream identified by a label and optional index.
  /// Forking does not perturb this stream's own sequence.
  [[nodiscard]] RngStream fork(std::string_view label,
                               std::uint64_t index = 0) const;

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal variate (Box–Muller, stateless per call pair).
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential variate with the given rate lambda (> 0).
  double exponential(double lambda);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// The seed this stream was constructed with (pre-whitening).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace mood::support
