#pragma once

/// \file options.h
/// Tiny command-line / environment option reader for benches and examples.
///
/// Syntax: `--key=value` or `--flag` (boolean true). Unknown arguments are
/// kept in positional(). Every lookup also consults the environment variable
/// `MOOD_<KEY>` (upper-cased, '-' -> '_') so experiment scale can be tuned
/// without editing command lines, e.g. `MOOD_SCALE=0.5 ./fig7_multi_attack`.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mood::support {

/// Parsed option set with typed getters and defaults.
class Options {
 public:
  Options() = default;

  /// Parses argv (excluding argv[0]).
  Options(int argc, const char* const* argv);

  /// Raw lookup: CLI first, then MOOD_<KEY> environment variable.
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  /// Typed getters with defaults. Throw PreconditionError on unparsable
  /// values (a typo in an experiment invocation should fail loudly).
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Arguments that did not look like --options, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace mood::support
