#pragma once

/// \file options.h
/// Command-line parsing, in two layers.
///
/// `Options` is the low-level reader used by benches and examples:
/// `--key=value` / `--flag` syntax, no declared schema, environment
/// fallback. `FlagSet` builds on it for the `mood` CLI: flags are declared
/// up front with a type, default and help line, unknown flags are rejected
/// with UsageError, and `--help` text is generated — so every subcommand
/// documents itself and typos fail loudly instead of being ignored.
///
/// Environment fallback: every lookup that misses on the command line also
/// consults `MOOD_<KEY>` (upper-cased, '-' -> '_'), so experiment scale can
/// be tuned without editing command lines, e.g.
/// `MOOD_SCALE=0.5 ./fig7_multi_attack`.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mood::support {

/// Parsed option set with typed getters and defaults.
///
/// Syntax: `--key=value` or `--flag` (boolean true). Arguments that do not
/// start with `--` are kept, in order, in positional().
class Options {
 public:
  Options() = default;

  /// Parses argv (excluding argv[0]).
  Options(int argc, const char* const* argv);

  /// Raw lookup: CLI first, then `MOOD_<KEY>` environment variable.
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  /// Typed getters with defaults. Throw PreconditionError on unparsable
  /// values (a typo in an experiment invocation should fail loudly).
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Keys that were provided on the command line (not via environment),
  /// in sorted order — lets schema-aware layers (FlagSet) reject unknowns.
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Arguments that did not look like --options, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Declared, typed command-line schema for one (sub)command.
///
/// Usage:
/// \code
///   FlagSet flags("mood simulate", "Generate a synthetic dataset preset.");
///   flags.add_string("preset", "privamov", "dataset preset name");
///   flags.add_double("scale", 0.25, "record-volume scale in (0, 4]");
///   flags.parse(argc, argv);            // throws UsageError on bad input
///   if (flags.get_bool("help")) { out << flags.help(); return 0; }
///   const double scale = flags.get_double("scale");
/// \endcode
///
/// A boolean `--help` flag is always registered. Values fall back to the
/// `MOOD_<KEY>` environment (through Options), then to the declared
/// default. parse() throws UsageError for undeclared `--flags` and for
/// values that do not parse as the declared type.
class FlagSet {
 public:
  /// `program` and `synopsis` head the generated help text.
  FlagSet(std::string program, std::string synopsis);

  /// Declares a flag of the given type. Call before parse(). The
  /// registration order is the help-text order.
  void add_string(const std::string& name, std::string fallback,
                  std::string help);
  void add_double(const std::string& name, double fallback, std::string help);
  void add_int(const std::string& name, std::int64_t fallback,
               std::string help);
  void add_bool(const std::string& name, bool fallback, std::string help);

  /// Parses argv (excluding argv[0]). Throws UsageError naming the first
  /// offending flag when an undeclared option or a value of the wrong type
  /// is found. May be called once per FlagSet.
  void parse(int argc, const char* const* argv);

  /// Typed access after parse(). Throws PreconditionError for names that
  /// were never declared (a programming error, not a user error).
  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Non-flag arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return options_.positional();
  }

  /// For commands that take no positional arguments: throws UsageError
  /// naming the first stray one. Catches the `--flag value` space syntax,
  /// which would otherwise read as flag=true plus an ignored positional.
  void reject_positionals() const;

  /// Generated usage text: synopsis plus one line per declared flag with
  /// its type and default.
  [[nodiscard]] std::string help() const;

 private:
  enum class Type { kString, kDouble, kInt, kBool };
  struct Spec {
    std::string name;
    Type type;
    std::string fallback;      ///< default, rendered as text for help()
    double double_fallback;    ///< exact default for kDouble (the text
                               ///< rendering may lose precision)
    std::string help;
  };

  [[nodiscard]] const Spec& spec(const std::string& name, Type type) const;

  std::string program_;
  std::string synopsis_;
  std::vector<Spec> specs_;
  Options options_;
};

}  // namespace mood::support
