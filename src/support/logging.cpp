#include "support/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace mood::support {

namespace {

LogLevel parse_level(const char* text) {
  const std::string s = text ? text : "";
  if (s == "debug") return LogLevel::kDebug;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{parse_level(std::getenv("MOOD_LOG"))};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  // ISO-8601 UTC with millisecond precision, so gateway transition logs
  // (quarantine, shed, checkpoint, restore) line up across processes.
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char stamp[64];
  std::snprintf(stamp, sizeof(stamp), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(millis));
  static std::mutex mutex;
  std::lock_guard lock(mutex);
  std::fprintf(stderr, "%s [%s] %s\n", stamp, level_name(level),
               message.c_str());
}

}  // namespace mood::support
