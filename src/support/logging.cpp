#include "support/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace mood::support {

namespace {

LogLevel parse_level(const char* text) {
  const std::string s = text ? text : "";
  if (s == "debug") return LogLevel::kDebug;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{parse_level(std::getenv("MOOD_LOG"))};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  static std::mutex mutex;
  std::lock_guard lock(mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace mood::support
