#include "support/csv.h"

#include <fstream>
#include <sstream>

#include "support/error.h"

namespace mood::support {

std::vector<std::string> parse_csv_line(std::string_view line) {
  // CRLF tolerance: std::getline splits on '\n' only, so every line of a
  // Windows-exported file (streamed event logs included) arrives with a
  // trailing '\r'. Strip exactly that one; a '\r' anywhere else is field
  // content and is preserved.
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\0') throw IoError("CSV: embedded NUL byte");
    if (current.size() >= kMaxCsvFieldBytes) {
      throw IoError("CSV: field exceeds " +
                    std::to_string(kMaxCsvFieldBytes) + " bytes");
    }
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) throw IoError("CSV: unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

std::string format_csv_line(const std::vector<std::string>& fields) {
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line.push_back(',');
    const std::string& f = fields[i];
    const bool needs_quoting =
        f.find_first_of(",\"\n") != std::string::npos ||
        (!f.empty() && (f.front() == ' ' || f.back() == ' '));
    if (needs_quoting) {
      line.push_back('"');
      for (char c : f) {
        if (c == '"') line.push_back('"');
        line.push_back(c);
      }
      line.push_back('"');
    } else {
      line += f;
    }
  }
  return line;
}

std::vector<std::vector<std::string>> read_csv(std::istream& in) {
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line == "\r") continue;
    rows.push_back(parse_csv_line(line));
  }
  return rows;
}

std::vector<std::vector<std::string>> read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("CSV: cannot open for reading: " + path);
  return read_csv(in);
}

void write_csv(std::ostream& out,
               const std::vector<std::vector<std::string>>& rows) {
  for (const auto& row : rows) out << format_csv_line(row) << '\n';
}

void write_csv_file(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  if (!out) throw IoError("CSV: cannot open for writing: " + path);
  write_csv(out, rows);
  if (!out) throw IoError("CSV: write failed: " + path);
}

}  // namespace mood::support
