#pragma once

/// \file failpoint.h
/// mood::testing::FailPoint — named crash/fault hooks for the snapshot
/// write/restore paths.
///
/// A fail point is a named site in production code (see the fail-point map
/// in docs/ARCHITECTURE.md) where a test can inject a failure:
///
///   * kError — throw support::IoError at the site. Because the snapshot
///     writer never cleans up partial files on exception paths, the
///     on-disk state after an injected error is byte-identical to a
///     process killed at the same instruction — the in-process way to
///     exercise crash recovery.
///   * kTorn  — returned to the call site, which simulates a torn write
///     (flush a truncated prefix, then fail). Only the payload-write site
///     honours it; everywhere else it degrades to kError.
///   * kKill  — std::_Exit(137) at the site: a real no-destructors,
///     no-atexit death, matching SIGKILL. Drive it from gtest death tests
///     (EXPECT_EXIT) or a sacrificial CLI subprocess.
///   * kCorrupt — returned to the call site, which mangles its own data
///     in place (e.g. the drain path poisons a user's pending event with
///     a NaN coordinate). Sites that don't know how to self-corrupt
///     treat it as kError.
///   * kThrow — throw testing::InjectedFault at the site: a typed,
///     recognizable exception for exercising the decision-path fault
///     isolation (user quarantine) without faking an I/O failure.
///
/// Sites are spelled `MOOD_FAIL_POINT("name")`. The macro compiles to a
/// single relaxed atomic load when nothing is armed, and to a literal
/// kNone constant when the build defines MOOD_DISABLE_FAILPOINTS (the
/// Release/CLI-only configuration — see the MOOD_FAILPOINTS CMake
/// option), so shipping binaries carry no hook overhead at all.
///
/// Arming is programmatic (FailPoint::arm) or environmental: the CLI
/// arms from MOOD_FAILPOINTS ("site=kill@2,other=error" — fire the kill
/// on the 2nd hit of `site`), which is how the CI restart drill kills a
/// replay mid-checkpoint without patching the binary.

#include <cstdint>
#include <string>

#include "support/error.h"

namespace mood::testing {

/// What an armed fail point does when it fires.
enum class FailAction : std::uint8_t {
  kNone = 0,  ///< disarmed / not yet at the firing hit
  kError,     ///< throw support::IoError at the site
  kTorn,      ///< call site simulates a torn (partial) write, then fails
  kKill,      ///< std::_Exit(137) — a SIGKILL-equivalent death
  kCorrupt,   ///< call site mangles its own pending data in place
  kThrow,     ///< throw testing::InjectedFault at the site
};

/// The typed exception a kThrow fail point raises. Derives support::Error
/// so production catch-blocks that absorb domain failures (e.g. the
/// quarantining drain path) treat it like any real fault.
class InjectedFault : public support::Error {
 public:
  explicit InjectedFault(const std::string& what) : support::Error(what) {}
};

class FailPoint {
 public:
  /// Arms `name` to perform `action` on its `at_hit`-th hit (1 = next
  /// hit). One-shot: the point disarms itself when it fires, so recovery
  /// paths run unimpeded. Re-arming overwrites.
  static void arm(const std::string& name, FailAction action,
                  std::uint64_t at_hit = 1);

  static void disarm(const std::string& name);
  static void disarm_all();

  /// Parses `spec` ("name=action" or "name=action@N", comma-separated;
  /// actions: error | torn | kill | corrupt | throw) and arms every
  /// entry. Throws support::UsageError on malformed specs.
  static void arm_spec(const std::string& spec);

  /// arm_spec(getenv(env)) when the variable is set; no-op otherwise.
  static void arm_from_env(const char* env = "MOOD_FAILPOINTS");

  /// True when at least one point is armed (the macro's fast-path guard).
  static bool any_armed();

  /// Hit `name`: kNone when disarmed or before the firing hit; otherwise
  /// fires — kError/kThrow throw, kKill exits the process, kTorn and
  /// kCorrupt are returned for the call site to act out itself.
  static FailAction hit(const char* name);
};

}  // namespace mood::testing

#ifdef MOOD_DISABLE_FAILPOINTS
#define MOOD_FAIL_POINT(name) ::mood::testing::FailAction::kNone
#else
#define MOOD_FAIL_POINT(name)                   \
  (::mood::testing::FailPoint::any_armed()      \
       ? ::mood::testing::FailPoint::hit(name)  \
       : ::mood::testing::FailAction::kNone)
#endif
