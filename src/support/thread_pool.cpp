#include "support/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "support/error.h"

namespace mood::support {

namespace {
// Set while a pool worker is executing a task; nested parallel_for calls
// detect it and degrade to serial execution instead of deadlocking on the
// shared pool.
thread_local bool t_inside_pool_worker = false;

// configure_shared() / shared() handshake: the requested size, and whether
// the lazily-built shared pool already exists (after which reconfiguration
// must fail instead of silently doing nothing).
std::atomic<std::size_t> g_shared_pool_size{0};
std::atomic<bool> g_shared_pool_built{false};
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    expects(!stopping_, "ThreadPool::submit called during shutdown");
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    // RAII keeps the flag correct on every exit path. packaged_task
    // captures exceptions into the future today, but nothing else should
    // have to know that for the flag to stay balanced.
    struct InsidePoolGuard {
      InsidePoolGuard() { t_inside_pool_worker = true; }
      ~InsidePoolGuard() { t_inside_pool_worker = false; }
    } guard;
    task();  // exceptions propagate through the packaged_task's future
  }
}

ThreadPool& ThreadPool::shared() {
  g_shared_pool_built.store(true);
  static ThreadPool pool(g_shared_pool_size.load());
  return pool;
}

void ThreadPool::configure_shared(std::size_t threads) {
  expects(!g_shared_pool_built.load(),
          "ThreadPool::configure_shared: the shared pool was already built "
          "by an earlier shared()/parallel_for use; configure worker counts "
          "(e.g. --jobs) before any parallel work runs");
  g_shared_pool_size.store(threads);
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  if (count == 0) return;
  grain = std::max<std::size_t>(1, grain);

  auto& pool = ThreadPool::shared();
  const std::size_t chunks =
      std::min((count + grain - 1) / grain, pool.size() + 1);
  if (chunks <= 1 || t_inside_pool_worker) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Dynamic scheduling: workers pull the next index from a shared counter,
  // which balances the skewed per-user costs of the protection search.
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto body = [&] {
    for (;;) {
      const std::size_t begin = cursor.fetch_add(grain);
      if (begin >= count || failed.load(std::memory_order_relaxed)) return;
      const std::size_t end = std::min(begin + grain, count);
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(chunks - 1);
  for (std::size_t c = 0; c + 1 < chunks; ++c) {
    futures.push_back(pool.submit(body));
  }
  body();  // the caller participates, guaranteeing forward progress
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mood::support
