#include "support/options.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "support/error.h"

namespace mood::support {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

std::optional<std::string> Options::get(const std::string& key) const {
  if (const auto it = values_.find(key); it != values_.end()) {
    return it->second;
  }
  std::string env_name = "MOOD_" + key;
  std::transform(env_name.begin(), env_name.end(), env_name.begin(),
                 [](unsigned char c) {
                   return c == '-' ? '_' : static_cast<char>(std::toupper(c));
                 });
  if (const char* env = std::getenv(env_name.c_str())) {
    return std::string(env);
  }
  return std::nullopt;
}

std::string Options::get_string(const std::string& key,
                                const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(*value, &consumed);
    expects(consumed == value->size(), "trailing junk");
    return parsed;
  } catch (...) {
    throw PreconditionError("option --" + key + ": expected number, got '" +
                            *value + "'");
  }
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  try {
    std::size_t consumed = 0;
    const long long parsed = std::stoll(*value, &consumed);
    expects(consumed == value->size(), "trailing junk");
    return parsed;
  } catch (...) {
    throw PreconditionError("option --" + key + ": expected integer, got '" +
                            *value + "'");
  }
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  if (*value == "true" || *value == "1" || *value == "yes") return true;
  if (*value == "false" || *value == "0" || *value == "no") return false;
  throw PreconditionError("option --" + key + ": expected boolean, got '" +
                          *value + "'");
}

std::vector<std::string> Options::keys() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [key, value] : values_) names.push_back(key);
  return names;
}

FlagSet::FlagSet(std::string program, std::string synopsis)
    : program_(std::move(program)), synopsis_(std::move(synopsis)) {
  add_bool("help", false, "print this help and exit");
}

namespace {

[[noreturn]] void duplicate_flag(const std::string& name) {
  throw PreconditionError("FlagSet: flag --" + name + " declared twice");
}

}  // namespace

void FlagSet::add_string(const std::string& name, std::string fallback,
                         std::string help) {
  for (const auto& s : specs_) {
    if (s.name == name) duplicate_flag(name);
  }
  specs_.push_back(
      {name, Type::kString, std::move(fallback), 0.0, std::move(help)});
}

void FlagSet::add_double(const std::string& name, double fallback,
                         std::string help) {
  for (const auto& s : specs_) {
    if (s.name == name) duplicate_flag(name);
  }
  char text[32];
  std::snprintf(text, sizeof text, "%g", fallback);
  specs_.push_back({name, Type::kDouble, text, fallback, std::move(help)});
}

void FlagSet::add_int(const std::string& name, std::int64_t fallback,
                      std::string help) {
  for (const auto& s : specs_) {
    if (s.name == name) duplicate_flag(name);
  }
  specs_.push_back(
      {name, Type::kInt, std::to_string(fallback), 0.0, std::move(help)});
}

void FlagSet::add_bool(const std::string& name, bool fallback,
                       std::string help) {
  for (const auto& s : specs_) {
    if (s.name == name) duplicate_flag(name);
  }
  specs_.push_back({name, Type::kBool, fallback ? "true" : "false", 0.0,
                    std::move(help)});
}

void FlagSet::parse(int argc, const char* const* argv) {
  options_ = Options(argc, argv);
  for (const auto& key : options_.keys()) {
    const bool known = std::any_of(
        specs_.begin(), specs_.end(),
        [&](const Spec& spec) { return spec.name == key; });
    if (!known) {
      throw UsageError(program_ + ": unknown flag --" + key +
                       " (see --help)");
    }
  }
  // Force every typed conversion now so errors carry the flag name at
  // parse time rather than at first use.
  for (const auto& spec : specs_) {
    try {
      switch (spec.type) {
        case Type::kString: break;
        case Type::kDouble:
          static_cast<void>(options_.get_double(spec.name, 0.0));
          break;
        case Type::kInt:
          static_cast<void>(options_.get_int(spec.name, 0));
          break;
        case Type::kBool:
          static_cast<void>(options_.get_bool(spec.name, false));
          break;
      }
    } catch (const PreconditionError& error) {
      throw UsageError(program_ + ": " + error.what() + " (see --help)");
    }
  }
}

void FlagSet::reject_positionals() const {
  if (options_.positional().empty()) return;
  throw UsageError(program_ + ": unexpected argument '" +
                   options_.positional().front() +
                   "' (flags use --name=value syntax; see --help)");
}

const FlagSet::Spec& FlagSet::spec(const std::string& name, Type type) const {
  for (const auto& s : specs_) {
    if (s.name == name) {
      expects(s.type == type,
              "FlagSet: flag --" + name + " accessed with the wrong type");
      return s;
    }
  }
  throw PreconditionError("FlagSet: flag --" + name + " was never declared");
}

std::string FlagSet::get_string(const std::string& name) const {
  return options_.get_string(name, spec(name, Type::kString).fallback);
}

double FlagSet::get_double(const std::string& name) const {
  return options_.get_double(name, spec(name, Type::kDouble).double_fallback);
}

std::int64_t FlagSet::get_int(const std::string& name) const {
  return options_.get_int(name, std::stoll(spec(name, Type::kInt).fallback));
}

bool FlagSet::get_bool(const std::string& name) const {
  return options_.get_bool(name, spec(name, Type::kBool).fallback == "true");
}

std::string FlagSet::help() const {
  std::string out = "usage: " + program_ + " [flags]\n\n" + synopsis_ + "\n\n";
  out += "Flags (values also read from MOOD_<FLAG> environment variables):\n";
  std::size_t width = 0;
  std::vector<std::string> heads;
  heads.reserve(specs_.size());
  for (const auto& spec : specs_) {
    std::string head = "  --" + spec.name;
    switch (spec.type) {
      case Type::kString: head += "=<string>"; break;
      case Type::kDouble: head += "=<number>"; break;
      case Type::kInt: head += "=<int>"; break;
      case Type::kBool: break;  // bare flag form is enough
    }
    width = std::max(width, head.size());
    heads.push_back(std::move(head));
  }
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    out += heads[i] + std::string(width - heads[i].size() + 2, ' ') +
           specs_[i].help;
    if (specs_[i].name != "help") {
      out += " (default: " + specs_[i].fallback + ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace mood::support
