#include "support/options.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "support/error.h"

namespace mood::support {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

std::optional<std::string> Options::get(const std::string& key) const {
  if (const auto it = values_.find(key); it != values_.end()) {
    return it->second;
  }
  std::string env_name = "MOOD_" + key;
  std::transform(env_name.begin(), env_name.end(), env_name.begin(),
                 [](unsigned char c) {
                   return c == '-' ? '_' : static_cast<char>(std::toupper(c));
                 });
  if (const char* env = std::getenv(env_name.c_str())) {
    return std::string(env);
  }
  return std::nullopt;
}

std::string Options::get_string(const std::string& key,
                                const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(*value, &consumed);
    expects(consumed == value->size(), "trailing junk");
    return parsed;
  } catch (...) {
    throw PreconditionError("option --" + key + ": expected number, got '" +
                            *value + "'");
  }
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  try {
    std::size_t consumed = 0;
    const long long parsed = std::stoll(*value, &consumed);
    expects(consumed == value->size(), "trailing junk");
    return parsed;
  } catch (...) {
    throw PreconditionError("option --" + key + ": expected integer, got '" +
                            *value + "'");
  }
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  if (*value == "true" || *value == "1" || *value == "yes") return true;
  if (*value == "false" || *value == "0" || *value == "no") return false;
  throw PreconditionError("option --" + key + ": expected boolean, got '" +
                          *value + "'");
}

}  // namespace mood::support
