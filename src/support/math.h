#pragma once

/// \file math.h
/// Special functions the library needs that the standard library lacks.

namespace mood::support {

/// Lambert W, branch W_{-1}: the solution w <= -1 of w * e^w = x for
/// x in [-1/e, 0). Used by the planar Laplace radius sampler of
/// Geo-indistinguishability (Andrés et al. 2013).
///
/// Accuracy: |w e^w - x| / |x| < 1e-12 across the domain (Halley
/// iterations from the standard series initial guess).
/// Throws PreconditionError outside [-1/e, 0).
double lambert_w_minus1(double x);

}  // namespace mood::support
