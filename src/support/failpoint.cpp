#include "support/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "support/error.h"

namespace mood::testing {

namespace {

struct Entry {
  FailAction action = FailAction::kNone;
  std::uint64_t hits_until_fire = 1;
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, Entry> points;
};

Registry& registry() {
  static Registry instance;
  return instance;
}

/// Count of armed points; the macro's lock-free fast path reads this.
std::atomic<std::uint64_t> armed_count{0};

FailAction parse_action(const std::string& word, const std::string& spec) {
  if (word == "error") return FailAction::kError;
  if (word == "torn") return FailAction::kTorn;
  if (word == "kill") return FailAction::kKill;
  if (word == "corrupt") return FailAction::kCorrupt;
  if (word == "throw") return FailAction::kThrow;
  throw support::UsageError(
      "FailPoint: unknown action '" + word + "' in spec '" + spec +
      "' (expected error | torn | kill | corrupt | throw)");
}

}  // namespace

void FailPoint::arm(const std::string& name, FailAction action,
                    std::uint64_t at_hit) {
  support::expects(action != FailAction::kNone && at_hit > 0,
                   "FailPoint::arm: need a real action and at_hit > 0");
  Registry& reg = registry();
  const std::lock_guard lock(reg.mutex);
  if (reg.points.emplace(name, Entry{action, at_hit}).second) {
    armed_count.fetch_add(1, std::memory_order_relaxed);
  } else {
    reg.points[name] = Entry{action, at_hit};
  }
}

void FailPoint::disarm(const std::string& name) {
  Registry& reg = registry();
  const std::lock_guard lock(reg.mutex);
  if (reg.points.erase(name) > 0) {
    armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailPoint::disarm_all() {
  Registry& reg = registry();
  const std::lock_guard lock(reg.mutex);
  armed_count.fetch_sub(reg.points.size(), std::memory_order_relaxed);
  reg.points.clear();
}

void FailPoint::arm_spec(const std::string& spec) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw support::UsageError(
          "FailPoint: expected 'name=action[@hit]', got '" + entry + "'");
    }
    const std::string name = entry.substr(0, eq);
    std::string action_word = entry.substr(eq + 1);
    std::uint64_t at_hit = 1;
    if (const std::size_t at = action_word.find('@');
        at != std::string::npos) {
      const std::string count = action_word.substr(at + 1);
      action_word = action_word.substr(0, at);
      try {
        const long long parsed = std::stoll(count);
        if (parsed <= 0) throw std::invalid_argument(count);
        at_hit = static_cast<std::uint64_t>(parsed);
      } catch (const std::exception&) {
        throw support::UsageError("FailPoint: bad hit count '" + count +
                                  "' in spec '" + entry + "'");
      }
    }
    arm(name, parse_action(action_word, entry), at_hit);
  }
}

void FailPoint::arm_from_env(const char* env) {
  if (const char* spec = std::getenv(env); spec != nullptr && *spec != '\0') {
    arm_spec(spec);
  }
}

bool FailPoint::any_armed() {
  return armed_count.load(std::memory_order_relaxed) > 0;
}

FailAction FailPoint::hit(const char* name) {
  FailAction fired = FailAction::kNone;
  {
    Registry& reg = registry();
    const std::lock_guard lock(reg.mutex);
    const auto it = reg.points.find(name);
    if (it == reg.points.end()) return FailAction::kNone;
    if (--it->second.hits_until_fire > 0) return FailAction::kNone;
    fired = it->second.action;
    // One-shot: disarm before acting so recovery code re-entering the
    // same site proceeds normally.
    reg.points.erase(it);
    armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  switch (fired) {
    case FailAction::kKill:
      // No destructors, no atexit, no flushing — the in-process stand-in
      // for SIGKILL. 137 = 128 + SIGKILL, the shell convention.
      std::_Exit(137);
    case FailAction::kError:
      throw support::IoError(std::string("fail point '") + name +
                             "' injected an I/O error");
    case FailAction::kThrow:
      throw InjectedFault(std::string("fail point '") + name +
                          "' injected a fault");
    default:
      return fired;  // kTorn / kCorrupt: the call site acts it out
  }
}

}  // namespace mood::testing
