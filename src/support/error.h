#pragma once

/// \file error.h
/// Error handling primitives shared by every MooD subsystem.
///
/// Policy (C++ Core Guidelines E.2/E.3): exceptions signal violated
/// preconditions and unrecoverable environment failures (I/O); internal
/// invariants use expects()/ensures() which throw LogicError so tests can
/// observe them, while release builds keep full checking (the checks are
/// cheap relative to the surrounding numerical work).

#include <stdexcept>
#include <string>
#include <string_view>

namespace mood::support {

/// Base class of all MooD exceptions so callers can catch the library
/// wholesale without swallowing unrelated std errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition of a public API.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// An internal invariant failed — a bug in MooD itself.
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what) : Error(what) {}
};

/// Failure while reading or writing external data (CSV files, ...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Bad command-line invocation (unknown flag, malformed value, missing
/// subcommand). Distinct from PreconditionError so the CLI can map it to
/// exit code 2 and print usage, while programming errors stay loud.
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

/// Precondition check for public entry points.
inline void expects(bool condition, std::string_view message) {
  if (!condition) throw PreconditionError(std::string(message));
}

/// Internal invariant check; failing means a MooD bug, not a user error.
inline void ensures(bool condition, std::string_view message) {
  if (!condition) throw LogicError(std::string(message));
}

}  // namespace mood::support
