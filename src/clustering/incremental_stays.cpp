#include "clustering/incremental_stays.h"

#include "support/error.h"

namespace mood::clustering {

using geo::EnuPoint;
using mobility::Trace;

void StayTracker::update(const Trace& window, std::size_t appended,
                         std::size_t evicted) {
  support::expects(params_.max_diameter_m > 0.0,
                   "StayTracker: diameter must be positive");
  support::expects(params_.min_dwell > 0, "StayTracker: dwell must be > 0");
  support::expects(size_ + appended >= evicted &&
                       size_ + appended - evicted == window.size(),
                   "StayTracker::update: append/evict deltas do not match "
                   "the window");
  if (!has_origin_ && !window.empty()) {
    origin_ = window.front().position;
    has_origin_ = true;
  }
  if (window.empty()) {
    // Everything gone; nothing to extract. Keep the pinned origin.
    finals_.clear();
    run_valid_ = false;
    base_ += evicted;
    size_ = 0;
    if (evicted > 0) ++generation_;
    return;
  }
  ++updates_;

  if (evicted > 0 && evicted >= size_) {
    // The whole previously tracked region is gone (the eviction even cut
    // into records the tracker never saw) — nothing to resume from.
    base_ += evicted;
    size_ = window.size();
    rebuild(window);
    return;
  }

  if (evicted > 0) {
    const std::size_t front = base_ + evicted;  // new absolute front index
    // Clean boundaries are anchors of the original scan: every index not
    // strictly inside a successful stay (or the open run) restarted the
    // scan, and the scan from an anchor is a pure function of the records
    // from there on. A boundary inside a stay re-groups the remainder —
    // the bounded rebuild fallback.
    if (run_valid_ && front > run_.anchor) {
      base_ = front;
      size_ = window.size();
      rebuild(window);
      return;
    }
    std::size_t drop = 0;
    while (drop < finals_.size() && finals_[drop].end < front) ++drop;
    if (drop < finals_.size() && finals_[drop].start < front) {
      // The eviction split a finalised stay.
      base_ = front;
      size_ = window.size();
      rebuild(window);
      return;
    }
    if (drop > 0) finals_.erase(finals_.begin(), finals_.begin() + drop);
    base_ = front;
    size_ -= evicted;
    ++generation_;
  }

  size_ += appended;
  support::ensures(size_ == window.size(),
                   "StayTracker::update: size bookkeeping drifted");
  scan(window);
}

void StayTracker::rebuild(const Trace& window) {
  ++rebuilds_;
  ++generation_;
  finals_.clear();
  run_valid_ = false;
  scan(window);
}

void StayTracker::scan(const Trace& window) {
  const auto& records = window.records();
  const std::size_t n = records.size();
  if (n == 0) {
    run_valid_ = false;
    return;
  }
  const geo::LocalProjection projection(origin_);
  const RadiusScreen within(params_.max_diameter_m);
  const std::size_t end = base_ + n;  // absolute one-past-the-end
  const auto rel = [&](std::size_t abs) { return abs - base_; };

  if (!run_valid_) {
    const EnuPoint p = projection.to_enu(records[0].position);
    run_ = OpenRun{base_, base_, p.x, p.y, records[0].time, records[0].time};
    run_valid_ = true;
  }
  EnuPoint anchor = projection.to_enu(records[rel(run_.anchor)].position);
  while (true) {
    // Extend the open run while records remain within the stay radius of
    // the anchor, accumulating centroid sums in ascending index order (the
    // order a one-shot extraction sums in).
    while (run_.j + 1 < end) {
      const EnuPoint next =
          projection.to_enu(records[rel(run_.j + 1)].position);
      if (!within(anchor, next)) break;
      ++run_.j;
      run_.sx += next.x;
      run_.sy += next.y;
      run_.t_end = records[rel(run_.j)].time;
    }
    if (run_.j + 1 == end) return;  // open run reaches the window end

    // Closed by a radius break: the run is final. Decide it and re-anchor
    // exactly as the sequential algorithm does (past the stay on success,
    // one record forward on failure — re-scanning the failed run's tail).
    const std::size_t i = rel(run_.anchor);
    const std::size_t j = rel(run_.j);
    const mobility::Timestamp span = records[j].time - records[i].time;
    std::size_t next_anchor = run_.anchor + 1;
    if (span >= params_.min_dwell && j - i + 1 >= params_.min_points) {
      finals_.push_back(TrackedStay{
          make_poi(window, run_.anchor, run_.j, run_.sx, run_.sy),
          run_.anchor, run_.j});
      next_anchor = run_.j + 1;
    }
    anchor = projection.to_enu(records[rel(next_anchor)].position);
    const mobility::Timestamp t = records[rel(next_anchor)].time;
    run_ = OpenRun{next_anchor, next_anchor, anchor.x, anchor.y, t, t};
  }
}

Poi StayTracker::make_poi(const Trace& window, std::size_t anchor_abs,
                          std::size_t j_abs, double sx, double sy) const {
  const auto& records = window.records();
  const std::size_t i = anchor_abs - base_;
  const std::size_t j = j_abs - base_;
  const geo::LocalProjection projection(origin_);
  Poi poi;
  const double n = static_cast<double>(j - i + 1);
  poi.center = projection.to_geo(EnuPoint{sx / n, sy / n});
  poi.record_count = j - i + 1;
  poi.dwell = records[j].time - records[i].time;
  poi.start = records[i].time;
  poi.end = records[j].time;
  return poi;
}

std::optional<Poi> StayTracker::provisional() const {
  if (!run_valid_ || size_ == 0) return std::nullopt;
  // The open run [anchor, j] always ends at the last record. It faces the
  // same thresholds a closed run faces; when it fails, no sub-run of it
  // can succeed (spans and counts of subintervals only shrink), so the
  // scan emits nothing past the anchor — exactly the one-shot behaviour.
  const std::size_t count = run_.j - run_.anchor + 1;
  const mobility::Timestamp span = run_.t_end - run_.t_start;
  if (span < params_.min_dwell || count < params_.min_points) {
    return std::nullopt;
  }
  const geo::LocalProjection projection(origin_);
  Poi poi;
  const double n = static_cast<double>(count);
  poi.center = projection.to_geo(EnuPoint{run_.sx / n, run_.sy / n});
  poi.record_count = count;
  poi.dwell = span;
  poi.start = run_.t_start;
  poi.end = run_.t_end;
  return poi;
}

std::vector<Poi> StayTracker::pois() const {
  std::vector<Poi> out;
  out.reserve(finals_.size() + 1);
  for (const auto& stay : finals_) out.push_back(stay.poi);
  if (const auto open = provisional()) out.push_back(*open);
  return out;
}

StayTrackerSnapshot StayTracker::snapshot() const {
  StayTrackerSnapshot snap;
  snap.params = params_;
  snap.has_origin = has_origin_;
  snap.origin = origin_;
  snap.finals.reserve(finals_.size());
  for (const auto& stay : finals_) {
    snap.finals.push_back(StayTrackerSnapshot::Stay{
        stay.poi, static_cast<std::uint64_t>(stay.start),
        static_cast<std::uint64_t>(stay.end)});
  }
  snap.run_valid = run_valid_;
  snap.run_anchor = static_cast<std::uint64_t>(run_.anchor);
  snap.run_j = static_cast<std::uint64_t>(run_.j);
  snap.run_sx = run_.sx;
  snap.run_sy = run_.sy;
  snap.run_t_start = run_.t_start;
  snap.run_t_end = run_.t_end;
  snap.base = static_cast<std::uint64_t>(base_);
  snap.size = static_cast<std::uint64_t>(size_);
  snap.generation = generation_;
  snap.updates = updates_;
  snap.rebuilds = rebuilds_;
  return snap;
}

StayTracker StayTracker::from_snapshot(const StayTrackerSnapshot& snapshot) {
  StayTracker tracker(snapshot.params);
  tracker.has_origin_ = snapshot.has_origin;
  tracker.origin_ = snapshot.origin;
  tracker.finals_.reserve(snapshot.finals.size());
  for (const auto& stay : snapshot.finals) {
    tracker.finals_.push_back(
        TrackedStay{stay.poi, static_cast<std::size_t>(stay.start),
                    static_cast<std::size_t>(stay.end)});
  }
  tracker.run_valid_ = snapshot.run_valid;
  tracker.run_ = OpenRun{static_cast<std::size_t>(snapshot.run_anchor),
                         static_cast<std::size_t>(snapshot.run_j),
                         snapshot.run_sx,
                         snapshot.run_sy,
                         snapshot.run_t_start,
                         snapshot.run_t_end};
  tracker.base_ = static_cast<std::size_t>(snapshot.base);
  tracker.size_ = static_cast<std::size_t>(snapshot.size);
  tracker.generation_ = snapshot.generation;
  tracker.updates_ = snapshot.updates;
  tracker.rebuilds_ = snapshot.rebuilds;
  return tracker;
}

void VisitAccumulator::rebuild(const std::vector<Poi>& pois) {
  states_.clear();
  folded_ = 0;
  for (const Poi& poi : pois) {
    fold(states_, poi);
    ++folded_;
  }
}

void VisitAccumulator::append(const Poi& poi) {
  fold(states_, poi);
  ++folded_;
}

std::vector<Poi> VisitAccumulator::states_with(
    const std::optional<Poi>& provisional) const {
  std::vector<Poi> states = states_;
  if (provisional) fold(states, *provisional);
  return states;
}

void VisitAccumulator::fold(std::vector<Poi>& states, const Poi& poi) const {
  // Mirrors build_visit_sequence's merge step operation for operation so
  // the folded states are bit-identical to a one-shot build over the full
  // POI list (sequential centroid accumulation is order-dependent).
  std::size_t state = states.size();
  for (std::size_t s = 0; s < states.size(); ++s) {
    if (geo::haversine_m(states[s].center, poi.center) <=
        merge_distance_m_) {
      state = s;
      break;
    }
  }
  if (state == states.size()) {
    states.push_back(poi);
    return;
  }
  Poi& existing = states[state];
  const double w_old = static_cast<double>(existing.record_count);
  const double w_new = static_cast<double>(poi.record_count);
  const double total = w_old + w_new;
  existing.center.lat =
      (existing.center.lat * w_old + poi.center.lat * w_new) / total;
  existing.center.lon =
      (existing.center.lon * w_old + poi.center.lon * w_new) / total;
  existing.record_count += poi.record_count;
  existing.dwell += poi.dwell;
  existing.end = poi.end;
}

VisitAccumulatorSnapshot VisitAccumulator::snapshot() const {
  VisitAccumulatorSnapshot snap;
  snap.merge_distance_m = merge_distance_m_;
  snap.states = states_;
  snap.folded = static_cast<std::uint64_t>(folded_);
  return snap;
}

VisitAccumulator VisitAccumulator::from_snapshot(
    const VisitAccumulatorSnapshot& snapshot) {
  VisitAccumulator accumulator(snapshot.merge_distance_m);
  accumulator.states_ = snapshot.states;
  accumulator.folded_ = static_cast<std::size_t>(snapshot.folded);
  return accumulator;
}

void TrackedVisitStates::update(const mobility::Trace& window,
                                std::size_t appended, std::size_t evicted) {
  stays_.update(window, appended, evicted);
  if (stays_.generation() != synced_generation_) {
    // Previously folded finals are no longer a prefix — replay them all.
    std::vector<Poi> finals;
    finals.reserve(stays_.final_count());
    for (std::size_t i = 0; i < stays_.final_count(); ++i) {
      finals.push_back(stays_.final_at(i));
    }
    visits_.rebuild(finals);
    synced_generation_ = stays_.generation();
  } else {
    for (std::size_t i = visits_.folded(); i < stays_.final_count(); ++i) {
      visits_.append(stays_.final_at(i));
    }
  }
}

TrackedVisitStatesSnapshot TrackedVisitStates::snapshot() const {
  TrackedVisitStatesSnapshot snap;
  snap.stays = stays_.snapshot();
  snap.visits = visits_.snapshot();
  snap.synced_generation = synced_generation_;
  return snap;
}

TrackedVisitStates TrackedVisitStates::from_snapshot(
    const TrackedVisitStatesSnapshot& snapshot) {
  TrackedVisitStates tracked;
  tracked.stays_ = StayTracker::from_snapshot(snapshot.stays);
  tracked.visits_ = VisitAccumulator::from_snapshot(snapshot.visits);
  tracked.synced_generation_ = snapshot.synced_generation;
  return tracked;
}

}  // namespace mood::clustering
