#pragma once

/// \file poi_extraction.h
/// Point-of-Interest extraction from a mobility trace.
///
/// Implements the spatio-temporal stay-point clustering used throughout the
/// location-privacy literature (Zhou et al. 2004; the configuration in the
/// paper, §4.1.1: max cluster diameter 200 m, min dwell 1 h): a POI is a
/// maximal run of consecutive records that stays within a disk of the given
/// diameter for at least the minimum duration. POI-attack and PIT-attack
/// both build their profiles on these clusters.

#include <vector>

#include "geo/geo.h"
#include "mobility/trace.h"

namespace mood::clustering {

/// One extracted Point of Interest.
struct Poi {
  geo::GeoPoint center;              ///< centroid of the member records
  std::size_t record_count = 0;      ///< how many records fell in the stay
  mobility::Timestamp dwell = 0;     ///< time spent in the stay (seconds)
  mobility::Timestamp start = 0;     ///< time of the first member record
  mobility::Timestamp end = 0;       ///< time of the last member record
};

/// Extraction parameters. Defaults follow the paper's §4.1.1 (200 m
/// diameter, 1 h dwell); `min_points` additionally requires a stay to hold
/// a minimum number of records so that sparsely-sampled traces (or dummy
/// clouds) cannot produce two-record artefact POIs.
struct PoiParams {
  double max_diameter_m = 200.0;          ///< spatial extent of a stay
  mobility::Timestamp min_dwell = 3600;   ///< minimal stay duration (1 h)
  std::size_t min_points = 3;             ///< minimal records per stay

  friend bool operator==(const PoiParams&, const PoiParams&) = default;
};

/// The stay-membership predicate shared by every extraction path (one-shot
/// and incremental): is `b` within `radius` metres of the anchor `a`?
/// Screens with the squared planar distance and keeps the exact
/// euclidean_m comparison only for the razor-thin band around the radius
/// where the two roundings could disagree, so the decision — hence every
/// extracted POI — is bit-identical to the plain hypot comparison.
/// (See the derivation at the construction site in poi_extraction.cpp.)
class RadiusScreen {
 public:
  explicit RadiusScreen(double radius_m);
  [[nodiscard]] bool operator()(const geo::EnuPoint& a,
                                const geo::EnuPoint& b) const;

 private:
  double radius_;
  double r2_inside_;
  double r2_outside_;
};

/// Extracts POIs from a trace in chronological order.
///
/// Sequential stay-point detection: starting at record i, the stay extends
/// while every subsequent record remains within `max_diameter_m` of the
/// anchor record i; the run becomes a POI when its time span reaches
/// `min_dwell`. Runs shorter than the dwell threshold are skipped (the user
/// was moving through). O(n · run-length); robust to GPS jitter at the
/// 200 m diameter used here.
std::vector<Poi> extract_pois(const mobility::Trace& trace,
                              const PoiParams& params = {});

/// Same extraction with the local projection pinned at an explicit origin
/// instead of the trace's first record. The default overload is exactly
/// extract_pois(trace, params, trace.front().position); the explicit form
/// exists for incremental sliding-window maintenance, where the window's
/// front moves but the projection must stay fixed so that previously
/// finalised stay centroids remain bit-identical (see StayTracker).
std::vector<Poi> extract_pois(const mobility::Trace& trace,
                              const PoiParams& params,
                              const geo::GeoPoint& origin);

/// Sequence of POI indices visited, in chronological order of the stays —
/// the input the Mobility Markov Chain is estimated from. POIs closer than
/// `merge_distance_m` are considered the same state (repeated visits to a
/// home/workplace land on one state even though stay-point detection emits
/// a new cluster per visit).
struct PoiVisitSequence {
  std::vector<Poi> states;          ///< deduplicated POIs (MMC states)
  std::vector<std::size_t> visits;  ///< indices into `states`, time-ordered
};

PoiVisitSequence build_visit_sequence(const std::vector<Poi>& pois,
                                      double merge_distance_m = 200.0);

}  // namespace mood::clustering
