#include "clustering/poi_extraction.h"

#include <cmath>

#include "support/error.h"

namespace mood::clustering {

using geo::EnuPoint;
using geo::GeoPoint;
using mobility::Record;
using mobility::Trace;

RadiusScreen::RadiusScreen(double radius_m)
    : radius_(radius_m),
      // The membership test is the hot loop of attack inference (every
      // profile build runs it once per record). euclidean_m's hypot call
      // dominates it, but the loop only needs the *comparison* — so screen
      // with the squared distance first and keep hypot for the razor-thin
      // band around the radius where the two roundings could disagree. d2
      // carries at most a few ulp of relative error, so outside +-1e-12 the
      // squared comparison provably decides the same way as hypot's, and
      // the decision — hence every extracted POI — stays bit-identical.
      r2_inside_(radius_m * radius_m * (1.0 - 1e-12)),
      r2_outside_(radius_m * radius_m * (1.0 + 1e-12)) {}

bool RadiusScreen::operator()(const EnuPoint& a, const EnuPoint& b) const {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  const double d2 = dx * dx + dy * dy;
  if (d2 <= r2_inside_) return true;
  if (d2 >= r2_outside_) return false;
  return geo::euclidean_m(a, b) <= radius_;
}

std::vector<Poi> extract_pois(const Trace& trace, const PoiParams& params) {
  // Work in a local projection centred on the trace so member distances are
  // cheap planar distances.
  const geo::GeoPoint origin =
      trace.empty() ? geo::GeoPoint{} : trace.front().position;
  return extract_pois(trace, params, origin);
}

std::vector<Poi> extract_pois(const Trace& trace, const PoiParams& params,
                              const geo::GeoPoint& origin) {
  support::expects(params.max_diameter_m > 0.0,
                   "extract_pois: diameter must be positive");
  support::expects(params.min_dwell > 0, "extract_pois: dwell must be > 0");

  std::vector<Poi> pois;
  if (trace.empty()) return pois;

  const geo::LocalProjection projection(origin);
  const auto& records = trace.records();
  std::vector<EnuPoint> points;
  points.reserve(records.size());
  for (const Record& r : records) points.push_back(projection.to_enu(r.position));

  const RadiusScreen within_radius(params.max_diameter_m);
  std::size_t i = 0;
  while (i < records.size()) {
    // Extend the stay while records remain within `radius` of the anchor.
    std::size_t j = i;
    while (j + 1 < records.size() && within_radius(points[i], points[j + 1])) {
      ++j;
    }
    const mobility::Timestamp span = records[j].time - records[i].time;
    if (span >= params.min_dwell && j - i + 1 >= params.min_points) {
      Poi poi;
      double sx = 0.0, sy = 0.0;
      for (std::size_t k = i; k <= j; ++k) {
        sx += points[k].x;
        sy += points[k].y;
      }
      const double n = static_cast<double>(j - i + 1);
      poi.center = projection.to_geo(EnuPoint{sx / n, sy / n});
      poi.record_count = j - i + 1;
      poi.dwell = span;
      poi.start = records[i].time;
      poi.end = records[j].time;
      pois.push_back(poi);
      i = j + 1;
    } else {
      ++i;
    }
  }
  return pois;
}

PoiVisitSequence build_visit_sequence(const std::vector<Poi>& pois,
                                      double merge_distance_m) {
  support::expects(merge_distance_m >= 0.0,
                   "build_visit_sequence: distance must be >= 0");
  PoiVisitSequence seq;
  for (const Poi& poi : pois) {
    // Find an existing state within the merge distance.
    std::size_t state = seq.states.size();
    for (std::size_t s = 0; s < seq.states.size(); ++s) {
      if (geo::haversine_m(seq.states[s].center, poi.center) <=
          merge_distance_m) {
        state = s;
        break;
      }
    }
    if (state == seq.states.size()) {
      seq.states.push_back(poi);
    } else {
      // Merge: accumulate weight and dwell; keep the weighted centroid.
      Poi& existing = seq.states[state];
      const double w_old = static_cast<double>(existing.record_count);
      const double w_new = static_cast<double>(poi.record_count);
      const double total = w_old + w_new;
      existing.center.lat =
          (existing.center.lat * w_old + poi.center.lat * w_new) / total;
      existing.center.lon =
          (existing.center.lon * w_old + poi.center.lon * w_new) / total;
      existing.record_count += poi.record_count;
      existing.dwell += poi.dwell;
      existing.end = poi.end;
    }
    seq.visits.push_back(state);
  }
  return seq;
}

}  // namespace mood::clustering
