#pragma once

/// \file incremental_stays.h
/// Incremental stay-point extraction for sliding windows.
///
/// extract_pois() is the dominant cost of rebuilding the PIT/POI mobility
/// profiles from scratch on every streaming decision: it re-scans the whole
/// window although only a handful of records changed. StayTracker exploits
/// two structural properties of the sequential stay-point algorithm to make
/// maintenance O(changed records) amortised:
///
///  * *Forward determinism.* The scan only ever looks forward from the
///    current anchor, so a run closed by a radius break is final — no
///    future append can change it. Only the trailing run (terminated by
///    end-of-window, not by a break) is provisional, and when that open run
///    fails the dwell/count thresholds, no sub-run of it can succeed
///    either (spans and counts of subintervals only shrink), so the
///    finalised prefix plus the qualifying open run *is* the full
///    extraction result.
///  * *Anchor restartability.* Every index that is not strictly inside a
///    successful stay becomes an anchor during the scan, and the scan from
///    an anchor is a pure function of the records from that index on. So
///    evicting the window's front is free whenever the new front is such
///    an index: dropped stays are popped, the rest is untouched. Only when
///    the eviction boundary *splits a stay* (or cuts into the open run)
///    does the tracker fall back to a bounded rebuild — one fresh
///    extraction of the remaining window.
///
/// The projection origin is pinned at the first record the tracker ever
/// sees (extract_pois' origin overload): a moving front must not move the
/// projection, or every previously finalised centroid would shift by a
/// rounding. The maintained POI list is bit-identical to
/// extract_pois(window, params, origin()) after every update — the
/// incremental-vs-full property tests in profiles_test assert exactly
/// that — and equals plain extract_pois(window, params) whenever the
/// window still starts at the first-ever record (the non-lossy streaming
/// configuration).

#include <cstdint>
#include <optional>
#include <vector>

#include "clustering/poi_extraction.h"
#include "geo/geo.h"
#include "mobility/trace.h"

namespace mood::clustering {

// ---- Checkpoint snapshots --------------------------------------------
// Plain-value mirrors of the trackers' full internal state, used by the
// gateway's mood-snapshot/1 checkpoint format (src/stream/snapshot.h).
// The cached profile state must be serialized *directly* — it reflects
// the window at the last refresh, which under a staleness bound includes
// records already evicted from the current window, so it cannot be
// rebuilt from the window alone. from_snapshot(snapshot()) is an exact
// round trip: every subsequent update() is bit-identical to one on the
// original object.

/// StayTracker::snapshot() payload.
struct StayTrackerSnapshot {
  PoiParams params;
  bool has_origin = false;
  geo::GeoPoint origin;
  struct Stay {
    Poi poi;
    std::uint64_t start = 0;  ///< absolute record index of the first member
    std::uint64_t end = 0;    ///< absolute record index of the last member
  };
  std::vector<Stay> finals;
  bool run_valid = false;
  std::uint64_t run_anchor = 0;
  std::uint64_t run_j = 0;
  double run_sx = 0.0;
  double run_sy = 0.0;
  mobility::Timestamp run_t_start = 0;
  mobility::Timestamp run_t_end = 0;
  std::uint64_t base = 0;
  std::uint64_t size = 0;
  std::uint64_t generation = 0;
  std::uint64_t updates = 0;
  std::uint64_t rebuilds = 0;
};

/// VisitAccumulator::snapshot() payload.
struct VisitAccumulatorSnapshot {
  double merge_distance_m = 200.0;
  std::vector<Poi> states;
  std::uint64_t folded = 0;
};

/// TrackedVisitStates::snapshot() payload.
struct TrackedVisitStatesSnapshot {
  StayTrackerSnapshot stays;
  VisitAccumulatorSnapshot visits;
  std::uint64_t synced_generation = 0;
};

/// Incrementally maintained extract_pois() over a sliding window.
class StayTracker {
 public:
  StayTracker() = default;
  explicit StayTracker(PoiParams params) : params_(params) {}

  /// Pre-pins the projection origin instead of adopting the front of the
  /// first non-empty window. Callers that may evict *before* the first
  /// sync (e.g. a one-shot fold of a bounded window) pass the first
  /// record ever folded here, so the maintained profiles stay a pure
  /// function of the record sequence — never of how updates were chunked
  /// relative to evictions.
  StayTracker(PoiParams params, const geo::GeoPoint& origin)
      : params_(params), has_origin_(true), origin_(origin) {}

  /// Syncs the tracker to `window` after `appended` records were appended
  /// to its back and `evicted` records were dropped from its front since
  /// the last update (or construction). Deltas may be accumulated across
  /// several window changes before syncing — the resulting state is a pure
  /// function of the window content, never of the update chunking.
  void update(const mobility::Trace& window, std::size_t appended,
              std::size_t evicted);

  /// The extraction result: finalised stays plus the open trailing run
  /// when it qualifies. Bit-identical to
  /// extract_pois(window, params(), origin()).
  [[nodiscard]] std::vector<Poi> pois() const;

  /// Finalised stays only (closed by a radius break; immutable under
  /// appends). Incremental consumers fold these once each plus the
  /// ever-changing provisional() on every refresh.
  [[nodiscard]] std::size_t final_count() const { return finals_.size(); }
  [[nodiscard]] const Poi& final_at(std::size_t i) const {
    return finals_[i].poi;
  }

  /// The open trailing run, when it currently qualifies as a stay.
  [[nodiscard]] std::optional<Poi> provisional() const;

  /// Bumped whenever previously reported finals are no longer a prefix of
  /// the current finals (eviction or rebuild) — consumers accumulating
  /// per-final state must restart when it changes.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  [[nodiscard]] const PoiParams& params() const { return params_; }
  /// Pinned projection origin; meaningful once a record has been seen.
  [[nodiscard]] const geo::GeoPoint& origin() const { return origin_; }
  [[nodiscard]] bool has_origin() const { return has_origin_; }

  /// Incremental updates performed (every update() call on a non-empty
  /// window) and full re-extractions among them (the bounded rebuild
  /// fallback: stay-splitting evictions, plus cold starts).
  [[nodiscard]] std::uint64_t updates() const { return updates_; }
  [[nodiscard]] std::uint64_t rebuilds() const { return rebuilds_; }

  /// Full internal state as a plain value (checkpointing).
  [[nodiscard]] StayTrackerSnapshot snapshot() const;
  /// Exact inverse of snapshot(): the restored tracker resumes updates
  /// bit-identically to the original.
  static StayTracker from_snapshot(const StayTrackerSnapshot& snapshot);

 private:
  /// One finalised stay with its absolute record-index range (indices keep
  /// counting across evictions; window position = index - base_).
  struct TrackedStay {
    Poi poi;
    std::size_t start = 0;
    std::size_t end = 0;
  };

  /// The open trailing run: all records in [anchor, j] lie within the stay
  /// radius of the anchor; sx/sy accumulate their projected coordinates in
  /// ascending index order (the same order a one-shot extraction sums in).
  /// t_start/t_end mirror the anchor's and j's timestamps so the run can
  /// be judged without re-touching the window.
  struct OpenRun {
    std::size_t anchor = 0;
    std::size_t j = 0;
    double sx = 0.0;
    double sy = 0.0;
    mobility::Timestamp t_start = 0;
    mobility::Timestamp t_end = 0;
  };

  /// Re-extracts the whole window from scratch (pinned origin).
  void rebuild(const mobility::Trace& window);
  /// Resumes the sequential scan until the open run reaches the window
  /// end, finalising every run closed by a radius break along the way.
  void scan(const mobility::Trace& window);
  [[nodiscard]] Poi make_poi(const mobility::Trace& window, std::size_t anchor,
                             std::size_t j, double sx, double sy) const;

  PoiParams params_;
  bool has_origin_ = false;
  geo::GeoPoint origin_;
  std::vector<TrackedStay> finals_;
  OpenRun run_;
  bool run_valid_ = false;
  std::size_t base_ = 0;  ///< absolute index of window.records()[0]
  std::size_t size_ = 0;  ///< tracked window size
  std::uint64_t generation_ = 0;
  std::uint64_t updates_ = 0;
  std::uint64_t rebuilds_ = 0;
};

/// Incrementally maintained build_visit_sequence() *states* (the merged
/// POI set both the POI profile and the MMC states are built from; the
/// visit order itself plays no role in the compiled profiles — see
/// profiles/markov_profile.h).
///
/// Folding is order-dependent (merged centroids accumulate sequentially),
/// so the accumulator replays exactly the one-shot merge order: finalised
/// stays are folded once each, in chronological order, and the provisional
/// trailing stay — which changes every update — is only folded into a
/// scratch copy at compile time, never into the retained states.
class VisitAccumulator {
 public:
  VisitAccumulator() = default;
  explicit VisitAccumulator(double merge_distance_m)
      : merge_distance_m_(merge_distance_m) {}

  /// Drops all retained state and re-folds the given stays in order.
  void rebuild(const std::vector<Poi>& pois);

  /// Folds one newly finalised stay (the next one in chronological order).
  void append(const Poi& poi);

  /// Stays folded so far (== StayTracker::final_count() once synced).
  [[nodiscard]] std::size_t folded() const { return folded_; }

  /// Merged states in insertion order, with `provisional` (if any) folded
  /// last — bit-identical to build_visit_sequence(all pois).states.
  [[nodiscard]] std::vector<Poi> states_with(
      const std::optional<Poi>& provisional) const;

  /// Full internal state as a plain value (checkpointing).
  [[nodiscard]] VisitAccumulatorSnapshot snapshot() const;
  static VisitAccumulator from_snapshot(
      const VisitAccumulatorSnapshot& snapshot);

 private:
  void fold(std::vector<Poi>& states, const Poi& poi) const;

  double merge_distance_m_ = 200.0;
  std::vector<Poi> states_;
  std::size_t folded_ = 0;
};

/// StayTracker + VisitAccumulator + their generation sync in one unit:
/// the merged visit states of a sliding window, maintained incrementally.
/// This is the single implementation of the subtle "replay all finals on
/// generation change, append new finals otherwise" logic — the decision
/// kernel and the updatable compiled profiles all delegate here.
class TrackedVisitStates {
 public:
  TrackedVisitStates() = default;
  explicit TrackedVisitStates(PoiParams params)
      : stays_(params), visits_(params.max_diameter_m) {}
  /// Origin-pinned form (see the StayTracker origin constructor).
  TrackedVisitStates(PoiParams params, const geo::GeoPoint& origin)
      : stays_(params, origin), visits_(params.max_diameter_m) {}

  /// Syncs to `window` (StayTracker::update semantics) and re-folds the
  /// visit states accordingly.
  void update(const mobility::Trace& window, std::size_t appended,
              std::size_t evicted);

  /// Merged visit states with the provisional trailing stay folded last —
  /// bit-identical to build_visit_sequence(extract_pois(window, params,
  /// origin), params.max_diameter_m).states.
  [[nodiscard]] std::vector<Poi> states() const {
    return visits_.states_with(stays_.provisional());
  }

  [[nodiscard]] const StayTracker& tracker() const { return stays_; }

  /// Full internal state as a plain value (checkpointing).
  [[nodiscard]] TrackedVisitStatesSnapshot snapshot() const;
  static TrackedVisitStates from_snapshot(
      const TrackedVisitStatesSnapshot& snapshot);

 private:
  StayTracker stays_;
  VisitAccumulator visits_;
  std::uint64_t synced_generation_ = 0;
};

}  // namespace mood::clustering
