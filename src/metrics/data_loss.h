#pragma once

/// \file data_loss.h
/// Data loss of paper Eq. 7: the record-weighted share of a dataset that
/// must be erased because no considered protection defeats every attack.
///
///   data_loss(D, Λ, A) = |D_NP|_r / |D|_r
///
/// where D_NP is the set of traces for which every LPPM in Λ leaves at
/// least one attack in A able to re-identify the owner, and |.|_r counts
/// records.

#include <cstddef>

namespace mood::metrics {

/// Accumulates record counts of protected vs. lost traces.
class DataLossAccumulator {
 public:
  /// Registers a trace that survived protection, with its record count.
  void add_protected(std::size_t records) { protected_records_ += records; }

  /// Registers a trace (or sub-trace) that had to be erased.
  void add_lost(std::size_t records) { lost_records_ += records; }

  [[nodiscard]] std::size_t protected_records() const {
    return protected_records_;
  }
  [[nodiscard]] std::size_t lost_records() const { return lost_records_; }
  [[nodiscard]] std::size_t total_records() const {
    return protected_records_ + lost_records_;
  }

  /// Eq. 7 ratio in [0, 1]; 0 for an empty accumulator.
  [[nodiscard]] double ratio() const {
    const std::size_t total = total_records();
    return total == 0 ? 0.0
                      : static_cast<double>(lost_records_) /
                            static_cast<double>(total);
  }

 private:
  std::size_t protected_records_ = 0;
  std::size_t lost_records_ = 0;
};

}  // namespace mood::metrics
