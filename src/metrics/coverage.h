#pragma once

/// \file coverage.h
/// Application-level utility metrics beyond Eq. 8's spatio-temporal
/// distortion, matching the deployment scenarios of paper §3.4/§4.6:
///
///  * cell-coverage similarity — how well count queries ("how many people
///    were in this area?") survive protection: the mass overlap between
///    the original and protected heatmaps (1 = identical counts, 0 =
///    disjoint). Traffic-congestion analysis needs this, not positional
///    precision.
///  * POI preservation — share of the user's original POIs for which the
///    protected trace still has a POI within the clustering diameter.
///    Semantically sensitive (it is exactly what POI-attack exploits), so
///    *lower* is more private but *higher* means place-based services
///    still work.

#include "clustering/poi_extraction.h"
#include "geo/cell_grid.h"
#include "mobility/trace.h"

namespace mood::metrics {

/// Mass overlap of the two traces' heatmaps on `grid`:
///   sum_c min(p_original(c), p_protected(c))  in [0, 1].
/// Returns 0 if either trace is empty.
double cell_coverage_similarity(const mobility::Trace& original,
                                const mobility::Trace& protected_trace,
                                const geo::CellGrid& grid);

/// Fraction of `original`'s POIs that still have a protected-trace POI
/// within `params.max_diameter_m`. Returns 1 when the original has no
/// POIs (nothing to preserve).
double poi_preservation(const mobility::Trace& original,
                        const mobility::Trace& protected_trace,
                        const clustering::PoiParams& params = {});

}  // namespace mood::metrics
