#include "metrics/distortion.h"

#include <algorithm>

#include "geo/geo.h"
#include "support/error.h"

namespace mood::metrics {

geo::GeoPoint temporal_projection(const mobility::Trace& original,
                                  mobility::Timestamp t) {
  support::expects(!original.empty(),
                   "temporal_projection: original trace is empty");
  const auto& records = original.records();
  if (t <= records.front().time) return records.front().position;
  if (t >= records.back().time) return records.back().position;

  // First record with time >= t; its predecessor brackets t from below.
  const auto hi = std::lower_bound(
      records.begin(), records.end(), t,
      [](const mobility::Record& r, mobility::Timestamp v) {
        return r.time < v;
      });
  const auto lo = hi - 1;
  if (hi->time == lo->time) return lo->position;
  const double ratio = static_cast<double>(t - lo->time) /
                       static_cast<double>(hi->time - lo->time);
  return geo::GeoPoint{
      lo->position.lat + ratio * (hi->position.lat - lo->position.lat),
      lo->position.lon + ratio * (hi->position.lon - lo->position.lon)};
}

double spatial_temporal_distortion(const mobility::Trace& original,
                                   const mobility::Trace& protected_trace) {
  support::expects(!original.empty(),
                   "spatial_temporal_distortion: original trace is empty");
  if (protected_trace.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  double total = 0.0;
  for (const auto& record : protected_trace.records()) {
    total += geo::haversine_m(record.position,
                              temporal_projection(original, record.time));
  }
  return total / static_cast<double>(protected_trace.size());
}

DistortionBand distortion_band(double distortion_m) {
  if (distortion_m < 500.0) return DistortionBand::kLow;
  if (distortion_m < 1000.0) return DistortionBand::kMedium;
  if (distortion_m < 5000.0) return DistortionBand::kHigh;
  return DistortionBand::kExtremelyHigh;
}

std::string to_string(DistortionBand band) {
  switch (band) {
    case DistortionBand::kLow: return "low(<500m)";
    case DistortionBand::kMedium: return "medium(<1000m)";
    case DistortionBand::kHigh: return "high(<5000m)";
    case DistortionBand::kExtremelyHigh: return "extreme(>=5000m)";
  }
  return "?";
}

}  // namespace mood::metrics
