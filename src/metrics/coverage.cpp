#include "metrics/coverage.h"

#include <algorithm>

#include "profiles/heatmap.h"

namespace mood::metrics {

double cell_coverage_similarity(const mobility::Trace& original,
                                const mobility::Trace& protected_trace,
                                const geo::CellGrid& grid) {
  if (original.empty() || protected_trace.empty()) return 0.0;
  const auto a = profiles::Heatmap::from_trace(original, grid);
  const auto b = profiles::Heatmap::from_trace(protected_trace, grid);
  double overlap = 0.0;
  for (const auto& [cell, count] : a.counts()) {
    overlap += std::min(count / a.total(), b.probability(cell));
  }
  return overlap;
}

double poi_preservation(const mobility::Trace& original,
                        const mobility::Trace& protected_trace,
                        const clustering::PoiParams& params) {
  const auto original_pois = clustering::extract_pois(original, params);
  if (original_pois.empty()) return 1.0;
  const auto protected_pois =
      clustering::extract_pois(protected_trace, params);
  std::size_t preserved = 0;
  for (const auto& poi : original_pois) {
    for (const auto& candidate : protected_pois) {
      if (geo::haversine_m(poi.center, candidate.center) <=
          params.max_diameter_m) {
        ++preserved;
        break;
      }
    }
  }
  return static_cast<double>(preserved) /
         static_cast<double>(original_pois.size());
}

}  // namespace mood::metrics
