#pragma once

/// \file distortion.h
/// Utility metrics: the Spatial-Temporal Distortion of paper Eq. 8 and the
/// distortion bands of Fig. 9.
///
/// STD(T, T') = (1/|T'|) * sum over x in T' of the distance between x and
/// its *temporal projection* into the original trace T — the interpolated
/// position the user actually occupied at x's timestamp. Lower is better.

#include <limits>
#include <string>

#include "mobility/trace.h"

namespace mood::metrics {

/// Position of the original trace at time `t`: linear interpolation between
/// the bracketing records; clamped to the first/last record outside the
/// covered span. Precondition: original non-empty.
geo::GeoPoint temporal_projection(const mobility::Trace& original,
                                  mobility::Timestamp t);

/// Spatial-Temporal Distortion in metres (Eq. 8). Returns +infinity when
/// `protected_trace` is empty (an empty output is useless, and selection
/// must never prefer it); throws PreconditionError if `original` is empty.
double spatial_temporal_distortion(const mobility::Trace& original,
                                   const mobility::Trace& protected_trace);

/// The four utility bands of Fig. 9.
enum class DistortionBand {
  kLow,            ///< < 500 m
  kMedium,         ///< [500 m, 1000 m)
  kHigh,           ///< [1000 m, 5000 m)
  kExtremelyHigh,  ///< >= 5000 m
};

/// Band containing a distortion value (metres).
DistortionBand distortion_band(double distortion_m);

/// Human-readable band label used by the Fig. 9 bench output.
std::string to_string(DistortionBand band);

/// A utility metric for Best-LPPM selection: lower value = better utility.
/// MooD is metric-agnostic (paper §3.5 takes M as an input); STD is the
/// one the evaluation uses.
class UtilityMetric {
 public:
  virtual ~UtilityMetric() = default;

  /// Distortion of `protected_trace` w.r.t. `original`; lower is better.
  [[nodiscard]] virtual double distortion(
      const mobility::Trace& original,
      const mobility::Trace& protected_trace) const = 0;

  /// Metric display name.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Eq. 8 as a UtilityMetric.
class SpatialTemporalDistortion final : public UtilityMetric {
 public:
  [[nodiscard]] double distortion(
      const mobility::Trace& original,
      const mobility::Trace& protected_trace) const override {
    return spatial_temporal_distortion(original, protected_trace);
  }
  [[nodiscard]] std::string name() const override { return "STD"; }
};

}  // namespace mood::metrics
