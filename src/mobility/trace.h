#pragma once

/// \file trace.h
/// A user's mobility trace: a time-ordered series of records plus ownership
/// metadata, and the splitting operations MooD's fine-grained protection is
/// built on.

#include <string>
#include <vector>

#include "geo/geo.h"
#include "mobility/record.h"

namespace mood::mobility {

/// Identifier of a (possibly pseudonymous) user. MooD's fine-grained stage
/// renews ids on sub-traces so they appear to come from distinct users;
/// string ids keep that operation trivial and debuggable.
using UserId = std::string;

/// Time-ordered mobility trace with value semantics.
///
/// Invariant: timestamps are non-decreasing. Constructors and mutators
/// enforce it (construction from unsorted records sorts once).
class Trace {
 public:
  Trace() = default;

  /// Builds a trace, sorting records by time if needed.
  Trace(UserId user, std::vector<Record> records);

  /// Owner (or pseudonym) of this trace.
  [[nodiscard]] const UserId& user() const { return user_; }

  /// Re-labels the trace (used by renew_ids in the fine-grained stage).
  void set_user(UserId user) { user_ = std::move(user); }

  [[nodiscard]] const std::vector<Record>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }

  [[nodiscard]] const Record& front() const;
  [[nodiscard]] const Record& back() const;
  [[nodiscard]] const Record& at(std::size_t i) const;

  [[nodiscard]] auto begin() const { return records_.begin(); }
  [[nodiscard]] auto end() const { return records_.end(); }

  /// Appends a record; its time must be >= the current last record's time.
  void append(const Record& r);

  /// Wall-clock span covered: back().time - front().time (0 if size < 2).
  [[nodiscard]] Timestamp duration() const;

  /// Records with time in [from, to), keeping the user id.
  [[nodiscard]] Trace between(Timestamp from, Timestamp to) const;

  /// Splits at the temporal midpoint: left gets records strictly before the
  /// midpoint, right the rest. Equation: mid = front.time + duration()/2.
  [[nodiscard]] std::pair<Trace, Trace> split_in_half() const;

  /// Cuts into consecutive slices of fixed duration (aligned on the first
  /// record's time). Empty slices are dropped. Precondition: slice > 0.
  [[nodiscard]] std::vector<Trace> slices(Timestamp slice) const;

  /// Geographic bounding box of all records.
  [[nodiscard]] geo::BoundingBox bounding_box() const;

  friend bool operator==(const Trace&, const Trace&) = default;

 private:
  UserId user_;
  std::vector<Record> records_;
};

}  // namespace mood::mobility
