#pragma once

/// \file trace.h
/// A user's mobility trace: a time-ordered series of records plus ownership
/// metadata, and the splitting operations MooD's fine-grained protection is
/// built on.

#include <string>
#include <vector>

#include "geo/geo.h"
#include "mobility/record.h"

namespace mood::mobility {

/// Identifier of a (possibly pseudonymous) user. MooD's fine-grained stage
/// renews ids on sub-traces so they appear to come from distinct users;
/// string ids keep that operation trivial and debuggable.
using UserId = std::string;

/// Time-ordered mobility trace with value semantics.
///
/// Invariant: timestamps are non-decreasing. Constructors and mutators
/// enforce it (construction from unsorted records sorts once).
class Trace {
 public:
  Trace() = default;

  /// Builds a trace, sorting records by time if needed.
  Trace(UserId user, std::vector<Record> records);

  /// Owner (or pseudonym) of this trace.
  [[nodiscard]] const UserId& user() const { return user_; }

  /// Re-labels the trace (used by renew_ids in the fine-grained stage).
  void set_user(UserId user) { user_ = std::move(user); }

  [[nodiscard]] const std::vector<Record>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }

  [[nodiscard]] const Record& front() const;
  [[nodiscard]] const Record& back() const;
  [[nodiscard]] const Record& at(std::size_t i) const;

  [[nodiscard]] auto begin() const { return records_.begin(); }
  [[nodiscard]] auto end() const { return records_.end(); }

  /// Appends a record; its time must be >= the current last record's time.
  /// O(1) amortised, including the tracked-slice bookkeeping (see
  /// track_slices) — the append fast path the streaming gateway's sliding
  /// windows are built on.
  void append(const Record& r);

  /// Enables incremental slice bookkeeping for the given duration:
  /// maintains the cut offsets that slices(slice) would derive, updating
  /// them in O(1) per append instead of re-scanning the whole trace per
  /// slices() call. Derives the current offsets once (O(size)); calling it
  /// again with a different duration re-derives. Tracking is a property of
  /// this object only — traces returned by between()/split_in_half()/
  /// slices() start untracked. Precondition: slice > 0.
  void track_slices(Timestamp slice);

  /// The tracked slice duration (0 when tracking is off).
  [[nodiscard]] Timestamp tracked_slice() const { return tracked_slice_; }

  /// Number of slices a slices(slice) call would return. O(1) when `slice`
  /// is tracked, O(size) otherwise.
  [[nodiscard]] std::size_t slice_count(Timestamp slice) const;

  /// Removes the first `n` records (all of them if n >= size), keeping the
  /// user id; tracked-slice bookkeeping is re-derived. O(size) — the
  /// sliding window amortises it by evicting in batches.
  void drop_front(std::size_t n);

  /// Wall-clock span covered: back().time - front().time (0 if size < 2).
  [[nodiscard]] Timestamp duration() const;

  /// Records with time in [from, to), keeping the user id.
  [[nodiscard]] Trace between(Timestamp from, Timestamp to) const;

  /// Splits at the temporal midpoint: left gets records strictly before the
  /// midpoint, right the rest. Equation: mid = front.time + duration()/2.
  [[nodiscard]] std::pair<Trace, Trace> split_in_half() const;

  /// Cuts into consecutive slices of fixed duration (aligned on the first
  /// record's time). Empty slices are dropped. Precondition: slice > 0.
  [[nodiscard]] std::vector<Trace> slices(Timestamp slice) const;

  /// Geographic bounding box of all records.
  [[nodiscard]] geo::BoundingBox bounding_box() const;

  /// Equality is over owner and records only — whether slice bookkeeping
  /// is enabled is an access-path optimisation, not part of the value.
  friend bool operator==(const Trace& a, const Trace& b) {
    return a.user_ == b.user_ && a.records_ == b.records_;
  }

 private:
  /// Re-derives slice_starts_ for tracked_slice_ from scratch.
  void rebuild_slice_tracking();

  UserId user_;
  std::vector<Record> records_;
  Timestamp tracked_slice_ = 0;          ///< 0 = tracking off
  std::vector<std::size_t> slice_starts_;  ///< index of each slice's first record
  Timestamp tracked_end_ = 0;            ///< end time of the current slice
};

}  // namespace mood::mobility
