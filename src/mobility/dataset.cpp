#include "mobility/dataset.h"

#include <algorithm>

#include "support/error.h"

namespace mood::mobility {

void Dataset::add(Trace trace) {
  support::expects(find(trace.user()) == nullptr,
                   "Dataset::add: duplicate user id " + trace.user());
  traces_.push_back(std::move(trace));
}

std::size_t Dataset::record_count() const {
  std::size_t n = 0;
  for (const auto& t : traces_) n += t.size();
  return n;
}

const Trace* Dataset::find(const UserId& user) const {
  const auto it =
      std::find_if(traces_.begin(), traces_.end(),
                   [&](const Trace& t) { return t.user() == user; });
  return it == traces_.end() ? nullptr : &*it;
}

std::vector<TrainTestPair> Dataset::chronological_split(
    double train_fraction, std::size_t min_records) const {
  support::expects(train_fraction > 0.0 && train_fraction < 1.0,
                   "chronological_split: fraction must be in (0,1)");
  std::vector<TrainTestPair> out;
  out.reserve(traces_.size());
  for (const Trace& trace : traces_) {
    if (trace.size() < 2) continue;
    const Timestamp cut =
        trace.front().time +
        static_cast<Timestamp>(train_fraction *
                               static_cast<double>(trace.duration()));
    Trace train = trace.between(trace.front().time, cut);
    Trace test = trace.between(cut, trace.back().time + 1);
    if (train.size() < min_records || test.size() < min_records) continue;
    out.push_back(TrainTestPair{std::move(train), std::move(test)});
  }
  return out;
}

Dataset most_active_window(const Dataset& dataset, int days) {
  support::expects(days > 0, "most_active_window: days must be > 0");
  const Timestamp window = static_cast<Timestamp>(days) * kDay;
  Dataset out(dataset.name());
  for (const Trace& trace : dataset.traces()) {
    if (trace.empty()) continue;
    // Slide the window over record start positions (two-pointer); keep the
    // densest [t, t + window).
    const auto& records = trace.records();
    std::size_t best_begin = 0, best_count = 0, right = 0;
    for (std::size_t left = 0; left < records.size(); ++left) {
      const Timestamp end_time = records[left].time + window;
      if (right < left) right = left;
      while (right < records.size() && records[right].time < end_time) {
        ++right;
      }
      if (right - left > best_count) {
        best_count = right - left;
        best_begin = left;
      }
    }
    std::vector<Record> kept(records.begin() + best_begin,
                             records.begin() + best_begin + best_count);
    out.add(Trace(trace.user(), std::move(kept)));
  }
  return out;
}

}  // namespace mood::mobility
