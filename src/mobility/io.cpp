#include "mobility/io.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "support/csv.h"
#include "support/error.h"

namespace mood::mobility {

namespace {

double parse_double_field(const std::string& field, const char* what) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  // from_chars happily parses "nan" and "inf" (and an overflowing exponent
  // reports result_out_of_range, caught by the errc check below) — but a
  // non-finite coordinate or timestamp is never valid trace data, and the
  // range checks downstream compare false against NaN, so reject it here
  // with the same typed error as any other malformed field.
  if (ec != std::errc() || ptr != field.data() + field.size() ||
      !std::isfinite(value)) {
    throw support::IoError(std::string("dataset CSV: bad ") + what + ": '" +
                           field + "'");
  }
  return value;
}

Timestamp parse_time_field(const std::string& field) {
  Timestamp value = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc() || ptr != field.data() + field.size()) {
    throw support::IoError("dataset CSV: bad timestamp: '" + field + "'");
  }
  return value;
}

std::string format_double(double v) {
  std::ostringstream oss;
  oss.precision(9);
  oss << v;
  return oss.str();
}

}  // namespace

void write_dataset_csv(std::ostream& out, const Dataset& dataset) {
  out << "user,lat,lon,timestamp\n";
  for (const Trace& trace : dataset.traces()) {
    for (const Record& r : trace.records()) {
      out << support::format_csv_line({trace.user(),
                                       format_double(r.position.lat),
                                       format_double(r.position.lon),
                                       std::to_string(r.time)})
          << '\n';
    }
  }
}

void write_dataset_csv_file(const std::string& path, const Dataset& dataset) {
  std::ofstream out(path);
  if (!out) throw support::IoError("cannot open for writing: " + path);
  write_dataset_csv(out, dataset);
  if (!out) throw support::IoError("write failed: " + path);
}

Dataset read_dataset_csv(std::istream& in, const std::string& name) {
  const auto rows = support::read_csv(in);
  // Preserve first-appearance order of users for reproducibility.
  std::vector<UserId> order;
  std::map<UserId, std::vector<Record>> per_user;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (i == 0 && !row.empty() && row[0] == "user") continue;  // header
    if (row.size() != 4) {
      throw support::IoError("dataset CSV: row " + std::to_string(i + 1) +
                             ": expected 4 fields, got " +
                             std::to_string(row.size()));
    }
    const double lat = parse_double_field(row[1], "latitude");
    const double lon = parse_double_field(row[2], "longitude");
    // Latitudes at or beyond +/-89 are rejected at ingestion because
    // LocalProjection (and, at the pole itself, geo::destination) treats
    // them as precondition violations; accepting them here would turn one
    // corrupt GPS fix into a mid-batch abort. Genuine polar traces are out
    // of scope for the paper's city-scale datasets.
    if (lat <= -89.0 || lat >= 89.0 || lon < -180.0 || lon > 180.0) {
      throw support::IoError("dataset CSV: row " + std::to_string(i + 1) +
                             ": coordinates out of range");
    }
    auto [it, inserted] = per_user.try_emplace(row[0]);
    if (inserted) order.push_back(row[0]);
    it->second.push_back(
        Record{geo::GeoPoint{lat, lon}, parse_time_field(row[3])});
  }
  Dataset dataset(name);
  for (const UserId& user : order) {
    dataset.add(Trace(user, std::move(per_user[user])));
  }
  return dataset;
}

Dataset read_dataset_csv_file(const std::string& path,
                              const std::string& name) {
  std::ifstream in(path);
  if (!in) throw support::IoError("cannot open for reading: " + path);
  return read_dataset_csv(in, name);
}

}  // namespace mood::mobility
