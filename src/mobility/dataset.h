#pragma once

/// \file dataset.h
/// A named collection of user traces plus the chronological train/test
/// split the evaluation protocol uses (paper §4.2: 30 most-active days,
/// first 15 as background knowledge H, last 15 as the data to protect).

#include <optional>
#include <string>
#include <vector>

#include "mobility/trace.h"

namespace mood::mobility {

/// Per-user pair produced by the chronological split.
struct TrainTestPair {
  Trace train;  ///< background knowledge H_u (attacker side)
  Trace test;   ///< the trace T_u the user wants to share
};

/// A mobility dataset: one trace per user, plus a display name.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Adds a user's trace. Precondition: no trace with the same user id yet.
  void add(Trace trace);

  [[nodiscard]] const std::vector<Trace>& traces() const { return traces_; }
  [[nodiscard]] std::size_t user_count() const { return traces_.size(); }

  /// Total number of records across all users.
  [[nodiscard]] std::size_t record_count() const;

  /// Trace of a given user, if present.
  [[nodiscard]] const Trace* find(const UserId& user) const;

  /// Splits every trace at `train_fraction` of its own time span
  /// (default 0.5 = the paper's 15/15 days). Users whose train or test half
  /// would hold fewer than `min_records` records are dropped (the paper
  /// keeps only "active users during those periods").
  [[nodiscard]] std::vector<TrainTestPair> chronological_split(
      double train_fraction = 0.5, std::size_t min_records = 2) const;

 private:
  std::string name_;
  std::vector<Trace> traces_;
};

/// Restricts each trace to its densest `days`-day window (the paper's
/// "30 most active successive days"): the window with the most records.
Dataset most_active_window(const Dataset& dataset, int days);

}  // namespace mood::mobility
