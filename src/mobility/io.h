#pragma once

/// \file io.h
/// CSV import/export of mobility datasets.
///
/// Wire format (header required on export, tolerated on import):
///   user,lat,lon,timestamp
/// One record per row; rows may arrive unsorted — traces sort on load.

#include <iosfwd>
#include <string>

#include "mobility/dataset.h"

namespace mood::mobility {

/// Writes `dataset` as CSV (with header) to a stream.
void write_dataset_csv(std::ostream& out, const Dataset& dataset);

/// Writes `dataset` as CSV to a file. Throws IoError on failure.
void write_dataset_csv_file(const std::string& path, const Dataset& dataset);

/// Reads a dataset from CSV. `name` becomes the dataset name.
/// Throws IoError on malformed rows (wrong arity, unparsable numbers,
/// out-of-range coordinates).
Dataset read_dataset_csv(std::istream& in, const std::string& name);

/// Reads a dataset from a CSV file. Throws IoError on failure.
Dataset read_dataset_csv_file(const std::string& path,
                              const std::string& name);

}  // namespace mood::mobility
