#pragma once

/// \file record.h
/// The atomic unit of mobility data: one timestamped GPS fix.
///
/// A mobility trace is a time-ordered sequence of records r = (lat, lng, t)
/// (paper §2.1); timestamps are Unix seconds.

#include <cstdint>

#include "geo/geo.h"

namespace mood::mobility {

/// Seconds since the Unix epoch.
using Timestamp = std::int64_t;

/// Convenience duration constants (seconds).
inline constexpr Timestamp kMinute = 60;
inline constexpr Timestamp kHour = 3600;
inline constexpr Timestamp kDay = 86400;

/// One spatio-temporal record.
struct Record {
  geo::GeoPoint position;  ///< GPS fix
  Timestamp time = 0;      ///< Unix seconds

  friend bool operator==(const Record&, const Record&) = default;
};

}  // namespace mood::mobility
