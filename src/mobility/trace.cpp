#include "mobility/trace.h"

#include <algorithm>

#include "support/error.h"

namespace mood::mobility {

Trace::Trace(UserId user, std::vector<Record> records)
    : user_(std::move(user)), records_(std::move(records)) {
  const bool sorted = std::is_sorted(
      records_.begin(), records_.end(),
      [](const Record& a, const Record& b) { return a.time < b.time; });
  if (!sorted) {
    std::stable_sort(
        records_.begin(), records_.end(),
        [](const Record& a, const Record& b) { return a.time < b.time; });
  }
}

const Record& Trace::front() const {
  support::expects(!records_.empty(), "Trace::front on empty trace");
  return records_.front();
}

const Record& Trace::back() const {
  support::expects(!records_.empty(), "Trace::back on empty trace");
  return records_.back();
}

const Record& Trace::at(std::size_t i) const {
  support::expects(i < records_.size(), "Trace::at out of range");
  return records_[i];
}

void Trace::append(const Record& r) {
  support::expects(records_.empty() || r.time >= records_.back().time,
                   "Trace::append would break time ordering");
  if (tracked_slice_ > 0) {
    // Same cut rule as slices(): a record at or past the current slice's
    // end starts a new slice whose window is jumped to directly (empty
    // slices are never materialised, so gaps cost O(1)).
    if (records_.empty()) {
      slice_starts_ = {0};
      tracked_end_ = r.time + tracked_slice_;
    } else if (r.time >= tracked_end_) {
      slice_starts_.push_back(records_.size());
      const Timestamp t0 = records_.front().time;
      tracked_end_ =
          t0 + ((r.time - t0) / tracked_slice_ + 1) * tracked_slice_;
    }
  }
  records_.push_back(r);
}

void Trace::track_slices(Timestamp slice) {
  support::expects(slice > 0, "Trace::track_slices: slice must be > 0");
  tracked_slice_ = slice;
  rebuild_slice_tracking();
}

void Trace::rebuild_slice_tracking() {
  slice_starts_.clear();
  tracked_end_ = 0;
  if (tracked_slice_ <= 0 || records_.empty()) return;
  const Timestamp t0 = records_.front().time;
  tracked_end_ = t0 + tracked_slice_;
  slice_starts_.push_back(0);
  for (std::size_t i = 1; i < records_.size(); ++i) {
    if (records_[i].time >= tracked_end_) {
      slice_starts_.push_back(i);
      tracked_end_ = t0 + ((records_[i].time - t0) / tracked_slice_ + 1) *
                              tracked_slice_;
    }
  }
}

std::size_t Trace::slice_count(Timestamp slice) const {
  support::expects(slice > 0, "Trace::slice_count: slice must be > 0");
  if (slice == tracked_slice_) return slice_starts_.size();
  return slices(slice).size();
}

void Trace::drop_front(std::size_t n) {
  if (n == 0) return;
  n = std::min(n, records_.size());
  records_.erase(records_.begin(),
                 records_.begin() + static_cast<std::ptrdiff_t>(n));
  // The slice grid is anchored on the (new) first record, so the whole
  // partition shifts: re-derive rather than patch offsets.
  if (tracked_slice_ > 0) rebuild_slice_tracking();
}

Timestamp Trace::duration() const {
  if (records_.size() < 2) return 0;
  return records_.back().time - records_.front().time;
}

Trace Trace::between(Timestamp from, Timestamp to) const {
  std::vector<Record> out;
  const auto lo = std::lower_bound(
      records_.begin(), records_.end(), from,
      [](const Record& r, Timestamp t) { return r.time < t; });
  const auto hi = std::lower_bound(
      lo, records_.end(), to,
      [](const Record& r, Timestamp t) { return r.time < t; });
  out.assign(lo, hi);
  return Trace(user_, std::move(out));
}

std::pair<Trace, Trace> Trace::split_in_half() const {
  if (records_.empty()) return {Trace(user_, {}), Trace(user_, {})};
  const Timestamp mid = records_.front().time + duration() / 2;
  // Guarantee progress even when all records share one timestamp: fall back
  // to splitting by record count.
  Trace left = between(records_.front().time, mid);
  Trace right = between(mid, records_.back().time + 1);
  if (left.empty() || right.empty()) {
    const std::size_t half = records_.size() / 2;
    left = Trace(user_, {records_.begin(), records_.begin() + half});
    right = Trace(user_, {records_.begin() + half, records_.end()});
  }
  return {std::move(left), std::move(right)};
}

std::vector<Trace> Trace::slices(Timestamp slice) const {
  support::expects(slice > 0, "Trace::slices: slice duration must be > 0");
  std::vector<Trace> out;
  if (records_.empty()) return out;
  if (slice == tracked_slice_) {
    // Fast path: the cut offsets are maintained incrementally by append(),
    // so no re-scan of the timestamps is needed (equivalence with the
    // from-scratch derivation below is regression-tested).
    out.reserve(slice_starts_.size());
    for (std::size_t k = 0; k < slice_starts_.size(); ++k) {
      const std::size_t begin = slice_starts_[k];
      const std::size_t end = k + 1 < slice_starts_.size()
                                  ? slice_starts_[k + 1]
                                  : records_.size();
      out.emplace_back(
          user_,
          std::vector<Record>(
              records_.begin() + static_cast<std::ptrdiff_t>(begin),
              records_.begin() + static_cast<std::ptrdiff_t>(end)));
    }
    return out;
  }
  const Timestamp t0 = records_.front().time;
  std::vector<Record> current;
  Timestamp current_end = t0 + slice;
  for (const Record& r : records_) {
    if (r.time >= current_end) {
      if (!current.empty()) {
        out.emplace_back(user_, std::move(current));
        current = {};
      }
      // Jump directly to the window containing r; stepping one slice at a
      // time is O(gap/slice) across multi-week gaps in sparse traces.
      current_end = t0 + ((r.time - t0) / slice + 1) * slice;
    }
    current.push_back(r);
  }
  if (!current.empty()) out.emplace_back(user_, std::move(current));
  return out;
}

geo::BoundingBox Trace::bounding_box() const {
  geo::BoundingBox box;
  for (const Record& r : records_) box.extend(r.position);
  return box;
}

}  // namespace mood::mobility
