#include "mobility/trace.h"

#include <algorithm>

#include "support/error.h"

namespace mood::mobility {

Trace::Trace(UserId user, std::vector<Record> records)
    : user_(std::move(user)), records_(std::move(records)) {
  const bool sorted = std::is_sorted(
      records_.begin(), records_.end(),
      [](const Record& a, const Record& b) { return a.time < b.time; });
  if (!sorted) {
    std::stable_sort(
        records_.begin(), records_.end(),
        [](const Record& a, const Record& b) { return a.time < b.time; });
  }
}

const Record& Trace::front() const {
  support::expects(!records_.empty(), "Trace::front on empty trace");
  return records_.front();
}

const Record& Trace::back() const {
  support::expects(!records_.empty(), "Trace::back on empty trace");
  return records_.back();
}

const Record& Trace::at(std::size_t i) const {
  support::expects(i < records_.size(), "Trace::at out of range");
  return records_[i];
}

void Trace::append(const Record& r) {
  support::expects(records_.empty() || r.time >= records_.back().time,
                   "Trace::append would break time ordering");
  records_.push_back(r);
}

Timestamp Trace::duration() const {
  if (records_.size() < 2) return 0;
  return records_.back().time - records_.front().time;
}

Trace Trace::between(Timestamp from, Timestamp to) const {
  std::vector<Record> out;
  const auto lo = std::lower_bound(
      records_.begin(), records_.end(), from,
      [](const Record& r, Timestamp t) { return r.time < t; });
  const auto hi = std::lower_bound(
      lo, records_.end(), to,
      [](const Record& r, Timestamp t) { return r.time < t; });
  out.assign(lo, hi);
  return Trace(user_, std::move(out));
}

std::pair<Trace, Trace> Trace::split_in_half() const {
  if (records_.empty()) return {Trace(user_, {}), Trace(user_, {})};
  const Timestamp mid = records_.front().time + duration() / 2;
  // Guarantee progress even when all records share one timestamp: fall back
  // to splitting by record count.
  Trace left = between(records_.front().time, mid);
  Trace right = between(mid, records_.back().time + 1);
  if (left.empty() || right.empty()) {
    const std::size_t half = records_.size() / 2;
    left = Trace(user_, {records_.begin(), records_.begin() + half});
    right = Trace(user_, {records_.begin() + half, records_.end()});
  }
  return {std::move(left), std::move(right)};
}

std::vector<Trace> Trace::slices(Timestamp slice) const {
  support::expects(slice > 0, "Trace::slices: slice duration must be > 0");
  std::vector<Trace> out;
  if (records_.empty()) return out;
  const Timestamp t0 = records_.front().time;
  std::vector<Record> current;
  Timestamp current_end = t0 + slice;
  for (const Record& r : records_) {
    if (r.time >= current_end) {
      if (!current.empty()) {
        out.emplace_back(user_, std::move(current));
        current = {};
      }
      // Jump directly to the window containing r; stepping one slice at a
      // time is O(gap/slice) across multi-week gaps in sparse traces.
      current_end = t0 + ((r.time - t0) / slice + 1) * slice;
    }
    current.push_back(r);
  }
  if (!current.empty()) out.emplace_back(user_, std::move(current));
  return out;
}

geo::BoundingBox Trace::bounding_box() const {
  geo::BoundingBox box;
  for (const Record& r : records_) box.extend(r.position);
  return box;
}

}  // namespace mood::mobility
