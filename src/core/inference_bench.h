#pragma once

/// \file inference_bench.h
/// A/B measurement harness for the attack-inference hot path.
///
/// Every trained attack keeps its pre-optimization implementation behind
/// Attack::set_reference_mode (hash-map profiles, full population scans).
/// The bench times the same workload through both paths and — just as
/// importantly — verifies the two agree decision for decision, so a perf
/// regression hunt can never silently trade correctness for speed:
///
///  * one re-identification microbench per attack: the targeted
///    reidentifies_target(test_trace, owner) predicate over every
///    train/test pair (the exact query Algorithm 1 issues), plus an
///    untimed argmin agreement sweep;
///  * optionally the full evaluate_mood_full pipeline, compared field by
///    field (data_loss, distortion bands, per-user levels/winners/
///    distortions, search-cost counters).
///
/// Results serialize through report::make_bench_report into the versioned
/// "mood-bench/1" JSON document (`mood bench`, bench/perf_attack_inference).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace mood::core {

/// Which fast path the bench times as "optimized", and how deep the
/// cross-validation goes.
enum class BenchIndexMode {
  kOff,  ///< optimized = linear branch-and-bound scans (index unused)
  kOn,   ///< optimized = population index, validated against reference
  /// Full three-way A/B: reference vs linear scans vs index — the index
  /// is timed as "optimized", the scans are timed separately
  /// (scan_seconds), and the agreement sweep compares all three paths.
  kAb,
};

/// Outcome of one A/B case.
struct InferenceBenchCase {
  std::string name;       ///< "ap-attack-reidentify", "evaluate-mood-full"...
  std::size_t queries = 0;            ///< workload size per timed pass
  std::size_t reference_passes = 1;   ///< timed passes actually averaged over
  std::size_t optimized_passes = 1;   ///< (the fast path repeats more often)
  double reference_seconds = 0.0;     ///< one pass, pre-optimization path
  double optimized_seconds = 0.0;     ///< one pass, production path (index
                                      ///< by default, scans in kOff mode)
  bool agreement = true;          ///< all timed paths decided identically
  std::string mismatch;           ///< first disagreement ("" when none)

  // Populated in kAb mode: the linear-scan oracle timed on its own.
  double scan_seconds = 0.0;          ///< one pass, branch-and-bound scans
  std::size_t scan_passes = 0;        ///< 0 = scan path not timed separately

  // Populated when the optimized path was the population index: work
  // counter deltas over the optimized timed passes. pruned + exact can
  // undershoot candidates — a targeted query stops at the first defeat.
  bool index_timed = false;
  std::uint64_t index_queries = 0;        ///< queries served by the index
  std::uint64_t index_candidates = 0;     ///< queries x population
  std::uint64_t index_pruned = 0;         ///< skipped via lower bounds
  std::uint64_t index_exact_evals = 0;    ///< priced exactly

  [[nodiscard]] double speedup() const {
    return optimized_seconds > 0.0 ? reference_seconds / optimized_seconds
                                   : 0.0;
  }
  /// Fraction of candidates eliminated without exact pricing.
  [[nodiscard]] double prune_rate() const {
    return index_candidates > 0
               ? static_cast<double>(index_pruned) /
                     static_cast<double>(index_candidates)
               : 0.0;
  }
  /// Exact divergence evaluations per index query — the sublinearity
  /// metric BENCH_pr6.json tracks against population size.
  [[nodiscard]] double exact_evals_per_query() const {
    return index_queries > 0 ? static_cast<double>(index_exact_evals) /
                                   static_cast<double>(index_queries)
                             : 0.0;
  }
};

struct InferenceBenchOptions {
  /// Minimum timed passes per reidentify microbench. The timer keeps
  /// repeating beyond this until the section is long enough to resolve
  /// (tiny smoke presets finish a pass in microseconds), reports seconds
  /// per pass, and records the pass counts actually used
  /// (reference_passes / optimized_passes).
  std::size_t repetitions = 3;
  bool run_full = true;         ///< include the evaluate_mood_full A/B case
  std::vector<std::size_t> attack_subset;  ///< indices; empty = all
  /// Which fast path to time and how many paths to cross-validate
  /// (`mood bench --index=on|off|ab`).
  BenchIndexMode index_mode = BenchIndexMode::kOn;
};

/// Runs the microbenches (and, if configured, the full-pipeline A/B) on a
/// built harness. Leaves the harness in the production query mode of the
/// configured index_mode (kIndex, or kScan for kOff). Cases appear in
/// attack order followed by "evaluate-mood-full".
std::vector<InferenceBenchCase> run_inference_bench(
    const ExperimentHarness& harness, const InferenceBenchOptions& options);

/// True iff every case agrees.
bool all_agree(const std::vector<InferenceBenchCase>& cases);

}  // namespace mood::core
