#pragma once

/// \file hybrid.h
/// HybridLPPM — the strongest baseline of the paper [Maouche et al. 2017,
/// adapted in §4.1.2]: a *user-centric single-LPPM selector*. For each
/// user, apply every LPPM from L independently; among those that defeat
/// all attacks, keep the one with the best utility. Unlike MooD it never
/// composes mechanisms nor splits traces, so orphan users stay unprotected.

#include <optional>
#include <string>
#include <vector>

#include "attacks/attack.h"
#include "lppm/lppm.h"
#include "metrics/distortion.h"
#include "mobility/trace.h"

namespace mood::core {

class HybridLppm {
 public:
  /// Pointers are non-owning; attacks must be trained.
  HybridLppm(std::vector<const lppm::Lppm*> singles,
             std::vector<const attacks::Attack*> attacks,
             const metrics::UtilityMetric* metric, std::uint64_t seed = 0xB45E);

  struct Result {
    std::string lppm;          ///< winner name
    mobility::Trace output;    ///< protected trace
    double distortion = 0.0;   ///< winner's utility metric value
  };

  /// Best protective single LPPM for this trace, or nullopt when the user
  /// is an orphan w.r.t. L and A.
  [[nodiscard]] std::optional<Result> protect(
      const mobility::Trace& trace) const;

 private:
  std::vector<const lppm::Lppm*> singles_;
  std::vector<const attacks::Attack*> attacks_;
  const metrics::UtilityMetric* metric_;
  std::uint64_t seed_;
};

}  // namespace mood::core
