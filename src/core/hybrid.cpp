#include "core/hybrid.h"

#include "support/error.h"

namespace mood::core {

HybridLppm::HybridLppm(std::vector<const lppm::Lppm*> singles,
                       std::vector<const attacks::Attack*> attacks,
                       const metrics::UtilityMetric* metric,
                       std::uint64_t seed)
    : singles_(std::move(singles)),
      attacks_(std::move(attacks)),
      metric_(metric),
      seed_(seed) {
  support::expects(!singles_.empty(), "HybridLppm: empty LPPM set");
  support::expects(!attacks_.empty(), "HybridLppm: empty attack set");
  support::expects(metric_ != nullptr, "HybridLppm: null metric");
}

std::optional<HybridLppm::Result> HybridLppm::protect(
    const mobility::Trace& trace) const {
  if (trace.empty()) return std::nullopt;
  std::optional<Result> best;
  for (const auto* single : singles_) {
    auto rng = support::RngStream(seed_).fork(trace.user()).fork(single->name());
    mobility::Trace output = single->apply(trace, std::move(rng));
    bool caught = false;
    for (const auto* attack : attacks_) {
      if (attacks::reidentifies(*attack, output, trace.user())) {
        caught = true;
        break;
      }
    }
    if (caught) continue;
    const double distortion = metric_->distortion(trace, output);
    if (!best || distortion < best->distortion) {
      best = Result{single->name(), std::move(output), distortion};
    }
  }
  return best;
}

}  // namespace mood::core
