#include "core/experiment.h"

#include <chrono>
#include <numeric>

#include "lppm/geo_ind.h"
#include "lppm/trilateration.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/thread_pool.h"

namespace mood::core {

namespace {

/// Started at evaluator entry; read once into result.wall_seconds so every
/// strategy reports how long it took (surfaced by src/report).
class WallTimer {
 public:
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

std::array<std::size_t, 4> bands_from(
    const std::vector<std::pair<bool, double>>& protected_distortions) {
  std::array<std::size_t, 4> bands{0, 0, 0, 0};
  for (const auto& [is_protected, distortion] : protected_distortions) {
    if (!is_protected) continue;
    bands[static_cast<std::size_t>(metrics::distortion_band(distortion))]++;
  }
  return bands;
}

}  // namespace

std::size_t StrategyResult::non_protected_users() const {
  std::size_t n = 0;
  for (const auto& u : users) n += u.is_protected ? 0 : 1;
  return n;
}

double StrategyResult::non_protected_ratio() const {
  return users.empty() ? 0.0
                       : static_cast<double>(non_protected_users()) /
                             static_cast<double>(users.size());
}

double StrategyResult::data_loss() const {
  metrics::DataLossAccumulator acc;
  for (const auto& u : users) {
    if (u.is_protected) {
      acc.add_protected(u.records);
    } else {
      acc.add_lost(u.records);
    }
  }
  return acc.ratio();
}

std::array<std::size_t, 4> StrategyResult::distortion_bands() const {
  std::vector<std::pair<bool, double>> pd;
  pd.reserve(users.size());
  for (const auto& u : users) pd.emplace_back(u.is_protected, u.distortion);
  return bands_from(pd);
}

std::size_t GatewayResult::exposed_users() const {
  std::size_t n = 0;
  for (const auto& u : users) {
    n += u.decision == decision::Decision::kExpose ? 1 : 0;
  }
  return n;
}

std::size_t MoodResult::non_protected_users() const {
  std::size_t n = 0;
  for (const auto& u : users) n += u.fully_protected() ? 0 : 1;
  return n;
}

double MoodResult::data_loss() const {
  metrics::DataLossAccumulator acc;
  for (const auto& u : users) {
    acc.add_lost(u.lost_records);
    acc.add_protected(u.records - u.lost_records);
  }
  return acc.ratio();
}

std::size_t MoodResult::total_lppm_applications() const {
  std::size_t n = 0;
  for (const auto& u : users) n += u.lppm_applications;
  return n;
}

std::size_t MoodResult::total_attack_invocations() const {
  std::size_t n = 0;
  for (const auto& u : users) n += u.attack_invocations;
  return n;
}

std::array<std::size_t, 4> MoodResult::distortion_bands() const {
  std::vector<std::pair<bool, double>> pd;
  pd.reserve(users.size());
  for (const auto& u : users) {
    // A user contributes to the utility histogram with the distortion of
    // the data that actually survived; fully erased users contribute
    // nothing (there is no published data to measure).
    pd.emplace_back(u.records > u.lost_records, u.distortion);
  }
  return bands_from(pd);
}

ExperimentHarness::ExperimentHarness(const mobility::Dataset& dataset,
                                     ExperimentConfig config,
                                     std::uint64_t seed)
    : config_(config), dataset_name_(dataset.name()), seed_(seed) {
  support::expects(dataset.user_count() > 0,
                   "ExperimentHarness: empty dataset");

  pairs_ = dataset.chronological_split(config_.train_fraction,
                                       config_.min_records);
  support::expects(!pairs_.empty(),
                   "ExperimentHarness: no active users after split");

  // Anchor all heatmap grids at the dataset's geographic centre so cells
  // align across the attack, HMC and every user.
  geo::BoundingBox box;
  for (const auto& trace : dataset.traces()) {
    for (const auto& record : trace.records()) box.extend(record.position);
  }
  const geo::GeoPoint reference = box.center();

  // Train the attack suite on the background halves.
  std::vector<mobility::Trace> background;
  background.reserve(pairs_.size());
  for (const auto& pair : pairs_) background.push_back(pair.train);
  attacks_ = attacks::make_standard_suite(reference, config_.attack_params);
  attacks::train_all(attacks_, background);
  support::log_info("harness[", dataset_name_, "]: trained ",
                    attacks_.size(), " attacks on ", background.size(),
                    " users");

  // Instantiate the LPPM set L with paper parameters.
  const geo::CellGrid grid(geo::LocalProjection(reference),
                           config_.attack_params.heatmap_cell_m);
  donor_pool_ = std::make_shared<const lppm::DonorPool>(background, grid);
  registry_.add(std::make_unique<lppm::GeoIndistinguishability>(
      config_.geoi_epsilon));
  registry_.add(std::make_unique<lppm::Trilateration>(config_.trl_radius_m));
  registry_.add(std::make_unique<lppm::HeatmapConfusion>(
      grid, donor_pool_, config_.hmc_hot_coverage, config_.hmc_max_cells,
      config_.hmc_budget_m));
}

std::size_t ExperimentHarness::total_test_records() const {
  std::size_t n = 0;
  for (const auto& pair : pairs_) n += pair.test.size();
  return n;
}

std::vector<const attacks::Attack*> ExperimentHarness::attack_views(
    const std::vector<std::size_t>& subset) const {
  std::vector<const attacks::Attack*> views;
  if (subset.empty()) {
    for (const auto& attack : attacks_) views.push_back(attack.get());
    return views;
  }
  for (const std::size_t index : subset) {
    support::expects(index < attacks_.size(),
                     "attack subset index out of range");
    views.push_back(attacks_[index].get());
  }
  return views;
}

void ExperimentHarness::set_attack_reference_mode(bool on) const {
  attacks::set_reference_mode(attacks_, on);
}

void ExperimentHarness::set_attack_query_mode(attacks::QueryMode mode) const {
  attacks::set_query_mode(attacks_, mode);
}

attacks::IndexStats ExperimentHarness::attack_index_stats() const {
  attacks::IndexStats total;
  for (const auto& attack : attacks_) {
    const attacks::IndexStats stats = attack->index_stats();
    total.queries += stats.queries;
    total.pruned_candidates += stats.pruned_candidates;
    total.exact_evaluations += stats.exact_evaluations;
    total.rebuilds += stats.rebuilds;
  }
  return total;
}

std::size_t ExperimentHarness::ap_attack_index() const {
  for (std::size_t i = 0; i < attacks_.size(); ++i) {
    if (attacks_[i]->name() == "AP-Attack") return i;
  }
  throw support::LogicError("AP-Attack missing from suite");
}

StrategyResult ExperimentHarness::evaluate_no_lppm(
    const std::vector<std::size_t>& attack_subset) const {
  const WallTimer timer;
  // The risk half of the shared decision kernel: compile the window
  // profiles once per user and run every attack's targeted branch-and-
  // bound query against them — decision-identical to walking
  // attacks::reidentifies over the raw trace, and the same code path the
  // online gateway's expose/protect verdicts run through.
  const decision::DecisionKernel kernel = make_kernel(attack_subset);
  StrategyResult result;
  result.strategy = "no-LPPM";
  result.users.resize(pairs_.size());
  support::parallel_for(pairs_.size(), [&](std::size_t i) {
    const auto& pair = pairs_[i];
    const bool caught = kernel.at_risk_trace(pair.test);
    result.users[i] = UserOutcome{pair.test.user(), !caught, 0.0,
                                  pair.test.size(), ""};
  });
  result.wall_seconds = timer.seconds();
  return result;
}

GatewayResult ExperimentHarness::evaluate_gateway(
    const std::vector<std::size_t>& attack_subset) const {
  const WallTimer timer;
  const decision::DecisionKernel kernel = make_kernel(attack_subset);
  GatewayResult result;
  result.users.resize(pairs_.size());
  support::parallel_for(pairs_.size(), [&](std::size_t i) {
    const auto& pair = pairs_[i];
    const decision::Verdict verdict = kernel.decide_trace(pair.test);
    result.users[i] = GatewayOutcome{pair.test.user(), verdict.decision,
                                     verdict.winner, pair.test.size()};
  });
  result.wall_seconds = timer.seconds();
  return result;
}

StrategyResult ExperimentHarness::evaluate_single(
    const std::string& lppm_name,
    const std::vector<std::size_t>& attack_subset) const {
  const WallTimer timer;
  const lppm::Lppm* mechanism = registry_.find(lppm_name);
  support::expects(mechanism != nullptr,
                   "evaluate_single: unknown LPPM " + lppm_name);
  const auto views = attack_views(attack_subset);
  StrategyResult result;
  result.strategy = lppm_name;
  result.users.resize(pairs_.size());
  support::parallel_for(pairs_.size(), [&](std::size_t i) {
    const auto& pair = pairs_[i];
    auto rng = support::RngStream(seed_)
                   .fork(pair.test.user())
                   .fork(mechanism->name());
    const mobility::Trace output = mechanism->apply(pair.test, std::move(rng));
    bool caught = false;
    for (const auto* attack : views) {
      if (attacks::reidentifies(*attack, output, pair.test.user())) {
        caught = true;
        break;
      }
    }
    const double distortion =
        caught ? 0.0 : metric_.distortion(pair.test, output);
    result.users[i] = UserOutcome{pair.test.user(), !caught, distortion,
                                  pair.test.size(), lppm_name};
  });
  result.wall_seconds = timer.seconds();
  return result;
}

StrategyResult ExperimentHarness::evaluate_hybrid(
    const std::vector<std::size_t>& attack_subset) const {
  const WallTimer timer;
  const auto views = attack_views(attack_subset);
  const HybridLppm hybrid(registry_.singles(), views, &metric_, seed_);
  StrategyResult result;
  result.strategy = "HybridLPPM";
  result.users.resize(pairs_.size());
  support::parallel_for(pairs_.size(), [&](std::size_t i) {
    const auto& pair = pairs_[i];
    const auto outcome = hybrid.protect(pair.test);
    if (outcome) {
      result.users[i] = UserOutcome{pair.test.user(), true,
                                    outcome->distortion, pair.test.size(),
                                    outcome->lppm};
    } else {
      result.users[i] =
          UserOutcome{pair.test.user(), false, 0.0, pair.test.size(), ""};
    }
  });
  result.wall_seconds = timer.seconds();
  return result;
}

MoodEngine ExperimentHarness::make_engine(
    const std::vector<std::size_t>& attack_subset) const {
  MoodConfig mood_config = config_.mood;
  mood_config.seed = seed_;
  return MoodEngine(registry_.singles(), registry_.multi_compositions(),
                    attack_views(attack_subset), &metric_, mood_config);
}

decision::DecisionKernel ExperimentHarness::make_kernel(
    const std::vector<std::size_t>& attack_subset,
    decision::KernelConfig kernel_config) const {
  return decision::DecisionKernel(make_engine(attack_subset), kernel_config);
}

StrategyResult ExperimentHarness::evaluate_mood_search(
    const std::vector<std::size_t>& attack_subset) const {
  const WallTimer timer;
  const MoodEngine engine = make_engine(attack_subset);
  StrategyResult result;
  result.strategy = "MooD";
  result.users.resize(pairs_.size());
  support::parallel_for(pairs_.size(), [&](std::size_t i) {
    const auto& pair = pairs_[i];
    const auto candidate = engine.search(pair.test);
    if (candidate) {
      result.users[i] = UserOutcome{pair.test.user(), true,
                                    candidate->distortion, pair.test.size(),
                                    candidate->lppm};
    } else {
      result.users[i] =
          UserOutcome{pair.test.user(), false, 0.0, pair.test.size(), ""};
    }
  });
  result.wall_seconds = timer.seconds();
  return result;
}

MoodResult ExperimentHarness::evaluate_mood_full(
    const std::vector<std::size_t>& attack_subset) const {
  const WallTimer timer;
  const MoodEngine engine = make_engine(attack_subset);
  MoodResult result;
  result.users.resize(pairs_.size());
  support::parallel_for(pairs_.size(), [&](std::size_t i) {
    const auto& pair = pairs_[i];
    MoodUserOutcome outcome;
    outcome.user = pair.test.user();
    outcome.records = pair.test.size();

    // Stage 1: whole-trace search (singles + compositions).
    ProtectionResult cost;
    if (auto whole = engine.search(pair.test, &cost)) {
      outcome.level = whole->level;
      outcome.distortion = whole->distortion;
      outcome.winner = whole->lppm;
      outcome.lppm_applications = cost.lppm_applications;
      outcome.attack_invocations = cost.attack_invocations;
      result.users[i] = std::move(outcome);
      return;
    }

    // Stage 2 (§4.2): 24 h slices, each through full Algorithm 1.
    outcome.level = ProtectionLevel::kFineGrained;
    double weighted_distortion = 0.0;
    std::size_t weighted_records = 0;
    for (const auto& slice : pair.test.slices(engine.config().preslice)) {
      const ProtectionResult piece = engine.protect(slice);
      ++outcome.subtraces;
      if (piece.fully_protected()) ++outcome.protected_subtraces;
      outcome.lost_records += piece.lost_records;
      outcome.lppm_applications += piece.lppm_applications;
      outcome.attack_invocations += piece.attack_invocations;
      for (const auto& p : piece.pieces) {
        weighted_distortion +=
            p.distortion * static_cast<double>(p.original_records);
        weighted_records += p.original_records;
      }
    }
    outcome.lppm_applications += cost.lppm_applications;
    outcome.attack_invocations += cost.attack_invocations;
    outcome.distortion = weighted_records == 0
                             ? 0.0
                             : weighted_distortion /
                                   static_cast<double>(weighted_records);
    if (outcome.subtraces == 0) {
      // Degenerate: empty test trace — nothing to lose or protect.
      outcome.level = ProtectionLevel::kNone;
    }
    result.users[i] = std::move(outcome);
  });
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace mood::core
