#pragma once

/// \file experiment.h
/// The evaluation harness behind every table and figure of the paper.
///
/// Built once per dataset, it owns the full experimental context:
///   * the chronological train/test split (§4.2, 15d/15d by default),
///   * the trained attack suite A = {POI, PIT, AP} (§4.1.1),
///   * the LPPM registry L = {GeoI, TRL, HMC} with paper parameters
///     (§4.1.2) and the derived composition set C \ L,
///   * the STD utility metric (§3.5).
///
/// Strategy evaluators reproduce the experiment grid: no-LPPM / each single
/// LPPM / HybridLPPM / MooD composition search / full MooD (with 24 h
/// pre-slicing and recursive fine-grained protection). All evaluators
/// parallelise over users and are deterministic for a fixed seed.

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "attacks/attack.h"
#include "attacks/suite.h"
#include "core/hybrid.h"
#include "decision/kernel.h"
#include "decision/mood_engine.h"
#include "lppm/heatmap_confusion.h"
#include "lppm/registry.h"
#include "metrics/data_loss.h"
#include "metrics/distortion.h"
#include "mobility/dataset.h"

namespace mood::core {

// The decision procedure itself lives one layer down (mood::decision, the
// library shared with the online gateway); the harness's result types are
// built from its vocabulary, so core re-exports those spellings.
using decision::MoodConfig;
using decision::MoodEngine;
using decision::ProtectedPiece;
using decision::ProtectionLevel;
using decision::ProtectionResult;
using decision::renew_ids;
using decision::to_string;

/// Full experimental configuration with the paper's defaults.
struct ExperimentConfig {
  double train_fraction = 0.5;          ///< 15 of 30 days
  std::size_t min_records = 16;         ///< "active users" filter per half
  attacks::SuiteParams attack_params;   ///< 200 m/1 h POIs, 800 m cells
  double geoi_epsilon = 0.01;           ///< §4.1.2 (per metre)
  double trl_radius_m = 1000.0;         ///< §4.1.2
  double hmc_hot_coverage = 0.85;       ///< HMC alignment mass coverage
  std::size_t hmc_max_cells = 32;       ///< HMC alignment budget (cells)
  double hmc_budget_m = 6000.0;         ///< HMC relocation budget (metres)
  MoodConfig mood;                      ///< delta = 4 h, preslice = 24 h
};

/// Per-user outcome of a protection strategy.
struct UserOutcome {
  mobility::UserId user;
  bool is_protected = false;   ///< all considered attacks defeated
  double distortion = 0.0;     ///< STD of the retained output (if protected)
  std::size_t records = 0;     ///< user's original (test) records
  std::string winner;          ///< winning LPPM name ("" if none / raw)
};

/// Aggregated result of one strategy on one dataset.
struct StrategyResult {
  std::string strategy;
  std::vector<UserOutcome> users;
  double wall_seconds = 0.0;  ///< evaluator wall-clock time (set by harness)

  [[nodiscard]] std::size_t user_count() const { return users.size(); }
  [[nodiscard]] std::size_t non_protected_users() const;
  [[nodiscard]] double non_protected_ratio() const;
  /// Eq. 7: records of non-protected users / all records.
  [[nodiscard]] double data_loss() const;
  /// Protected-user counts per Fig. 9 distortion band
  /// [low, medium, high, extreme].
  [[nodiscard]] std::array<std::size_t, 4> distortion_bands() const;
};

/// Per-user outcome of the full MooD pipeline (composition search, then
/// 24 h slices + recursive fine-grained protection for the remainder).
struct MoodUserOutcome {
  mobility::UserId user;
  ProtectionLevel level = ProtectionLevel::kNone;
  std::size_t records = 0;             ///< original test records
  std::size_t lost_records = 0;        ///< erased (Eq. 7 numerator share)
  std::size_t subtraces = 0;           ///< 24 h slices examined (0 if whole)
  std::size_t protected_subtraces = 0; ///< slices fully protected
  double distortion = 0.0;             ///< record-weighted mean piece STD
  std::string winner;                  ///< whole-trace winner ("" if split)
  std::size_t lppm_applications = 0;   ///< search cost
  std::size_t attack_invocations = 0;

  [[nodiscard]] bool fully_protected() const { return lost_records == 0; }
};

/// Per-user outcome of the gateway decision procedure run in batch mode
/// (one DecisionKernel pass over the full test trace): expose when no
/// trained attack re-identifies the raw trace, otherwise protect with the
/// whole-trace mechanism-search winner. This is exactly what the online
/// gateway's finish() converges to on a non-lossy window — `mood replay`
/// verifies the streamed decisions against this evaluator.
struct GatewayOutcome {
  mobility::UserId user;
  decision::Decision decision = decision::Decision::kExpose;
  std::string winner;          ///< "" when exposed or nothing protects
  std::size_t records = 0;     ///< user's original (test) records
};

/// Aggregated result of the batch gateway pass.
struct GatewayResult {
  std::vector<GatewayOutcome> users;  ///< in pairs() order
  double wall_seconds = 0.0;

  [[nodiscard]] std::size_t exposed_users() const;
};

/// Aggregate view of the full-MooD outcomes.
struct MoodResult {
  std::vector<MoodUserOutcome> users;
  double wall_seconds = 0.0;  ///< evaluator wall-clock time (set by harness)

  [[nodiscard]] std::size_t non_protected_users() const;  ///< any loss
  [[nodiscard]] double data_loss() const;                 ///< Eq. 7, records
  [[nodiscard]] std::array<std::size_t, 4> distortion_bands() const;
  /// Aggregate search cost across users (for deployment-cost reporting).
  [[nodiscard]] std::size_t total_lppm_applications() const;
  [[nodiscard]] std::size_t total_attack_invocations() const;
};

class ExperimentHarness {
 public:
  /// Builds the whole context: split, train attacks, instantiate LPPMs.
  /// `seed` drives both LPPM noise and any tie-breaking.
  ExperimentHarness(const mobility::Dataset& dataset, ExperimentConfig config,
                    std::uint64_t seed = 7);

  // ---- Context access -----------------------------------------------
  [[nodiscard]] const std::vector<mobility::TrainTestPair>& pairs() const {
    return pairs_;
  }
  [[nodiscard]] const std::vector<attacks::AttackPtr>& attacks() const {
    return attacks_;
  }
  [[nodiscard]] const lppm::LppmRegistry& registry() const {
    return registry_;
  }
  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  [[nodiscard]] const std::string& dataset_name() const {
    return dataset_name_;
  }
  [[nodiscard]] std::size_t total_test_records() const;

  // ---- Strategy evaluators ------------------------------------------
  // `attack_subset` holds indices into attacks(); empty means "all".
  // Subsets are read-only views — taken by const reference so callers
  // reuse one vector across the whole strategy grid without copies.

  /// Raw traces, no protection — the "no-LPPM" bar of Fig. 6/7.
  [[nodiscard]] StrategyResult evaluate_no_lppm(
      const std::vector<std::size_t>& attack_subset = {}) const;

  /// One fixed LPPM for everybody (Fig. 2/3/6/7 single-LPPM bars).
  [[nodiscard]] StrategyResult evaluate_single(
      const std::string& lppm_name,
      const std::vector<std::size_t>& attack_subset = {}) const;

  /// HybridLPPM baseline: per-user best protective single LPPM.
  [[nodiscard]] StrategyResult evaluate_hybrid(
      const std::vector<std::size_t>& attack_subset = {}) const;

  /// MooD's multi-LPPM composition search only (no fine-grained stage) —
  /// the "MooD" bars of Fig. 6/7.
  [[nodiscard]] StrategyResult evaluate_mood_search(
      const std::vector<std::size_t>& attack_subset = {}) const;

  /// Full MooD pipeline (§4.2): whole-trace search; failures go through
  /// 24 h pre-slicing + recursive fine-grained protection — Fig. 8/10.
  [[nodiscard]] MoodResult evaluate_mood_full(
      const std::vector<std::size_t>& attack_subset = {}) const;

  /// The online decision procedure in batch clothing: one DecisionKernel
  /// pass per full test trace (fold everything, finalise). The expose set
  /// equals evaluate_no_lppm's protected set and every at-risk user's
  /// winner equals the whole-trace search — structurally, because all
  /// three run through the same kernel.
  [[nodiscard]] GatewayResult evaluate_gateway(
      const std::vector<std::size_t>& attack_subset = {}) const;

  /// Builds a MooD engine over the given attack subset (exposed so
  /// examples/benches can drive Algorithm 1 directly).
  [[nodiscard]] MoodEngine make_engine(
      const std::vector<std::size_t>& attack_subset = {}) const;

  /// Builds the shared batch/stream decision kernel over the given attack
  /// subset. The default KernelConfig (no window, always fresh) is what
  /// every batch evaluator uses; the streaming gateway passes its own.
  [[nodiscard]] decision::DecisionKernel make_kernel(
      const std::vector<std::size_t>& attack_subset = {},
      decision::KernelConfig kernel_config = {}) const;

  /// Routes every trained attack through the pre-optimization reference
  /// scans (Attack::set_reference_mode) — the A/B switch the perf bench
  /// and equivalence smoke checks flip between timed runs. const because
  /// it does not change the harness's observable results, only which
  /// (decision-equivalent) implementation answers queries. Not
  /// thread-safe — call outside parallel sections.
  void set_attack_reference_mode(bool on) const;

  /// Selects the attacks' query machinery directly (reference scans,
  /// linear branch-and-bound scans, or the population index — see
  /// attacks::QueryMode). Same const + thread-safety caveats as
  /// set_attack_reference_mode.
  void set_attack_query_mode(attacks::QueryMode mode) const;

  /// Population-index work counters summed over every attack of the
  /// suite (all zero when queries run in scan/reference mode).
  [[nodiscard]] attacks::IndexStats attack_index_stats() const;

  /// Index of the AP attack inside attacks() (the single-attack
  /// experiments of Fig. 6 use it alone).
  [[nodiscard]] std::size_t ap_attack_index() const;

 private:
  [[nodiscard]] std::vector<const attacks::Attack*> attack_views(
      const std::vector<std::size_t>& subset) const;

  ExperimentConfig config_;
  std::string dataset_name_;
  std::vector<mobility::TrainTestPair> pairs_;
  std::vector<attacks::AttackPtr> attacks_;
  lppm::LppmRegistry registry_;
  std::shared_ptr<const lppm::DonorPool> donor_pool_;
  metrics::SpatialTemporalDistortion metric_;
  std::uint64_t seed_;
};

}  // namespace mood::core
