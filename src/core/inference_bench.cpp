#include "core/inference_bench.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <optional>
#include <sstream>

#include "support/error.h"

namespace mood::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string slug(const std::string& name) {
  std::string out;
  for (const char c : name) {
    out.push_back(c == ' ' ? '-' : static_cast<char>(std::tolower(
                                       static_cast<unsigned char>(c))));
  }
  return out;
}

/// Seconds per pass (and the pass count used) of the targeted predicate
/// over every train/test pair. Runs at least `repetitions` passes and
/// keeps repeating until the timed section is long enough for the steady
/// clock to resolve it (tiny smoke presets finish a pass in microseconds,
/// where single-pass timings are noise).
struct TimedPasses {
  double seconds_per_pass = 0.0;
  std::size_t passes = 0;
};

TimedPasses time_target_queries(const attacks::Attack& attack,
                                const ExperimentHarness& harness,
                                std::size_t repetitions) {
  constexpr double kMinTimedSeconds = 0.2;
  constexpr std::size_t kMaxPasses = 10000;
  const auto start = Clock::now();
  std::size_t passes = 0;
  std::size_t hits = 0;
  do {
    for (const auto& pair : harness.pairs()) {
      hits += attack.reidentifies_target(pair.test, pair.test.user()) ? 1 : 0;
    }
    ++passes;
  } while ((passes < repetitions || seconds_since(start) < kMinTimedSeconds) &&
           passes < kMaxPasses);
  const double elapsed = seconds_since(start);
  (void)hits;  // answers are checked by the untimed agreement sweep
  return TimedPasses{elapsed / static_cast<double>(passes), passes};
}

/// Argmin answers + targeted decisions of one attack over every pair, in
/// whatever query mode is currently set (the agreement sweeps compare
/// these across modes).
struct SweepAnswers {
  std::vector<std::optional<mobility::UserId>> answers;
  std::vector<bool> decisions;
};

SweepAnswers sweep(const attacks::Attack& attack,
                   const ExperimentHarness& harness) {
  SweepAnswers out;
  out.answers.reserve(harness.pairs().size());
  out.decisions.reserve(harness.pairs().size());
  for (const auto& pair : harness.pairs()) {
    out.answers.push_back(attack.reidentify(pair.test));
    out.decisions.push_back(
        attack.reidentifies_target(pair.test, pair.test.user()));
  }
  return out;
}

/// First divergence between two sweeps ("" when none). `left`/`right`
/// label the modes for the mismatch message.
std::string compare_sweeps(const attacks::Attack& attack,
                           const ExperimentHarness& harness,
                           const SweepAnswers& a, const std::string& left,
                           const SweepAnswers& b, const std::string& right) {
  for (std::size_t i = 0; i < harness.pairs().size(); ++i) {
    if (a.answers[i] == b.answers[i] && a.decisions[i] == b.decisions[i]) {
      continue;
    }
    std::ostringstream what;
    what << attack.name() << " diverges on user "
         << harness.pairs()[i].test.user() << ": " << left << "="
         << a.answers[i].value_or("(none)") << " " << right << "="
         << b.answers[i].value_or("(none)");
    return what.str();
  }
  return "";
}

InferenceBenchCase bench_attack(const attacks::Attack& attack,
                                const ExperimentHarness& harness,
                                std::size_t repetitions,
                                BenchIndexMode index_mode) {
  const attacks::QueryMode production = index_mode == BenchIndexMode::kOff
                                            ? attacks::QueryMode::kScan
                                            : attacks::QueryMode::kIndex;
  InferenceBenchCase result;
  result.name = slug(attack.name()) + "-reidentify";
  result.queries = harness.pairs().size();

  // Agreement sweep (untimed): argmin answers and targeted decisions of
  // the production path vs the reference oracle — and, in ab mode, vs the
  // linear-scan oracle as well.
  harness.set_attack_query_mode(production);
  const SweepAnswers optimized_sweep = sweep(attack, harness);
  if (index_mode == BenchIndexMode::kAb) {
    harness.set_attack_query_mode(attacks::QueryMode::kScan);
    const SweepAnswers scan_sweep = sweep(attack, harness);
    result.mismatch = compare_sweeps(attack, harness, scan_sweep, "scan",
                                     optimized_sweep, "index");
  }
  if (result.mismatch.empty()) {
    harness.set_attack_query_mode(attacks::QueryMode::kReference);
    const SweepAnswers reference_sweep = sweep(attack, harness);
    result.mismatch =
        compare_sweeps(attack, harness, reference_sweep, "reference",
                       optimized_sweep, "optimized");
  }
  result.agreement = result.mismatch.empty();

  // Timed passes: reference first, then (ab only) the linear scans, then
  // the production path, with index work counters sampled around it.
  harness.set_attack_query_mode(attacks::QueryMode::kReference);
  const TimedPasses reference =
      time_target_queries(attack, harness, repetitions);
  result.reference_seconds = reference.seconds_per_pass;
  result.reference_passes = reference.passes;
  if (index_mode == BenchIndexMode::kAb) {
    harness.set_attack_query_mode(attacks::QueryMode::kScan);
    const TimedPasses scan = time_target_queries(attack, harness, repetitions);
    result.scan_seconds = scan.seconds_per_pass;
    result.scan_passes = scan.passes;
  }
  harness.set_attack_query_mode(production);
  const attacks::IndexStats before = attack.index_stats();
  const TimedPasses optimized =
      time_target_queries(attack, harness, repetitions);
  result.optimized_seconds = optimized.seconds_per_pass;
  result.optimized_passes = optimized.passes;
  if (production == attacks::QueryMode::kIndex) {
    const attacks::IndexStats after = attack.index_stats();
    result.index_timed = true;
    result.index_queries = after.queries - before.queries;
    result.index_pruned = after.pruned_candidates - before.pruned_candidates;
    result.index_exact_evals =
        after.exact_evaluations - before.exact_evaluations;
    result.index_candidates =
        result.index_queries *
        static_cast<std::uint64_t>(attack.trained_users());
  }
  return result;
}

std::string compare_mood_results(const MoodResult& reference,
                                 const MoodResult& optimized) {
  if (reference.users.size() != optimized.users.size()) {
    return "user count differs";
  }
  for (std::size_t i = 0; i < reference.users.size(); ++i) {
    const auto& r = reference.users[i];
    const auto& o = optimized.users[i];
    std::ostringstream what;
    if (r.user != o.user) {
      what << "user order differs at index " << i;
    } else if (r.level != o.level || r.winner != o.winner) {
      what << r.user << ": level/winner differ (reference "
           << to_string(r.level) << "/'" << r.winner << "', optimized "
           << to_string(o.level) << "/'" << o.winner << "')";
    } else if (r.lost_records != o.lost_records ||
               r.records != o.records || r.subtraces != o.subtraces ||
               r.protected_subtraces != o.protected_subtraces) {
      what << r.user << ": record/subtrace counters differ";
    } else if (r.distortion != o.distortion) {
      what << r.user << ": distortion differs (reference " << r.distortion
           << ", optimized " << o.distortion << ")";
    } else if (r.lppm_applications != o.lppm_applications ||
               r.attack_invocations != o.attack_invocations) {
      what << r.user << ": search-cost counters differ";
    } else {
      continue;
    }
    return what.str();
  }
  if (reference.data_loss() != optimized.data_loss()) {
    return "aggregate data_loss differs";
  }
  if (reference.distortion_bands() != optimized.distortion_bands()) {
    return "distortion bands differ";
  }
  return "";
}

InferenceBenchCase bench_full_pipeline(
    const ExperimentHarness& harness,
    const std::vector<std::size_t>& attack_subset,
    BenchIndexMode index_mode) {
  const attacks::QueryMode production = index_mode == BenchIndexMode::kOff
                                            ? attacks::QueryMode::kScan
                                            : attacks::QueryMode::kIndex;
  InferenceBenchCase result;
  result.name = "evaluate-mood-full";
  result.queries = harness.pairs().size();

  harness.set_attack_query_mode(attacks::QueryMode::kReference);
  const MoodResult reference = harness.evaluate_mood_full(attack_subset);
  harness.set_attack_query_mode(production);
  const attacks::IndexStats before = harness.attack_index_stats();
  const MoodResult optimized = harness.evaluate_mood_full(attack_subset);

  result.reference_seconds = reference.wall_seconds;
  result.optimized_seconds = optimized.wall_seconds;
  result.mismatch = compare_mood_results(reference, optimized);
  result.agreement = result.mismatch.empty();
  if (production == attacks::QueryMode::kIndex) {
    const attacks::IndexStats after = harness.attack_index_stats();
    result.index_timed = true;
    result.index_queries = after.queries - before.queries;
    result.index_pruned = after.pruned_candidates - before.pruned_candidates;
    result.index_exact_evals =
        after.exact_evaluations - before.exact_evaluations;
    std::uint64_t population = 0;
    for (const auto& attack : harness.attacks()) {
      population = std::max(
          population, static_cast<std::uint64_t>(attack->trained_users()));
    }
    result.index_candidates = result.index_queries * population;
  }
  return result;
}

}  // namespace

std::vector<InferenceBenchCase> run_inference_bench(
    const ExperimentHarness& harness, const InferenceBenchOptions& options) {
  support::expects(options.repetitions > 0,
                   "run_inference_bench: repetitions must be positive");
  std::vector<const attacks::Attack*> attacks;
  if (options.attack_subset.empty()) {
    for (const auto& attack : harness.attacks()) attacks.push_back(attack.get());
  } else {
    for (const std::size_t index : options.attack_subset) {
      support::expects(index < harness.attacks().size(),
                       "run_inference_bench: attack index out of range");
      attacks.push_back(harness.attacks()[index].get());
    }
  }

  std::vector<InferenceBenchCase> cases;
  for (const auto* attack : attacks) {
    cases.push_back(bench_attack(*attack, harness, options.repetitions,
                                 options.index_mode));
  }
  if (options.run_full) {
    cases.push_back(bench_full_pipeline(harness, options.attack_subset,
                                        options.index_mode));
  }
  return cases;
}

bool all_agree(const std::vector<InferenceBenchCase>& cases) {
  return std::all_of(cases.begin(), cases.end(),
                     [](const InferenceBenchCase& c) { return c.agreement; });
}

}  // namespace mood::core
