#include "core/inference_bench.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <optional>
#include <sstream>

#include "support/error.h"

namespace mood::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string slug(const std::string& name) {
  std::string out;
  for (const char c : name) {
    out.push_back(c == ' ' ? '-' : static_cast<char>(std::tolower(
                                       static_cast<unsigned char>(c))));
  }
  return out;
}

/// Seconds per pass (and the pass count used) of the targeted predicate
/// over every train/test pair. Runs at least `repetitions` passes and
/// keeps repeating until the timed section is long enough for the steady
/// clock to resolve it (tiny smoke presets finish a pass in microseconds,
/// where single-pass timings are noise).
struct TimedPasses {
  double seconds_per_pass = 0.0;
  std::size_t passes = 0;
};

TimedPasses time_target_queries(const attacks::Attack& attack,
                                const ExperimentHarness& harness,
                                std::size_t repetitions) {
  constexpr double kMinTimedSeconds = 0.2;
  constexpr std::size_t kMaxPasses = 10000;
  const auto start = Clock::now();
  std::size_t passes = 0;
  std::size_t hits = 0;
  do {
    for (const auto& pair : harness.pairs()) {
      hits += attack.reidentifies_target(pair.test, pair.test.user()) ? 1 : 0;
    }
    ++passes;
  } while ((passes < repetitions || seconds_since(start) < kMinTimedSeconds) &&
           passes < kMaxPasses);
  const double elapsed = seconds_since(start);
  (void)hits;  // answers are checked by the untimed agreement sweep
  return TimedPasses{elapsed / static_cast<double>(passes), passes};
}

InferenceBenchCase bench_attack(const attacks::Attack& attack,
                                const ExperimentHarness& harness,
                                std::size_t repetitions) {
  InferenceBenchCase result;
  result.name = slug(attack.name()) + "-reidentify";
  result.queries = harness.pairs().size();

  // Agreement sweep (untimed): argmin answers and targeted decisions of
  // both paths, on the raw test traces.
  std::vector<std::optional<mobility::UserId>> answers;
  std::vector<bool> decisions;
  answers.reserve(harness.pairs().size());
  decisions.reserve(harness.pairs().size());
  for (const auto& pair : harness.pairs()) {
    answers.push_back(attack.reidentify(pair.test));
    decisions.push_back(attack.reidentifies_target(pair.test,
                                                   pair.test.user()));
  }
  harness.set_attack_reference_mode(true);
  for (std::size_t i = 0; i < harness.pairs().size(); ++i) {
    const auto& pair = harness.pairs()[i];
    const auto reference = attack.reidentify(pair.test);
    const bool reference_decision =
        attack.reidentifies_target(pair.test, pair.test.user());
    if (reference != answers[i] || reference_decision != decisions[i]) {
      result.agreement = false;
      std::ostringstream what;
      what << attack.name() << " diverges on user " << pair.test.user()
           << ": reference=" << reference.value_or("(none)")
           << " optimized=" << answers[i].value_or("(none)");
      result.mismatch = what.str();
      break;
    }
  }

  // Timed passes: reference first (mode is already flipped), then
  // optimized.
  const TimedPasses reference =
      time_target_queries(attack, harness, repetitions);
  result.reference_seconds = reference.seconds_per_pass;
  result.reference_passes = reference.passes;
  harness.set_attack_reference_mode(false);
  const TimedPasses optimized =
      time_target_queries(attack, harness, repetitions);
  result.optimized_seconds = optimized.seconds_per_pass;
  result.optimized_passes = optimized.passes;
  return result;
}

std::string compare_mood_results(const MoodResult& reference,
                                 const MoodResult& optimized) {
  if (reference.users.size() != optimized.users.size()) {
    return "user count differs";
  }
  for (std::size_t i = 0; i < reference.users.size(); ++i) {
    const auto& r = reference.users[i];
    const auto& o = optimized.users[i];
    std::ostringstream what;
    if (r.user != o.user) {
      what << "user order differs at index " << i;
    } else if (r.level != o.level || r.winner != o.winner) {
      what << r.user << ": level/winner differ (reference "
           << to_string(r.level) << "/'" << r.winner << "', optimized "
           << to_string(o.level) << "/'" << o.winner << "')";
    } else if (r.lost_records != o.lost_records ||
               r.records != o.records || r.subtraces != o.subtraces ||
               r.protected_subtraces != o.protected_subtraces) {
      what << r.user << ": record/subtrace counters differ";
    } else if (r.distortion != o.distortion) {
      what << r.user << ": distortion differs (reference " << r.distortion
           << ", optimized " << o.distortion << ")";
    } else if (r.lppm_applications != o.lppm_applications ||
               r.attack_invocations != o.attack_invocations) {
      what << r.user << ": search-cost counters differ";
    } else {
      continue;
    }
    return what.str();
  }
  if (reference.data_loss() != optimized.data_loss()) {
    return "aggregate data_loss differs";
  }
  if (reference.distortion_bands() != optimized.distortion_bands()) {
    return "distortion bands differ";
  }
  return "";
}

InferenceBenchCase bench_full_pipeline(
    const ExperimentHarness& harness,
    const std::vector<std::size_t>& attack_subset) {
  InferenceBenchCase result;
  result.name = "evaluate-mood-full";
  result.queries = harness.pairs().size();

  harness.set_attack_reference_mode(true);
  const MoodResult reference = harness.evaluate_mood_full(attack_subset);
  harness.set_attack_reference_mode(false);
  const MoodResult optimized = harness.evaluate_mood_full(attack_subset);

  result.reference_seconds = reference.wall_seconds;
  result.optimized_seconds = optimized.wall_seconds;
  result.mismatch = compare_mood_results(reference, optimized);
  result.agreement = result.mismatch.empty();
  return result;
}

}  // namespace

std::vector<InferenceBenchCase> run_inference_bench(
    const ExperimentHarness& harness, const InferenceBenchOptions& options) {
  support::expects(options.repetitions > 0,
                   "run_inference_bench: repetitions must be positive");
  std::vector<const attacks::Attack*> attacks;
  if (options.attack_subset.empty()) {
    for (const auto& attack : harness.attacks()) attacks.push_back(attack.get());
  } else {
    for (const std::size_t index : options.attack_subset) {
      support::expects(index < harness.attacks().size(),
                       "run_inference_bench: attack index out of range");
      attacks.push_back(harness.attacks()[index].get());
    }
  }

  std::vector<InferenceBenchCase> cases;
  for (const auto* attack : attacks) {
    cases.push_back(bench_attack(*attack, harness, options.repetitions));
  }
  if (options.run_full) {
    cases.push_back(bench_full_pipeline(harness, options.attack_subset));
  }
  return cases;
}

bool all_agree(const std::vector<InferenceBenchCase>& cases) {
  return std::all_of(cases.begin(), cases.end(),
                     [](const InferenceBenchCase& c) { return c.agreement; });
}

}  // namespace mood::core
