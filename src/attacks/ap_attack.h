#pragma once

/// \file ap_attack.h
/// AP-Attack [Maouche et al. 2017] (paper §4.1.1): profiles are heatmaps
/// over a fixed grid (800 m cells by default); the anonymous heatmap is
/// attributed to the known user minimising the Topsoe divergence. The paper
/// calls it "the most powerful attack currently known" and uses it alone
/// for the Fig. 6 experiment.
///
/// train() compiles every trained heatmap into its flat sorted form once
/// and indexes the population (PopulationIndex over bucketed-mass
/// summaries); queries build the anonymous heatmap run-collapsed (no hash
/// map) and, by default, prune candidates through the index before
/// pricing survivors with branch-and-bound bounded divergences — see
/// population_index.h and bounded_scan.h. The linear scans stay available
/// as the index's oracle (QueryMode::kScan) and the raw hash-map profiles
/// as the original one (QueryMode::kReference).

#include <string>
#include <utility>
#include <vector>

#include "attacks/attack.h"
#include "attacks/population_index.h"
#include "geo/cell_grid.h"
#include "profiles/heatmap.h"

namespace mood::attacks {

class ApAttack final : public Attack {
 public:
  /// The grid must be shared (same projection + cell size) with any LPPM
  /// reasoning about heatmaps so that cell boundaries agree.
  explicit ApAttack(geo::CellGrid grid) : grid_(std::move(grid)) {}

  [[nodiscard]] std::string name() const override { return "AP-Attack"; }

  void train(const std::vector<mobility::Trace>& background) override;

  [[nodiscard]] std::optional<mobility::UserId> reidentify(
      const mobility::Trace& anonymous_trace) const override;

  [[nodiscard]] bool reidentifies_target(
      const mobility::Trace& anonymous_trace,
      const mobility::UserId& owner) const override;

  [[nodiscard]] std::size_t trained_users() const override {
    return compiled_.size();
  }

  void set_query_mode(QueryMode mode) override { mode_ = mode; }
  [[nodiscard]] QueryMode query_mode() const override { return mode_; }
  [[nodiscard]] IndexStats index_stats() const override {
    return index_.stats();
  }

  /// Compiles the anonymous-side heatmap exactly as the optimized queries
  /// do internally. Exposed so the streaming gateway can maintain it
  /// incrementally (CompiledHeatmap::apply_update) instead of recompiling
  /// per decision.
  [[nodiscard]] profiles::CompiledHeatmap compile_anonymous(
      const mobility::Trace& trace) const {
    return profiles::CompiledHeatmap::from_trace(trace, grid_);
  }

  /// Targeted query over a pre-compiled anonymous heatmap. Decision-
  /// identical to reidentifies_target(trace, owner) whenever
  /// `anonymous_map` carries the same cells as compile_anonymous(trace).
  /// Always a compiled-profile path — index by default, linear scan in
  /// kScan/kReference mode (reference mode only reroutes the trace-based
  /// entry points).
  [[nodiscard]] bool reidentifies_compiled(
      const profiles::CompiledHeatmap& anonymous_map,
      const mobility::UserId& owner) const;

  [[nodiscard]] const geo::CellGrid& grid() const { return grid_; }

 private:
  geo::CellGrid grid_;
  std::vector<std::pair<mobility::UserId, profiles::CompiledHeatmap>>
      compiled_;
  /// Uncompiled profiles, same order — the reference-mode oracle. Kept
  /// unconditionally: profile maps are a rounding error next to the
  /// training traces the surrounding harness already holds in memory.
  std::vector<std::pair<mobility::UserId, profiles::Heatmap>> reference_;
  /// Pruning index over compiled_; rebuilt by train().
  PopulationIndex<ApIndexTraits> index_;
  QueryMode mode_ = QueryMode::kIndex;
};

}  // namespace mood::attacks
