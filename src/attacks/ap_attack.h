#pragma once

/// \file ap_attack.h
/// AP-Attack [Maouche et al. 2017] (paper §4.1.1): profiles are heatmaps
/// over a fixed grid (800 m cells by default); the anonymous heatmap is
/// attributed to the known user minimising the Topsoe divergence. The paper
/// calls it "the most powerful attack currently known" and uses it alone
/// for the Fig. 6 experiment.

#include <string>
#include <vector>

#include "attacks/attack.h"
#include "geo/cell_grid.h"
#include "profiles/heatmap.h"

namespace mood::attacks {

class ApAttack final : public Attack {
 public:
  /// The grid must be shared (same projection + cell size) with any LPPM
  /// reasoning about heatmaps so that cell boundaries agree.
  explicit ApAttack(geo::CellGrid grid) : grid_(std::move(grid)) {}

  [[nodiscard]] std::string name() const override { return "AP-Attack"; }

  void train(const std::vector<mobility::Trace>& background) override;

  [[nodiscard]] std::optional<mobility::UserId> reidentify(
      const mobility::Trace& anonymous_trace) const override;

  [[nodiscard]] std::size_t trained_users() const override {
    return profiles_.size();
  }

  [[nodiscard]] const geo::CellGrid& grid() const { return grid_; }

 private:
  geo::CellGrid grid_;
  std::vector<std::pair<mobility::UserId, profiles::Heatmap>> profiles_;
};

}  // namespace mood::attacks
