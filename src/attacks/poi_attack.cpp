#include "attacks/poi_attack.h"

#include <limits>

namespace mood::attacks {

void PoiAttack::train(const std::vector<mobility::Trace>& background) {
  profiles_.clear();
  profiles_.reserve(background.size());
  for (const auto& trace : background) {
    auto profile = profiles::PoiProfile::from_trace(trace, params_);
    // Users with no extractable POIs cannot be matched; training still
    // records them so trained_users() reflects the population, but an
    // empty profile yields infinite distance and never wins.
    profiles_.emplace_back(trace.user(), std::move(profile));
  }
}

std::optional<mobility::UserId> PoiAttack::reidentify(
    const mobility::Trace& anonymous_trace) const {
  const auto anonymous_profile =
      profiles::PoiProfile::from_trace(anonymous_trace, params_);
  if (anonymous_profile.empty()) return std::nullopt;

  double best = std::numeric_limits<double>::infinity();
  const mobility::UserId* best_user = nullptr;
  for (const auto& [user, profile] : profiles_) {
    const double d = profiles::poi_profile_distance(anonymous_profile, profile);
    if (d < best) {
      best = d;
      best_user = &user;
    }
  }
  if (best_user == nullptr) return std::nullopt;
  return *best_user;
}

}  // namespace mood::attacks
