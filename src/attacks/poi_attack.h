#pragma once

/// \file poi_attack.h
/// POI-Attack [Primault et al. 2014] (paper §4.1.1): profiles are POI sets;
/// an anonymous trace is attributed to the known user whose POIs are
/// geographically closest (mean nearest-POI distance).

#include <string>
#include <vector>

#include "attacks/attack.h"
#include "clustering/poi_extraction.h"
#include "profiles/poi_profile.h"

namespace mood::attacks {

class PoiAttack final : public Attack {
 public:
  /// Paper defaults: clustering diameter 200 m, dwell 1 h.
  explicit PoiAttack(clustering::PoiParams params = {})
      : params_(params) {}

  [[nodiscard]] std::string name() const override { return "POI-Attack"; }

  void train(const std::vector<mobility::Trace>& background) override;

  [[nodiscard]] std::optional<mobility::UserId> reidentify(
      const mobility::Trace& anonymous_trace) const override;

  [[nodiscard]] std::size_t trained_users() const override {
    return profiles_.size();
  }

 private:
  clustering::PoiParams params_;
  std::vector<std::pair<mobility::UserId, profiles::PoiProfile>> profiles_;
};

}  // namespace mood::attacks
