#pragma once

/// \file poi_attack.h
/// POI-Attack [Primault et al. 2014] (paper §4.1.1): profiles are POI sets;
/// an anonymous trace is attributed to the known user whose POIs are
/// geographically closest (mean nearest-POI distance).
///
/// train() compiles every trained POI set (precomputed trigonometry) once
/// and indexes the population (PopulationIndex over covering-ball
/// summaries); queries prune candidates through the index by default
/// before pricing survivors with branch-and-bound bounded distances — see
/// population_index.h and bounded_scan.h. The linear scans stay available
/// as the index's oracle (QueryMode::kScan) and the raw profiles as the
/// original one (QueryMode::kReference).

#include <string>
#include <utility>
#include <vector>

#include "attacks/attack.h"
#include "attacks/population_index.h"
#include "clustering/poi_extraction.h"
#include "profiles/poi_profile.h"

namespace mood::attacks {

class PoiAttack final : public Attack {
 public:
  /// Paper defaults: clustering diameter 200 m, dwell 1 h.
  explicit PoiAttack(clustering::PoiParams params = {})
      : params_(params) {}

  [[nodiscard]] std::string name() const override { return "POI-Attack"; }

  void train(const std::vector<mobility::Trace>& background) override;

  [[nodiscard]] std::optional<mobility::UserId> reidentify(
      const mobility::Trace& anonymous_trace) const override;

  [[nodiscard]] bool reidentifies_target(
      const mobility::Trace& anonymous_trace,
      const mobility::UserId& owner) const override;

  [[nodiscard]] std::size_t trained_users() const override {
    return compiled_.size();
  }

  void set_query_mode(QueryMode mode) override { mode_ = mode; }
  [[nodiscard]] QueryMode query_mode() const override { return mode_; }
  [[nodiscard]] IndexStats index_stats() const override {
    return index_.stats();
  }

  /// Compiles the anonymous-side POI set exactly as the optimized queries
  /// do internally. Exposed so the streaming gateway can cache it and
  /// rebuild under a staleness bound (POI clustering is not incrementally
  /// maintainable the way heatmap counts are).
  [[nodiscard]] profiles::CompiledPoiProfile compile_anonymous(
      const mobility::Trace& trace) const {
    return profiles::CompiledPoiProfile(
        profiles::PoiProfile::from_trace(trace, params_));
  }

  /// Targeted query over a pre-compiled anonymous POI set. Decision-
  /// identical to reidentifies_target(trace, owner) whenever
  /// `anonymous_profile` equals compile_anonymous(trace). Always a
  /// compiled-profile path — index by default, linear scan in
  /// kScan/kReference mode.
  [[nodiscard]] bool reidentifies_compiled(
      const profiles::CompiledPoiProfile& anonymous_profile,
      const mobility::UserId& owner) const;

  /// Stay-clustering parameters of this attack's profiles — the decision
  /// kernel shares one stay tracker across attacks whose params agree.
  [[nodiscard]] const clustering::PoiParams& params() const { return params_; }

 private:
  clustering::PoiParams params_;
  std::vector<std::pair<mobility::UserId, profiles::CompiledPoiProfile>>
      compiled_;
  /// Uncompiled profiles, same order — the reference-mode oracle. Kept
  /// unconditionally: profile storage is a rounding error next to the
  /// training traces the surrounding harness already holds in memory.
  std::vector<std::pair<mobility::UserId, profiles::PoiProfile>> reference_;
  /// Pruning index over compiled_; rebuilt by train().
  PopulationIndex<PoiIndexTraits> index_;
  QueryMode mode_ = QueryMode::kIndex;
};

}  // namespace mood::attacks
