#include "attacks/suite.h"

#include "support/error.h"

namespace mood::attacks {

std::vector<AttackPtr> make_standard_suite(const geo::GeoPoint& reference,
                                           const SuiteParams& params) {
  std::vector<AttackPtr> suite;
  suite.push_back(make_attack("poi", reference, params));
  suite.push_back(make_attack("pit", reference, params));
  suite.push_back(make_attack("ap", reference, params));
  return suite;
}

AttackPtr make_attack(const std::string& name, const geo::GeoPoint& reference,
                      const SuiteParams& params) {
  if (name == "poi") return std::make_unique<PoiAttack>(params.poi);
  if (name == "pit") {
    return std::make_unique<PitAttack>(params.poi,
                                       params.pit_proximity_scale_m);
  }
  if (name == "ap") {
    return std::make_unique<ApAttack>(geo::CellGrid(
        geo::LocalProjection(reference), params.heatmap_cell_m));
  }
  throw support::PreconditionError("unknown attack name: " + name);
}

void train_all(const std::vector<AttackPtr>& suite,
               const std::vector<mobility::Trace>& background) {
  for (const auto& attack : suite) attack->train(background);
}

void set_reference_mode(const std::vector<AttackPtr>& suite, bool on) {
  for (const auto& attack : suite) attack->set_reference_mode(on);
}

void set_query_mode(const std::vector<AttackPtr>& suite, QueryMode mode) {
  for (const auto& attack : suite) attack->set_query_mode(mode);
}

}  // namespace mood::attacks
