#include "attacks/ap_attack.h"

#include "attacks/bounded_scan.h"
#include "profiles/summaries.h"

namespace mood::attacks {

void ApAttack::train(const std::vector<mobility::Trace>& background) {
  compiled_.clear();
  reference_.clear();
  compiled_.reserve(background.size());
  reference_.reserve(background.size());
  for (const auto& trace : background) {
    auto map = profiles::Heatmap::from_trace(trace, grid_);
    compiled_.emplace_back(trace.user(), profiles::CompiledHeatmap(map));
    reference_.emplace_back(trace.user(), std::move(map));
  }
  index_.build(compiled_);
}

std::optional<mobility::UserId> ApAttack::reidentify(
    const mobility::Trace& anonymous_trace) const {
  if (mode_ == QueryMode::kReference) {
    const auto anonymous_map =
        profiles::Heatmap::from_trace(anonymous_trace, grid_);
    if (anonymous_map.empty()) return std::nullopt;
    return naive_argmin(reference_, [&](const profiles::Heatmap& map) {
      return profiles::topsoe_divergence(anonymous_map, map);
    });
  }

  const auto anonymous_map =
      profiles::CompiledHeatmap::from_trace(anonymous_trace, grid_);
  if (anonymous_map.empty()) return std::nullopt;
  const auto bounded = [&](const profiles::CompiledHeatmap& map,
                           double bound) {
    return profiles::topsoe_divergence_bounded(anonymous_map, map, bound);
  };
  if (mode_ == QueryMode::kIndex && index_.built()) {
    return index_.argmin(profiles::summarize(anonymous_map), bounded);
  }
  return scan_argmin(compiled_, bounded);
}

bool ApAttack::reidentifies_target(const mobility::Trace& anonymous_trace,
                                   const mobility::UserId& owner) const {
  if (mode_ == QueryMode::kReference) {
    return Attack::reidentifies_target(anonymous_trace, owner);
  }
  return reidentifies_compiled(compile_anonymous(anonymous_trace), owner);
}

bool ApAttack::reidentifies_compiled(
    const profiles::CompiledHeatmap& anonymous_map,
    const mobility::UserId& owner) const {
  if (anonymous_map.empty()) return false;
  const auto exact = [&](const profiles::CompiledHeatmap& map) {
    return profiles::topsoe_divergence(anonymous_map, map);
  };
  const auto bounded = [&](const profiles::CompiledHeatmap& map,
                           double bound) {
    return profiles::topsoe_divergence_bounded(anonymous_map, map, bound);
  };
  if (mode_ == QueryMode::kIndex && index_.built()) {
    return index_.is_first_argmin(profiles::summarize(anonymous_map), owner,
                                  exact, bounded);
  }
  return scan_is_first_argmin(compiled_, owner, exact, bounded);
}

}  // namespace mood::attacks
