#include "attacks/ap_attack.h"

#include <limits>

namespace mood::attacks {

void ApAttack::train(const std::vector<mobility::Trace>& background) {
  profiles_.clear();
  profiles_.reserve(background.size());
  for (const auto& trace : background) {
    profiles_.emplace_back(trace.user(),
                           profiles::Heatmap::from_trace(trace, grid_));
  }
}

std::optional<mobility::UserId> ApAttack::reidentify(
    const mobility::Trace& anonymous_trace) const {
  const auto anonymous_map =
      profiles::Heatmap::from_trace(anonymous_trace, grid_);
  if (anonymous_map.empty()) return std::nullopt;

  double best = std::numeric_limits<double>::infinity();
  const mobility::UserId* best_user = nullptr;
  for (const auto& [user, map] : profiles_) {
    const double d = profiles::topsoe_divergence(anonymous_map, map);
    if (d < best) {
      best = d;
      best_user = &user;
    }
  }
  if (best_user == nullptr) return std::nullopt;
  return *best_user;
}

}  // namespace mood::attacks
