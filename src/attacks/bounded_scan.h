#pragma once

/// \file bounded_scan.h
/// Branch-and-bound population scans shared by the three attacks.
///
/// Every attack re-identifies by an argmin over per-user profile distances
/// whose accumulation is non-negative, so a *bounded* distance — one that
/// bails out and returns infinity as soon as its partial sum proves the
/// final value exceeds a bound — lets the scan skip most of the population
/// without changing any decision:
///
///  * scan_argmin keeps the running best as the bound (classic
///    branch-and-bound argmin);
///  * scan_is_first_argmin answers the targeted "would this trace be
///    re-identified as `owner`?" query: it prices the owner first and walks
///    the rest of the population with that price as the bound.
///
/// Both preserve the naive scan's first-strict-min tie-breaking exactly.
/// The bounded distance callable must satisfy the contract documented on
/// the profiles' *_bounded functions: bounded(profile, bound) returns the
/// exact distance whenever it is <= bound, and some value > bound (usually
/// infinity) otherwise.

#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "mobility/trace.h"

namespace mood::attacks {

/// The naive first-strict-min argmin scan — the reference-mode oracle the
/// bounded scans are validated against, single-sourced so every attack's
/// legacy path shares one implementation. `distance` is called as
/// distance(profile). Returns the first user attaining the minimum finite
/// distance, or nullopt when every distance is infinite.
template <typename Profile, typename Distance>
std::optional<mobility::UserId> naive_argmin(
    const std::vector<std::pair<mobility::UserId, Profile>>& profiles,
    const Distance& distance) {
  double best = std::numeric_limits<double>::infinity();
  const mobility::UserId* best_user = nullptr;
  for (const auto& [user, profile] : profiles) {
    const double d = distance(profile);
    if (d < best) {
      best = d;
      best_user = &user;
    }
  }
  if (best_user == nullptr) return std::nullopt;
  return *best_user;
}

/// Argmin over trained profiles with branch-and-bound pruning. `bounded`
/// is called as bounded(profile, current_best). Returns the first user
/// attaining the minimum finite distance, or nullopt when every distance
/// is infinite — exactly naive_argmin's answer.
template <typename Profile, typename BoundedDistance>
std::optional<mobility::UserId> scan_argmin(
    const std::vector<std::pair<mobility::UserId, Profile>>& profiles,
    const BoundedDistance& bounded) {
  double best = std::numeric_limits<double>::infinity();
  const mobility::UserId* best_user = nullptr;
  for (const auto& [user, profile] : profiles) {
    const double d = bounded(profile, best);
    if (d < best) {
      best = d;
      best_user = &user;
    }
  }
  if (best_user == nullptr) return std::nullopt;
  return *best_user;
}

/// True iff the naive argmin scan would answer `owner`: the owner's
/// distance is finite, every earlier user is strictly farther (an earlier
/// tie would win the first-strict-min scan) and no later user is strictly
/// closer. Prices the owner once with `exact`, then walks the rest of the
/// population with the owner's distance as the pruning bound.
template <typename Profile, typename ExactDistance, typename BoundedDistance>
bool scan_is_first_argmin(
    const std::vector<std::pair<mobility::UserId, Profile>>& profiles,
    const mobility::UserId& owner, const ExactDistance& exact,
    const BoundedDistance& bounded) {
  std::size_t owner_index = profiles.size();
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    if (profiles[i].first == owner) {
      owner_index = i;
      break;
    }
  }
  // Unknown owner: the scan can only ever answer trained users.
  if (owner_index == profiles.size()) return false;

  const double target = exact(profiles[owner_index].second);
  if (target == std::numeric_limits<double>::infinity()) return false;

  for (std::size_t i = 0; i < owner_index; ++i) {
    if (bounded(profiles[i].second, target) <= target) return false;
  }
  for (std::size_t i = owner_index + 1; i < profiles.size(); ++i) {
    if (bounded(profiles[i].second, target) < target) return false;
  }
  return true;
}

}  // namespace mood::attacks
