#include "attacks/pit_attack.h"

#include "attacks/bounded_scan.h"
#include "profiles/summaries.h"

namespace mood::attacks {

void PitAttack::train(const std::vector<mobility::Trace>& background) {
  compiled_.clear();
  reference_.clear();
  compiled_.reserve(background.size());
  reference_.reserve(background.size());
  for (const auto& trace : background) {
    auto profile = profiles::MarkovProfile::from_trace(trace, params_);
    compiled_.emplace_back(trace.user(),
                           profiles::CompiledMarkovProfile(profile));
    reference_.emplace_back(trace.user(), std::move(profile));
  }
  index_.build(compiled_);
}

std::optional<mobility::UserId> PitAttack::reidentify(
    const mobility::Trace& anonymous_trace) const {
  if (mode_ == QueryMode::kReference) {
    const auto anonymous_profile =
        profiles::MarkovProfile::from_trace(anonymous_trace, params_);
    if (anonymous_profile.empty()) return std::nullopt;
    return naive_argmin(
        reference_, [&](const profiles::MarkovProfile& profile) {
          return profiles::stats_prox_distance(anonymous_profile, profile,
                                               proximity_scale_m_);
        });
  }

  const profiles::CompiledMarkovProfile anonymous_profile(
      profiles::MarkovProfile::from_trace(anonymous_trace, params_));
  if (anonymous_profile.empty()) return std::nullopt;
  const auto bounded = [&](const profiles::CompiledMarkovProfile& profile,
                           double bound) {
    return profiles::stats_prox_distance_bounded(anonymous_profile, profile,
                                                 proximity_scale_m_, bound);
  };
  if (mode_ == QueryMode::kIndex && index_.built()) {
    return index_.argmin(profiles::summarize(anonymous_profile), bounded);
  }
  return scan_argmin(compiled_, bounded);
}

bool PitAttack::reidentifies_target(const mobility::Trace& anonymous_trace,
                                    const mobility::UserId& owner) const {
  if (mode_ == QueryMode::kReference) {
    return Attack::reidentifies_target(anonymous_trace, owner);
  }
  return reidentifies_compiled(compile_anonymous(anonymous_trace), owner);
}

bool PitAttack::reidentifies_compiled(
    const profiles::CompiledMarkovProfile& anonymous_profile,
    const mobility::UserId& owner) const {
  if (anonymous_profile.empty()) return false;
  const auto exact = [&](const profiles::CompiledMarkovProfile& profile) {
    return profiles::stats_prox_distance(anonymous_profile, profile,
                                         proximity_scale_m_);
  };
  const auto bounded = [&](const profiles::CompiledMarkovProfile& profile,
                           double bound) {
    return profiles::stats_prox_distance_bounded(anonymous_profile, profile,
                                                 proximity_scale_m_, bound);
  };
  if (mode_ == QueryMode::kIndex && index_.built()) {
    return index_.is_first_argmin(profiles::summarize(anonymous_profile),
                                  owner, exact, bounded);
  }
  return scan_is_first_argmin(compiled_, owner, exact, bounded);
}

}  // namespace mood::attacks
