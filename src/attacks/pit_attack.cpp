#include "attacks/pit_attack.h"

#include <limits>

namespace mood::attacks {

void PitAttack::train(const std::vector<mobility::Trace>& background) {
  profiles_.clear();
  profiles_.reserve(background.size());
  for (const auto& trace : background) {
    profiles_.emplace_back(trace.user(),
                           profiles::MarkovProfile::from_trace(trace, params_));
  }
}

std::optional<mobility::UserId> PitAttack::reidentify(
    const mobility::Trace& anonymous_trace) const {
  const auto anonymous_profile =
      profiles::MarkovProfile::from_trace(anonymous_trace, params_);
  if (anonymous_profile.empty()) return std::nullopt;

  double best = std::numeric_limits<double>::infinity();
  const mobility::UserId* best_user = nullptr;
  for (const auto& [user, profile] : profiles_) {
    const double d = profiles::stats_prox_distance(anonymous_profile, profile,
                                                   proximity_scale_m_);
    if (d < best) {
      best = d;
      best_user = &user;
    }
  }
  if (best_user == nullptr) return std::nullopt;
  return *best_user;
}

}  // namespace mood::attacks
