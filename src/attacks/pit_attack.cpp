#include "attacks/pit_attack.h"

#include "attacks/bounded_scan.h"

namespace mood::attacks {

void PitAttack::train(const std::vector<mobility::Trace>& background) {
  compiled_.clear();
  reference_.clear();
  compiled_.reserve(background.size());
  reference_.reserve(background.size());
  for (const auto& trace : background) {
    auto profile = profiles::MarkovProfile::from_trace(trace, params_);
    compiled_.emplace_back(trace.user(),
                           profiles::CompiledMarkovProfile(profile));
    reference_.emplace_back(trace.user(), std::move(profile));
  }
}

std::optional<mobility::UserId> PitAttack::reidentify(
    const mobility::Trace& anonymous_trace) const {
  if (reference_mode_) {
    const auto anonymous_profile =
        profiles::MarkovProfile::from_trace(anonymous_trace, params_);
    if (anonymous_profile.empty()) return std::nullopt;
    return naive_argmin(
        reference_, [&](const profiles::MarkovProfile& profile) {
          return profiles::stats_prox_distance(anonymous_profile, profile,
                                               proximity_scale_m_);
        });
  }

  const profiles::CompiledMarkovProfile anonymous_profile(
      profiles::MarkovProfile::from_trace(anonymous_trace, params_));
  if (anonymous_profile.empty()) return std::nullopt;
  return scan_argmin(
      compiled_,
      [&](const profiles::CompiledMarkovProfile& profile, double bound) {
        return profiles::stats_prox_distance_bounded(
            anonymous_profile, profile, proximity_scale_m_, bound);
      });
}

bool PitAttack::reidentifies_target(const mobility::Trace& anonymous_trace,
                                    const mobility::UserId& owner) const {
  if (reference_mode_) return Attack::reidentifies_target(anonymous_trace, owner);
  return reidentifies_compiled(compile_anonymous(anonymous_trace), owner);
}

bool PitAttack::reidentifies_compiled(
    const profiles::CompiledMarkovProfile& anonymous_profile,
    const mobility::UserId& owner) const {
  if (anonymous_profile.empty()) return false;
  return scan_is_first_argmin(
      compiled_, owner,
      [&](const profiles::CompiledMarkovProfile& profile) {
        return profiles::stats_prox_distance(anonymous_profile, profile,
                                             proximity_scale_m_);
      },
      [&](const profiles::CompiledMarkovProfile& profile, double bound) {
        return profiles::stats_prox_distance_bounded(
            anonymous_profile, profile, proximity_scale_m_, bound);
      });
}

}  // namespace mood::attacks
