#pragma once

/// \file attack.h
/// User re-identification attack interface (paper Eq. 1).
///
/// An attack trains once on background knowledge H (one past trace per
/// known user) and is then asked to re-associate anonymous traces with
/// users: A(T, H) = u. Training mutates the attack; re-identification is
/// const and safe to call concurrently — MooD's search fans candidate
/// protections out across threads against shared trained attacks.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mobility/trace.h"

namespace mood::attacks {

/// Which machinery serves re-identification queries. Every mode answers
/// every query with the *same decision* — the modes exist so the faster
/// paths can be validated against the slower ones (inference_bench A/B,
/// replay verification, CI gates), never to trade accuracy for speed.
enum class QueryMode {
  /// Pre-optimization hash-map scans over the legacy profiles — the
  /// original oracle, O(population * profile) per query.
  kReference,
  /// Flat compiled profiles + linear branch-and-bound scans
  /// (bounded_scan.h) — prices candidates in training order, pruning with
  /// the best distance so far. The oracle for the index.
  kScan,
  /// PopulationIndex: cluster + per-profile lower bounds eliminate most
  /// candidates before any exact pricing; survivors go through the same
  /// bounded scans in the same order. The production default.
  kIndex,
};

/// Cumulative population-index work counters (since training). All zero
/// for attacks without an index or while it has never served a query.
struct IndexStats {
  std::uint64_t queries = 0;            ///< index-served argmin/targeted queries
  std::uint64_t pruned_candidates = 0;  ///< eliminated by lower bounds alone
  std::uint64_t exact_evaluations = 0;  ///< priced with an exact divergence
  std::uint64_t rebuilds = 0;           ///< full index (re)builds
};

/// Abstract re-identification attack.
class Attack {
 public:
  virtual ~Attack() = default;

  /// Display name ("POI-Attack", "PIT-Attack", "AP-Attack").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Builds per-user profiles from background traces (one per user; the
  /// trace's user id is the identity learned). Replaces earlier training.
  virtual void train(const std::vector<mobility::Trace>& background) = 0;

  /// Returns the known user the anonymous trace most resembles, or
  /// std::nullopt when the attack cannot form a profile from the trace
  /// (e.g. no POIs survive obfuscation) — a failed attack, which counts as
  /// protection for the trace's owner.
  [[nodiscard]] virtual std::optional<mobility::UserId> reidentify(
      const mobility::Trace& anonymous_trace) const = 0;

  /// Targeted query: would reidentify() answer exactly `owner`? Must be
  /// decision-equivalent to `reidentify(trace) == owner` — this default is
  /// literally that — but concrete attacks override it with a
  /// branch-and-bound scan that prices the owner first and prunes the rest
  /// of the population against that distance, which is what makes
  /// Algorithm 1's attack-in-the-loop search fast (the engine only ever
  /// needs this predicate, never the full argmin).
  [[nodiscard]] virtual bool reidentifies_target(
      const mobility::Trace& anonymous_trace,
      const mobility::UserId& owner) const {
    const auto answer = reidentify(anonymous_trace);
    return answer.has_value() && *answer == owner;
  }

  /// Number of trained profiles.
  [[nodiscard]] virtual std::size_t trained_users() const = 0;

  /// Selects the query machinery (see QueryMode). Default no-op for
  /// attacks without alternative paths (e.g. test mocks). Not thread-safe
  /// — flip only outside parallel sections.
  virtual void set_query_mode(QueryMode /*mode*/) {}

  /// The active query machinery.
  [[nodiscard]] virtual QueryMode query_mode() const {
    return QueryMode::kScan;
  }

  /// Reference mode: route every query through the pre-optimization
  /// hash-map scans (the oracle the optimized paths are validated
  /// against). Kept as the stable two-state switch older call sites use;
  /// leaving reference mode returns to the production default (kIndex).
  /// Not thread-safe — flip only outside parallel sections.
  virtual void set_reference_mode(bool on) {
    set_query_mode(on ? QueryMode::kReference : QueryMode::kIndex);
  }

  /// Population-index work counters (zero for attacks without an index).
  [[nodiscard]] virtual IndexStats index_stats() const { return {}; }
};

/// True iff the attack's answer equals the true owner — the success
/// predicate A_k(T') = U used throughout Algorithm 1. Routed through the
/// targeted reidentifies_target query so trained attacks can prune their
/// population scan instead of pricing every user.
inline bool reidentifies(const Attack& attack, const mobility::Trace& trace,
                         const mobility::UserId& owner) {
  return attack.reidentifies_target(trace, owner);
}

using AttackPtr = std::unique_ptr<Attack>;

}  // namespace mood::attacks
