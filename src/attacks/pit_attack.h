#pragma once

/// \file pit_attack.h
/// PIT-Attack [Gambs et al. 2014] (paper §4.1.1): profiles are Mobility
/// Markov Chains; the anonymous MMC is attributed to the known user whose
/// chain minimises the stats-prox distance (stationary-weight distance
/// combined with geographic proximity of matched states — the variant the
/// original paper reports as most effective; exact formula documented at
/// profiles::stats_prox_distance).

#include <string>
#include <vector>

#include "attacks/attack.h"
#include "clustering/poi_extraction.h"
#include "profiles/markov_profile.h"

namespace mood::attacks {

class PitAttack final : public Attack {
 public:
  /// `proximity_scale_m` converts geographic proximity to the dimensionless
  /// scale of the stationary distance (1 km by default).
  explicit PitAttack(clustering::PoiParams params = {},
                     double proximity_scale_m = 1000.0)
      : params_(params), proximity_scale_m_(proximity_scale_m) {}

  [[nodiscard]] std::string name() const override { return "PIT-Attack"; }

  void train(const std::vector<mobility::Trace>& background) override;

  [[nodiscard]] std::optional<mobility::UserId> reidentify(
      const mobility::Trace& anonymous_trace) const override;

  [[nodiscard]] std::size_t trained_users() const override {
    return profiles_.size();
  }

 private:
  clustering::PoiParams params_;
  double proximity_scale_m_;
  std::vector<std::pair<mobility::UserId, profiles::MarkovProfile>> profiles_;
};

}  // namespace mood::attacks
