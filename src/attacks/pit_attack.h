#pragma once

/// \file pit_attack.h
/// PIT-Attack [Gambs et al. 2014] (paper §4.1.1): profiles are Mobility
/// Markov Chains; the anonymous MMC is attributed to the known user whose
/// chain minimises the stats-prox distance (stationary-weight distance
/// combined with geographic proximity of matched states — the variant the
/// original paper reports as most effective; exact formula documented at
/// profiles::stats_prox_distance).
///
/// train() compiles every trained chain (precomputed state trigonometry)
/// once; queries walk the population with branch-and-bound bounded
/// distances — see bounded_scan.h. The raw profiles are kept for reference
/// mode.

#include <string>
#include <utility>
#include <vector>

#include "attacks/attack.h"
#include "clustering/poi_extraction.h"
#include "profiles/markov_profile.h"

namespace mood::attacks {

class PitAttack final : public Attack {
 public:
  /// `proximity_scale_m` converts geographic proximity to the dimensionless
  /// scale of the stationary distance (1 km by default).
  explicit PitAttack(clustering::PoiParams params = {},
                     double proximity_scale_m = 1000.0)
      : params_(params), proximity_scale_m_(proximity_scale_m) {}

  [[nodiscard]] std::string name() const override { return "PIT-Attack"; }

  void train(const std::vector<mobility::Trace>& background) override;

  [[nodiscard]] std::optional<mobility::UserId> reidentify(
      const mobility::Trace& anonymous_trace) const override;

  [[nodiscard]] bool reidentifies_target(
      const mobility::Trace& anonymous_trace,
      const mobility::UserId& owner) const override;

  [[nodiscard]] std::size_t trained_users() const override {
    return compiled_.size();
  }

  void set_reference_mode(bool on) override { reference_mode_ = on; }

 private:
  clustering::PoiParams params_;
  double proximity_scale_m_;
  std::vector<std::pair<mobility::UserId, profiles::CompiledMarkovProfile>>
      compiled_;
  /// Uncompiled profiles, same order — the reference-mode oracle. Kept
  /// unconditionally: profile storage is a rounding error next to the
  /// training traces the surrounding harness already holds in memory.
  std::vector<std::pair<mobility::UserId, profiles::MarkovProfile>>
      reference_;
  bool reference_mode_ = false;
};

}  // namespace mood::attacks
