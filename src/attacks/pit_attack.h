#pragma once

/// \file pit_attack.h
/// PIT-Attack [Gambs et al. 2014] (paper §4.1.1): profiles are Mobility
/// Markov Chains; the anonymous MMC is attributed to the known user whose
/// chain minimises the stats-prox distance (stationary-weight distance
/// combined with geographic proximity of matched states — the variant the
/// original paper reports as most effective; exact formula documented at
/// profiles::stats_prox_distance).
///
/// train() compiles every trained chain (precomputed state trigonometry)
/// once and indexes the population (PopulationIndex over covering-ball +
/// weight-prefix summaries); queries prune candidates through the index
/// by default before pricing survivors with branch-and-bound bounded
/// distances — see population_index.h and bounded_scan.h. The linear
/// scans stay available as the index's oracle (QueryMode::kScan) and the
/// raw profiles as the original one (QueryMode::kReference).

#include <string>
#include <utility>
#include <vector>

#include "attacks/attack.h"
#include "attacks/population_index.h"
#include "clustering/poi_extraction.h"
#include "profiles/markov_profile.h"

namespace mood::attacks {

class PitAttack final : public Attack {
 public:
  /// `proximity_scale_m` converts geographic proximity to the dimensionless
  /// scale of the stationary distance (1 km by default).
  explicit PitAttack(clustering::PoiParams params = {},
                     double proximity_scale_m = 1000.0)
      : params_(params), proximity_scale_m_(proximity_scale_m) {}

  [[nodiscard]] std::string name() const override { return "PIT-Attack"; }

  void train(const std::vector<mobility::Trace>& background) override;

  [[nodiscard]] std::optional<mobility::UserId> reidentify(
      const mobility::Trace& anonymous_trace) const override;

  [[nodiscard]] bool reidentifies_target(
      const mobility::Trace& anonymous_trace,
      const mobility::UserId& owner) const override;

  [[nodiscard]] std::size_t trained_users() const override {
    return compiled_.size();
  }

  void set_query_mode(QueryMode mode) override { mode_ = mode; }
  [[nodiscard]] QueryMode query_mode() const override { return mode_; }
  [[nodiscard]] IndexStats index_stats() const override {
    return index_.stats();
  }

  /// Compiles the anonymous-side MMC exactly as the optimized queries do
  /// internally. Exposed so the streaming gateway can cache it and rebuild
  /// under a staleness bound (MMC extraction is not incrementally
  /// maintainable the way heatmap counts are).
  [[nodiscard]] profiles::CompiledMarkovProfile compile_anonymous(
      const mobility::Trace& trace) const {
    return profiles::CompiledMarkovProfile(
        profiles::MarkovProfile::from_trace(trace, params_));
  }

  /// Targeted query over a pre-compiled anonymous MMC. Decision-identical
  /// to reidentifies_target(trace, owner) whenever `anonymous_profile`
  /// equals compile_anonymous(trace). Always a compiled-profile path —
  /// index by default, linear scan in kScan/kReference mode.
  [[nodiscard]] bool reidentifies_compiled(
      const profiles::CompiledMarkovProfile& anonymous_profile,
      const mobility::UserId& owner) const;

  /// Stay-clustering parameters of this attack's profiles — the decision
  /// kernel shares one stay tracker across attacks whose params agree.
  [[nodiscard]] const clustering::PoiParams& params() const { return params_; }

 private:
  clustering::PoiParams params_;
  double proximity_scale_m_;
  std::vector<std::pair<mobility::UserId, profiles::CompiledMarkovProfile>>
      compiled_;
  /// Uncompiled profiles, same order — the reference-mode oracle. Kept
  /// unconditionally: profile storage is a rounding error next to the
  /// training traces the surrounding harness already holds in memory.
  std::vector<std::pair<mobility::UserId, profiles::MarkovProfile>>
      reference_;
  /// Pruning index over compiled_; rebuilt by train(). Depends on
  /// proximity_scale_m_, so it must be declared after it.
  PopulationIndex<PitIndexTraits> index_{PitIndexTraits{proximity_scale_m_}};
  QueryMode mode_ = QueryMode::kIndex;
};

}  // namespace mood::attacks
