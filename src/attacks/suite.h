#pragma once

/// \file suite.h
/// Factory for the paper's attack set A = {POI-Attack, PIT-Attack,
/// AP-Attack} with the §4.1.1 parameters, plus name-based construction for
/// experiment configuration files.

#include <vector>

#include "attacks/ap_attack.h"
#include "attacks/attack.h"
#include "attacks/pit_attack.h"
#include "attacks/poi_attack.h"
#include "clustering/poi_extraction.h"
#include "geo/cell_grid.h"

namespace mood::attacks {

/// Parameters shared by the standard suite (paper defaults).
struct SuiteParams {
  clustering::PoiParams poi;        ///< 200 m diameter, 1 h dwell
  double heatmap_cell_m = 800.0;    ///< AP-attack cell size
  double pit_proximity_scale_m = 1000.0;
};

/// Builds the untrained three-attack suite in the paper's order
/// (POI-Attack, PIT-Attack, AP-Attack). `reference` anchors the heatmap
/// grid; pass the dataset's bounding-box centre so all heatmaps share cell
/// boundaries.
std::vector<AttackPtr> make_standard_suite(const geo::GeoPoint& reference,
                                           const SuiteParams& params = {});

/// Builds one attack by name: "poi", "pit" or "ap".
/// Throws PreconditionError for unknown names.
AttackPtr make_attack(const std::string& name, const geo::GeoPoint& reference,
                      const SuiteParams& params = {});

/// Trains every attack of a suite on the same background knowledge.
void train_all(const std::vector<AttackPtr>& suite,
               const std::vector<mobility::Trace>& background);

/// Flips every attack of a suite between the optimized path and the
/// pre-optimization reference scans (see Attack::set_reference_mode).
/// Not thread-safe — call outside parallel sections.
void set_reference_mode(const std::vector<AttackPtr>& suite, bool on);

/// Selects the query machinery for every attack of a suite (see
/// attacks::QueryMode). Not thread-safe — call outside parallel sections.
void set_query_mode(const std::vector<AttackPtr>& suite, QueryMode mode);

}  // namespace mood::attacks
