#pragma once

/// \file population_index.h
/// PopulationIndex: sublinear re-identification queries over compiled
/// profiles, decision-identical to the linear bounded scans.
///
/// The linear scans in bounded_scan.h already prune with branch-and-bound,
/// but only *after* pricing begins: every candidate still pays at least the
/// start of an exact divergence. The index eliminates most candidates
/// before any exact arithmetic using the admissible lower bounds from
/// profiles/summaries.h, at two granularities:
///
///  * entries are grouped into contiguous kClusterSize-blocks in original
///    training order, each carrying an aggregate summary whose
///    cluster_lower_bound holds for every member — one comparison can
///    discard a whole block;
///  * surviving entries are checked against their per-profile summary
///    bound, and only then priced with the exact bounded divergence.
///
/// ## Decision identity
///
/// Both queries mirror the corresponding scan *in original order*: the
/// running best evolves through the same candidates, and a candidate is
/// skipped only when its lower bound strictly exceeds the current pruning
/// bound — in which case its exact distance could not have updated the
/// best (argmin) nor defeated the owner (is_first_argmin) either, because
/// lower_bound <= exact is guaranteed as *computed* values (summaries.h
/// admissibility contract). First-strict-min tie-breaking is therefore
/// bit-identical to scan_argmin / scan_is_first_argmin, which the replay
/// verification gate and `mood bench --index=ab` enforce end to end.
///
/// ## Coherence under updates
///
/// build() snapshots summaries of the population vector it is given (and
/// keeps a pointer to it — the vector must stay alive and in place, which
/// holds for the attacks' training vectors). When an entry's profile is
/// mutated in place (e.g. CompiledHeatmap::apply_update), update(i)
/// re-summarizes the entry and refreshes its cluster aggregate exactly, so
/// queries stay coherent after any number of incremental updates; a full
/// rebuild is still forced after `size()` updates as a hygiene bound (and
/// is what a layout-reordering index would need — counted in stats so the
/// stream cost model sees it).
///
/// Populations below kIndexMinPopulation delegate to plain bounded scans
/// (see the constant below) — same counters, no summary reads.
///
/// Queries are const and thread-safe (counters are relaxed atomics);
/// build()/update() must happen outside parallel sections, matching the
/// attacks' train() contract.

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "attacks/attack.h"
#include "mobility/trace.h"
#include "profiles/summaries.h"

namespace mood::attacks {

/// Entries per cluster. 64 summaries aggregate into one block bound while
/// keeping blocks small enough that a surviving cluster costs little.
inline constexpr std::size_t kIndexClusterSize = 64;

/// Below one full cluster the index delegates queries to the plain
/// bounded scans: with a single partial cluster there is no block
/// structure to prune, so the per-candidate lower bounds are pure
/// overhead on top of the early-exiting bounded exact distances.
/// Delegation preserves decisions trivially — the scan *is* the
/// definition — and the work counters keep their meaning: queries and
/// exact evaluations are still counted, prunes are simply zero.
inline constexpr std::size_t kIndexMinPopulation = kIndexClusterSize;

/// Incrementally-maintained pruning index over one attack's compiled
/// population. Traits supply the profile/summary/cluster types and the
/// bound arithmetic (see ApIndexTraits / PitIndexTraits / PoiIndexTraits
/// below). Non-copyable (atomic counters); attacks own one by value.
template <typename Traits>
class PopulationIndex {
 public:
  using Profile = typename Traits::Profile;
  using Summary = typename Traits::Summary;
  using Cluster = typename Traits::Cluster;
  using Population = std::vector<std::pair<mobility::UserId, Profile>>;

  PopulationIndex() = default;
  explicit PopulationIndex(Traits traits) : traits_(std::move(traits)) {}
  PopulationIndex(const PopulationIndex&) = delete;
  PopulationIndex& operator=(const PopulationIndex&) = delete;

  /// Builds the index over `population`, which must outlive the index and
  /// keep its address (train() populates the vector first, then builds).
  /// Duplicate user ids keep their first occurrence, matching the linear
  /// scans' first-match owner lookup.
  void build(const Population& population) {
    population_ = &population;
    summaries_.clear();
    summaries_.reserve(population.size());
    for (const auto& [user, profile] : population) {
      summaries_.push_back(traits_.summarize(profile));
    }
    owner_index_.clear();
    owner_index_.reserve(population.size());
    for (std::size_t i = 0; i < population.size(); ++i) {
      owner_index_.emplace(population[i].first, i);
    }
    clusters_.assign(
        (population.size() + kIndexClusterSize - 1) / kIndexClusterSize,
        Cluster{});
    for (std::size_t c = 0; c < clusters_.size(); ++c) refresh_cluster(c);
    updates_since_build_ = 0;
    rebuilds_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Re-summarizes entry `i` after its profile was mutated in place and
  /// refreshes its cluster aggregate. Forces a full rebuild once size()
  /// updates have accumulated since the last build. No-op below the
  /// delegation threshold — the scans never read the summaries.
  void update(std::size_t i) {
    if (summaries_.size() < kIndexMinPopulation) return;
    summaries_[i] = traits_.summarize((*population_)[i].second);
    refresh_cluster(i / kIndexClusterSize);
    if (++updates_since_build_ >= summaries_.size()) {
      build(*population_);
    }
  }

  /// True once build() has run.
  [[nodiscard]] bool built() const { return population_ != nullptr; }

  [[nodiscard]] std::size_t size() const { return summaries_.size(); }

  /// scan_argmin through the index: first user attaining the minimum
  /// finite distance, nullopt when every distance is infinite. `bounded`
  /// follows the bounded-distance contract of bounded_scan.h.
  template <typename BoundedDistance>
  [[nodiscard]] std::optional<mobility::UserId> argmin(
      const Summary& query, const BoundedDistance& bounded) const {
    const Population& population = *population_;
    double best = std::numeric_limits<double>::infinity();
    const mobility::UserId* best_user = nullptr;
    std::uint64_t pruned = 0;
    std::uint64_t evals = 0;
    if (population.size() < kIndexMinPopulation) {
      for (const auto& [user, profile] : population) {
        ++evals;
        const double d = bounded(profile, best);
        if (d < best) {
          best = d;
          best_user = &user;
        }
      }
      flush_counters(pruned, evals);
      if (best_user == nullptr) return std::nullopt;
      return *best_user;
    }
    std::size_t i = 0;
    for (std::size_t c = 0; c < clusters_.size(); ++c) {
      const std::size_t end =
          std::min(i + kIndexClusterSize, summaries_.size());
      if (traits_.cluster_lower_bound(query, clusters_[c]) > best) {
        pruned += end - i;
        i = end;
        continue;
      }
      for (; i < end; ++i) {
        if (traits_.lower_bound(query, summaries_[i]) > best) {
          ++pruned;
          continue;
        }
        ++evals;
        const double d = bounded(population[i].second, best);
        if (d < best) {
          best = d;
          best_user = &population[i].first;
        }
      }
    }
    flush_counters(pruned, evals);
    if (best_user == nullptr) return std::nullopt;
    return *best_user;
  }

  /// scan_is_first_argmin through the index: would the naive argmin
  /// answer exactly `owner`? Prices the owner once with `exact`, then
  /// walks the rest of the population with the owner's distance as the
  /// pruning bound — earlier users defeat on <=, later on <, exactly as
  /// the linear scan.
  template <typename ExactDistance, typename BoundedDistance>
  [[nodiscard]] bool is_first_argmin(const Summary& query,
                                     const mobility::UserId& owner,
                                     const ExactDistance& exact,
                                     const BoundedDistance& bounded) const {
    const Population& population = *population_;
    const auto it = owner_index_.find(owner);
    if (it == owner_index_.end()) {
      flush_counters(0, 0);
      return false;
    }
    const std::size_t owner_at = it->second;
    std::uint64_t pruned = 0;
    std::uint64_t evals = 1;
    const double target = exact(population[owner_at].second);
    if (target == std::numeric_limits<double>::infinity()) {
      flush_counters(0, evals);
      return false;
    }
    if (population.size() < kIndexMinPopulation) {
      for (std::size_t i = 0; i < population.size(); ++i) {
        if (i == owner_at) continue;
        ++evals;
        const double d = bounded(population[i].second, target);
        if (i < owner_at ? d <= target : d < target) {
          flush_counters(pruned, evals);
          return false;
        }
      }
      flush_counters(pruned, evals);
      return true;
    }
    // A candidate whose lower bound strictly exceeds the target can
    // neither tie (earlier) nor beat (later) the owner — skipping it
    // leaves the scan's verdict untouched.
    std::size_t i = 0;
    for (std::size_t c = 0; c < clusters_.size(); ++c) {
      const std::size_t end =
          std::min(i + kIndexClusterSize, summaries_.size());
      if (traits_.cluster_lower_bound(query, clusters_[c]) > target) {
        pruned += end - i - (owner_at >= i && owner_at < end ? 1 : 0);
        i = end;
        continue;
      }
      for (; i < end; ++i) {
        if (i == owner_at) continue;
        if (traits_.lower_bound(query, summaries_[i]) > target) {
          ++pruned;
          continue;
        }
        ++evals;
        const double d = bounded(population[i].second, target);
        if (i < owner_at ? d <= target : d < target) {
          flush_counters(pruned, evals);
          return false;
        }
      }
    }
    flush_counters(pruned, evals);
    return true;
  }

  /// Cumulative work counters since construction.
  [[nodiscard]] IndexStats stats() const {
    IndexStats stats;
    stats.queries = queries_.load(std::memory_order_relaxed);
    stats.pruned_candidates = pruned_.load(std::memory_order_relaxed);
    stats.exact_evaluations = evals_.load(std::memory_order_relaxed);
    stats.rebuilds = rebuilds_.load(std::memory_order_relaxed);
    return stats;
  }

 private:
  void refresh_cluster(std::size_t c) {
    const std::size_t begin = c * kIndexClusterSize;
    const std::size_t end =
        std::min(begin + kIndexClusterSize, summaries_.size());
    clusters_[c] = traits_.aggregate(summaries_, begin, end);
  }

  void flush_counters(std::uint64_t pruned, std::uint64_t evals) const {
    queries_.fetch_add(1, std::memory_order_relaxed);
    if (pruned > 0) pruned_.fetch_add(pruned, std::memory_order_relaxed);
    if (evals > 0) evals_.fetch_add(evals, std::memory_order_relaxed);
  }

  Traits traits_{};
  const Population* population_ = nullptr;
  std::vector<Summary> summaries_;
  std::vector<Cluster> clusters_;
  std::unordered_map<mobility::UserId, std::size_t> owner_index_;
  std::size_t updates_since_build_ = 0;
  mutable std::atomic<std::uint64_t> queries_{0};
  mutable std::atomic<std::uint64_t> pruned_{0};
  mutable std::atomic<std::uint64_t> evals_{0};
  mutable std::atomic<std::uint64_t> rebuilds_{0};
};

/// Aggregate ball over member balls: centred on the mean of the non-empty
/// members' centres, with radius covering every member ball. Empty
/// members have infinite exact distances, so a block prune never loses
/// them; an all-empty cluster bounds to +infinity, which prunes the block
/// under any finite bound (every member prices to infinity anyway) and
/// never prunes under an infinite bound (inf > inf is false), matching
/// the scans on all-empty populations.
struct BallClusterBound {
  profiles::ProfileBall ball;  ///< size = number of non-empty members

  template <typename Summaries, typename BallOf>
  static BallClusterBound aggregate(const Summaries& summaries,
                                    std::size_t begin, std::size_t end,
                                    const BallOf& ball_of) {
    BallClusterBound cluster;
    double lat = 0.0;
    double lon = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const profiles::ProfileBall& member = ball_of(summaries[i]);
      if (member.size == 0) continue;
      ++cluster.ball.size;
      lat += geo::rad_to_deg(member.center.lat_rad);
      lon += member.center.lon_deg;
    }
    if (cluster.ball.size == 0) return cluster;
    const double n = static_cast<double>(cluster.ball.size);
    cluster.ball.center = geo::trig_point(geo::GeoPoint{lat / n, lon / n});
    for (std::size_t i = begin; i < end; ++i) {
      const profiles::ProfileBall& member = ball_of(summaries[i]);
      if (member.size == 0) continue;
      cluster.ball.radius_m = std::max(
          cluster.ball.radius_m,
          geo::haversine_m(cluster.ball.center, member.center) +
              member.radius_m);
    }
    return cluster;
  }
};

/// AP-attack traits: Topsoe divergence over compiled heatmaps. The
/// cluster keeps per-bucket mass intervals over non-empty members; the
/// block bound is the TV lower bound against the nearest mass profile
/// inside those intervals.
struct ApIndexTraits {
  using Profile = profiles::CompiledHeatmap;
  using Summary = profiles::HeatmapSummary;
  struct Cluster {
    std::array<double, profiles::kSummaryBuckets> lo{};
    std::array<double, profiles::kSummaryBuckets> hi{};
    std::size_t nonempty = 0;
  };

  Summary summarize(const Profile& profile) const {
    return profiles::summarize(profile);
  }
  double lower_bound(const Summary& query, const Summary& entry) const {
    return profiles::topsoe_lower_bound(query, entry);
  }
  Cluster aggregate(const std::vector<Summary>& summaries, std::size_t begin,
                    std::size_t end) const {
    Cluster cluster;
    cluster.lo.fill(std::numeric_limits<double>::infinity());
    cluster.hi.fill(-std::numeric_limits<double>::infinity());
    for (std::size_t i = begin; i < end; ++i) {
      if (summaries[i].cells == 0) continue;
      ++cluster.nonempty;
      for (std::size_t k = 0; k < profiles::kSummaryBuckets; ++k) {
        cluster.lo[k] = std::min(cluster.lo[k], summaries[i].mass[k]);
        cluster.hi[k] = std::max(cluster.hi[k], summaries[i].mass[k]);
      }
    }
    return cluster;
  }
  double cluster_lower_bound(const Summary& query,
                             const Cluster& cluster) const {
    // Empty members price to infinity, so only non-empty ones constrain
    // the block bound; an all-empty block bounds to infinity.
    if (cluster.nonempty == 0 || query.cells == 0) {
      return std::numeric_limits<double>::infinity();
    }
    double l1 = 0.0;
    for (std::size_t k = 0; k < profiles::kSummaryBuckets; ++k) {
      const double below = cluster.lo[k] - query.mass[k];
      const double above = query.mass[k] - cluster.hi[k];
      l1 += std::max({below, above, 0.0});
    }
    const double tv =
        std::max(0.0, 0.5 * l1 * (1.0 - profiles::kLowerBoundRelMargin) -
                          profiles::kTvAbsMargin);
    return tv * tv;
  }
};

/// POI-attack traits: mean nearest-POI distance over covering balls.
struct PoiIndexTraits {
  using Profile = profiles::CompiledPoiProfile;
  using Summary = profiles::PoiSummary;
  using Cluster = BallClusterBound;

  Summary summarize(const Profile& profile) const {
    return profiles::summarize(profile);
  }
  double lower_bound(const Summary& query, const Summary& entry) const {
    return profiles::poi_profile_lower_bound(query, entry);
  }
  Cluster aggregate(const std::vector<Summary>& summaries, std::size_t begin,
                    std::size_t end) const {
    return BallClusterBound::aggregate(
        summaries, begin, end,
        [](const Summary& s) -> const profiles::ProfileBall& {
          return s.ball;
        });
  }
  double cluster_lower_bound(const Summary& query,
                             const Cluster& cluster) const {
    // The cluster ball covers every member's ball, so the per-POI mean
    // separation against it lower-bounds the exact distance to every
    // member (same argument as poi_profile_lower_bound).
    if (cluster.ball.size == 0 || query.ball.size == 0) {
      return std::numeric_limits<double>::infinity();
    }
    double sum = 0.0;
    for (const auto& p : query.centers) {
      sum += profiles::point_ball_separation_m(p, cluster.ball);
    }
    return sum / static_cast<double>(query.centers.size());
  }
};

/// PIT-attack traits: stats-prox distance. The block bound keeps only the
/// geometric (proximity) part — the stationary part needs per-entry
/// weights, which the per-profile bound adds back. The cluster tracks the
/// smallest member chain size so the weighted proximity bound stays
/// admissible for every member (fewer candidate states can only shrink
/// the matched mass).
struct PitIndexTraits {
  using Profile = profiles::CompiledMarkovProfile;
  using Summary = profiles::MarkovSummary;
  struct Cluster {
    BallClusterBound bound;
    std::size_t min_states = 0;  ///< over non-empty members
  };

  double proximity_scale_m = 1000.0;

  Summary summarize(const Profile& profile) const {
    return profiles::summarize(profile);
  }
  double lower_bound(const Summary& query, const Summary& entry) const {
    return profiles::stats_prox_lower_bound(query, entry, proximity_scale_m);
  }
  Cluster aggregate(const std::vector<Summary>& summaries, std::size_t begin,
                    std::size_t end) const {
    Cluster cluster;
    cluster.bound = BallClusterBound::aggregate(
        summaries, begin, end,
        [](const Summary& s) -> const profiles::ProfileBall& {
          return s.ball;
        });
    cluster.min_states = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = begin; i < end; ++i) {
      if (summaries[i].ball.size == 0) continue;
      cluster.min_states = std::min(cluster.min_states, summaries[i].ball.size);
    }
    if (cluster.bound.ball.size == 0) cluster.min_states = 0;
    return cluster;
  }
  double cluster_lower_bound(const Summary& query,
                             const Cluster& cluster) const {
    if (cluster.bound.ball.size == 0 || query.ball.size == 0) {
      return std::numeric_limits<double>::infinity();
    }
    // The aggregate ball covers every member's states, so it acts as a
    // single-part cover for the shared proximity bound.
    return profiles::stats_prox_proximity_lower_bound(
        query, profiles::BallCover{cluster.bound.ball, profiles::ProfileBall{}},
        cluster.min_states, proximity_scale_m);
  }
};

}  // namespace mood::attacks
