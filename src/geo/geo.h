#pragma once

/// \file geo.h
/// WGS-84 geodesy primitives: geographic points, great-circle distance,
/// a local tangent-plane (ENU) projection, bearings and bounding boxes.
///
/// Mobility records live in (latitude, longitude); all privacy mechanisms
/// and metrics reason in metres. City-scale experiments (< 100 km extents)
/// tolerate an equirectangular local projection: its distance error against
/// the haversine distance is well below GPS noise at these scales, and it
/// is cheap enough to call per record in the hot loops.

#include <cstddef>
#include <vector>

namespace mood::geo {

/// Mean Earth radius in metres (IUGG value used throughout the library).
inline constexpr double kEarthRadiusM = 6371000.0;

inline constexpr double kPi = 3.14159265358979323846;

/// Degrees -> radians.
constexpr double deg_to_rad(double deg) { return deg * kPi / 180.0; }

/// Radians -> degrees.
constexpr double rad_to_deg(double rad) { return rad * 180.0 / kPi; }

/// A geographic point in decimal degrees (WGS-84).
struct GeoPoint {
  double lat = 0.0;  ///< latitude in degrees, [-90, 90]
  double lon = 0.0;  ///< longitude in degrees, [-180, 180]

  friend bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

/// A point in a local east/north tangent plane, metres from the origin.
struct EnuPoint {
  double x = 0.0;  ///< metres east of the projection origin
  double y = 0.0;  ///< metres north of the projection origin

  friend bool operator==(const EnuPoint&, const EnuPoint&) = default;
};

/// Great-circle (haversine) distance between two points, in metres.
double haversine_m(const GeoPoint& a, const GeoPoint& b);

/// A geographic point with its trigonometry precomputed for repeated
/// haversine evaluations (profile scans compare one query point against
/// whole populations). The longitude stays in degrees: haversine_m converts
/// the longitude *difference*, so a per-point radian longitude would change
/// the rounding — keeping degrees makes the cached form bit-identical.
struct TrigPoint {
  double lat_rad = 0.0;  ///< deg_to_rad(lat)
  double lon_deg = 0.0;  ///< longitude, degrees (as in GeoPoint)
  double cos_lat = 0.0;  ///< cos(lat_rad)
};

/// Precomputes the trigonometry of `p` for the haversine_m overload below.
TrigPoint trig_point(const GeoPoint& p);

/// Haversine distance from cached trigonometry. Bit-identical to
/// haversine_m on the original GeoPoints — hot paths may mix both forms.
double haversine_m(const TrigPoint& a, const TrigPoint& b);

/// Euclidean distance between two ENU points, in metres.
double euclidean_m(const EnuPoint& a, const EnuPoint& b);

/// The point reached from `origin` by travelling `distance_m` metres along
/// `bearing_rad` (0 = north, pi/2 = east). Small-displacement planar model,
/// accurate for the sub-10-km hops mobility simulation performs.
GeoPoint destination(const GeoPoint& origin, double bearing_rad,
                     double distance_m);

/// Equirectangular projection centred on a reference point.
///
/// Value type; copying is free. All MooD modules that need metric geometry
/// (heatmap cells, POI clustering, Laplace noise) construct one projection
/// per dataset/city so cells align across users.
class LocalProjection {
 public:
  /// Creates a projection centred on `reference`.
  explicit LocalProjection(const GeoPoint& reference);

  /// Geographic -> local metres.
  [[nodiscard]] EnuPoint to_enu(const GeoPoint& p) const;

  /// Local metres -> geographic.
  [[nodiscard]] GeoPoint to_geo(const EnuPoint& p) const;

  /// The projection centre.
  [[nodiscard]] const GeoPoint& reference() const { return reference_; }

 private:
  GeoPoint reference_;
  double cos_ref_lat_;
};

/// Axis-aligned geographic bounding box, grown incrementally.
class BoundingBox {
 public:
  /// Extends the box to contain `p`.
  void extend(const GeoPoint& p);

  /// True if no point has been added yet.
  [[nodiscard]] bool empty() const { return !initialized_; }

  /// True if `p` lies inside (inclusive). An empty box contains nothing.
  [[nodiscard]] bool contains(const GeoPoint& p) const;

  /// Geometric centre. Precondition: !empty().
  [[nodiscard]] GeoPoint center() const;

  [[nodiscard]] double min_lat() const { return min_lat_; }
  [[nodiscard]] double max_lat() const { return max_lat_; }
  [[nodiscard]] double min_lon() const { return min_lon_; }
  [[nodiscard]] double max_lon() const { return max_lon_; }

  /// Diagonal extent in metres (0 for empty boxes).
  [[nodiscard]] double diagonal_m() const;

 private:
  bool initialized_ = false;
  double min_lat_ = 0.0, max_lat_ = 0.0;
  double min_lon_ = 0.0, max_lon_ = 0.0;
};

/// Centroid of a set of geographic points (arithmetic mean of coordinates —
/// adequate at city scale). Precondition: points non-empty.
GeoPoint centroid(const std::vector<GeoPoint>& points);

}  // namespace mood::geo
