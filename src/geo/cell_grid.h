#pragma once

/// \file cell_grid.h
/// A uniform square grid over a local projection.
///
/// Heatmap profiles (AP-attack, HMC) and the POI clustering index both
/// discretise space into fixed-size square cells. The grid is anchored at
/// the projection origin so that every module using the same projection and
/// cell size sees identical cell boundaries — a requirement for comparing
/// heatmaps across users.

#include <cstdint>
#include <functional>

#include "geo/geo.h"

namespace mood::geo {

/// Integer index of a grid cell (can be negative: cells west/south of the
/// projection origin).
struct CellIndex {
  std::int32_t ix = 0;
  std::int32_t iy = 0;

  friend bool operator==(const CellIndex&, const CellIndex&) = default;
  friend auto operator<=>(const CellIndex&, const CellIndex&) = default;
};

/// Hash functor so CellIndex can key unordered containers.
struct CellIndexHash {
  std::size_t operator()(const CellIndex& c) const noexcept {
    // Szudzik-style mix of the two 32-bit lanes.
    const std::uint64_t a = static_cast<std::uint32_t>(c.ix);
    const std::uint64_t b = static_cast<std::uint32_t>(c.iy);
    std::uint64_t h = (a << 32) | b;
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }
};

/// Square grid of `cell_size_m`-metre cells over a LocalProjection.
class CellGrid {
 public:
  /// Precondition: cell_size_m > 0.
  CellGrid(LocalProjection projection, double cell_size_m);

  /// Cell containing a geographic point.
  [[nodiscard]] CellIndex cell_of(const GeoPoint& p) const;

  /// Cell containing a local point.
  [[nodiscard]] CellIndex cell_of(const EnuPoint& p) const;

  /// Geographic centre of a cell.
  [[nodiscard]] GeoPoint cell_center(const CellIndex& c) const;

  /// Offset of a geographic point inside its cell, in metres from the cell's
  /// south-west corner; both components lie in [0, cell_size_m).
  [[nodiscard]] EnuPoint offset_within_cell(const GeoPoint& p) const;

  /// Geographic point at a given in-cell offset (inverse of the above).
  [[nodiscard]] GeoPoint point_in_cell(const CellIndex& c,
                                       const EnuPoint& offset) const;

  [[nodiscard]] double cell_size_m() const { return cell_size_m_; }
  [[nodiscard]] const LocalProjection& projection() const {
    return projection_;
  }

 private:
  LocalProjection projection_;
  double cell_size_m_;
};

}  // namespace mood::geo
