#include "geo/geo.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace mood::geo {

double haversine_m(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = deg_to_rad(a.lat);
  const double lat2 = deg_to_rad(b.lat);
  const double dlat = lat2 - lat1;
  const double dlon = deg_to_rad(b.lon - a.lon);
  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlon = std::sin(dlon / 2.0);
  const double h = sin_dlat * sin_dlat +
                   std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
  return 2.0 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(h)));
}

TrigPoint trig_point(const GeoPoint& p) {
  const double lat_rad = deg_to_rad(p.lat);
  return TrigPoint{lat_rad, p.lon, std::cos(lat_rad)};
}

double haversine_m(const TrigPoint& a, const TrigPoint& b) {
  // Mirrors haversine_m(GeoPoint, GeoPoint) operation for operation; only
  // deg_to_rad(lat) and cos(lat) come precomputed, which cannot change the
  // rounding of any intermediate.
  const double dlat = b.lat_rad - a.lat_rad;
  const double dlon = deg_to_rad(b.lon_deg - a.lon_deg);
  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlon = std::sin(dlon / 2.0);
  const double h = sin_dlat * sin_dlat +
                   a.cos_lat * b.cos_lat * sin_dlon * sin_dlon;
  return 2.0 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(h)));
}

double euclidean_m(const EnuPoint& a, const EnuPoint& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

GeoPoint destination(const GeoPoint& origin, double bearing_rad,
                     double distance_m) {
  // Same bound as LocalProjection: the equirectangular approximation (and
  // the 1/cos(lat) term) degenerates near the poles, so fail loudly instead
  // of silently returning a corrupted longitude.
  support::expects(std::abs(origin.lat) < 89.0,
                   "geo::destination: origin too close to a pole");
  const double north_m = distance_m * std::cos(bearing_rad);
  const double east_m = distance_m * std::sin(bearing_rad);
  const double dlat = rad_to_deg(north_m / kEarthRadiusM);
  const double cos_lat = std::cos(deg_to_rad(origin.lat));
  const double dlon = rad_to_deg(east_m / (kEarthRadiusM * cos_lat));
  return GeoPoint{origin.lat + dlat, origin.lon + dlon};
}

LocalProjection::LocalProjection(const GeoPoint& reference)
    : reference_(reference),
      cos_ref_lat_(std::cos(deg_to_rad(reference.lat))) {
  support::expects(std::abs(reference.lat) < 89.0,
                   "LocalProjection: reference too close to a pole");
}

EnuPoint LocalProjection::to_enu(const GeoPoint& p) const {
  return EnuPoint{
      kEarthRadiusM * deg_to_rad(p.lon - reference_.lon) * cos_ref_lat_,
      kEarthRadiusM * deg_to_rad(p.lat - reference_.lat)};
}

GeoPoint LocalProjection::to_geo(const EnuPoint& p) const {
  return GeoPoint{
      reference_.lat + rad_to_deg(p.y / kEarthRadiusM),
      reference_.lon + rad_to_deg(p.x / (kEarthRadiusM * cos_ref_lat_))};
}

void BoundingBox::extend(const GeoPoint& p) {
  if (!initialized_) {
    min_lat_ = max_lat_ = p.lat;
    min_lon_ = max_lon_ = p.lon;
    initialized_ = true;
    return;
  }
  min_lat_ = std::min(min_lat_, p.lat);
  max_lat_ = std::max(max_lat_, p.lat);
  min_lon_ = std::min(min_lon_, p.lon);
  max_lon_ = std::max(max_lon_, p.lon);
}

bool BoundingBox::contains(const GeoPoint& p) const {
  return initialized_ && p.lat >= min_lat_ && p.lat <= max_lat_ &&
         p.lon >= min_lon_ && p.lon <= max_lon_;
}

GeoPoint BoundingBox::center() const {
  support::expects(initialized_, "BoundingBox::center on empty box");
  return GeoPoint{(min_lat_ + max_lat_) / 2.0, (min_lon_ + max_lon_) / 2.0};
}

double BoundingBox::diagonal_m() const {
  if (!initialized_) return 0.0;
  return haversine_m(GeoPoint{min_lat_, min_lon_},
                     GeoPoint{max_lat_, max_lon_});
}

GeoPoint centroid(const std::vector<GeoPoint>& points) {
  support::expects(!points.empty(), "centroid of empty point set");
  double lat = 0.0, lon = 0.0;
  for (const auto& p : points) {
    lat += p.lat;
    lon += p.lon;
  }
  const double n = static_cast<double>(points.size());
  return GeoPoint{lat / n, lon / n};
}

}  // namespace mood::geo
