#include "geo/cell_grid.h"

#include <cmath>

#include "support/error.h"

namespace mood::geo {

CellGrid::CellGrid(LocalProjection projection, double cell_size_m)
    : projection_(projection), cell_size_m_(cell_size_m) {
  support::expects(cell_size_m > 0.0, "CellGrid: cell size must be positive");
}

CellIndex CellGrid::cell_of(const GeoPoint& p) const {
  return cell_of(projection_.to_enu(p));
}

CellIndex CellGrid::cell_of(const EnuPoint& p) const {
  return CellIndex{
      static_cast<std::int32_t>(std::floor(p.x / cell_size_m_)),
      static_cast<std::int32_t>(std::floor(p.y / cell_size_m_))};
}

GeoPoint CellGrid::cell_center(const CellIndex& c) const {
  return projection_.to_geo(EnuPoint{(c.ix + 0.5) * cell_size_m_,
                                     (c.iy + 0.5) * cell_size_m_});
}

EnuPoint CellGrid::offset_within_cell(const GeoPoint& p) const {
  const EnuPoint local = projection_.to_enu(p);
  const CellIndex c = cell_of(local);
  return EnuPoint{local.x - c.ix * cell_size_m_,
                  local.y - c.iy * cell_size_m_};
}

GeoPoint CellGrid::point_in_cell(const CellIndex& c,
                                 const EnuPoint& offset) const {
  return projection_.to_geo(EnuPoint{c.ix * cell_size_m_ + offset.x,
                                     c.iy * cell_size_m_ + offset.y});
}

}  // namespace mood::geo
