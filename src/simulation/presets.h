#pragma once

/// \file presets.h
/// Per-dataset generator presets mirroring Table 1 of the paper.
///
/// The paper evaluates on four real datasets (MDC/Geneva,
/// PrivaMov/Lyon, Geolife/Beijing, Cabspotting/San Francisco) that are
/// access-restricted or unavailable offline, so each preset configures the
/// synthetic generator (generator.h) to a population with the same shape:
///
///  * user counts are the paper's exactly (141 / 41 / 41 / 531);
///  * record volumes follow the paper's per-user daily averages, multiplied
///    by `scale` so experiments fit the host (scale = 1.0 approximates the
///    paper's record counts; benches default to 0.25 via --scale /
///    MOOD_SCALE, the CLI exposes it as `mood simulate --scale`);
///  * population-structure parameters (POI privacy, relocation rate, cab
///    fleet homogeneity, wanderer share) are tuned so each synthetic
///    city's *no-LPPM vulnerability* lands in the ballpark of the paper's
///    Fig. 6/7 bars — e.g. PrivaMov is the most distinctive population,
///    Cabspotting the most naturally protected.
///
/// Presets are plain `GeneratorParams` values: take one, tweak fields, and
/// call simulation::generate() for controlled what-if populations. Given
/// equal parameters and seed the generator is byte-identical across runs
/// and platforms.

#include <string>
#include <vector>

#include "mobility/dataset.h"
#include "simulation/generator.h"

namespace mood::simulation {

/// Generator parameters for one of: "mdc", "privamov", "geolife",
/// "cabspotting", "city-small" (see preset_names()), at the given
/// record-volume scale. "city-small" is not a paper dataset: it is a
/// ~10k-user district-structured metropolis used to study population-index
/// scaling (sublinear exact evaluations per query).
/// `seed` drives every random choice of the generator.
/// Throws PreconditionError for unknown names.
/// Precondition: 0 < scale <= 4.
GeneratorParams preset_params(const std::string& name, double scale = 1.0,
                              std::uint64_t seed = 42);

/// Convenience: preset_params() + generate() in one call. Deterministic in
/// (name, scale, seed).
mobility::Dataset make_preset_dataset(const std::string& name,
                                      double scale = 1.0,
                                      std::uint64_t seed = 42);

/// The preset names: the paper's Table 1 four plus the index-scaling
/// population, {"mdc", "privamov", "geolife", "cabspotting", "city-small"}.
const std::vector<std::string>& preset_names();

}  // namespace mood::simulation
