#pragma once

/// \file presets.h
/// Per-dataset generator presets mirroring Table 1 of the paper.
///
/// User counts are the paper's (141 / 41 / 41 / 531); record volumes follow
/// the paper's per-user averages, multiplied by `scale` so experiments fit
/// the host (scale = 1.0 approximates the paper's record counts; benches
/// default to a smaller scale via --scale / MOOD_SCALE). Population
/// structure parameters (POI privacy, relocation, fleet homogeneity) are
/// tuned so the *no-LPPM vulnerability* of each synthetic city matches the
/// paper's Fig. 6/7 ballpark — see EXPERIMENTS.md for measured values.

#include <string>
#include <vector>

#include "mobility/dataset.h"
#include "simulation/generator.h"

namespace mood::simulation {

/// Generator parameters for one of: "mdc", "privamov", "geolife",
/// "cabspotting". Throws PreconditionError for unknown names.
/// Precondition: 0 < scale <= 4.
GeneratorParams preset_params(const std::string& name, double scale = 1.0,
                              std::uint64_t seed = 42);

/// Convenience: generate a preset dataset directly.
mobility::Dataset make_preset_dataset(const std::string& name,
                                      double scale = 1.0,
                                      std::uint64_t seed = 42);

/// The four preset names in the paper's Table 1 order.
const std::vector<std::string>& preset_names();

}  // namespace mood::simulation
