#pragma once

/// \file generator.h
/// Synthetic mobility generator — the stand-in for the paper's four real
/// datasets (MDC, PrivaMov, Geolife, Cabspotting), which are
/// access-restricted or unavailable offline (see DESIGN.md §3).
///
/// Two user populations:
///  * routine users: POI-anchored daily life — overnight at home, weekday
///    work blocks, evening/weekend leisure, straight-line commutes, GPS
///    jitter. Their POIs are either private (unique location — makes the
///    user re-identifiable) or drawn from a city-wide shared pool (makes
///    profiles overlap). A configurable minority relocates mid-period, so
///    its background profile no longer matches the data to protect — the
///    paper's "naturally protected" users.
///  * cab fleet (Cabspotting): vehicles hop between shared hotspots around
///    the clock. Fleet homogeneity yields the low natural vulnerability of
///    Fig. 6d/7d; a territorial minority (favouring a district + private
///    depot) stays distinctive.
///
/// All randomness is derived from `seed` via forked streams: the same
/// parameters always produce byte-identical datasets.

#include <cstdint>
#include <string>

#include "geo/geo.h"
#include "mobility/dataset.h"

namespace mood::simulation {

/// Knobs of the synthetic city and its population.
struct GeneratorParams {
  std::string dataset_name = "synthetic";
  geo::GeoPoint city_center{45.0, 5.0};

  // Population.
  std::size_t users = 40;
  bool cab_fleet = false;

  // Period simulated (the paper's "30 most active successive days").
  int days = 30;
  mobility::Timestamp start_time = 1546300800;  // 2019-01-01 00:00 UTC

  // Record density (before any scaling by the caller). Individual users
  // sample at a personal multiple of this rate drawn uniformly from
  // [activity_min, activity_max] — real datasets mix heavy and casual
  // contributors, which is why the paper's user-ratio (Fig. 2) and
  // record-ratio (Fig. 3) charts differ.
  double records_per_user_per_day = 250.0;
  double activity_min = 0.5;
  double activity_max = 1.6;

  // POI structure (routine users).
  std::size_t shared_poi_pool = 40;      ///< city-wide hotspot count
  double shared_poi_spread_m = 4000.0;   ///< hotspot scatter around downtown
  std::size_t pois_per_user_min = 3;     ///< home + work + leisure...
  std::size_t pois_per_user_max = 6;
  /// Probability that home/work are private (unique location) rather than
  /// drawn from the shared hotspot pool. Shared-primary users ("downtown
  /// dwellers") are hidden by cell-level smearing (TRL) because several
  /// users occupy the same cells — but their private leisure places still
  /// leak through budgeted HMC. The two knobs shape which LPPM fails on
  /// whom, and therefore the union gain of HybridLPPM.
  double p_private_poi = 0.7;
  /// Probability that a leisure POI is private (default: leisure is more
  /// personal than home/work hotspots).
  double p_private_leisure = 0.85;
  double private_poi_spread_m = 12000.0; ///< private POI scatter (suburbs)
  double relocation_prob = 0.15;         ///< mid-period movers (nat. protected)

  // Districts (city-small): when districts > 0, each routine user is
  // anchored to a home district drawn from `districts` anchor points
  // scattered district_spread_m around downtown, and their private POIs
  // scatter private_poi_spread_m around that anchor instead of the city
  // centre (relocators redraw a fresh district). Commuter-style locality:
  // large populations decompose into geographic clusters the way real
  // cities do — the structure a population index exploits. 0 keeps the
  // legacy single-blob scatter (bit-identical datasets for old presets).
  std::size_t districts = 0;
  double district_spread_m = 10000.0;

  // Wanderers: users whose days are long roaming tours through a private
  // angular sector of the city outskirts. Their territory signature
  // spreads over so many cells that every LPPM leaves a recognisable
  // residue — the "orphan users" MooD's fine-grained stage exists for.
  double wanderer_fraction = 0.0;
  double wander_radius_min_m = 12000.0;  ///< sector band, inner radius
  double wander_radius_max_m = 20000.0;  ///< sector band, outer radius

  // Cab fleet structure. Territorial cabs favour a district; the strength
  // of that preference is graded per cab (uniform in [bias_min, bias_max])
  // so distinctiveness forms a continuum: weakly territorial cabs are
  // detectable raw yet hidden by mild obfuscation, strongly territorial
  // ones resist even strong mechanisms.
  double territorial_fraction = 0.5;     ///< cabs with a favoured district
  double territory_radius_m = 4000.0;
  double territory_bias_min = 0.45;      ///< prob. a hop stays in-district
  double territory_bias_max = 0.95;

  // Signal quality / motion.
  double gps_noise_m = 25.0;
  double speed_mps = 8.0;

  std::uint64_t seed = 42;
};

/// Generates the dataset. Deterministic in `params`.
mobility::Dataset generate(const GeneratorParams& params);

}  // namespace mood::simulation
