#include "simulation/presets.h"

#include "support/error.h"

namespace mood::simulation {

GeneratorParams preset_params(const std::string& name, double scale,
                              std::uint64_t seed) {
  support::expects(scale > 0.0 && scale <= 4.0,
                   "preset_params: scale must be in (0, 4]");
  GeneratorParams p;
  p.seed = seed;
  p.days = 30;

  if (name == "mdc") {
    // Geneva. 141 users, ~904k records => ~214 records/user/day.
    p.dataset_name = "MDC";
    p.city_center = geo::GeoPoint{46.2044, 6.1432};
    p.users = 141;
    p.records_per_user_per_day = 214.0 * scale;
    p.shared_poi_pool = 35;
    p.shared_poi_spread_m = 3500.0;
    p.p_private_poi = 0.5;       // half the homes/works are hotspot-shared
    p.p_private_leisure = 0.85;  // leisure stays personal
    p.private_poi_spread_m = 9000.0;
    p.relocation_prob = 0.24;  // ~24% naturally protected (Fig. 7a: 34/141)
    p.wanderer_fraction = 0.035;  // a few orphan users (Fig. 7a: 3)
  } else if (name == "privamov") {
    // Lyon. 41 users, ~949k records => ~771 records/user/day (dense
    // collection campaign). Highly distinctive users (Fig. 7b: 37/41
    // vulnerable).
    p.dataset_name = "PrivaMov";
    p.city_center = geo::GeoPoint{45.7640, 4.8357};
    p.users = 41;
    p.records_per_user_per_day = 771.0 * scale;
    p.shared_poi_pool = 10;  // dense sharing: campus-style collection
    p.shared_poi_spread_m = 3000.0;
    p.p_private_poi = 0.6;
    p.p_private_leisure = 0.9;
    p.private_poi_spread_m = 8000.0;
    p.pois_per_user_max = 4;
    p.relocation_prob = 0.08;
    p.wanderer_fraction = 0.1;  // Fig. 7b: 3 orphans of 41
  } else if (name == "geolife") {
    // Beijing. 41 active users, ~1.47M records => ~1194 records/user/day.
    p.dataset_name = "Geolife";
    p.city_center = geo::GeoPoint{39.9042, 116.4074};
    p.users = 41;
    p.records_per_user_per_day = 1194.0 * scale;
    p.shared_poi_pool = 12;
    p.shared_poi_spread_m = 5000.0;
    p.p_private_poi = 0.55;
    p.p_private_leisure = 0.85;
    p.pois_per_user_max = 5;
    p.private_poi_spread_m = 10000.0;  // Beijing sprawl
    p.relocation_prob = 0.2;
    p.wanderer_fraction = 0.07;  // Fig. 7c: 2 orphans of 41
    p.wander_radius_min_m = 14000.0;
    p.wander_radius_max_m = 22000.0;
  } else if (name == "cabspotting") {
    // San Francisco cab fleet. 531 cabs, ~11.2M records => ~703/cab/day.
    p.dataset_name = "Cabspotting";
    p.city_center = geo::GeoPoint{37.7749, -122.4194};
    p.users = 531;
    p.cab_fleet = true;
    p.records_per_user_per_day = 703.0 * scale;
    p.shared_poi_pool = 60;
    p.shared_poi_spread_m = 4500.0;
    p.private_poi_spread_m = 7000.0;   // depot scatter
    p.territorial_fraction = 0.53;     // Fig. 7d: 281/531 vulnerable
    p.territory_radius_m = 2500.0;
    p.territory_bias_min = 0.45;       // graded distinctiveness: TRL hides
    p.territory_bias_max = 0.95;       // the weakly territorial cabs only
    p.speed_mps = 9.0;
  } else if (name == "city-small") {
    // Synthetic metropolis for population-index scaling studies: ~10k
    // routine users spread over 32 commuter districts, at a deliberately
    // thin per-user record rate so the full population trains in minutes.
    // District locality is what gives cluster pruning its bite — most of
    // the population lives far (in profile space) from any one query.
    p.dataset_name = "CitySmall";
    p.city_center = geo::GeoPoint{45.7640, 4.8357};  // Lyon-shaped sprawl
    p.users = 10000;
    p.days = 4;
    p.records_per_user_per_day = 72.0 * scale;
    p.shared_poi_pool = 150;
    p.shared_poi_spread_m = 4000.0;
    p.p_private_poi = 0.7;
    p.p_private_leisure = 0.85;
    p.pois_per_user_max = 5;
    p.private_poi_spread_m = 1500.0;  // tight around the home district
    p.districts = 32;
    p.district_spread_m = 14000.0;
    p.relocation_prob = 0.1;
    p.wanderer_fraction = 0.01;
  } else {
    throw support::PreconditionError("unknown dataset preset: " + name);
  }
  return p;
}

mobility::Dataset make_preset_dataset(const std::string& name, double scale,
                                      std::uint64_t seed) {
  return generate(preset_params(name, scale, seed));
}

const std::vector<std::string>& preset_names() {
  static const std::vector<std::string> names{"mdc", "privamov", "geolife",
                                              "cabspotting", "city-small"};
  return names;
}

}  // namespace mood::simulation
