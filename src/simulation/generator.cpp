#include "simulation/generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "mobility/record.h"
#include "support/error.h"
#include "support/rng.h"

namespace mood::simulation {

using geo::GeoPoint;
using mobility::kDay;
using mobility::kHour;
using mobility::kMinute;
using mobility::Record;
using mobility::Timestamp;
using support::RngStream;

namespace {

/// A segment of a user's timeline: stationary at `at` or moving from `at`
/// to `to` with linear progress.
struct Segment {
  Timestamp start = 0;
  Timestamp end = 0;
  GeoPoint at;
  GeoPoint to;
  bool moving = false;
};

GeoPoint jitter(const GeoPoint& p, double sigma_m, RngStream& rng) {
  const double bearing = rng.uniform(0.0, 2.0 * geo::kPi);
  const double distance = std::abs(rng.normal(0.0, sigma_m));
  return geo::destination(p, bearing, distance);
}

GeoPoint scatter(const GeoPoint& center, double spread_m, RngStream& rng) {
  // Gaussian scatter: most mass near the centre, realistic suburb tail.
  const double bearing = rng.uniform(0.0, 2.0 * geo::kPi);
  const double distance = std::abs(rng.normal(0.0, spread_m));
  return geo::destination(center, bearing, distance);
}

GeoPoint position_at(const Segment& seg, Timestamp t) {
  if (!seg.moving || seg.end <= seg.start) return seg.at;
  const double ratio = static_cast<double>(t - seg.start) /
                       static_cast<double>(seg.end - seg.start);
  return GeoPoint{seg.at.lat + ratio * (seg.to.lat - seg.at.lat),
                  seg.at.lon + ratio * (seg.to.lon - seg.at.lon)};
}

/// Samples records from a timeline at a fixed cadence with +-20% jitter.
std::vector<Record> sample_timeline(const std::vector<Segment>& timeline,
                                    double period_s, double gps_noise_m,
                                    RngStream& rng) {
  std::vector<Record> records;
  if (timeline.empty() || period_s <= 0.0) return records;
  std::size_t seg = 0;
  double t = static_cast<double>(timeline.front().start);
  const double t_end = static_cast<double>(timeline.back().end);
  while (t < t_end) {
    const auto ts = static_cast<Timestamp>(t);
    while (seg + 1 < timeline.size() && timeline[seg].end <= ts) ++seg;
    const GeoPoint raw = position_at(timeline[seg], ts);
    records.push_back(Record{jitter(raw, gps_noise_m, rng), ts});
    t += period_s * rng.uniform(0.8, 1.2);
  }
  return records;
}

/// Appends a dwell (and the travel leg reaching it) to the timeline.
void travel_then_dwell(std::vector<Segment>& timeline, const GeoPoint& to,
                       Timestamp dwell_until, double speed_mps) {
  Timestamp now = timeline.empty() ? 0 : timeline.back().end;
  GeoPoint from = timeline.empty() ? to : timeline.back().to;
  const double distance = geo::haversine_m(from, to);
  const auto travel_s =
      static_cast<Timestamp>(distance / std::max(1.0, speed_mps));
  if (travel_s > 0 && distance > 1.0) {
    timeline.push_back(Segment{now, now + travel_s, from, to, true});
    now += travel_s;
  }
  if (dwell_until > now) {
    timeline.push_back(Segment{now, dwell_until, to, to, false});
  }
}

/// Builds a wanderer's full-period timeline: overnight at home, then a
/// daily multi-hour tour through a private angular sector of the city
/// outskirts — a broad, unique territory signature that no cell-level
/// obfuscation fully erases (the orphan-user archetype).
std::vector<Segment> wanderer_timeline(const GeneratorParams& params,
                                       RngStream& rng) {
  const double sector_bearing = rng.uniform(0.0, 2.0 * geo::kPi);
  auto sector_point = [&](RngStream& r) {
    const double bearing = sector_bearing + r.normal(0.0, 0.25);
    const double radius =
        r.uniform(params.wander_radius_min_m, params.wander_radius_max_m);
    return geo::destination(params.city_center, bearing, radius);
  };

  // Home plus a fixed repertoire of favourite spots spread through the
  // sector — ritual stops revisited across days, each dwell long enough to
  // register as a POI.
  const GeoPoint home = sector_point(rng);
  std::vector<GeoPoint> favourites;
  for (int f = 0; f < 10; ++f) favourites.push_back(sector_point(rng));

  std::vector<Segment> timeline;
  timeline.push_back(Segment{params.start_time, params.start_time, home,
                             home, false});
  for (int day = 0; day < params.days; ++day) {
    const Timestamp day_start = params.start_time + day * kDay;
    const Timestamp departure =
        day_start + 8 * kHour +
        static_cast<Timestamp>(rng.uniform(0.0, 90.0 * kMinute));
    travel_then_dwell(timeline, home, departure, params.speed_mps);

    // Tour: 4-9 favourite stops, 40-90 min each, so the day is dominated
    // by the sector. Short-tour days leave a thinner residue, which is
    // what lets the fine-grained stage protect *some* of a wanderer's
    // sub-traces (paper Fig. 8).
    const std::size_t stops = 4 + rng.uniform_index(6);
    for (std::size_t w = 0; w < stops; ++w) {
      const GeoPoint stop = jitter(
          favourites[rng.uniform_index(favourites.size())], 50.0, rng);
      const Timestamp pause =
          40 * kMinute +
          static_cast<Timestamp>(rng.uniform(0.0, 50.0 * kMinute));
      travel_then_dwell(timeline, stop, timeline.back().end + pause,
                        params.speed_mps);
    }
    travel_then_dwell(timeline, home, day_start + kDay, params.speed_mps);
  }
  return timeline;
}

/// Builds a routine user's full-period timeline. Sets `relocated` when the
/// user re-draws their POIs mid-period (the naturally-protected archetype).
/// `home_center`/`relocation_center` anchor the private-POI scatter: the
/// city centre for legacy presets, the user's home (and post-move) district
/// when the preset defines districts.
std::vector<Segment> routine_timeline(const GeneratorParams& params,
                                      RngStream& rng,
                                      const std::vector<GeoPoint>& pool,
                                      const GeoPoint& home_center,
                                      const GeoPoint& relocation_center,
                                      bool& relocated) {
  // ---- Draw the user's POIs. Index 0 = home, 1 = work, rest = leisure.
  const std::size_t poi_count =
      params.pois_per_user_min +
      rng.uniform_index(params.pois_per_user_max - params.pois_per_user_min +
                        1);
  auto draw_poi = [&](RngStream& r, bool primary) {
    const double p_private =
        primary ? params.p_private_poi : params.p_private_leisure;
    if (pool.empty() || r.bernoulli(p_private)) {
      return scatter(home_center, params.private_poi_spread_m, r);
    }
    // Shared hotspot with a small offset (same building, different door).
    return jitter(pool[r.uniform_index(pool.size())], 80.0, r);
  };
  std::vector<GeoPoint> pois;
  pois.reserve(poi_count);
  for (std::size_t i = 0; i < poi_count; ++i) {
    pois.push_back(draw_poi(rng, /*primary=*/i < 2));
  }

  // Relocators re-draw every POI mid-period: their background profile no
  // longer predicts their published data.
  const bool relocates = rng.bernoulli(params.relocation_prob);
  relocated = relocates;
  std::vector<GeoPoint> pois_after = pois;
  if (relocates) {
    // A relocation is a fresh private draw: moving house lands you at a
    // genuinely new address, not back onto the old hotspot grid — that
    // novelty is what makes relocators naturally unlinkable.
    for (auto& poi : pois_after) {
      poi = scatter(relocation_center, params.private_poi_spread_m, rng);
    }
  }
  const Timestamp t_mid =
      params.start_time + params.days * kDay / 2;

  // ---- Walk the days.
  std::vector<Segment> timeline;
  timeline.push_back(Segment{params.start_time, params.start_time, pois[0],
                             pois[0], false});
  for (int day = 0; day < params.days; ++day) {
    const Timestamp day_start = params.start_time + day * kDay;
    const auto& p = (day_start >= t_mid) ? pois_after : pois;
    const GeoPoint home = p[0];
    const GeoPoint work = p[1 % p.size()];
    const bool weekend = (day % 7) >= 5;

    const Timestamp wake =
        day_start + 7 * kHour +
        static_cast<Timestamp>(rng.uniform(0.0, 2.0 * kHour));
    // Stay home until wake (extends the previous evening's dwell).
    travel_then_dwell(timeline, home, wake, params.speed_mps);

    Timestamp clock = wake;
    if (!weekend) {
      // Work block ~8-9 h.
      const Timestamp work_end =
          clock + 8 * kHour +
          static_cast<Timestamp>(rng.uniform(0.0, 1.5 * kHour));
      travel_then_dwell(timeline, work, work_end, params.speed_mps);
      clock = timeline.back().end;
    }
    // Leisure visits: 0-2 on weekdays, 1-3 on weekends. Dwells straddle
    // the POI-extraction threshold (45 min - 2.25 h vs the 1 h cut), so
    // only some leisure stops materialise as attackable POIs.
    const std::size_t visits =
        (weekend ? 1 : 0) + rng.uniform_index(3);
    for (std::size_t v = 0; v < visits && p.size() > 2; ++v) {
      const GeoPoint& spot = p[2 + rng.uniform_index(p.size() - 2)];
      const Timestamp dwell =
          45 * kMinute +
          static_cast<Timestamp>(rng.uniform(0.0, 90.0 * kMinute));
      travel_then_dwell(timeline, spot, timeline.back().end + dwell,
                        params.speed_mps);
      clock = timeline.back().end;
    }
    // Home for the night.
    const Timestamp midnight = day_start + kDay;
    travel_then_dwell(timeline, home, midnight, params.speed_mps);
  }
  return timeline;
}

/// Builds a cab's full-period timeline: hotspot hops around the clock.
/// Sets `territorial` for cabs with a favoured district + depot.
std::vector<Segment> cab_timeline(const GeneratorParams& params,
                                  RngStream& rng,
                                  const std::vector<GeoPoint>& pool,
                                  bool& territorial_out) {
  support::ensures(!pool.empty(), "cab fleet requires a hotspot pool");

  const bool territorial = rng.bernoulli(params.territorial_fraction);
  territorial_out = territorial;
  const double bias =
      rng.uniform(params.territory_bias_min, params.territory_bias_max);
  GeoPoint depot = scatter(params.city_center,
                           params.private_poi_spread_m, rng);
  // Territory: the hotspots within territory_radius_m of a random anchor.
  std::vector<std::size_t> district;
  if (territorial) {
    const GeoPoint anchor =
        pool[rng.uniform_index(pool.size())];
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (geo::haversine_m(anchor, pool[i]) <= params.territory_radius_m) {
        district.push_back(i);
      }
    }
    if (district.empty()) district.push_back(rng.uniform_index(pool.size()));
  }

  auto next_stop = [&](RngStream& r) -> GeoPoint {
    if (territorial && !district.empty() && r.bernoulli(bias)) {
      return jitter(pool[district[r.uniform_index(district.size())]], 60.0,
                    r);
    }
    return jitter(pool[r.uniform_index(pool.size())], 60.0, r);
  };

  const Timestamp t_end = params.start_time + params.days * kDay;
  std::vector<Segment> timeline;
  const GeoPoint first = territorial ? depot : next_stop(rng);
  timeline.push_back(
      Segment{params.start_time, params.start_time + 10 * kMinute, first,
              first, false});
  while (timeline.back().end < t_end) {
    // Nightly depot break for territorial cabs (3-5 h) adds a private,
    // discriminative dwell; fleet cabs keep rolling.
    const Timestamp now = timeline.back().end;
    const Timestamp day_clock = (now - params.start_time) % kDay;
    if (territorial && day_clock > 2 * kHour && day_clock < 4 * kHour) {
      travel_then_dwell(timeline, depot,
                        now + 3 * kHour +
                            static_cast<Timestamp>(rng.uniform(0.0, 2.0 * kHour)),
                        params.speed_mps * 1.5);
      continue;
    }
    const GeoPoint stop = next_stop(rng);
    const Timestamp dwell =
        3 * kMinute + static_cast<Timestamp>(rng.uniform(0.0, 12.0 * kMinute));
    travel_then_dwell(timeline, stop, now + dwell, params.speed_mps * 1.5);
    // travel_then_dwell ends at arrival+dwell only if arrival < now+dwell;
    // ensure progress when the hop was long:
    if (timeline.back().end <= now) {
      timeline.push_back(Segment{now, now + 5 * kMinute, stop, stop, false});
    }
  }
  return timeline;
}

}  // namespace

mobility::Dataset generate(const GeneratorParams& params) {
  support::expects(params.users > 0, "generate: need at least one user");
  support::expects(params.days > 0, "generate: need at least one day");
  support::expects(params.records_per_user_per_day > 0.0,
                   "generate: records_per_user_per_day must be positive");
  support::expects(params.pois_per_user_min >= 2,
                   "generate: users need at least home + work POIs");
  support::expects(params.pois_per_user_max >= params.pois_per_user_min,
                   "generate: poi bounds inverted");
  support::expects(
      params.activity_min > 0.0 && params.activity_max >= params.activity_min,
      "generate: activity bounds invalid");

  RngStream root(params.seed);

  // Shared hotspot pool (downtown-concentrated).
  RngStream pool_rng = root.fork("pool");
  std::vector<GeoPoint> pool;
  pool.reserve(params.shared_poi_pool);
  for (std::size_t i = 0; i < params.shared_poi_pool; ++i) {
    pool.push_back(
        scatter(params.city_center, params.shared_poi_spread_m, pool_rng));
  }

  // District anchors (city-small): geographic sub-centres that routine
  // users' private POIs cluster around when the preset defines districts.
  // Drawn from their own fork so legacy presets (districts == 0) stay
  // byte-identical.
  std::vector<GeoPoint> district_anchors;
  if (params.districts > 0) {
    RngStream district_rng = root.fork("districts");
    district_anchors.reserve(params.districts);
    for (std::size_t i = 0; i < params.districts; ++i) {
      district_anchors.push_back(scatter(params.city_center,
                                         params.district_spread_m,
                                         district_rng));
    }
  }

  const double period_s = 86400.0 / params.records_per_user_per_day;

  mobility::Dataset dataset(params.dataset_name);
  for (std::size_t u = 0; u < params.users; ++u) {
    RngStream rng = root.fork("user", u);
    const bool wanderer =
        !params.cab_fleet && rng.bernoulli(params.wanderer_fraction);
    // Archetype tag embedded in the user id (usr/rel/wnd/cab/tcb) — opaque
    // to attacks (ids are matched for equality only) but invaluable when
    // analysing who stays vulnerable under which mechanism.
    const char* tag;
    std::vector<Segment> timeline;
    if (params.cab_fleet) {
      bool territorial = false;
      timeline = cab_timeline(params, rng, pool, territorial);
      tag = territorial ? "tcb" : "cab";
    } else if (wanderer) {
      timeline = wanderer_timeline(params, rng);
      tag = "wnd";
    } else {
      GeoPoint home_center = params.city_center;
      GeoPoint relocation_center = params.city_center;
      if (!district_anchors.empty()) {
        // Home district and (fresh) post-relocation district. fork() leaves
        // `rng` untouched, so the districts == 0 path is unaffected.
        RngStream district_rng = rng.fork("district");
        home_center = district_anchors[district_rng.uniform_index(
            district_anchors.size())];
        relocation_center = district_anchors[district_rng.uniform_index(
            district_anchors.size())];
      }
      bool relocated = false;
      timeline = routine_timeline(params, rng, pool, home_center,
                                  relocation_center, relocated);
      tag = relocated ? "rel" : "usr";
    }
    const double activity =
        rng.fork("activity").uniform(params.activity_min, params.activity_max);
    auto records =
        sample_timeline(timeline, period_s / activity, params.gps_noise_m,
                        rng);
    char id[32];
    std::snprintf(id, sizeof id, "%s_u%03zu", tag, u);
    dataset.add(mobility::Trace(params.dataset_name + ":" + id,
                                std::move(records)));
  }
  return dataset;
}

}  // namespace mood::simulation
