// The `mood` executable: all behaviour lives in mood::cli::run so the test
// suite can exercise it in-process (see tools/mood_cli/cli.h).

#include <iostream>

#include "mood_cli/cli.h"

int main(int argc, char** argv) {
  return mood::cli::run(argc, argv, std::cout, std::cerr);
}
