// `mood evaluate`: load a dataset (CSV file or generated preset), build the
// ExperimentHarness, run the requested strategy grid over the requested
// attack subset, and emit one versioned result document (schema
// "mood-result/1", see src/report/report.h) plus optional per-user CSVs.

#include <algorithm>
#include <cctype>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "mobility/io.h"
#include "mood_cli/cli.h"
#include "report/report.h"
#include "report/table.h"
#include "simulation/presets.h"
#include "support/csv.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/options.h"
#include "support/thread_pool.h"

namespace mood::cli {

namespace {

std::vector<std::string> split_list(const std::string& list) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : list + ",") {
    if (c == ',') {
      if (!current.empty()) parts.push_back(current);
      current.clear();
    } else {
      current.push_back(static_cast<char>(std::tolower(
          static_cast<unsigned char>(c))));
    }
  }
  return parts;
}

/// Canonical strategy keys, expanding the "singles" / "all" shorthands.
std::vector<std::string> expand_strategies(const std::string& list) {
  std::vector<std::string> expanded;
  const auto push_unique = [&](const std::string& name) {
    if (std::find(expanded.begin(), expanded.end(), name) == expanded.end()) {
      expanded.push_back(name);
    }
  };
  for (const auto& name : split_list(list)) {
    if (name == "singles") {
      push_unique("geoi");
      push_unique("trl");
      push_unique("hmc");
    } else if (name == "all") {
      push_unique("no-lppm");
      push_unique("geoi");
      push_unique("trl");
      push_unique("hmc");
      push_unique("hybrid");
      push_unique("mood-search");
      push_unique("mood-full");
    } else if (name == "no-lppm" || name == "geoi" || name == "trl" ||
               name == "hmc" || name == "hybrid" || name == "mood-search" ||
               name == "mood-full") {
      push_unique(name);
    } else {
      throw support::UsageError(
          "mood evaluate: unknown strategy '" + name +
          "' (expected no-lppm, geoi, trl, hmc, singles, hybrid, "
          "mood-search, mood-full or all)");
    }
  }
  if (expanded.empty()) {
    throw support::UsageError("mood evaluate: --strategies is empty");
  }
  return expanded;
}

/// Validates attack shorthands up front (before any expensive work); "all"
/// swallows the rest. Returns the normalized lower-case names.
std::vector<std::string> parse_attack_names(const std::string& list) {
  std::vector<std::string> names;
  for (const auto& name : split_list(list)) {
    if (name == "all") return {};
    if (name != "poi" && name != "pit" && name != "ap") {
      throw support::UsageError("mood evaluate: unknown attack '" + name +
                                "' (expected poi, pit, ap or all)");
    }
    names.push_back(name);
  }
  if (names.empty()) {
    throw support::UsageError("mood evaluate: --attacks is empty");
  }
  return names;
}

/// Maps validated shorthands to indices into harness.attacks() by matching
/// the attack display names ("POI-Attack", ...), case-insensitively.
std::vector<std::size_t> attack_subset(const core::ExperimentHarness& harness,
                                       const std::vector<std::string>& names) {
  std::vector<std::size_t> subset;
  for (const auto& name : names) {
    for (std::size_t i = 0; i < harness.attacks().size(); ++i) {
      std::string attack = harness.attacks()[i]->name();  // e.g. "POI-Attack"
      std::transform(attack.begin(), attack.end(), attack.begin(),
                     [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                     });
      if (attack == name || attack == name + "-attack") {
        subset.push_back(i);
        break;
      }
    }
  }
  support::ensures(subset.size() == names.size(),
                   "attack shorthand missing from the standard suite");
  return subset;
}

std::string csv_path(const std::string& prefix, const std::string& strategy) {
  return prefix + strategy + ".csv";
}

}  // namespace

int cmd_evaluate(int argc, const char* const* argv, std::ostream& out,
                 std::ostream& err) {
  support::FlagSet flags(
      "mood evaluate",
      "Evaluate protection strategies on a mobility dataset and write a\n"
      "mood-result/1 JSON document (plus optional per-user CSVs).");
  flags.add_string("input", "",
                   "dataset CSV (user,lat,lon,timestamp; '-' = stdin); "
                   "empty: generate --preset instead");
  flags.add_string("preset", "privamov",
                   "preset to generate when --input is empty");
  flags.add_double("scale", 0.25, "record-volume scale for --preset");
  flags.add_string("name", "", "dataset display name (default: input/preset)");
  flags.add_string("strategies", "no-lppm,singles,hybrid",
                   "comma list: no-lppm, geoi, trl, hmc, singles, hybrid, "
                   "mood-search, mood-full, all");
  flags.add_string("attacks", "all", "comma list: poi, pit, ap, all");
  flags.add_int("seed", 7, "harness + LPPM seed");
  flags.add_int("jobs", 0, "worker threads (0 = hardware concurrency)");
  flags.add_string("out", "-", "result JSON path ('-' = stdout)");
  flags.add_string("csv", "",
                   "per-user CSV path prefix (one file per strategy); "
                   "empty: none");
  flags.add_bool("per-user", true, "include per_user arrays in the JSON");
  flags.add_bool("verbose", false, "log at info level instead of warn");
  // Every ExperimentConfig knob, with the paper defaults.
  const core::ExperimentConfig defaults;
  flags.add_double("train-fraction", defaults.train_fraction,
                   "chronological split point");
  flags.add_int("min-records", static_cast<std::int64_t>(defaults.min_records),
                "active-user floor per half");
  flags.add_double("poi-diameter", defaults.attack_params.poi.max_diameter_m,
                   "POI clustering diameter (m)");
  flags.add_int("poi-dwell",
                static_cast<std::int64_t>(defaults.attack_params.poi.min_dwell),
                "POI minimal dwell (s)");
  flags.add_int(
      "poi-min-points",
      static_cast<std::int64_t>(defaults.attack_params.poi.min_points),
      "POI minimal records per stay");
  flags.add_double("heatmap-cell", defaults.attack_params.heatmap_cell_m,
                   "AP-attack heatmap cell size (m)");
  flags.add_double("pit-scale", defaults.attack_params.pit_proximity_scale_m,
                   "PIT-attack proximity scale (m)");
  flags.add_double("geoi-epsilon", defaults.geoi_epsilon,
                   "Geo-I epsilon (per metre)");
  flags.add_double("trl-radius", defaults.trl_radius_m,
                   "trilateration radius (m)");
  flags.add_double("hmc-coverage", defaults.hmc_hot_coverage,
                   "HMC alignment mass coverage");
  flags.add_int("hmc-max-cells",
                static_cast<std::int64_t>(defaults.hmc_max_cells),
                "HMC alignment budget (cells)");
  flags.add_double("hmc-budget", defaults.hmc_budget_m,
                   "HMC relocation budget (m)");
  flags.add_double("mood-delta-hours",
                   static_cast<double>(defaults.mood.delta) / 3600.0,
                   "fine-grained recursion floor (h)");
  flags.add_double("mood-preslice-hours",
                   static_cast<double>(defaults.mood.preslice) / 3600.0,
                   "crowdsensing pre-slice period (h)");
  flags.add_bool("first-hit", defaults.mood.first_hit,
                 "stop the composition pass at the first protective hit "
                 "(ablation, not paper-faithful)");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    out << flags.help();
    return kExitOk;
  }
  flags.reject_positionals();
  support::set_log_level(flags.get_bool("verbose")
                             ? support::LogLevel::kInfo
                             : support::LogLevel::kWarn);
  // Vet the strategy/attack lists before any expensive work so typos fail
  // in milliseconds, not after dataset generation and attack training.
  const std::vector<std::string> strategy_names =
      expand_strategies(flags.get_string("strategies"));
  const std::vector<std::string> attack_names =
      parse_attack_names(flags.get_string("attacks"));
  if (const auto jobs = flags.get_int("jobs"); jobs > 0) {
    support::ThreadPool::configure_shared(static_cast<std::size_t>(jobs));
  }

  const auto started = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started)
        .count();
  };

  report::RunMetadata meta;
  meta.tool = "mood evaluate";
  meta.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  // ---- Dataset --------------------------------------------------------
  const std::string input = flags.get_string("input");
  mobility::Dataset dataset;
  if (input.empty()) {
    dataset = simulation::make_preset_dataset(flags.get_string("preset"),
                                              flags.get_double("scale"),
                                              meta.seed);
  } else if (input == "-") {
    dataset = mobility::read_dataset_csv(std::cin, "stdin");
  } else {
    dataset = mobility::read_dataset_csv_file(input, input);
  }
  if (const std::string name = flags.get_string("name"); !name.empty()) {
    dataset.set_name(name);
  }
  meta.dataset = dataset.name();
  meta.timings.emplace_back("load", elapsed());

  // ---- Harness --------------------------------------------------------
  core::ExperimentConfig config;
  config.train_fraction = flags.get_double("train-fraction");
  config.min_records = static_cast<std::size_t>(flags.get_int("min-records"));
  config.attack_params.poi.max_diameter_m = flags.get_double("poi-diameter");
  config.attack_params.poi.min_dwell =
      static_cast<mobility::Timestamp>(flags.get_int("poi-dwell"));
  config.attack_params.poi.min_points =
      static_cast<std::size_t>(flags.get_int("poi-min-points"));
  config.attack_params.heatmap_cell_m = flags.get_double("heatmap-cell");
  config.attack_params.pit_proximity_scale_m = flags.get_double("pit-scale");
  config.geoi_epsilon = flags.get_double("geoi-epsilon");
  config.trl_radius_m = flags.get_double("trl-radius");
  config.hmc_hot_coverage = flags.get_double("hmc-coverage");
  config.hmc_max_cells =
      static_cast<std::size_t>(flags.get_int("hmc-max-cells"));
  config.hmc_budget_m = flags.get_double("hmc-budget");
  config.mood.delta = static_cast<mobility::Timestamp>(
      flags.get_double("mood-delta-hours") * 3600.0);
  config.mood.preslice = static_cast<mobility::Timestamp>(
      flags.get_double("mood-preslice-hours") * 3600.0);
  config.mood.first_hit = flags.get_bool("first-hit");

  const auto harness_started = elapsed();
  const core::ExperimentHarness harness(dataset, config, meta.seed);
  meta.timings.emplace_back("harness", elapsed() - harness_started);

  const std::vector<std::size_t> attacks =
      attack_subset(harness, attack_names);

  // ---- Strategy grid --------------------------------------------------
  const bool per_user = flags.get_bool("per-user");
  const std::string csv_prefix = flags.get_string("csv");
  std::vector<report::Json> strategy_docs;
  for (const auto& name : strategy_names) {
    err << "evaluating " << name << " on " << harness.pairs().size()
        << " users...\n";
    if (name == "mood-full") {
      const core::MoodResult result = harness.evaluate_mood_full(attacks);
      meta.timings.emplace_back(name, result.wall_seconds);
      strategy_docs.push_back(report::to_json(result, per_user));
      if (!csv_prefix.empty()) {
        support::write_csv_file(csv_path(csv_prefix, name),
                                report::mood_outcome_rows(result));
      }
      continue;
    }
    core::StrategyResult result;
    if (name == "no-lppm") {
      result = harness.evaluate_no_lppm(attacks);
    } else if (name == "geoi") {
      result = harness.evaluate_single("GeoI", attacks);
    } else if (name == "trl") {
      result = harness.evaluate_single("TRL", attacks);
    } else if (name == "hmc") {
      result = harness.evaluate_single("HMC", attacks);
    } else if (name == "hybrid") {
      result = harness.evaluate_hybrid(attacks);
    } else {  // mood-search (expand_strategies vetted the name)
      result = harness.evaluate_mood_search(attacks);
    }
    meta.timings.emplace_back(name, result.wall_seconds);
    strategy_docs.push_back(report::to_json(result, per_user));
    if (!csv_prefix.empty()) {
      support::write_csv_file(csv_path(csv_prefix, name),
                              report::user_outcome_rows(result));
    }
  }

  // ---- Result document ------------------------------------------------
  meta.wall_seconds = elapsed();
  report::Json dataset_doc = report::dataset_summary(dataset);
  dataset_doc["active_users"] = harness.pairs().size();
  dataset_doc["test_records"] = harness.total_test_records();
  const report::Json document = report::make_report(
      meta, config, std::move(dataset_doc), std::move(strategy_docs));

  const std::string out_path = flags.get_string("out");
  if (out_path == "-") {
    document.write(out);
    return kExitOk;
  }
  report::write_json_file(out_path, document);
  err << "wrote " << out_path << '\n';
  auto rows = report::strategy_summary_rows(document);
  report::Table table(std::move(rows.front()));
  for (std::size_t i = 1; i < rows.size(); ++i) {
    table.add_row(std::move(rows[i]));
  }
  table.print(out);
  return kExitOk;
}

}  // namespace mood::cli
