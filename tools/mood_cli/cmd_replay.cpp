// `mood replay`: drive the online MooD gateway (src/stream) from an
// offline dataset. Builds the usual ExperimentHarness (train attacks on
// the background halves), converts the test halves into one globally
// time-ordered event stream, replays it through the sharded StreamEngine
// — by default continuously (--engine=loop: per-shard worker threads
// deciding at admission time), or in micro-batches (--engine=batch, the
// determinism oracle) — optionally paced by a target event rate or a
// dataset-time compression factor — and emits a versioned "mood-stream/1"
// JSON document (see src/report/report.h) with sustained throughput and
// p50/p95/p99 decision latency.
//
// Unless the window knobs make the replay lossy, the final per-user
// decisions are verified against harness.evaluate_gateway() — the same
// DecisionKernel run in batch mode (one pass per full test trace), which
// by construction equals evaluate_no_lppm's expose/protect set plus the
// whole-trace mechanism-search winners. The check therefore gates the
// *incremental* path (window folds, incremental profiles, staleness
// short-cuts, recheck policy) against the one-shot path — the stream-smoke
// CI gate. Exit 1 on any mismatch.

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "attacks/attack.h"
#include "core/experiment.h"
#include "mobility/io.h"
#include "mood_cli/cli.h"
#include "report/report.h"
#include "report/table.h"
#include "simulation/presets.h"
#include "stream/engine.h"
#include "stream/replay.h"
#include "stream/snapshot.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/logging.h"
#include "support/options.h"
#include "support/thread_pool.h"
#include "telemetry/trace.h"

namespace mood::cli {

namespace {

/// "small" is the same smoke population `mood bench` uses: PrivaMov-shaped,
/// cut down to CI size, with an 8-record active-user floor.
mobility::Dataset make_replay_dataset(const std::string& preset, double scale,
                                      std::int64_t users, std::int64_t days,
                                      std::uint64_t seed) {
  simulation::GeneratorParams params;
  if (preset == "small") {
    params = simulation::preset_params("privamov", scale, seed);
    params.users = 20;
    params.days = 12;
    params.dataset_name = "small";
  } else {
    params = simulation::preset_params(preset, scale, seed);
  }
  if (users > 0) params.users = static_cast<std::size_t>(users);
  if (days > 0) params.days = static_cast<int>(days);
  return simulation::generate(params);
}

/// Compares the gateway's final per-user decisions against the shared
/// decision kernel run in batch mode (harness.evaluate_gateway — one
/// kernel pass per full test trace). Returns true when they agree
/// exactly; logs every divergence to `err`.
bool verify_against_batch(const core::ExperimentHarness& harness,
                          const std::vector<stream::UserDecision>& decisions,
                          std::ostream& err) {
  const core::GatewayResult batch = harness.evaluate_gateway();
  std::unordered_map<mobility::UserId, const core::GatewayOutcome*> expected;
  for (const auto& user : batch.users) expected[user.user] = &user;

  bool ok = true;
  if (decisions.size() != batch.users.size()) {
    err << "mood replay: VERIFY failed: gateway saw " << decisions.size()
        << " users, batch kernel pass has " << batch.users.size() << '\n';
    ok = false;
  }
  for (const auto& decision : decisions) {
    const auto it = expected.find(decision.user);
    if (it == expected.end()) {
      err << "mood replay: VERIFY failed: user " << decision.user
          << " unknown to the batch harness\n";
      ok = false;
      continue;
    }
    if (decision.decision != it->second->decision) {
      err << "mood replay: VERIFY failed: user " << decision.user
          << " decided " << stream::to_string(decision.decision)
          << " by the gateway but "
          << stream::to_string(it->second->decision)
          << " by the batch kernel pass\n";
      ok = false;
      continue;
    }
    // Same engine seed => the batch search's candidate is bit-identical to
    // what finish() computed; only genuine divergence trips this.
    if (decision.winner != it->second->winner) {
      err << "mood replay: VERIFY failed: user " << decision.user
          << " winner '" << decision.winner << "' != batch search winner '"
          << it->second->winner << "'\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int cmd_replay(int argc, const char* const* argv, std::ostream& out,
               std::ostream& err) {
  support::FlagSet flags(
      "mood replay",
      "Replay a dataset as a live event stream through the online MooD\n"
      "gateway: sharded per-user sliding windows, incremental profile\n"
      "maintenance, micro-batched protect/expose decisions. Writes a\n"
      "mood-stream/1 JSON document with sustained throughput and decision\n"
      "latency percentiles; verifies the final decisions against the batch\n"
      "evaluators (exit 1 on mismatch) unless the window knobs make the\n"
      "replay deliberately lossy.");
  flags.add_string("input", "",
                   "dataset CSV (user,lat,lon,timestamp; '-' = stdin); "
                   "empty: generate --preset instead");
  flags.add_string("preset", "small",
                   "preset to generate when --input is empty (mdc | privamov "
                   "| geolife | cabspotting | city-small | small)");
  flags.add_double("scale", 0.25, "record-volume scale for --preset");
  flags.add_string("name", "", "dataset display name (default: input/preset)");
  flags.add_int("users", 0, "override the preset's user count (0 = keep)");
  flags.add_int("days", 0, "override the simulated period in days (0 = keep)");
  flags.add_int("seed", 7, "generator + harness seed");
  flags.add_int("jobs", 0, "worker threads (0 = hardware concurrency)");
  flags.add_int("min-records", 0,
                "active-user floor per half (0 = default; 'small' uses 8)");
  flags.add_int("shards", 8, "user-state shards (each with its own mutex)");
  flags.add_double("window-hours", 0.0,
                   "sliding-window span per user (0 = keep everything)");
  flags.add_int("max-points", 0, "per-user window point cap (0 = unbounded)");
  flags.add_int("max-users", 0,
                "resident users per shard before LRU eviction (0 = "
                "unbounded)");
  flags.add_string("engine", "loop",
                   "execution mode: loop (per-shard worker threads decide "
                   "each event at admission — per-event latency) | batch "
                   "(micro-batched drains, the determinism oracle)");
  flags.add_int("loop-slack", 64,
                "loop engine: full re-decision every N folded events per "
                "user; held verdicts between (0 = decide every event)");
  flags.add_int("loop-recheck", 16,
                "loop engine: cheap held-mechanism recheck every N folded "
                "events per user between full decisions (0 = off)");
  flags.add_int("batch", 256,
                "micro-batch size (events per drain; batch engine only)");
  flags.add_int("staleness", 0,
                "points before the PIT/POI window profiles are recompiled "
                "(0 = every batch; the AP heatmap is always exact)");
  flags.add_double("rate", 0.0,
                   "target ingest rate in events/second (0 = unpaced)");
  flags.add_double("compression", 0.0,
                   "dataset seconds replayed per wall second (0 = off; "
                   "ignored when --rate is set)");
  flags.add_string("index", "on",
                   "population index for the streamed risk queries: on | "
                   "off (linear branch-and-bound scans)");
  flags.add_bool("verify", true,
                 "check final decisions against the batch evaluators run "
                 "on the linear-scan oracle — an index-vs-scan divergence "
                 "gate (skipped automatically for lossy window "
                 "configurations)");
  flags.add_string("checkpoint-dir", "",
                   "directory for crash-consistent mood-snapshot/1 "
                   "checkpoints (empty = checkpointing off)");
  flags.add_int("checkpoint-every", 0,
                "write a checkpoint every N ingested events, at the next "
                "micro-batch boundary (0 = off; requires --checkpoint-dir)");
  flags.add_bool("restore", false,
                 "resume from the newest usable snapshot in "
                 "--checkpoint-dir instead of replaying from the start");
  flags.add_bool("serial-drain", false,
                 "decide shards sequentially instead of on the thread pool");
  flags.add_string("on-bad-record", "fail",
                   "admission policy for malformed events: fail (throw, the "
                   "strict default) | skip (drop + count) | quarantine "
                   "(isolate the user, dead-letter their events)");
  flags.add_int("max-pending", 0,
                "per-shard pending-event backlog before ingest signals "
                "backpressure (0 = unbounded, no signal)");
  flags.add_int("shed-high", 0,
                "per-shard backlog at which a drain sheds load — held "
                "verdicts instead of full decisions (0 = never shed)");
  flags.add_int("shed-low", 0,
                "backlog at which a shedding shard recovers (hysteresis; "
                "0 with --shed-high set = half of --shed-high)");
  flags.add_int("drain-budget", 0,
                "full decisions per shard per drain before the batch tail "
                "degrades to held verdicts (0 = unbounded)");
  flags.add_int("poison-users", 0,
                "chaos drill: corrupt events of the first N user ids in "
                "place before replaying (0 = off)");
  flags.add_int("poison-stride", 3,
                "chaos drill: corrupt every stride-th event of a poisoned "
                "user");
  flags.add_bool("per-user", true, "include the per_user array in the JSON");
  flags.add_string("out", "-", "stream JSON path ('-' = stdout)");
  flags.add_string("metrics-out", "",
                   "rewrite a Prometheus-style metrics exposition here "
                   "(atomic tmp+fsync+rename) on the export cadence and "
                   "once after the replay (empty = off)");
  flags.add_int("metrics-every", 0,
                "rewrite --metrics-out every N ingested events, at the "
                "next micro-batch boundary (0 = follow "
                "--checkpoint-every; final rewrite always happens)");
  flags.add_string("trace-out", "",
                   "dump a Chrome trace_event JSON of the replay's spans "
                   "here — load in chrome://tracing or Perfetto (empty = "
                   "tracing off)");
  flags.add_bool("stage-timers", true,
                 "record per-stage latency histograms (ingest admission, "
                 "per-user decide, drain, checkpoint)");
  flags.add_string("log-level", "off",
                   "gateway transition logging to stderr: off | warn | "
                   "info | debug (off keeps stderr to progress lines "
                   "only; stdout JSON is never touched)");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    out << flags.help();
    return kExitOk;
  }
  flags.reject_positionals();
  const std::string log_level = flags.get_string("log-level");
  if (log_level == "off") {
    support::set_log_level(support::LogLevel::kOff);
  } else if (log_level == "warn") {
    support::set_log_level(support::LogLevel::kWarn);
  } else if (log_level == "info") {
    support::set_log_level(support::LogLevel::kInfo);
  } else if (log_level == "debug") {
    support::set_log_level(support::LogLevel::kDebug);
  } else {
    throw support::UsageError(
        "mood replay: --log-level must be off, warn, info or debug");
  }

  // Vet cheap flag constraints before dataset generation and training.
  if (flags.get_int("shards") <= 0) {
    throw support::UsageError("mood replay: --shards must be positive");
  }
  if (flags.get_int("batch") <= 0) {
    throw support::UsageError("mood replay: --batch must be positive");
  }
  if (flags.get_double("window-hours") < 0.0 || flags.get_int("max-points") < 0 ||
      flags.get_int("max-users") < 0 || flags.get_int("staleness") < 0 ||
      flags.get_double("rate") < 0.0 || flags.get_double("compression") < 0.0) {
    throw support::UsageError(
        "mood replay: window/pacing knobs must be non-negative");
  }
  if (flags.get_int("checkpoint-every") < 0) {
    throw support::UsageError(
        "mood replay: --checkpoint-every must be non-negative");
  }
  if (flags.get_int("metrics-every") < 0) {
    throw support::UsageError(
        "mood replay: --metrics-every must be non-negative");
  }
  if (flags.get_int("metrics-every") > 0 &&
      flags.get_string("metrics-out").empty()) {
    throw support::UsageError(
        "mood replay: --metrics-every requires --metrics-out");
  }
  if (flags.get_int("max-pending") < 0 || flags.get_int("shed-high") < 0 ||
      flags.get_int("shed-low") < 0 || flags.get_int("drain-budget") < 0 ||
      flags.get_int("poison-users") < 0) {
    throw support::UsageError(
        "mood replay: resilience knobs must be non-negative");
  }
  if (flags.get_int("poison-stride") <= 0) {
    throw support::UsageError("mood replay: --poison-stride must be positive");
  }
  const stream::EngineMode engine_mode =
      stream::parse_engine_mode(flags.get_string("engine"));
  if (flags.get_int("loop-slack") < 0 || flags.get_int("loop-recheck") < 0) {
    throw support::UsageError(
        "mood replay: loop cadences must be non-negative");
  }
  if (flags.get_int("drain-budget") > 0 &&
      engine_mode == stream::EngineMode::kLoop) {
    throw support::UsageError(
        "mood replay: --drain-budget is a batch-engine knob (the loop "
        "engine paces full decisions with --loop-slack)");
  }
  const stream::BadRecordPolicy bad_record_policy =
      stream::parse_bad_record_policy(flags.get_string("on-bad-record"));
  std::size_t shed_high = static_cast<std::size_t>(flags.get_int("shed-high"));
  std::size_t shed_low = static_cast<std::size_t>(flags.get_int("shed-low"));
  if (shed_high > 0 && shed_low == 0) shed_low = shed_high / 2;
  if (shed_low > shed_high) {
    throw support::UsageError(
        "mood replay: --shed-low must not exceed --shed-high");
  }
  const std::string checkpoint_dir = flags.get_string("checkpoint-dir");
  if (flags.get_int("checkpoint-every") > 0 && checkpoint_dir.empty()) {
    throw support::UsageError(
        "mood replay: --checkpoint-every requires --checkpoint-dir");
  }
  if (flags.get_bool("restore")) {
    if (checkpoint_dir.empty()) {
      throw support::UsageError(
          "mood replay: --restore requires --checkpoint-dir");
    }
    if (!std::filesystem::is_directory(checkpoint_dir)) {
      throw support::UsageError("mood replay: checkpoint directory '" +
                                checkpoint_dir + "' does not exist");
    }
  }
  // Fault-injection hook (tests/CI only; compiled out of Release builds —
  // a no-op unless MOOD_FAILPOINTS is set in the environment).
  testing::FailPoint::arm_from_env();
  const std::string index_flag = flags.get_string("index");
  if (index_flag != "on" && index_flag != "off") {
    throw support::UsageError("mood replay: --index must be on or off");
  }
  const attacks::QueryMode stream_mode = index_flag == "on"
                                             ? attacks::QueryMode::kIndex
                                             : attacks::QueryMode::kScan;
  if (const auto jobs = flags.get_int("jobs"); jobs > 0) {
    support::ThreadPool::configure_shared(static_cast<std::size_t>(jobs));
  }

  const auto started = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started)
        .count();
  };

  report::RunMetadata meta;
  meta.tool = "mood replay";
  meta.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  // ---- Dataset --------------------------------------------------------
  const std::string input = flags.get_string("input");
  const std::string preset = flags.get_string("preset");
  mobility::Dataset dataset;
  if (input.empty()) {
    dataset = make_replay_dataset(preset, flags.get_double("scale"),
                                  flags.get_int("users"),
                                  flags.get_int("days"), meta.seed);
  } else if (input == "-") {
    dataset = mobility::read_dataset_csv(std::cin, "stdin");
  } else {
    dataset = mobility::read_dataset_csv_file(input, input);
  }
  if (const std::string name = flags.get_string("name"); !name.empty()) {
    dataset.set_name(name);
  }
  meta.dataset = dataset.name();
  meta.timings.emplace_back("load", elapsed());

  // ---- Harness (train attacks on the background halves) ---------------
  core::ExperimentConfig config;
  if (const auto floor = flags.get_int("min-records"); floor > 0) {
    config.min_records = static_cast<std::size_t>(floor);
  } else if (input.empty() && preset == "small") {
    config.min_records = 8;
  }
  const auto harness_started = elapsed();
  const core::ExperimentHarness harness(dataset, config, meta.seed);
  meta.timings.emplace_back("harness", elapsed() - harness_started);

  // ---- Gateway + replay ----------------------------------------------
  stream::StreamConfig stream_config;
  stream_config.engine = engine_mode;
  stream_config.loop_slack =
      static_cast<std::size_t>(flags.get_int("loop-slack"));
  stream_config.loop_recheck =
      static_cast<std::size_t>(flags.get_int("loop-recheck"));
  stream_config.shards = static_cast<std::size_t>(flags.get_int("shards"));
  stream_config.window_seconds = static_cast<mobility::Timestamp>(
      flags.get_double("window-hours") * 3600.0);
  stream_config.max_points =
      static_cast<std::size_t>(flags.get_int("max-points"));
  stream_config.max_users_per_shard =
      static_cast<std::size_t>(flags.get_int("max-users"));
  stream_config.staleness_points =
      static_cast<std::size_t>(flags.get_int("staleness"));
  stream_config.parallel_drain = !flags.get_bool("serial-drain");
  stream_config.resilience.on_bad_record = bad_record_policy;
  stream_config.resilience.max_pending_per_shard =
      static_cast<std::size_t>(flags.get_int("max-pending"));
  stream_config.resilience.shed_high_watermark = shed_high;
  stream_config.resilience.shed_low_watermark = shed_low;
  stream_config.resilience.drain_budget =
      static_cast<std::size_t>(flags.get_int("drain-budget"));
  stream_config.telemetry.stage_timers = flags.get_bool("stage-timers");

  stream::ReplayOptions replay_options;
  replay_options.batch_events =
      static_cast<std::size_t>(flags.get_int("batch"));
  replay_options.target_rate = flags.get_double("rate");
  replay_options.time_compression = flags.get_double("compression");

  auto events = stream::make_event_stream(harness.pairs());
  if (const auto victims = flags.get_int("poison-users"); victims > 0) {
    stream::PoisonSpec poison;
    poison.users = static_cast<std::size_t>(victims);
    poison.stride = static_cast<std::size_t>(flags.get_int("poison-stride"));
    const std::size_t poisoned = stream::inject_poison(events, poison);
    err << "chaos drill: poisoned " << poisoned << " events across "
        << poison.users << " users (stride " << poison.stride << ")\n";
  }
  harness.set_attack_query_mode(stream_mode);
  stream::StreamEngine engine(harness.make_engine(), stream_config);

  // ---- Telemetry sinks -------------------------------------------------
  const std::string metrics_out = flags.get_string("metrics-out");
  if (!metrics_out.empty()) {
    // Default the periodic rewrite to the checkpoint cadence; 0 of both
    // means the only exposition is the final one after finish().
    std::uint64_t every =
        static_cast<std::uint64_t>(flags.get_int("metrics-every"));
    if (every == 0) {
      every = static_cast<std::uint64_t>(flags.get_int("checkpoint-every"));
    }
    engine.configure_metrics_export(metrics_out, every);
  }
  const std::string trace_out = flags.get_string("trace-out");
  if (!trace_out.empty()) {
    telemetry::TraceSession::instance().start();
  }

  // ---- Checkpoint / restore -------------------------------------------
  stream::SnapshotContext snapshot_context;
  snapshot_context.seed = meta.seed;
  snapshot_context.dataset = dataset.name();
  snapshot_context.total_events = events.size();
  snapshot_context.batch_events = replay_options.batch_events;
  if (!checkpoint_dir.empty() && flags.get_int("checkpoint-every") > 0) {
    stream::CheckpointPolicy policy;
    policy.dir = checkpoint_dir;
    policy.every_events =
        static_cast<std::uint64_t>(flags.get_int("checkpoint-every"));
    engine.configure_checkpoints(policy, snapshot_context);
  }
  if (flags.get_bool("restore")) {
    const auto restore_started = elapsed();
    std::size_t quarantined_files = 0;
    const stream::SnapshotData snapshot =
        stream::read_latest_snapshot(checkpoint_dir, &quarantined_files);
    // The snapshot must describe this exact replay: same seed, dataset,
    // stream length, and micro-batch cadence — anything else would resume
    // a different stream and silently change the published decisions.
    // (restore_snapshot additionally vets the gateway config.)
    if (snapshot.context.seed != snapshot_context.seed ||
        snapshot.context.dataset != snapshot_context.dataset ||
        snapshot.context.total_events != snapshot_context.total_events ||
        snapshot.context.batch_events != snapshot_context.batch_events) {
      throw support::UsageError(
          "mood replay: snapshot in '" + checkpoint_dir +
          "' fingerprints a different replay (seed/dataset/stream/batch "
          "mismatch) — refusing to resume from it");
    }
    // Loop checkpoints are quiesced cuts at any position; batch ones must
    // land on a micro-batch boundary for the resumed drains to line up.
    if (snapshot.stream_position > events.size() ||
        (engine_mode == stream::EngineMode::kBatch &&
         snapshot.stream_position % replay_options.batch_events != 0 &&
         snapshot.stream_position != events.size())) {
      throw support::UsageError(
          "mood replay: snapshot position " +
          std::to_string(snapshot.stream_position) +
          " is not a micro-batch boundary of this stream");
    }
    engine.restore_snapshot(snapshot);
    engine.note_quarantined_snapshots(quarantined_files);
    replay_options.resume_events =
        static_cast<std::size_t>(snapshot.stream_position);
    err << "restored checkpoint at position " << snapshot.stream_position
        << " (" << snapshot.users.size() << " users) from " << checkpoint_dir;
    if (quarantined_files > 0) {
      err << " after quarantining " << quarantined_files
          << " corrupt snapshot file(s)";
    }
    err << '\n';
    meta.timings.emplace_back("restore", elapsed() - restore_started);
  }

  err << "replaying " << events.size() << " events from "
      << harness.pairs().size() << " users through " << stream_config.shards
      << " shards (" << stream::to_string(engine_mode);
  if (engine_mode == stream::EngineMode::kBatch) {
    err << ", batch " << replay_options.batch_events;
  }
  err << ")...\n";
  const auto replay_started = elapsed();
  const stream::ReplayResult result =
      stream::run_replay(engine, events, replay_options);
  meta.timings.emplace_back("replay", elapsed() - replay_started);

  // Trace covers exactly the replay (ingest through finish); the batch
  // verification pass below is offline kernel work, not gateway spans.
  if (!trace_out.empty()) {
    telemetry::TraceSession& session = telemetry::TraceSession::instance();
    session.stop();
    std::ofstream trace_file(trace_out, std::ios::binary | std::ios::trunc);
    if (!trace_file) {
      throw support::IoError("mood replay: cannot open trace output '" +
                             trace_out + "'");
    }
    session.dump_chrome_json(trace_file);
    trace_file.flush();
    if (!trace_file) {
      throw support::IoError("mood replay: failed writing trace output '" +
                             trace_out + "'");
    }
    err << "wrote " << session.span_count() << " trace spans to " << trace_out;
    if (session.dropped() > 0) {
      err << " (" << session.dropped() << " dropped: ring full)";
    }
    err << '\n';
  }
  // One final exposition so the file reflects the finished replay even
  // when the event-count cadence never fired (or --metrics-every=0).
  if (!metrics_out.empty()) {
    const std::uint64_t bytes = engine.export_metrics_now();
    err << "wrote " << bytes << " bytes of metrics to " << metrics_out
        << '\n';
  }

  // ---- Batch-equivalence verification ---------------------------------
  // A bounded window / point cap / LRU cap deliberately forgets data, so
  // the final windows no longer equal the batch test traces — verification
  // would compare different inputs and is skipped.
  const bool lossy = stream_config.window_seconds > 0 ||
                     stream_config.max_points > 0 ||
                     stream_config.max_users_per_shard > 0;
  // Dropped or dead-lettered events likewise mean the gateway decided on
  // different inputs than the batch pass would. Shedding and drain budgets
  // do NOT skip verification: finish() canonicalizes every user, so final
  // decisions must still match the batch oracle exactly.
  const bool degraded_inputs = result.stats.bad_records > 0 ||
                               result.stats.quarantined_users > 0;
  std::optional<bool> batch_match;
  if (flags.get_bool("verify")) {
    if (lossy) {
      err << "mood replay: skipping batch verification (bounded window "
             "configuration is deliberately lossy)\n";
    } else if (degraded_inputs) {
      err << "mood replay: skipping batch verification (bad records were "
             "dropped or quarantined — the gateway decided on different "
             "inputs than the batch pass)\n";
    } else {
      const auto verify_started = elapsed();
      // Run the batch pass on the linear-scan oracle whatever mode the
      // stream used, so an index replay is verified against independent
      // machinery (decisions must be bit-identical across modes).
      harness.set_attack_query_mode(attacks::QueryMode::kScan);
      batch_match = verify_against_batch(harness, result.decisions, err);
      harness.set_attack_query_mode(stream_mode);
      meta.timings.emplace_back("verify", elapsed() - verify_started);
    }
  }
  meta.wall_seconds = elapsed();

  // ---- Emit -----------------------------------------------------------
  report::Json dataset_doc = report::dataset_summary(dataset);
  dataset_doc["active_users"] = harness.pairs().size();
  const report::Json document = report::make_stream_report(
      meta, std::move(dataset_doc), stream_config, replay_options, result,
      batch_match, flags.get_bool("per-user"));

  const std::string out_path = flags.get_string("out");
  if (out_path == "-") {
    document.write(out);
  } else {
    report::write_json_file(out_path, document);
    err << "wrote " << out_path << '\n';
    auto rows = report::stream_summary_rows(result);
    report::Table table(std::move(rows.front()));
    for (std::size_t i = 1; i < rows.size(); ++i) {
      table.add_row(std::move(rows[i]));
    }
    table.print(out);
  }

  if (batch_match.has_value() && !*batch_match) {
    err << "mood replay: replayed decisions DIVERGE from the batch "
           "evaluators\n";
    return kExitFailure;
  }
  return kExitOk;
}

}  // namespace mood::cli
