// `mood report`: read one or more mood JSON documents and render a
// cross-run comparison — as an aligned table (default), CSV, or a merged
// JSON document for further tooling.
//
// Inputs are dispatched on their top-level "schema": mood-result/1 rows
// feed the cross-run strategy table; mood-bench/1 and mood-stream/1
// documents get their own schema-appropriate summary tables. Unknown
// schemas are a typed UsageError (exit 2), not a silent misread; CSV
// output is restricted to mood-result/1 inputs (one uniform row shape).

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "mood_cli/cli.h"
#include "report/report.h"
#include "report/table.h"
#include "support/csv.h"
#include "support/error.h"
#include "support/options.h"

namespace mood::cli {

namespace {

/// Last path component without the .json suffix — the "source" column.
std::string source_label(const std::string& path) {
  std::string label = path;
  if (const auto slash = label.find_last_of('/'); slash != std::string::npos) {
    label.erase(0, slash + 1);
  }
  if (label.size() > 5 && label.ends_with(".json")) {
    label.erase(label.size() - 5);
  }
  return label;
}

}  // namespace

int cmd_report(int argc, const char* const* argv, std::ostream& out,
               std::ostream& err) {
  support::FlagSet flags(
      "mood report <result.json>...",
      "Aggregate mood result documents into a cross-run comparison, one\n"
      "row per (run, strategy). mood-bench/1 and mood-stream/1 documents\n"
      "(from `mood bench` / `mood replay`) are summarised with their own\n"
      "schema-appropriate tables; unknown schemas are rejected.");
  flags.add_string("format", "table", "output format: table, csv or json");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    out << flags.help();
    return kExitOk;
  }
  const std::string format = flags.get_string("format");
  if (format != "table" && format != "csv" && format != "json") {
    throw support::UsageError("mood report: unknown --format '" + format +
                              "' (expected table, csv or json)");
  }
  if (flags.positional().empty()) {
    throw support::UsageError(
        "mood report: no input files (pass one or more result JSON paths)");
  }

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"source", "dataset", "strategy", "users", "non_protected",
                  "data_loss", "bands(l/m/h/x)", "seconds"});
  /// (heading, rows) blocks for non-result schemas, rendered after the
  /// strategy table.
  std::vector<std::pair<std::string, std::vector<std::vector<std::string>>>>
      extra_tables;
  report::Json merged = report::Json::object();
  merged["schema"] = "mood-report/1";
  report::Json runs = report::Json::array();

  for (const auto& path : flags.positional()) {
    report::Json document = report::read_json_file(path);
    const std::string schema = document.string_or("schema", "(missing)");
    if (schema == report::kResultSchema) {
      auto file_rows = report::strategy_summary_rows(document);
      for (std::size_t i = 1; i < file_rows.size(); ++i) {  // skip header
        std::vector<std::string> row{source_label(path)};
        row.insert(row.end(), file_rows[i].begin(), file_rows[i].end());
        rows.push_back(std::move(row));
      }
    } else if (schema == report::kBenchSchema ||
               schema == report::kStreamSchema) {
      if (format == "csv") {
        throw support::UsageError(
            "mood report: " + path + " has schema '" + schema +
            "' — CSV output supports mood-result/1 documents only (use "
            "--format=table or --format=json)");
      }
      const std::string dataset =
          document.find("meta") != nullptr
              ? document.find("meta")->string_or("dataset", "?")
              : "?";
      extra_tables.emplace_back(
          source_label(path) + " [" + schema + ", " + dataset + "]",
          schema == report::kBenchSchema
              ? report::bench_summary_rows(document)
              : report::stream_summary_rows(document));
    } else {
      throw support::UsageError(
          "mood report: " + path + " has unsupported schema '" + schema +
          "' (expected " + report::kResultSchema + ", " +
          report::kBenchSchema + " or " + report::kStreamSchema + ")");
    }
    report::Json entry = report::Json::object();
    entry["source"] = path;
    entry["report"] = std::move(document);
    runs.push_back(std::move(entry));
  }
  merged["runs"] = std::move(runs);

  if (format == "json") {
    merged.write(out);
    return kExitOk;
  }
  if (format == "csv") {
    support::write_csv(out, rows);
    return kExitOk;
  }
  if (rows.size() > 1) {
    report::Table table(rows.front());
    for (std::size_t i = 1; i < rows.size(); ++i) table.add_row(rows[i]);
    table.print(out);
  }
  for (const auto& [heading, block] : extra_tables) {
    out << heading << '\n';
    report::Table table(block.front());
    for (std::size_t i = 1; i < block.size(); ++i) table.add_row(block[i]);
    table.print(out);
  }
  return kExitOk;
}

}  // namespace mood::cli
