#pragma once

/// \file cli.h
/// Entry points of the `mood` command-line driver.
///
/// The CLI is the scriptable front door to the pipeline:
///
///   mood simulate --preset=privamov --scale=0.1 --out=city.csv
///   mood evaluate --input=city.csv --strategies=hybrid --out=result.json
///   mood report result.json other-run.json
///   mood bench --preset=small --out=bench.json
///   mood replay --preset=small --shards=8 --out=stream.json
///
/// Everything lives behind run() — a pure function of argv and two output
/// streams — so the test suite exercises subcommand dispatch, flag errors
/// and exit codes in-process, and main() stays a three-line shim.
///
/// Exit codes: 0 success, 1 runtime failure (I/O, bad data), 2 usage error
/// (unknown subcommand or flag, malformed value).

#include <iosfwd>

namespace mood::cli {

/// Exit codes returned by run() and the subcommands.
inline constexpr int kExitOk = 0;
inline constexpr int kExitFailure = 1;
inline constexpr int kExitUsage = 2;

/// Dispatches argv[1] to a subcommand, mapping exceptions to exit codes.
/// `out` receives results (JSON/CSV/tables), `err` receives diagnostics
/// and progress. argv[0] is the program name, as in main().
int run(int argc, const char* const* argv, std::ostream& out,
        std::ostream& err);

/// Subcommands. argv[0] is the subcommand name; flags follow. These throw
/// support::UsageError / support::Error — run() translates to exit codes —
/// and return kExitOk on success.
int cmd_simulate(int argc, const char* const* argv, std::ostream& out,
                 std::ostream& err);
int cmd_evaluate(int argc, const char* const* argv, std::ostream& out,
                 std::ostream& err);
int cmd_report(int argc, const char* const* argv, std::ostream& out,
               std::ostream& err);
int cmd_bench(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err);
int cmd_replay(int argc, const char* const* argv, std::ostream& out,
               std::ostream& err);
int cmd_metrics(int argc, const char* const* argv, std::ostream& out,
                std::ostream& err);

}  // namespace mood::cli
