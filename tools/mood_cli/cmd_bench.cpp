// `mood bench`: run the attack-inference A/B microbenchmarks (reference
// hash-map scans vs compiled flat profiles + branch-and-bound) and the
// optional end-to-end evaluate_mood_full comparison on a preset, emit a
// versioned "mood-bench/1" JSON document (see src/report/report.h), and
// fail (exit 1) if the two paths ever disagree on a decision — the
// perf-smoke CI gate.

#include <chrono>
#include <ostream>
#include <string>

#include "core/experiment.h"
#include "core/inference_bench.h"
#include "mood_cli/cli.h"
#include "report/report.h"
#include "report/table.h"
#include "simulation/presets.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/options.h"
#include "support/thread_pool.h"

namespace mood::cli {

namespace {

/// "small" is the smoke preset: a PrivaMov-shaped population cut down to
/// laptop/CI size (the equivalence check still crosses every layer, just
/// on less data).
mobility::Dataset make_bench_dataset(const std::string& preset, double scale,
                                     std::int64_t users, std::int64_t days,
                                     std::uint64_t seed) {
  simulation::GeneratorParams params;
  if (preset == "small") {
    params = simulation::preset_params("privamov", scale, seed);
    params.users = 20;
    params.days = 12;
    params.dataset_name = "small";
  } else {
    params = simulation::preset_params(preset, scale, seed);
  }
  if (users > 0) params.users = static_cast<std::size_t>(users);
  if (days > 0) params.days = static_cast<int>(days);
  return simulation::generate(params);
}

}  // namespace

int cmd_bench(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err) {
  support::FlagSet flags(
      "mood bench",
      "Benchmark the attack-inference hot path: times re-identification\n"
      "and the full MooD pipeline through both the pre-optimization\n"
      "reference scans and the optimized flat-profile/branch-and-bound\n"
      "path, verifies the two agree decision for decision, and writes a\n"
      "mood-bench/1 JSON document. Exits 1 on any disagreement.");
  flags.add_string("preset", "cabspotting",
                   "dataset preset (mdc | privamov | geolife | cabspotting "
                   "| city-small | small)");
  flags.add_double("scale", 0.25, "record-volume scale in (0, 4]");
  flags.add_int("users", 0, "override the preset's user count (0 = keep)");
  flags.add_int("days", 0, "override the simulated period in days (0 = keep)");
  flags.add_int("seed", 7, "generator + harness seed");
  flags.add_int("jobs", 0, "worker threads (0 = hardware concurrency)");
  flags.add_int("repetitions", 3,
                "minimum timed passes per reidentify microbench");
  flags.add_int("min-records", 0,
                "active-user floor per half (0 = default; 'small' uses 8)");
  flags.add_string("index", "on",
                   "population index: on (index vs reference), off (scans "
                   "vs reference), ab (reference vs scans vs index)");
  flags.add_bool("skip-full", false,
                 "skip the end-to-end evaluate_mood_full A/B case");
  flags.add_string("out", "-", "bench JSON path ('-' = stdout)");
  flags.add_bool("verbose", false, "log at info level instead of warn");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    out << flags.help();
    return kExitOk;
  }
  flags.reject_positionals();
  support::set_log_level(flags.get_bool("verbose")
                             ? support::LogLevel::kInfo
                             : support::LogLevel::kWarn);
  // Vet cheap flag constraints before dataset generation and training.
  const auto repetitions = flags.get_int("repetitions");
  if (repetitions <= 0) {
    throw support::UsageError("mood bench: --repetitions must be positive");
  }
  const std::string index_flag = flags.get_string("index");
  core::BenchIndexMode index_mode;
  if (index_flag == "on") {
    index_mode = core::BenchIndexMode::kOn;
  } else if (index_flag == "off") {
    index_mode = core::BenchIndexMode::kOff;
  } else if (index_flag == "ab") {
    index_mode = core::BenchIndexMode::kAb;
  } else {
    throw support::UsageError("mood bench: --index must be on, off or ab");
  }
  if (const auto jobs = flags.get_int("jobs"); jobs > 0) {
    support::ThreadPool::configure_shared(static_cast<std::size_t>(jobs));
  }

  const auto started = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started)
        .count();
  };

  report::RunMetadata meta;
  meta.tool = "mood bench";
  meta.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  const std::string preset = flags.get_string("preset");
  const mobility::Dataset dataset = make_bench_dataset(
      preset, flags.get_double("scale"), flags.get_int("users"),
      flags.get_int("days"), meta.seed);
  meta.dataset = dataset.name();
  meta.timings.emplace_back("load", elapsed());

  core::ExperimentConfig config;
  if (const auto floor = flags.get_int("min-records"); floor > 0) {
    config.min_records = static_cast<std::size_t>(floor);
  } else if (preset == "small") {
    config.min_records = 8;
  }
  const auto harness_started = elapsed();
  const core::ExperimentHarness harness(dataset, config, meta.seed);
  meta.timings.emplace_back("harness", elapsed() - harness_started);

  core::InferenceBenchOptions options;
  options.repetitions = static_cast<std::size_t>(repetitions);
  options.run_full = !flags.get_bool("skip-full");
  options.index_mode = index_mode;
  err << "benchmarking " << harness.pairs().size() << " users on "
      << dataset.name() << " (index=" << index_flag << ")...\n";
  const auto bench_started = elapsed();
  const auto cases = core::run_inference_bench(harness, options);
  meta.timings.emplace_back("bench", elapsed() - bench_started);
  meta.wall_seconds = elapsed();

  report::Json dataset_doc = report::dataset_summary(dataset);
  dataset_doc["active_users"] = harness.pairs().size();
  const report::Json document =
      report::make_bench_report(meta, std::move(dataset_doc), cases);

  const std::string out_path = flags.get_string("out");
  if (out_path == "-") {
    document.write(out);
  } else {
    report::write_json_file(out_path, document);
    err << "wrote " << out_path << '\n';
    auto rows = report::bench_summary_rows(cases);
    report::Table table(std::move(rows.front()));
    for (std::size_t i = 1; i < rows.size(); ++i) {
      table.add_row(std::move(rows[i]));
    }
    table.print(out);
  }

  if (!core::all_agree(cases)) {
    for (const auto& benchmark : cases) {
      if (!benchmark.agreement) {
        err << "mood bench: DISAGREEMENT in " << benchmark.name << ": "
            << benchmark.mismatch << '\n';
      }
    }
    return kExitFailure;
  }
  return kExitOk;
}

}  // namespace mood::cli
