// `mood simulate`: generate a synthetic dataset from a Table-1 preset and
// write it as CSV (`user,lat,lon,timestamp`) — the input format `mood
// evaluate` and mobility::read_dataset_csv consume.

#include <fstream>
#include <ostream>

#include "mobility/io.h"
#include "mood_cli/cli.h"
#include "report/report.h"
#include "simulation/presets.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/options.h"

namespace mood::cli {

int cmd_simulate(int argc, const char* const* argv, std::ostream& out,
                 std::ostream& err) {
  support::FlagSet flags(
      "mood simulate",
      "Generate a synthetic mobility dataset from a preset (mdc | privamov\n"
      "| geolife | cabspotting | city-small) and write it as CSV.");
  flags.add_string("preset", "privamov", "dataset preset name");
  flags.add_double("scale", 0.25, "record-volume scale in (0, 4]");
  flags.add_int("seed", 42, "generator seed (byte-identical reruns)");
  flags.add_int("users", 0, "override the preset's user count (0 = keep)");
  flags.add_int("days", 0, "override the simulated period in days (0 = keep)");
  flags.add_string("out", "dataset.csv", "output CSV path ('-' = stdout)");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    out << flags.help();
    return kExitOk;
  }
  flags.reject_positionals();
  support::set_log_level(support::LogLevel::kWarn);

  simulation::GeneratorParams params = simulation::preset_params(
      flags.get_string("preset"), flags.get_double("scale"),
      static_cast<std::uint64_t>(flags.get_int("seed")));
  if (const auto users = flags.get_int("users"); users > 0) {
    params.users = static_cast<std::size_t>(users);
  }
  if (const auto days = flags.get_int("days"); days > 0) {
    params.days = static_cast<int>(days);
  }
  const mobility::Dataset dataset = simulation::generate(params);

  const std::string path = flags.get_string("out");
  if (path == "-") {
    mobility::write_dataset_csv(out, dataset);
    return kExitOk;
  }
  mobility::write_dataset_csv_file(path, dataset);
  err << "wrote " << dataset.record_count() << " records to " << path << '\n';
  report::dataset_summary(dataset).write(out);
  return kExitOk;
}

}  // namespace mood::cli
