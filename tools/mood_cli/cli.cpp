#include "mood_cli/cli.h"

#include <ostream>
#include <string>

#include "support/error.h"

namespace mood::cli {

namespace {

constexpr const char* kTopLevelHelp = R"(usage: mood <command> [flags]

MooD mobility-data privacy middleware: generate workloads, evaluate
protection strategies, aggregate results.

Commands:
  simulate   generate a synthetic mobility dataset (CSV) from a preset
  evaluate   run protection strategies over a dataset and emit result JSON
  report     aggregate and compare result JSON files across runs
  bench      benchmark attack inference (reference vs optimized) to JSON
  replay     replay a dataset through the online gateway, measure it
  metrics    render a metrics exposition or stream JSON as a table

Run `mood <command> --help` for the command's flags. Every flag can also be
set through the MOOD_<FLAG> environment (e.g. MOOD_SCALE=0.5).
)";

}  // namespace

int run(int argc, const char* const* argv, std::ostream& out,
        std::ostream& err) {
  if (argc < 2) {
    err << kTopLevelHelp;
    return kExitUsage;
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    out << kTopLevelHelp;
    return kExitOk;
  }

  // Shift so each subcommand sees itself as argv[0].
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  try {
    if (command == "simulate") return cmd_simulate(sub_argc, sub_argv, out, err);
    if (command == "evaluate") return cmd_evaluate(sub_argc, sub_argv, out, err);
    if (command == "report") return cmd_report(sub_argc, sub_argv, out, err);
    if (command == "bench") return cmd_bench(sub_argc, sub_argv, out, err);
    if (command == "replay") return cmd_replay(sub_argc, sub_argv, out, err);
    if (command == "metrics") return cmd_metrics(sub_argc, sub_argv, out, err);
    err << "mood: unknown command '" << command << "'\n\n" << kTopLevelHelp;
    return kExitUsage;
  } catch (const support::UsageError& error) {
    err << error.what() << '\n';
    return kExitUsage;
  } catch (const support::Error& error) {
    err << "mood " << command << ": " << error.what() << '\n';
    return kExitFailure;
  } catch (const std::exception& error) {
    err << "mood " << command << ": unexpected error: " << error.what()
        << '\n';
    return kExitFailure;
  }
}

}  // namespace mood::cli
