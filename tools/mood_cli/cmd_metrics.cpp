// `mood metrics`: render gateway telemetry for humans. Accepts either a
// Prometheus-style exposition written by `mood replay --metrics-out`
// (src/telemetry/exposition.h) or a mood-stream/1 JSON document, sniffed
// by the first non-space byte, and prints an aligned metric/value table.
//
// Exposition histograms are re-derived client-side: cumulative `le`
// bucket lines become nearest-rank p50/p95/p99 reported at the bucket's
// upper bound — the same arithmetic the exposition's writers used, so
// the table agrees with the mood-stream/1 latency block to bucket
// resolution. Per-shard series are summarised only under --per-shard.

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <iostream>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "mood_cli/cli.h"
#include "report/report.h"
#include "report/table.h"
#include "support/error.h"
#include "support/options.h"

namespace mood::cli {

namespace {

/// One parsed sample line: `name{labels} value` (labels may be empty).
struct Sample {
  std::string name;
  std::map<std::string, std::string> labels;
  std::string value_text;  // original token, reprinted verbatim
  double value = 0.0;
};

/// Parsed exposition: TYPE declarations in file order plus every sample.
struct Exposition {
  std::vector<std::pair<std::string, std::string>> types;  // name -> kind
  std::vector<Sample> samples;
};

bool parse_labels(const std::string& text, std::size_t& pos,
                  std::map<std::string, std::string>& labels) {
  // pos sits on '{'. Grammar (as written by render_exposition):
  //   { key="value" , key="value" }   — '\\' escapes inside the quotes.
  ++pos;
  while (pos < text.size() && text[pos] != '}') {
    while (pos < text.size() && (text[pos] == ',' || text[pos] == ' ')) ++pos;
    const std::size_t eq = text.find('=', pos);
    if (eq == std::string::npos) return false;
    const std::string key = text.substr(pos, eq - pos);
    if (eq + 1 >= text.size() || text[eq + 1] != '"') return false;
    std::string value;
    std::size_t i = eq + 2;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) ++i;
      value.push_back(text[i]);
      ++i;
    }
    if (i >= text.size()) return false;
    labels.emplace(key, std::move(value));
    pos = i + 1;
  }
  if (pos >= text.size()) return false;
  ++pos;  // consume '}'
  return true;
}

Exposition parse_exposition(const std::string& text, const std::string& path) {
  Exposition exposition;
  std::istringstream lines(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only `# TYPE <name> <kind>` carries structure; other comments
      // (HELP, free-form) pass through unrecorded.
      std::istringstream comment(line);
      std::string hash, keyword, name, kind;
      if (comment >> hash >> keyword >> name >> kind &&
          keyword == "TYPE") {
        exposition.types.emplace_back(name, kind);
      }
      continue;
    }
    Sample sample;
    std::size_t pos = line.find_first_of("{ ");
    if (pos == std::string::npos) {
      throw support::UsageError("mood metrics: " + path + ":" +
                                std::to_string(line_number) +
                                ": malformed sample line '" + line + "'");
    }
    sample.name = line.substr(0, pos);
    if (line[pos] == '{' && !parse_labels(line, pos, sample.labels)) {
      throw support::UsageError("mood metrics: " + path + ":" +
                                std::to_string(line_number) +
                                ": malformed label set in '" + line + "'");
    }
    while (pos < line.size() && line[pos] == ' ') ++pos;
    sample.value_text = line.substr(pos);
    if (sample.value_text.empty()) {
      throw support::UsageError("mood metrics: " + path + ":" +
                                std::to_string(line_number) +
                                ": sample line '" + line + "' has no value");
    }
    errno = 0;
    char* end = nullptr;
    sample.value = std::strtod(sample.value_text.c_str(), &end);
    if (end == sample.value_text.c_str() || *end != '\0') {
      throw support::UsageError("mood metrics: " + path + ":" +
                                std::to_string(line_number) +
                                ": non-numeric value '" + sample.value_text +
                                "'");
    }
    exposition.samples.push_back(std::move(sample));
  }
  return exposition;
}

/// Cumulative bucket list of one histogram series (one label group).
struct HistogramSeries {
  std::vector<std::pair<double, std::uint64_t>> buckets;  // (le, cumulative)
  double sum = 0.0;
  std::uint64_t count = 0;
};

std::string fixed(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

/// Nearest-rank percentile over cumulative buckets, reported at the
/// bucket's `le` bound (what the exposition makes recoverable; the
/// server-side block uses midpoints, so the two agree to one bucket).
double percentile_at_bound(const HistogramSeries& series, double q) {
  if (series.count == 0 || series.buckets.empty()) return 0.0;
  const auto rank = std::max<std::uint64_t>(
      1, std::uint64_t(std::ceil(q * double(series.count))));
  for (const auto& [le, cumulative] : series.buckets) {
    if (cumulative >= rank) return le;
  }
  return series.buckets.back().first;
}

void append_histogram_rows(std::vector<std::vector<std::string>>& rows,
                           const std::string& prefix,
                           const HistogramSeries& series) {
  rows.push_back({prefix + "_count", std::to_string(series.count)});
  rows.push_back({prefix + "_sum", fixed(series.sum, 6)});
  if (series.count > 0) {
    rows.push_back({prefix + "_p50", fixed(percentile_at_bound(series, 0.50), 6)});
    rows.push_back({prefix + "_p95", fixed(percentile_at_bound(series, 0.95), 6)});
    rows.push_back({prefix + "_p99", fixed(percentile_at_bound(series, 0.99), 6)});
  }
}

std::string render_labels(const std::map<std::string, std::string>& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + value + "\"";
  }
  out += "}";
  return out;
}

std::vector<std::vector<std::string>> exposition_rows(
    const Exposition& exposition, bool per_shard) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"metric", "value"});

  std::map<std::string, std::string> kind_of;
  for (const auto& [name, kind] : exposition.types) kind_of[name] = kind;

  // Histogram accumulation: base name -> shard label ("" = merged) ->
  // cumulative buckets. Walk samples once; everything else renders
  // directly in file (i.e. name-sorted) order.
  std::map<std::string, std::map<std::string, HistogramSeries>> histograms;
  for (const Sample& sample : exposition.samples) {
    std::string base;
    enum { kBucket, kSum, kCount, kScalar } part = kScalar;
    if (sample.name.size() > 7 && sample.name.ends_with("_bucket")) {
      base = sample.name.substr(0, sample.name.size() - 7);
      part = kBucket;
    } else if (sample.name.size() > 4 && sample.name.ends_with("_sum")) {
      base = sample.name.substr(0, sample.name.size() - 4);
      part = kSum;
    } else if (sample.name.size() > 6 && sample.name.ends_with("_count")) {
      base = sample.name.substr(0, sample.name.size() - 6);
      part = kCount;
    }
    if (part != kScalar && kind_of.count(base) != 0 &&
        kind_of[base] == "histogram") {
      const auto shard_it = sample.labels.find("shard");
      const std::string shard =
          shard_it == sample.labels.end() ? "" : shard_it->second;
      HistogramSeries& series = histograms[base][shard];
      if (part == kBucket) {
        const auto le_it = sample.labels.find("le");
        const double le = le_it == sample.labels.end() ||
                                  le_it->second == "+Inf"
                              ? std::numeric_limits<double>::infinity()
                              : std::strtod(le_it->second.c_str(), nullptr);
        series.buckets.emplace_back(le,
                                    std::uint64_t(std::llround(sample.value)));
      } else if (part == kSum) {
        series.sum = sample.value;
      } else {
        series.count = std::uint64_t(std::llround(sample.value));
      }
      continue;
    }
    // Counters and gauges: one row, value verbatim.
    rows.push_back({sample.name + render_labels(sample.labels),
                    sample.value_text});
  }

  for (auto& [base, groups] : histograms) {
    for (auto& [shard, series] : groups) {
      std::sort(series.buckets.begin(), series.buckets.end());
      if (shard.empty()) {
        append_histogram_rows(rows, base, series);
      } else if (per_shard) {
        append_histogram_rows(rows, base + "{shard=\"" + shard + "\"}",
                              series);
      }
    }
  }
  return rows;
}

void print_table(std::ostream& out,
                 const std::vector<std::vector<std::string>>& rows) {
  report::Table table(rows.front());
  for (std::size_t i = 1; i < rows.size(); ++i) table.add_row(rows[i]);
  table.print(out);
}

}  // namespace

int cmd_metrics(int argc, const char* const* argv, std::ostream& out,
                std::ostream& err) {
  (void)err;
  support::FlagSet flags(
      "mood metrics <file>...",
      "Render gateway telemetry as an aligned table. Inputs are sniffed:\n"
      "a Prometheus-style exposition (from `mood replay --metrics-out`)\n"
      "lists every counter/gauge plus derived histogram percentiles; a\n"
      "mood-stream/1 JSON document gets the replay summary table.");
  flags.add_bool("per-shard", false,
                 "also summarise per-shard histogram series (exposition "
                 "inputs only)");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    out << flags.help();
    return kExitOk;
  }
  if (flags.positional().empty()) {
    throw support::UsageError(
        "mood metrics: no input files (pass exposition or stream JSON "
        "paths)");
  }

  bool first = true;
  for (const auto& path : flags.positional()) {
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      throw support::IoError("mood metrics: cannot open '" + path + "'");
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    const std::string text = buffer.str();

    if (!first) out << '\n';
    first = false;

    const std::size_t head = text.find_first_not_of(" \t\r\n");
    if (head != std::string::npos && text[head] == '{') {
      const report::Json document = report::Json::parse(text);
      const std::string schema = document.string_or("schema", "(missing)");
      if (schema != report::kStreamSchema) {
        throw support::UsageError(
            "mood metrics: " + path + " has schema '" + schema +
            "' (expected " + std::string(report::kStreamSchema) +
            " or a metrics exposition)");
      }
      out << path << " [" << schema << "]\n";
      print_table(out, report::stream_summary_rows(document));
    } else {
      out << path << " [exposition]\n";
      print_table(out, exposition_rows(parse_exposition(text, path),
                                       flags.get_bool("per-shard")));
    }
  }
  return kExitOk;
}

}  // namespace mood::cli
