// Compiled with -DMOOD_DISABLE_TRACING (set per-source in
// tests/CMakeLists.txt) to pin the zero-overhead contract: MOOD_TRACE
// must expand to nothing and must not evaluate its tag expressions.
// telemetry_test.cpp calls disabled_tracing_evaluations() and asserts 0.

#include "telemetry/trace.h"

#ifndef MOOD_DISABLE_TRACING
#error "this translation unit must be compiled with MOOD_DISABLE_TRACING"
#endif

namespace mood::telemetry::testing {

int disabled_tracing_evaluations() {
  int evaluations = 0;
  const auto tag = [&evaluations]() {
    ++evaluations;
    return std::uint32_t{1};
  };
  {
    MOOD_TRACE("disabled.span", {.shard = tag()});
  }
  (void)tag;
  return evaluations;
}

}  // namespace mood::telemetry::testing
