// Mock-driven tests of the HybridLPPM baseline: per-user best protective
// single LPPM, no compositions, no splitting.

#include <gtest/gtest.h>

#include "core/hybrid.h"
#include "metrics/distortion.h"
#include "support/error.h"
#include "test_helpers.h"

namespace mood::core {
namespace {

using mobility::kHour;
using mobility::Timestamp;
using mobility::Trace;
using testing::FakeAttack;
using testing::rec;
using testing::ShiftLppm;

constexpr double kBaseLat = 45.0;

double shift_of(const Trace& trace) {
  if (trace.empty()) return 0.0;
  double mean_lat = 0.0;
  for (const auto& r : trace.records()) mean_lat += r.position.lat;
  mean_lat /= static_cast<double>(trace.size());
  return geo::deg_to_rad(mean_lat - kBaseLat) * geo::kEarthRadiusM;
}

FakeAttack::Oracle catches_below(double threshold_m) {
  return [threshold_m](const Trace& trace) -> std::optional<mobility::UserId> {
    if (shift_of(trace) < threshold_m) return mobility::UserId("victim");
    return std::nullopt;
  };
}

Trace day_trace() {
  std::vector<mobility::Record> records;
  for (Timestamp t = 0; t < 24 * kHour; t += kHour) {
    records.push_back(rec(kBaseLat, 5.0, t));
  }
  return Trace("victim", std::move(records));
}

class HybridTest : public ::testing::Test {
 protected:
  ShiftLppm a_{"A", 60.0};
  ShiftLppm b_{"B", 100.0};
  ShiftLppm c_{"C", 150.0};
  std::vector<const lppm::Lppm*> singles_{&a_, &b_, &c_};
  metrics::SpatialTemporalDistortion metric_;
};

TEST_F(HybridTest, PicksBestUtilityAmongProtectiveSingles) {
  FakeAttack attack("fake", catches_below(80.0));
  const HybridLppm hybrid(singles_, {&attack}, &metric_);
  const auto result = hybrid.protect(day_trace());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->lppm, "B");  // 100 m beats 150 m, 60 m is caught
  EXPECT_NEAR(result->distortion, 100.0, 1.0);
}

TEST_F(HybridTest, OrphanUserYieldsNullopt) {
  // No single reaches 200 m: hybrid gives up (MooD's compositions would
  // not).
  FakeAttack attack("fake", catches_below(200.0));
  const HybridLppm hybrid(singles_, {&attack}, &metric_);
  EXPECT_FALSE(hybrid.protect(day_trace()).has_value());
}

TEST_F(HybridTest, AllAttacksMustFail) {
  FakeAttack weak("weak", catches_below(80.0));
  FakeAttack strong("strong", catches_below(120.0));
  const HybridLppm hybrid(singles_, {&weak, &strong}, &metric_);
  const auto result = hybrid.protect(day_trace());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->lppm, "C");  // only 150 m clears both thresholds
}

TEST_F(HybridTest, EmptyTraceIsNotProtectable) {
  FakeAttack attack("fake", catches_below(0.0));
  const HybridLppm hybrid(singles_, {&attack}, &metric_);
  EXPECT_FALSE(hybrid.protect(Trace("victim", {})).has_value());
}

TEST_F(HybridTest, ValidatesConstruction) {
  FakeAttack attack("fake", catches_below(0.0));
  EXPECT_THROW(HybridLppm({}, {&attack}, &metric_),
               support::PreconditionError);
  EXPECT_THROW(HybridLppm(singles_, {}, &metric_),
               support::PreconditionError);
  EXPECT_THROW(HybridLppm(singles_, {&attack}, nullptr),
               support::PreconditionError);
}

}  // namespace
}  // namespace mood::core
