// Unit tests for the mobility subsystem: traces, datasets, splits and CSV
// import/export.

#include <gtest/gtest.h>

#include <sstream>

#include "mobility/dataset.h"
#include "mobility/io.h"
#include "mobility/trace.h"
#include "support/csv.h"
#include "support/error.h"
#include "test_helpers.h"

namespace mood::mobility {
namespace {

using testing::dwell;
using testing::rec;
using testing::trace_of;

TEST(Trace, SortsUnorderedRecordsOnConstruction) {
  const Trace trace("u", {rec(45, 5, 300), rec(45, 5, 100), rec(45, 5, 200)});
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.at(0).time, 100);
  EXPECT_EQ(trace.at(1).time, 200);
  EXPECT_EQ(trace.at(2).time, 300);
}

TEST(Trace, SortIsStableForEqualTimestamps) {
  const Trace trace("u", {rec(1, 1, 100), rec(2, 2, 50), rec(3, 3, 100)});
  EXPECT_EQ(trace.at(1).position.lat, 1.0);  // first 100-stamp keeps order
  EXPECT_EQ(trace.at(2).position.lat, 3.0);
}

TEST(Trace, AppendEnforcesOrdering) {
  Trace trace("u", {rec(45, 5, 100)});
  EXPECT_NO_THROW(trace.append(rec(45, 5, 100)));  // equal is fine
  EXPECT_NO_THROW(trace.append(rec(45, 5, 150)));
  EXPECT_THROW(trace.append(rec(45, 5, 50)), support::PreconditionError);
}

TEST(Trace, FrontBackAtGuards) {
  const Trace empty("u", {});
  EXPECT_THROW(static_cast<void>(empty.front()), support::PreconditionError);
  EXPECT_THROW(static_cast<void>(empty.back()), support::PreconditionError);
  const Trace one("u", {rec(45, 5, 10)});
  EXPECT_THROW(static_cast<void>(one.at(1)), support::PreconditionError);
  EXPECT_EQ(one.front(), one.back());
}

TEST(Trace, DurationSpansFirstToLast) {
  EXPECT_EQ(Trace("u", {}).duration(), 0);
  EXPECT_EQ(Trace("u", {rec(45, 5, 10)}).duration(), 0);
  const Trace trace("u", {rec(45, 5, 10), rec(45, 5, 250)});
  EXPECT_EQ(trace.duration(), 240);
}

TEST(Trace, BetweenIsHalfOpen) {
  const Trace trace("u", {rec(1, 1, 10), rec(2, 2, 20), rec(3, 3, 30)});
  const Trace mid = trace.between(10, 30);
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_EQ(mid.at(0).time, 10);
  EXPECT_EQ(mid.at(1).time, 20);
  EXPECT_TRUE(trace.between(31, 100).empty());
  EXPECT_EQ(mid.user(), "u");
}

TEST(Trace, SplitInHalfByTime) {
  // Records at 0..9 hours; midpoint at 4.5 h.
  std::vector<Record> records;
  for (int h = 0; h < 10; ++h) records.push_back(rec(45, 5, h * 3600));
  const Trace trace("u", std::move(records));
  const auto [left, right] = trace.split_in_half();
  EXPECT_EQ(left.size(), 5u);
  EXPECT_EQ(right.size(), 5u);
  EXPECT_LT(left.back().time, right.front().time);
  EXPECT_EQ(left.size() + right.size(), trace.size());
}

TEST(Trace, SplitInHalfDegenerateTimestamps) {
  // All records share a timestamp: fall back to count splitting so the
  // fine-grained recursion always makes progress.
  const Trace trace("u", {rec(1, 1, 5), rec(2, 2, 5), rec(3, 3, 5),
                          rec(4, 4, 5)});
  const auto [left, right] = trace.split_in_half();
  EXPECT_EQ(left.size(), 2u);
  EXPECT_EQ(right.size(), 2u);
}

TEST(Trace, SplitOfEmptyIsEmptyPair) {
  const Trace trace("u", {});
  const auto [left, right] = trace.split_in_half();
  EXPECT_TRUE(left.empty());
  EXPECT_TRUE(right.empty());
}

TEST(Trace, SlicesPartitionRecords) {
  std::vector<Record> records;
  for (int m = 0; m < 600; m += 10) records.push_back(rec(45, 5, m * 60));
  const Trace trace("u", std::move(records));  // 10 hours, 60 records
  const auto slices = trace.slices(2 * kHour);
  ASSERT_EQ(slices.size(), 5u);
  std::size_t total = 0;
  Timestamp last_end = -1;
  for (const auto& slice : slices) {
    EXPECT_FALSE(slice.empty());
    EXPECT_LE(slice.duration(), 2 * kHour);
    EXPECT_GT(slice.front().time, last_end);
    last_end = slice.back().time;
    total += slice.size();
    EXPECT_EQ(slice.user(), "u");
  }
  EXPECT_EQ(total, trace.size());
}

TEST(Trace, SlicesSkipEmptyGaps) {
  // Records in hour 0 and hour 5 only: 1-hour slicing must not emit empty
  // slices for hours 1-4.
  const Trace trace("u", {rec(1, 1, 0), rec(1, 1, 60),
                          rec(2, 2, 5 * kHour), rec(2, 2, 5 * kHour + 60)});
  const auto slices = trace.slices(kHour);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].size(), 2u);
  EXPECT_EQ(slices[1].size(), 2u);
}

TEST(Trace, SplitInHalfSingleTimestampUnevenCount) {
  // Fallback splits by record count; an odd count must still hand every
  // record to exactly one side.
  const Trace trace("u", {rec(1, 1, 7), rec(2, 2, 7), rec(3, 3, 7)});
  const auto [left, right] = trace.split_in_half();
  EXPECT_EQ(left.size(), 1u);
  EXPECT_EQ(right.size(), 2u);
  EXPECT_EQ(left.size() + right.size(), trace.size());
}

TEST(Trace, SplitInHalfSingleRecord) {
  const Trace trace("u", {rec(45, 5, 10)});
  const auto [left, right] = trace.split_in_half();
  EXPECT_EQ(left.size() + right.size(), 1u);
}

TEST(Trace, SlicesJumpMultiWeekGapsDirectly) {
  // A >30-day gap with a 1-hour slice: the window must jump straight to
  // the record after the gap (the old one-slice-at-a-time walk was
  // O(gap/slice)), and boundaries must stay anchored at the trace start.
  // The two post-gap records straddle a t0-anchored window boundary, so a
  // regression to record-anchored windows would merge them into one slice.
  const Timestamp t0 = 500;
  const Timestamp after_gap = t0 + 40 * kDay + 3599;
  const Trace trace("u", {rec(1, 1, t0), rec(1, 1, t0 + 60),
                          rec(2, 2, after_gap), rec(2, 2, after_gap + 2)});
  const auto slices = trace.slices(kHour);
  ASSERT_EQ(slices.size(), 3u);
  EXPECT_EQ(slices[0].size(), 2u);
  EXPECT_EQ(slices[1].size(), 1u);
  EXPECT_EQ(slices[2].size(), 1u);
  EXPECT_EQ(slices[1].front().time, after_gap);
  EXPECT_EQ(slices[2].front().time, after_gap + 2);
}

TEST(Trace, SlicesBoundaryRecordOpensNewSlice) {
  // A record exactly on a window boundary belongs to the next slice.
  const Trace trace("u", {rec(1, 1, 0), rec(2, 2, kHour)});
  const auto slices = trace.slices(kHour);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[1].front().time, kHour);
}

TEST(Trace, SlicesRejectNonPositiveDuration) {
  const Trace trace("u", {rec(45, 5, 0)});
  EXPECT_THROW(trace.slices(0), support::PreconditionError);
}

TEST(Trace, TrackedSlicesMatchFullRebuildUnderAppend) {
  // The streaming fast path: maintain slice bookkeeping across appends and
  // compare against a freshly built (untracked) trace after every one.
  // Gap sizes exercise within-slice, boundary, multi-slice-jump and
  // same-timestamp appends.
  const std::vector<Timestamp> gaps = {0,         5 * kMinute, kHour,
                                       3 * kHour, 0,           26 * kHour,
                                       kMinute,   2 * kHour,   40 * kDay,
                                       3599,      1};
  Trace tracked("u", {});
  tracked.track_slices(2 * kHour);
  EXPECT_EQ(tracked.tracked_slice(), 2 * kHour);
  Timestamp t = 500;
  int i = 0;
  for (const Timestamp gap : gaps) {
    t += gap;
    tracked.append(rec(45 + 0.001 * i++, 5, t));
    const Trace rebuilt("u", {tracked.records().begin(),
                              tracked.records().end()});
    ASSERT_EQ(tracked.slices(2 * kHour), rebuilt.slices(2 * kHour));
    ASSERT_EQ(tracked.slice_count(2 * kHour),
              rebuilt.slices(2 * kHour).size());
    // Untracked durations still take the derivation path.
    ASSERT_EQ(tracked.slices(kHour), rebuilt.slices(kHour));
  }
}

TEST(Trace, TrackSlicesOnExistingTraceDerivesCurrentPartition) {
  std::vector<Record> records;
  for (int m = 0; m < 600; m += 10) records.push_back(rec(45, 5, m * 60));
  Trace trace("u", std::move(records));
  const auto expected = trace.slices(2 * kHour);
  trace.track_slices(2 * kHour);
  EXPECT_EQ(trace.slices(2 * kHour), expected);
  EXPECT_EQ(trace.slice_count(2 * kHour), expected.size());
}

TEST(Trace, DropFrontEvictsAndRedrivesTracking) {
  Trace trace("u", {});
  trace.track_slices(kHour);
  for (int i = 0; i < 10; ++i) {
    trace.append(rec(45, 5, i * 30 * kMinute));
  }
  trace.drop_front(4);
  ASSERT_EQ(trace.size(), 6u);
  EXPECT_EQ(trace.front().time, 4 * 30 * kMinute);
  // The slice grid re-anchors on the new first record.
  const Trace rebuilt("u", {trace.records().begin(), trace.records().end()});
  EXPECT_EQ(trace.slices(kHour), rebuilt.slices(kHour));

  trace.drop_front(100);  // clamps to size
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.slice_count(kHour), 0u);
}

TEST(Trace, EqualityIgnoresSliceTracking) {
  Trace a("u", {rec(45, 5, 0), rec(45, 5, kHour)});
  Trace b("u", {rec(45, 5, 0), rec(45, 5, kHour)});
  a.track_slices(kHour);
  EXPECT_EQ(a, b);
}

TEST(Trace, BoundingBoxCoversAllRecords) {
  const Trace trace("u", {rec(45, 5, 0), rec(46, 4, 10)});
  const auto box = trace.bounding_box();
  EXPECT_TRUE(box.contains(geo::GeoPoint{45.5, 4.5}));
}

// -------------------------------------------------------------- Dataset --

TEST(Dataset, AddFindAndCounts) {
  Dataset dataset("d");
  dataset.add(Trace("a", {rec(45, 5, 0), rec(45, 5, 10)}));
  dataset.add(Trace("b", {rec(45, 5, 0)}));
  EXPECT_EQ(dataset.user_count(), 2u);
  EXPECT_EQ(dataset.record_count(), 3u);
  ASSERT_NE(dataset.find("a"), nullptr);
  EXPECT_EQ(dataset.find("a")->size(), 2u);
  EXPECT_EQ(dataset.find("zzz"), nullptr);
}

TEST(Dataset, RejectsDuplicateUser) {
  Dataset dataset("d");
  dataset.add(Trace("a", {}));
  EXPECT_THROW(dataset.add(Trace("a", {})), support::PreconditionError);
}

TEST(Dataset, ChronologicalSplitHalvesTimeSpan) {
  Dataset dataset("d");
  std::vector<Record> records;
  for (int d = 0; d < 30; ++d) {
    records.push_back(rec(45, 5, d * kDay));
    records.push_back(rec(45, 5, d * kDay + kHour));
  }
  dataset.add(Trace("u", std::move(records)));
  const auto pairs = dataset.chronological_split(0.5, 2);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_GT(pairs[0].train.size(), 0u);
  EXPECT_GT(pairs[0].test.size(), 0u);
  EXPECT_LT(pairs[0].train.back().time, pairs[0].test.front().time);
  EXPECT_EQ(pairs[0].train.size() + pairs[0].test.size(), 60u);
  // The cut is at half the time span.
  EXPECT_NEAR(static_cast<double>(pairs[0].train.size()), 30.0, 2.0);
}

TEST(Dataset, ChronologicalSplitDropsInactiveUsers) {
  Dataset dataset("d");
  dataset.add(Trace("active", testing::dwell(geo::GeoPoint{45, 5}, 0, 100)));
  dataset.add(Trace("sparse", {rec(45, 5, 0), rec(45, 5, 10)}));
  const auto pairs = dataset.chronological_split(0.5, 10);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].train.user(), "active");
}

TEST(Dataset, ChronologicalSplitValidatesFraction) {
  const Dataset dataset("d");
  EXPECT_THROW(dataset.chronological_split(0.0), support::PreconditionError);
  EXPECT_THROW(dataset.chronological_split(1.0), support::PreconditionError);
}

TEST(Dataset, MostActiveWindowPicksDensestSpan) {
  Dataset dataset("d");
  std::vector<Record> records;
  // 2 records/day in days 0-9, then 20 records/day in days 20-24.
  for (int d = 0; d < 10; ++d) {
    records.push_back(rec(45, 5, d * kDay));
    records.push_back(rec(45, 5, d * kDay + kHour));
  }
  for (int d = 20; d < 25; ++d) {
    for (int i = 0; i < 20; ++i) {
      records.push_back(rec(45, 5, d * kDay + i * kHour / 2));
    }
  }
  dataset.add(Trace("u", std::move(records)));
  const Dataset densest = most_active_window(dataset, 5);
  ASSERT_EQ(densest.user_count(), 1u);
  EXPECT_EQ(densest.traces()[0].size(), 100u);
  EXPECT_GE(densest.traces()[0].front().time, 20 * kDay);
}

// ------------------------------------------------------------------ IO --

TEST(Io, RoundTripsDatasetThroughCsv) {
  Dataset dataset("roundtrip");
  dataset.add(Trace("alice", {rec(45.123456, 5.654321, 100),
                              rec(45.2, 5.7, 200)}));
  dataset.add(Trace("bob", {rec(46.0, 6.0, 50)}));
  std::stringstream buffer;
  write_dataset_csv(buffer, dataset);
  const Dataset loaded = read_dataset_csv(buffer, "roundtrip");
  EXPECT_EQ(loaded.user_count(), 2u);
  EXPECT_EQ(loaded.record_count(), 3u);
  ASSERT_NE(loaded.find("alice"), nullptr);
  EXPECT_NEAR(loaded.find("alice")->at(0).position.lat, 45.123456, 1e-6);
  EXPECT_EQ(loaded.find("alice")->at(1).time, 200);
}

TEST(Io, PreservesUserOrder) {
  std::stringstream buffer("user,lat,lon,timestamp\nzed,45,5,1\nann,45,5,2\n");
  const Dataset loaded = read_dataset_csv(buffer, "d");
  EXPECT_EQ(loaded.traces()[0].user(), "zed");
  EXPECT_EQ(loaded.traces()[1].user(), "ann");
}

TEST(Io, SortsRecordsWithinUser) {
  std::stringstream buffer("u,45,5,300\nu,45,5,100\n");
  const Dataset loaded = read_dataset_csv(buffer, "d");
  EXPECT_EQ(loaded.traces()[0].at(0).time, 100);
}

TEST(Io, RejectsMalformedRows) {
  std::stringstream missing_field("u,45,5\n");
  EXPECT_THROW(read_dataset_csv(missing_field, "d"), support::IoError);
  std::stringstream bad_lat("u,notanumber,5,1\n");
  EXPECT_THROW(read_dataset_csv(bad_lat, "d"), support::IoError);
  std::stringstream bad_time("u,45,5,onehundred\n");
  EXPECT_THROW(read_dataset_csv(bad_time, "d"), support::IoError);
  std::stringstream out_of_range("u,95,5,1\n");
  EXPECT_THROW(read_dataset_csv(out_of_range, "d"), support::IoError);
  // Pole-adjacent fixes are rejected so geo::destination / LocalProjection
  // preconditions can't abort a batch mid-run on loaded data.
  std::stringstream pole("u,90,5,1\n");
  EXPECT_THROW(read_dataset_csv(pole, "d"), support::IoError);
}

TEST(Io, RejectsFuzzedNumericRows) {
  // Table of rows a fuzzer (or a corrupt upstream export) can produce that
  // std::from_chars would happily parse into garbage: non-finite doubles,
  // exponent overflow, embedded NULs, and a field bloated past the CSV cap.
  struct Case {
    const char* label;
    std::string row;
  };
  const std::string oversized_id(support::kMaxCsvFieldBytes + 16, 'u');
  const std::vector<Case> cases = {
      {"nan latitude", "u,nan,5,1\n"},
      {"inf longitude", "u,45,inf,1\n"},
      {"negative inf latitude", "u,-inf,5,1\n"},
      {"exponent overflow", "u,45,1e999,1\n"},
      {"negative exponent overflow", "u,-1e999,5,1\n"},
      {"hex-ish junk", "u,0x1p3,5,1\n"},
      {"timestamp overflow", "u,45,5,99999999999999999999999999\n"},
      {"embedded NUL", std::string("u,4\0 5,5,1\n", 11)},
      {"oversized field", oversized_id + ",45,5,1\n"},
  };
  for (const Case& c : cases) {
    std::stringstream in(c.row);
    EXPECT_THROW(read_dataset_csv(in, "d"), support::IoError) << c.label;
  }
  // Sanity: the same shape with finite numbers is accepted.
  std::stringstream good("u,45.0,5.0,1\n");
  EXPECT_EQ(read_dataset_csv(good, "d").user_count(), 1u);
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(read_dataset_csv_file("/no/such/file.csv", "d"),
               support::IoError);
}

}  // namespace
}  // namespace mood::mobility
