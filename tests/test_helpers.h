#pragma once

/// \file test_helpers.h
/// Shared fixtures for the MooD test suite: compact trace builders, a
/// deterministic synthetic population, and controllable mock LPPMs/attacks
/// used to exercise Algorithm 1's control flow exactly.

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "attacks/attack.h"
#include "geo/geo.h"
#include "lppm/lppm.h"
#include "mobility/dataset.h"
#include "mobility/record.h"
#include "mobility/trace.h"

namespace mood::testing {

using geo::GeoPoint;
using mobility::kDay;
using mobility::kHour;
using mobility::kMinute;
using mobility::Record;
using mobility::Timestamp;
using mobility::Trace;

/// A record at (lat, lon, t).
inline Record rec(double lat, double lon, Timestamp t) {
  return Record{GeoPoint{lat, lon}, t};
}

/// A stationary dwell: `n` records at `p`, spaced `step` seconds apart,
/// starting at `t0`.
inline std::vector<Record> dwell(const GeoPoint& p, Timestamp t0,
                                 std::size_t n, Timestamp step = 5 * kMinute) {
  std::vector<Record> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(Record{p, t0 + static_cast<Timestamp>(i) * step});
  }
  return out;
}

/// Concatenates record runs into one trace for `user`.
inline Trace trace_of(const std::string& user,
                      std::initializer_list<std::vector<Record>> runs) {
  std::vector<Record> all;
  for (const auto& run : runs) all.insert(all.end(), run.begin(), run.end());
  return Trace(user, std::move(all));
}

/// LPPM mock: displaces every record due north by a fixed distance and
/// ignores randomness. Displacements compose additively, which makes the
/// engine's composition arithmetic directly observable.
class ShiftLppm final : public lppm::Lppm {
 public:
  ShiftLppm(std::string name, double north_m)
      : name_(std::move(name)), north_m_(north_m) {}

  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] Trace apply(const Trace& trace,
                            support::RngStream /*rng*/) const override {
    std::vector<Record> out;
    out.reserve(trace.size());
    for (const auto& r : trace.records()) {
      out.push_back(Record{geo::destination(r.position, 0.0, north_m_),
                           r.time});
    }
    return Trace(trace.user(), std::move(out));
  }

 private:
  std::string name_;
  double north_m_;
};

/// Attack mock driven by an arbitrary predicate on the observed trace.
class FakeAttack final : public attacks::Attack {
 public:
  using Oracle =
      std::function<std::optional<mobility::UserId>(const Trace&)>;

  FakeAttack(std::string name, Oracle oracle)
      : name_(std::move(name)), oracle_(std::move(oracle)) {}

  [[nodiscard]] std::string name() const override { return name_; }

  void train(const std::vector<Trace>& background) override {
    trained_ = background.size();
  }

  [[nodiscard]] std::optional<mobility::UserId> reidentify(
      const Trace& anonymous_trace) const override {
    return oracle_(anonymous_trace);
  }

  [[nodiscard]] std::size_t trained_users() const override {
    return trained_ == 0 ? 1 : trained_;  // mocks count as trained
  }

 private:
  std::string name_;
  Oracle oracle_;
  std::size_t trained_ = 0;
};

/// Mean northward displacement (metres) of `later` relative to `base`,
/// assuming records align index-to-index.
inline double mean_north_shift_m(const Trace& base, const Trace& later) {
  if (base.empty() || later.empty() || base.size() != later.size()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    const double dlat =
        later.at(i).position.lat - base.at(i).position.lat;
    total += geo::deg_to_rad(dlat) * geo::kEarthRadiusM;
  }
  return total / static_cast<double>(base.size());
}

/// Small deterministic population of `n` users with well-separated homes
/// and workplaces: every attack re-identifies everyone on raw data, which
/// gives tests a known-vulnerable baseline. Each user's day: home dwell,
/// work dwell, home dwell, repeated for `days` days; home/work are ~5 km
/// apart and distinct per user (spaced along latitude).
inline mobility::Dataset distinct_population(std::size_t n, int days = 4) {
  mobility::Dataset dataset("distinct");
  for (std::size_t u = 0; u < n; ++u) {
    const double base_lat = 45.0 + 0.05 * static_cast<double>(u);
    const GeoPoint home{base_lat, 5.0};
    const GeoPoint work{base_lat + 0.02, 5.03};
    std::vector<Record> records;
    for (int d = 0; d < days; ++d) {
      const Timestamp day = 1546300800 + static_cast<Timestamp>(d) * kDay;
      auto add = [&](const GeoPoint& p, Timestamp from, Timestamp to) {
        for (Timestamp t = from; t < to; t += 10 * kMinute) {
          records.push_back(Record{p, day + t});
        }
      };
      add(home, 0, 8 * kHour);
      add(work, 9 * kHour, 17 * kHour);
      add(home, 18 * kHour, 24 * kHour);
    }
    dataset.add(Trace("user" + std::to_string(u), std::move(records)));
  }
  return dataset;
}

}  // namespace mood::testing
