// Tests for the online MooD gateway (src/stream): sharded user-state
// store semantics, incremental-vs-full profile equivalence (the AP
// heatmap exactly, PIT/POI under the staleness-rebuild policy), and the
// StreamEngine/Replay pipeline's headline invariant — final streamed
// decisions are bit-identical to the batch evaluators, independent of
// batch size, shard count and drain parallelism.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "attacks/ap_attack.h"
#include "attacks/pit_attack.h"
#include "attacks/poi_attack.h"
#include "clustering/incremental_stays.h"
#include "clustering/poi_extraction.h"
#include "core/experiment.h"
#include "geo/geo.h"
#include "profiles/heatmap.h"
#include "profiles/markov_profile.h"
#include "profiles/poi_profile.h"
#include "simulation/generator.h"
#include "stream/engine.h"
#include "stream/event.h"
#include "stream/replay.h"
#include "stream/resilience.h"
#include "stream/snapshot.h"
#include "stream/user_state.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/logging.h"
#include "telemetry/exposition.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace mood::stream {
namespace {

/// Compact population in the integration-test mold: routine users with
/// mostly-private POIs, so both expose and protect verdicts appear.
simulation::GeneratorParams population_params() {
  simulation::GeneratorParams p;
  p.users = 10;
  p.days = 6;
  p.records_per_user_per_day = 120.0;
  p.p_private_poi = 0.75;
  p.p_private_leisure = 0.8;
  p.private_poi_spread_m = 4000.0;
  p.relocation_prob = 0.1;
  p.seed = 4321;
  return p;
}

class StreamTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    support::set_log_level(support::LogLevel::kWarn);
    dataset_ = new mobility::Dataset(
        simulation::generate(population_params()));
    core::ExperimentConfig config;
    config.min_records = 8;
    harness_ = new core::ExperimentHarness(*dataset_, config, /*seed=*/11);
    events_ = new std::vector<StreamEvent>(
        make_event_stream(harness_->pairs()));
  }
  static void TearDownTestSuite() {
    delete events_;
    delete harness_;
    delete dataset_;
    events_ = nullptr;
    harness_ = nullptr;
    dataset_ = nullptr;
  }

  void TearDown() override { testing::FailPoint::disarm_all(); }

  /// Replays the shared event stream through a fresh gateway and returns
  /// (decisions, result).
  static ReplayResult replay_with(StreamConfig config,
                                  ReplayOptions options = {}) {
    StreamEngine engine(harness_->make_engine(), config);
    return run_replay(engine, *events_, options);
  }

  static mobility::Dataset* dataset_;
  static core::ExperimentHarness* harness_;
  static std::vector<StreamEvent>* events_;
};

mobility::Dataset* StreamTest::dataset_ = nullptr;
core::ExperimentHarness* StreamTest::harness_ = nullptr;
std::vector<StreamEvent>* StreamTest::events_ = nullptr;

// ------------------------------------------------------ event stream --

TEST_F(StreamTest, EventStreamIsTimeOrderedAndComplete) {
  std::size_t expected = 0;
  for (const auto& pair : harness_->pairs()) expected += pair.test.size();
  ASSERT_EQ(events_->size(), expected);
  for (std::size_t i = 1; i < events_->size(); ++i) {
    EXPECT_LE((*events_)[i - 1].record.time, (*events_)[i].record.time);
    EXPECT_EQ((*events_)[i].seq, i);
  }
}

TEST_F(StreamTest, EventStreamReassemblesEachUsersTestTrace) {
  std::unordered_map<mobility::UserId, std::vector<mobility::Record>> rebuilt;
  for (const auto& event : *events_) {
    rebuilt[event.user].push_back(event.record);
  }
  for (const auto& pair : harness_->pairs()) {
    const auto it = rebuilt.find(pair.test.user());
    ASSERT_NE(it, rebuilt.end());
    EXPECT_EQ(it->second, pair.test.records());
  }
}

// -------------------------------------------------------------- store --

TEST(UserStateStore, ShardingIsStableAndEnqueueMarksDirty) {
  UserStateStore store(StoreConfig{4, 0});
  EXPECT_EQ(store.shard_count(), 4u);
  EXPECT_EQ(store.shard_of("alice"), store.shard_of("alice"));

  store.enqueue(StreamEvent{"alice", {{45.0, 5.0}, 100}, 0});
  store.enqueue(StreamEvent{"alice", {{45.0, 5.0}, 200}, 1});
  store.enqueue(StreamEvent{"bob", {{46.0, 6.0}, 150}, 2});
  EXPECT_EQ(store.user_count(), 2u);

  std::size_t visited = 0;
  std::size_t pending = 0;
  for (std::size_t s = 0; s < store.shard_count(); ++s) {
    visited += store.drain_shard(s, [&](UserState& state) {
      pending += state.pending.size();
      state.pending.clear();
    });
  }
  EXPECT_EQ(visited, 2u);
  EXPECT_EQ(pending, 3u);

  // Drained users are no longer dirty.
  visited = 0;
  for (std::size_t s = 0; s < store.shard_count(); ++s) {
    visited += store.drain_shard(s, [](UserState&) {});
  }
  EXPECT_EQ(visited, 0u);
}

TEST(UserStateStore, LruEvictionPrefersLeastRecentlyTouchedCleanUser) {
  // One shard so every user competes for the same capacity.
  UserStateStore store(StoreConfig{1, 2});
  store.enqueue(StreamEvent{"a", {{45.0, 5.0}, 100}, 0});
  store.enqueue(StreamEvent{"b", {{45.0, 5.0}, 200}, 1});
  store.drain_shard(0, [](UserState& state) { state.pending.clear(); });
  // Touch "a" again so "b" is the LRU candidate.
  store.enqueue(StreamEvent{"a", {{45.0, 5.0}, 300}, 2});

  store.enqueue(StreamEvent{"c", {{45.0, 5.0}, 400}, 3});
  EXPECT_EQ(store.user_count(), 2u);
  EXPECT_EQ(store.eviction_count(), 1u);

  std::vector<std::string> resident;
  store.for_each([&](UserState& state) { resident.push_back(state.user); });
  std::sort(resident.begin(), resident.end());
  EXPECT_EQ(resident, (std::vector<std::string>{"a", "c"}));
}

TEST(UserStateStore, RejectsZeroShards) {
  EXPECT_THROW(UserStateStore(StoreConfig{0, 0}), support::PreconditionError);
}

/// The exact --max-users boundary with *every* resident state dirty: the
/// store must still admit the newcomer by evicting the least-recently-
/// touched dirty user, drop that user's id from the dirty list (no
/// dangling drains), and lose no pending events of the survivors.
TEST(UserStateStore, EvictionAtExactCapacityWhenEveryResidentIsDirty) {
  UserStateStore store(StoreConfig{1, 2});
  store.enqueue(StreamEvent{"a", {{45.0, 5.0}, 100}, 0});
  store.enqueue(StreamEvent{"b", {{45.0, 5.0}, 200}, 1});
  store.enqueue(StreamEvent{"b", {{45.0, 5.0}, 250}, 2});
  ASSERT_EQ(store.user_count(), 2u);  // at the exact capacity bound

  // Nobody drained: both residents hold undecided events. Admitting "c"
  // must evict "a" (least-recently-touched; the all-dirty fallback).
  store.enqueue(StreamEvent{"c", {{45.0, 5.0}, 300}, 3});
  EXPECT_EQ(store.user_count(), 2u);
  EXPECT_EQ(store.eviction_count(), 1u);

  // Re-enqueueing a resident at the bound must NOT evict anyone.
  store.enqueue(StreamEvent{"b", {{45.0, 5.0}, 350}, 4});
  EXPECT_EQ(store.user_count(), 2u);
  EXPECT_EQ(store.eviction_count(), 1u);

  // The drain sees exactly the survivors, with their queues intact — and
  // never chases the evicted user's dangling dirty entry.
  std::unordered_map<std::string, std::size_t> pending;
  const std::size_t visited = store.drain_shard(0, [&](UserState& state) {
    pending[state.user] = state.pending.size();
    state.pending.clear();
  });
  EXPECT_EQ(visited, 2u);
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending.at("b"), 3u);
  EXPECT_EQ(pending.at("c"), 1u);
}

// ------------------------------- incremental profile equivalence --------

/// The satellite property test: stream a real test trace point by point;
/// after every point the incrementally maintained profiles must be
/// decision-identical to a one-shot compile for all three attacks (and
/// the AP heatmap bit-identical cell for cell).
TEST_F(StreamTest, IncrementalProfilesAreDecisionIdenticalPointByPoint) {
  const attacks::ApAttack* ap = nullptr;
  const attacks::PitAttack* pit = nullptr;
  const attacks::PoiAttack* poi = nullptr;
  for (const auto& attack : harness_->attacks()) {
    if (ap == nullptr) ap = dynamic_cast<const attacks::ApAttack*>(attack.get());
    if (pit == nullptr) {
      pit = dynamic_cast<const attacks::PitAttack*>(attack.get());
    }
    if (poi == nullptr) {
      poi = dynamic_cast<const attacks::PoiAttack*>(attack.get());
    }
  }
  ASSERT_NE(ap, nullptr);
  ASSERT_NE(pit, nullptr);
  ASSERT_NE(poi, nullptr);

  const auto& pair = harness_->pairs().front();
  const mobility::UserId owner = pair.test.user();

  mobility::Trace window;
  window.set_user(owner);
  auto heatmap =
      profiles::CompiledHeatmap::incremental(window, ap->grid());
  for (const auto& record : pair.test.records()) {
    window.append(record);
    heatmap.apply_update({record}, {}, ap->grid());

    // AP: the folded heatmap is bit-identical to a from-scratch compile.
    const auto fresh =
        profiles::CompiledHeatmap::from_trace(window, ap->grid());
    ASSERT_EQ(heatmap.cell_count(), fresh.cell_count());
    for (std::size_t c = 0; c < fresh.cell_count(); ++c) {
      ASSERT_EQ(heatmap.cells()[c].cell, fresh.cells()[c].cell);
      ASSERT_EQ(heatmap.cells()[c].probability,
                fresh.cells()[c].probability);
      ASSERT_EQ(heatmap.cells()[c].self_term, fresh.cells()[c].self_term);
      ASSERT_EQ(heatmap.cells()[c].solo_term, fresh.cells()[c].solo_term);
    }
    ASSERT_EQ(ap->reidentifies_compiled(heatmap, owner),
              ap->reidentifies_target(window, owner));

    // PIT / POI: the compiled-anonymous path equals the trace-based path.
    ASSERT_EQ(pit->reidentifies_compiled(pit->compile_anonymous(window),
                                         owner),
              pit->reidentifies_target(window, owner));
    ASSERT_EQ(poi->reidentifies_compiled(poi->compile_anonymous(window),
                                         owner),
              poi->reidentifies_target(window, owner));
  }
}

TEST_F(StreamTest, IncrementalHeatmapSurvivesSlidingWindowEviction) {
  const auto* ap = dynamic_cast<const attacks::ApAttack*>(
      harness_->attacks()[harness_->ap_attack_index()].get());
  ASSERT_NE(ap, nullptr);
  const auto& pair = harness_->pairs().front();
  const auto& records = pair.test.records();
  const std::size_t cap = 40;

  mobility::Trace window;
  window.set_user(pair.test.user());
  auto heatmap =
      profiles::CompiledHeatmap::incremental(window, ap->grid());
  for (std::size_t i = 0; i < records.size(); ++i) {
    window.append(records[i]);
    std::vector<mobility::Record> evicted;
    if (window.size() > cap) {
      evicted.assign(window.records().begin(),
                     window.records().begin() +
                         static_cast<std::ptrdiff_t>(window.size() - cap));
      window.drop_front(window.size() - cap);
    }
    heatmap.apply_update({records[i]}, evicted, ap->grid());
  }
  const auto fresh =
      profiles::CompiledHeatmap::from_trace(window, ap->grid());
  ASSERT_EQ(heatmap.cell_count(), fresh.cell_count());
  for (std::size_t c = 0; c < fresh.cell_count(); ++c) {
    EXPECT_EQ(heatmap.cells()[c].cell, fresh.cells()[c].cell);
    EXPECT_EQ(heatmap.cells()[c].probability, fresh.cells()[c].probability);
  }
}

void expect_same_markov(const profiles::CompiledMarkovProfile& actual,
                        const profiles::CompiledMarkovProfile& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t s = 0; s < expected.size(); ++s) {
    ASSERT_EQ(actual.states()[s].weight, expected.states()[s].weight);
    ASSERT_EQ(actual.states()[s].center.lat_rad,
              expected.states()[s].center.lat_rad);
    ASSERT_EQ(actual.states()[s].center.lon_deg,
              expected.states()[s].center.lon_deg);
    ASSERT_EQ(actual.states()[s].center.cos_lat,
              expected.states()[s].center.cos_lat);
  }
}

void expect_same_poi(const profiles::CompiledPoiProfile& actual,
                     const profiles::CompiledPoiProfile& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t c = 0; c < expected.size(); ++c) {
    ASSERT_EQ(actual.centers()[c].lat_rad, expected.centers()[c].lat_rad);
    ASSERT_EQ(actual.centers()[c].lon_deg, expected.centers()[c].lon_deg);
    ASSERT_EQ(actual.centers()[c].cos_lat, expected.centers()[c].cos_lat);
  }
}

/// from_states (the decision kernel's shared-tracker compile path) must
/// be bit-identical to routing through the full legacy profile pipeline.
TEST_F(StreamTest, FromStatesMatchesLegacyCompiledProfiles) {
  const auto* pit = dynamic_cast<const attacks::PitAttack*>(
      harness_->attacks()[1].get());
  const auto* poi = dynamic_cast<const attacks::PoiAttack*>(
      harness_->attacks()[0].get());
  ASSERT_NE(pit, nullptr);
  ASSERT_NE(poi, nullptr);
  const auto params = pit->params();
  for (const auto& pair : harness_->pairs()) {
    const auto seq = clustering::build_visit_sequence(
        clustering::extract_pois(pair.test, params), params.max_diameter_m);
    expect_same_markov(profiles::CompiledMarkovProfile::from_states(seq.states),
                       pit->compile_anonymous(pair.test));
    expect_same_poi(profiles::CompiledPoiProfile::from_states(seq.states),
                    poi->compile_anonymous(pair.test));
  }
}

/// The PR 5 tentpole property: the incrementally maintained PIT and POI
/// compiled profiles are bit-identical to a from-scratch compile after
/// every single appended point (no eviction, so the pinned origin equals
/// the window front and the oracle is the attacks' own compile path).
TEST_F(StreamTest, IncrementalMarkovAndPoiMatchFromScratchPointByPoint) {
  const auto* pit = dynamic_cast<const attacks::PitAttack*>(
      harness_->attacks()[1].get());
  const auto* poi = dynamic_cast<const attacks::PoiAttack*>(
      harness_->attacks()[0].get());
  ASSERT_NE(pit, nullptr);
  ASSERT_NE(poi, nullptr);
  const auto& pair = harness_->pairs().front();
  const auto params = pit->params();

  mobility::Trace window;
  window.set_user(pair.test.user());
  auto markov = profiles::CompiledMarkovProfile::incremental(window, params);
  auto poi_profile = profiles::CompiledPoiProfile::incremental(window, params);
  ASSERT_TRUE(markov.updatable());
  ASSERT_TRUE(poi_profile.updatable());
  for (const auto& record : pair.test.records()) {
    window.append(record);
    markov.apply_update(window, 1, 0);
    poi_profile.apply_update(window, 1, 0);
    expect_same_markov(markov, pit->compile_anonymous(window));
    expect_same_poi(poi_profile, poi->compile_anonymous(window));
  }
  // The targeted queries therefore agree with the trace-based entry points.
  EXPECT_EQ(pit->reidentifies_compiled(markov, pair.test.user()),
            pit->reidentifies_target(pair.test, pair.test.user()));
  EXPECT_EQ(poi->reidentifies_compiled(poi_profile, pair.test.user()),
            poi->reidentifies_target(pair.test, pair.test.user()));
}

/// Same property under a sliding window: per-point add + front eviction.
/// Once the front has been evicted the oracle is the same pipeline with
/// the projection pinned at the first-ever record (extract_pois' origin
/// overload) — clean prefix drops and the bounded rebuild fallback must
/// both land exactly there.
TEST_F(StreamTest, IncrementalMarkovAndPoiSurviveSlidingWindowEviction) {
  const auto* pit = dynamic_cast<const attacks::PitAttack*>(
      harness_->attacks()[1].get());
  ASSERT_NE(pit, nullptr);
  const auto& pair = harness_->pairs().front();
  const auto& records = pair.test.records();
  const auto params = pit->params();
  const geo::GeoPoint origin = records.front().position;
  const std::size_t cap = 60;

  mobility::Trace window;
  window.set_user(pair.test.user());
  auto markov = profiles::CompiledMarkovProfile::incremental(window, params);
  auto poi_profile = profiles::CompiledPoiProfile::incremental(window, params);
  const auto oracle_states = [&] {
    return clustering::build_visit_sequence(
               clustering::extract_pois(window, params, origin),
               params.max_diameter_m)
        .states;
  };
  for (std::size_t i = 0; i < records.size(); ++i) {
    window.append(records[i]);
    std::size_t evicted = 0;
    if (window.size() > cap) {
      evicted = window.size() - cap;
      window.drop_front(evicted);
    }
    markov.apply_update(window, 1, evicted);
    poi_profile.apply_update(window, 1, evicted);
    if (i % 16 == 0 || i + 1 == records.size()) {
      const auto states = oracle_states();
      expect_same_markov(markov,
                         profiles::CompiledMarkovProfile::from_states(states));
      expect_same_poi(poi_profile,
                      profiles::CompiledPoiProfile::from_states(states));
    }
  }
  // The window slid, so the tracker really exercised the eviction paths.
  EXPECT_GT(markov.tracker().updates(), 0u);
  EXPECT_EQ(markov.tracker().origin().lat, origin.lat);
  EXPECT_EQ(markov.tracker().origin().lon, origin.lon);
}

TEST_F(StreamTest, ApplyUpdateOnNonUpdatableProfilesThrows) {
  const auto* pit = dynamic_cast<const attacks::PitAttack*>(
      harness_->attacks()[1].get());
  ASSERT_NE(pit, nullptr);
  const auto& pair = harness_->pairs().front();
  auto markov = pit->compile_anonymous(pair.test);
  EXPECT_FALSE(markov.updatable());
  EXPECT_THROW(markov.apply_update(pair.test, 0, 0),
               support::PreconditionError);
  profiles::CompiledPoiProfile poi_profile;
  EXPECT_THROW(poi_profile.apply_update(pair.test, 0, 0),
               support::PreconditionError);
}

// ----------------------------------------- gateway vs batch harness ----

/// Shared oracle: the batch evaluators' answers on the same harness.
struct BatchOracle {
  std::unordered_map<mobility::UserId, bool> exposed;
  std::unordered_map<mobility::UserId, std::string> winner;
};

BatchOracle batch_oracle(const core::ExperimentHarness& harness) {
  BatchOracle oracle;
  const auto no_lppm = harness.evaluate_no_lppm();
  const auto engine = harness.make_engine();
  for (const auto& user : no_lppm.users) {
    oracle.exposed[user.user] = user.is_protected;
  }
  for (const auto& pair : harness.pairs()) {
    if (oracle.exposed.at(pair.test.user())) continue;
    const auto candidate = engine.search(pair.test);
    oracle.winner[pair.test.user()] = candidate ? candidate->lppm : "";
  }
  return oracle;
}

void expect_matches_batch(const std::vector<UserDecision>& decisions,
                          const BatchOracle& oracle) {
  ASSERT_EQ(decisions.size(), oracle.exposed.size());
  for (const auto& decision : decisions) {
    const bool exposed = decision.decision == Decision::kExpose;
    ASSERT_TRUE(oracle.exposed.contains(decision.user)) << decision.user;
    EXPECT_EQ(exposed, oracle.exposed.at(decision.user)) << decision.user;
    if (!exposed) {
      EXPECT_EQ(decision.winner, oracle.winner.at(decision.user))
          << decision.user;
    } else {
      EXPECT_TRUE(decision.winner.empty()) << decision.user;
    }
  }
}

TEST_F(StreamTest, FinalDecisionsMatchBatchEvaluators) {
  const BatchOracle oracle = batch_oracle(*harness_);
  StreamConfig config;
  config.shards = 4;
  const auto result = replay_with(config);
  expect_matches_batch(result.decisions, oracle);
  EXPECT_EQ(result.stats.exposed_events + result.stats.protected_events,
            result.events);
}

TEST_F(StreamTest, DecisionsAreIndependentOfShardsBatchAndParallelism) {
  StreamConfig base;
  base.shards = 4;
  ReplayOptions options;
  options.batch_events = 256;
  const auto reference = replay_with(base, options);

  StreamConfig one_shard = base;
  one_shard.shards = 1;
  StreamConfig serial = base;
  serial.parallel_drain = false;
  serial.shards = 7;
  ReplayOptions tiny_batches;
  tiny_batches.batch_events = 37;
  ReplayOptions one_batch;
  one_batch.batch_events = 1u << 20;

  for (const auto& result :
       {replay_with(one_shard, options), replay_with(serial, options),
        replay_with(base, tiny_batches), replay_with(base, one_batch)}) {
    ASSERT_EQ(result.decisions.size(), reference.decisions.size());
    for (std::size_t i = 0; i < result.decisions.size(); ++i) {
      EXPECT_EQ(result.decisions[i].user, reference.decisions[i].user);
      EXPECT_EQ(result.decisions[i].decision,
                reference.decisions[i].decision);
      EXPECT_EQ(result.decisions[i].winner, reference.decisions[i].winner);
    }
  }
}

TEST_F(StreamTest, StalenessBoundIsRepairedByFinish) {
  const BatchOracle oracle = batch_oracle(*harness_);
  StreamConfig config;
  config.shards = 4;
  config.staleness_points = 150;  // serve stale PIT/POI profiles mid-stream
  const auto result = replay_with(config);
  expect_matches_batch(result.decisions, oracle);

  // The bound must actually have saved refresh work relative to the
  // always-fresh default.
  StreamConfig fresh = config;
  fresh.staleness_points = 0;
  EXPECT_LT(result.stats.profile_refreshes,
            replay_with(fresh).stats.profile_refreshes);
}

TEST_F(StreamTest, WindowCapsBoundTheResidentWindow) {
  StreamConfig config;
  config.shards = 2;
  config.max_points = 50;
  const auto result = replay_with(config);
  EXPECT_GT(result.stats.evicted_points, 0u);
  for (const auto& decision : result.decisions) {
    EXPECT_LE(decision.window_points, 50u);
  }
}

TEST_F(StreamTest, LruCapEvictsUsers) {
  StreamConfig config;
  config.shards = 1;
  config.max_users_per_shard = 3;
  const auto result = replay_with(config);
  EXPECT_GT(result.stats.evicted_users, 0u);
  EXPECT_LE(result.decisions.size(), 3u);
}

// -------------------------------------------------------------- replay --

TEST_F(StreamTest, ReplayMeasuresThroughputAndOrderedLatencies) {
  StreamConfig config;
  config.shards = 4;
  ReplayOptions options;
  options.batch_events = 128;
  const auto result = replay_with(config, options);

  EXPECT_EQ(result.events, events_->size());
  EXPECT_EQ(result.batches,
            (events_->size() + options.batch_events - 1) /
                options.batch_events);
  EXPECT_GT(result.wall_seconds, 0.0);
  EXPECT_GT(result.events_per_second, 0.0);
  EXPECT_GE(result.latency.p50, 0.0);
  EXPECT_LE(result.latency.p50, result.latency.p95);
  EXPECT_LE(result.latency.p95, result.latency.p99);
  EXPECT_LE(result.latency.p99, result.latency.max);
  EXPECT_GT(result.stats.batches, 0u);
}

TEST_F(StreamTest, ReplayLatencyHistogramCoversEveryEvent) {
  StreamConfig config;
  config.shards = 4;
  ReplayOptions options;
  options.batch_events = 128;
  const auto result = replay_with(config, options);

  // Every ingested event records exactly one latency sample on its
  // owning shard's lane; the merged histogram is the lane sum.
  EXPECT_EQ(result.latency_histogram.count, result.events);
  ASSERT_EQ(result.latency_per_shard.size(), config.shards);
  std::uint64_t lane_total = 0;
  for (const auto& lane : result.latency_per_shard) lane_total += lane.count;
  EXPECT_EQ(lane_total, result.latency_histogram.count);

  // The summary is derived from the histogram, not a sample vector.
  EXPECT_DOUBLE_EQ(result.latency.p50,
                   result.latency_histogram.percentile(0.50));
  EXPECT_DOUBLE_EQ(result.latency.p95,
                   result.latency_histogram.percentile(0.95));
  EXPECT_DOUBLE_EQ(result.latency.p99,
                   result.latency_histogram.percentile(0.99));
  EXPECT_DOUBLE_EQ(result.latency.mean, result.latency_histogram.mean());
}

TEST_F(StreamTest, StageTimersOffChangesNoDecision) {
  StreamConfig timed;
  timed.shards = 4;
  const auto reference = replay_with(timed);

  StreamConfig untimed = timed;
  untimed.telemetry.stage_timers = false;
  const auto result = replay_with(untimed);

  ASSERT_EQ(result.decisions.size(), reference.decisions.size());
  for (std::size_t i = 0; i < result.decisions.size(); ++i) {
    EXPECT_EQ(result.decisions[i].user, reference.decisions[i].user);
    EXPECT_EQ(result.decisions[i].decision, reference.decisions[i].decision);
    EXPECT_EQ(result.decisions[i].winner, reference.decisions[i].winner);
  }
  // Replay latency is always on (it is the report's headline metric);
  // only the per-stage histograms go quiet.
  EXPECT_EQ(result.latency_histogram.count, result.events);
  StreamEngine probe(harness_->make_engine(), untimed);
  probe.ingest((*events_)[0]);
  probe.drain();
  for (const auto& entry : probe.metrics_snapshot().histograms) {
    if (entry.name.rfind("mood_stage_", 0) == 0) {
      EXPECT_TRUE(entry.merged.empty()) << entry.name;
    }
  }
}

TEST_F(StreamTest, MetricsSnapshotMirrorsGatewayCounters) {
  StreamConfig config;
  config.shards = 2;
  StreamEngine engine(harness_->make_engine(), config);
  const auto result = run_replay(engine, *events_, {});

  const telemetry::MetricsSnapshot snapshot = engine.metrics_snapshot();
  const auto counter = [&](std::string_view name) -> std::uint64_t {
    for (const auto& [n, v] : snapshot.counters) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  const auto gauge = [&](std::string_view name) -> double {
    for (const auto& [n, v] : snapshot.gauges) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "missing gauge " << name;
    return -1.0;
  };
  EXPECT_EQ(counter("mood_stream_events_total"), result.events);
  EXPECT_EQ(counter("mood_stream_batches_total"), result.batches);
  EXPECT_DOUBLE_EQ(gauge("mood_gateway_events"), double(result.stats.events));
  EXPECT_DOUBLE_EQ(gauge("mood_gateway_searches"),
                   double(result.stats.searches));
  // Names are sorted, and the exposition of a live engine renders.
  EXPECT_TRUE(std::is_sorted(
      snapshot.counters.begin(), snapshot.counters.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
  const std::string text = telemetry::render_exposition(snapshot);
  EXPECT_NE(text.find("# TYPE mood_replay_latency_seconds histogram"),
            std::string::npos);
}

TEST_F(StreamTest, TelemetryOnRestoredReplayDiffsCleanAgainstStraight) {
  // Stage timers + an active trace session must not perturb the
  // restart drill: a restored gateway's decisions and continued stats
  // stay byte-identical to an uninterrupted run's.
  telemetry::TraceSession::instance().start(1 << 12);
  StreamConfig config;
  config.shards = 2;
  ReplayOptions options;
  options.batch_events = 256;

  StreamEngine straight(harness_->make_engine(), config);
  const auto reference = run_replay(straight, *events_, options);

  const std::size_t boundary = 2 * options.batch_events;
  StreamEngine first(harness_->make_engine(), config);
  for (std::size_t i = 0; i < boundary; ++i) {
    first.ingest((*events_)[i]);
    if ((i + 1) % options.batch_events == 0) first.drain();
  }
  const SnapshotData snap =
      decode_snapshot(encode_snapshot(first.capture_snapshot()));
  StreamEngine second(harness_->make_engine(), config);
  second.restore_snapshot(snap);
  options.resume_events = boundary;
  const auto resumed = run_replay(second, *events_, options);
  telemetry::TraceSession::instance().stop();

  ASSERT_EQ(resumed.decisions.size(), reference.decisions.size());
  for (std::size_t i = 0; i < reference.decisions.size(); ++i) {
    EXPECT_EQ(resumed.decisions[i].user, reference.decisions[i].user);
    EXPECT_EQ(resumed.decisions[i].decision,
              reference.decisions[i].decision);
    EXPECT_EQ(resumed.decisions[i].winner, reference.decisions[i].winner);
  }
  EXPECT_EQ(resumed.stats.events, reference.stats.events);
  EXPECT_EQ(resumed.stats.decisions, reference.stats.decisions);
  // The latency histogram is session-scoped: the resumed process only
  // measured the events it replayed itself.
  EXPECT_EQ(resumed.latency_histogram.count, events_->size() - boundary);
}

TEST_F(StreamTest, ReplayOfEmptyStreamIsWellFormed) {
  StreamEngine engine(harness_->make_engine(), StreamConfig{});
  const auto result = run_replay(engine, {});
  EXPECT_EQ(result.events, 0u);
  EXPECT_EQ(result.batches, 0u);
  EXPECT_TRUE(result.decisions.empty());
}

TEST_F(StreamTest, ReplayRejectsZeroBatch) {
  StreamEngine engine(harness_->make_engine(), StreamConfig{});
  ReplayOptions options;
  options.batch_events = 0;
  EXPECT_THROW(run_replay(engine, *events_, options),
               support::PreconditionError);
}

TEST_F(StreamTest, ReplayRejectsMisalignedOrOverlongResume) {
  // Resume positions must fall on micro-batch boundaries (checkpoints are
  // written at drain boundaries, so any legitimate restore position does)
  // and inside the stream.
  StreamEngine engine(harness_->make_engine(), StreamConfig{});
  ReplayOptions options;
  options.batch_events = 128;
  options.resume_events = 100;
  EXPECT_THROW(run_replay(engine, *events_, options),
               support::PreconditionError);
  options.resume_events = events_->size() + 128;
  EXPECT_THROW(run_replay(engine, *events_, options),
               support::PreconditionError);
}

// ---------------------------------------------------------- resilience --

TEST(BadRecordPolicyTest, ParsesSpellingsAndRejectsUnknowns) {
  EXPECT_EQ(parse_bad_record_policy("fail"), BadRecordPolicy::kFail);
  EXPECT_EQ(parse_bad_record_policy("skip"), BadRecordPolicy::kSkip);
  EXPECT_EQ(parse_bad_record_policy("quarantine"),
            BadRecordPolicy::kQuarantine);
  EXPECT_THROW(parse_bad_record_policy("explode"), support::UsageError);
  EXPECT_EQ(to_string(BadRecordPolicy::kQuarantine), "quarantine");
}

TEST_F(StreamTest, StrictAdmissionThrowsTypedBadRecordError) {
  StreamConfig config;
  config.shards = 1;

  StreamEngine nan_engine(harness_->make_engine(), config);
  StreamEvent bad = (*events_)[0];
  bad.record.position.lat = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(nan_engine.ingest(bad), BadRecordError);

  StreamEngine off_planet(harness_->make_engine(), config);
  bad = (*events_)[0];
  bad.record.position.lat = 95.0;  // finite but outside the legal band
  EXPECT_THROW(off_planet.ingest(bad), BadRecordError);

  StreamEngine id_engine(harness_->make_engine(), config);
  StreamEvent huge = (*events_)[0];
  huge.user = std::string(kMaxUserIdBytes + 1, 'x');
  EXPECT_THROW(id_engine.ingest(huge), BadRecordError);

  // Per-user timestamp regression; an exact tie stays legal (real exports
  // carry same-second fixes routinely).
  StreamEngine time_engine(harness_->make_engine(), config);
  const StreamEvent first = (*events_)[0];
  EXPECT_EQ(time_engine.ingest(first), IngestStatus::kAdmitted);
  StreamEvent regressed = first;
  regressed.record.time -= 100;
  EXPECT_THROW(time_engine.ingest(regressed), BadRecordError);
  EXPECT_EQ(time_engine.ingest(first), IngestStatus::kAdmitted);
}

TEST_F(StreamTest, SkipPolicyDropsBadRecordsAndCounts) {
  StreamConfig config;
  config.shards = 1;
  config.resilience.on_bad_record = BadRecordPolicy::kSkip;
  StreamEngine engine(harness_->make_engine(), config);

  StreamEvent bad = (*events_)[0];
  bad.record.position.lon = std::numeric_limits<double>::infinity();
  EXPECT_EQ(engine.ingest(bad), IngestStatus::kRejected);
  EXPECT_EQ(engine.ingest((*events_)[0]), IngestStatus::kAdmitted);
  engine.drain();
  engine.finish();

  const StreamStats stats = engine.stats();
  EXPECT_EQ(stats.bad_records, 1u);
  EXPECT_EQ(stats.quarantined_users, 0u);
  EXPECT_EQ(stats.dead_letters, 0u);
  // Every presented event advances the stream position, rejected or not,
  // so checkpoint/resume indices stay aligned with the replay stream.
  EXPECT_EQ(stats.events, 2u);
  const auto decisions = engine.decisions();
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_FALSE(decisions[0].quarantined);
}

TEST_F(StreamTest, QuarantineIsolatesPoisonedUserFromHealthyDecisions) {
  StreamConfig config;
  config.shards = 4;
  const auto clean = replay_with(config);

  std::vector<StreamEvent> poisoned_events = *events_;
  PoisonSpec spec;
  spec.users = 1;
  spec.stride = 3;
  ASSERT_GT(inject_poison(poisoned_events, spec), 0u);
  // inject_poison targets the first user id in sorted order.
  mobility::UserId victim = poisoned_events.front().user;
  for (const StreamEvent& event : *events_) {
    victim = std::min(victim, event.user);
  }

  StreamConfig quarantine = config;
  quarantine.resilience.on_bad_record = BadRecordPolicy::kQuarantine;
  StreamEngine engine(harness_->make_engine(), quarantine);
  const auto result = run_replay(engine, poisoned_events, {});

  EXPECT_EQ(result.stats.quarantined_users, 1u);
  EXPECT_GT(result.stats.bad_records, 0u);
  EXPECT_GT(result.stats.dead_letters, 0u);
  ASSERT_EQ(result.decisions.size(), clean.decisions.size());
  for (std::size_t i = 0; i < clean.decisions.size(); ++i) {
    const UserDecision& a = result.decisions[i];
    const UserDecision& e = clean.decisions[i];
    ASSERT_EQ(a.user, e.user);
    if (a.user == victim) {
      EXPECT_TRUE(a.quarantined);
      EXPECT_FALSE(a.quarantine_reason.empty());
      EXPECT_GT(a.dead_letters, 0u);
      continue;
    }
    // The headline isolation property: one poisoned neighbour must not
    // perturb a healthy user's outcome in any observable way.
    EXPECT_FALSE(a.quarantined) << a.user;
    EXPECT_EQ(a.decision, e.decision) << a.user;
    EXPECT_EQ(a.winner, e.winner) << a.user;
    EXPECT_EQ(a.events, e.events) << a.user;
    EXPECT_EQ(a.risk_transitions, e.risk_transitions) << a.user;
    EXPECT_EQ(a.searches, e.searches) << a.user;
    EXPECT_EQ(a.window_points, e.window_points) << a.user;
  }
}

TEST_F(StreamTest, ShedHysteresisEngagesBetweenWatermarksAndReleases) {
  StreamConfig config;
  config.shards = 1;
  config.parallel_drain = false;
  config.resilience.shed_high_watermark = 64;
  config.resilience.shed_low_watermark = 16;
  StreamEngine engine(harness_->make_engine(), config);
  std::size_t next = 0;
  const auto ingest_n = [&](std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) engine.ingest((*events_)[next++]);
  };

  // Below the high watermark: full decisions, latch off.
  ingest_n(32);
  engine.drain();
  EXPECT_EQ(engine.stats().degraded_batches, 0u);

  // Backlog at/above high: the latch engages and the batch degrades to
  // held verdicts (users decided in the first drain are genuinely held).
  ingest_n(128);
  engine.drain();
  const StreamStats engaged = engine.stats();
  EXPECT_EQ(engaged.degraded_batches, 1u);
  EXPECT_GT(engaged.shed_decisions, 0u);
  EXPECT_EQ(engine.capture_snapshot().shard_shedding,
            (std::vector<std::uint8_t>{1}));

  // Backlog between the watermarks: hysteresis holds the latch engaged.
  ingest_n(32);
  engine.drain();
  EXPECT_EQ(engine.stats().degraded_batches, 2u);

  // Backlog at/below low: the latch releases and decisions are full again.
  ingest_n(8);
  engine.drain();
  const StreamStats released = engine.stats();
  EXPECT_EQ(released.degraded_batches, 2u);
  EXPECT_EQ(engine.capture_snapshot().shard_shedding,
            (std::vector<std::uint8_t>{0}));
}

TEST_F(StreamTest, DrainBudgetDegradesBatchTailButFinishCanonicalizes) {
  const BatchOracle oracle = batch_oracle(*harness_);
  StreamConfig config;
  config.shards = 1;
  config.parallel_drain = false;
  config.resilience.drain_budget = 2;  // at most 2 full decisions per drain
  const auto result = replay_with(config);

  EXPECT_GT(result.stats.shed_decisions, 0u);
  EXPECT_GT(result.stats.degraded_batches, 0u);
  std::uint64_t degraded = 0;
  for (const auto& decision : result.decisions) degraded += decision.degraded;
  EXPECT_GT(degraded, 0u);
  // finish() re-searches every user whose verdict was held, so degraded
  // mid-stream batches never change the final published decisions.
  expect_matches_batch(result.decisions, oracle);
}

TEST_F(StreamTest, ShedDecisionsAreRepairedByFinish) {
  const BatchOracle oracle = batch_oracle(*harness_);
  StreamConfig config;
  config.shards = 2;
  config.parallel_drain = false;
  config.resilience.shed_high_watermark = 48;
  config.resilience.shed_low_watermark = 12;
  ReplayOptions options;
  options.batch_events = 128;  // backlog 64/shard: sheds most batches
  const auto result = replay_with(config, options);
  EXPECT_GT(result.stats.degraded_batches, 0u);
  expect_matches_batch(result.decisions, oracle);
}

TEST_F(StreamTest, BackpressureSignalsWithoutChangingDecisions) {
  StreamConfig config;
  config.shards = 2;
  const auto reference = replay_with(config);

  StreamConfig bounded = config;
  bounded.resilience.max_pending_per_shard = 8;
  bool saw_slow = false;
  StreamEngine probe(harness_->make_engine(), bounded);
  for (std::size_t i = 0; i < 64; ++i) {
    if (probe.ingest((*events_)[i]) == IngestStatus::kAdmittedSlow) {
      saw_slow = true;
    }
  }
  EXPECT_TRUE(saw_slow);

  StreamEngine engine(harness_->make_engine(), bounded);
  const auto result = run_replay(engine, *events_, {});
  EXPECT_GT(result.stats.backpressure_events, 0u);
  // Backpressure is a *signal* to the producer, never a decision input:
  // batch boundaries and outcomes are untouched.
  ASSERT_EQ(result.decisions.size(), reference.decisions.size());
  for (std::size_t i = 0; i < reference.decisions.size(); ++i) {
    EXPECT_EQ(result.decisions[i].decision, reference.decisions[i].decision);
    EXPECT_EQ(result.decisions[i].winner, reference.decisions[i].winner);
  }
}

TEST_F(StreamTest, InjectedDecideFaultQuarantinesExactlyOneUser) {
  StreamConfig config;
  config.shards = 1;
  config.parallel_drain = false;  // deterministic drain order
  const auto clean = replay_with(config);

  // Under the strict default the injected fault propagates out of drain().
  testing::FailPoint::arm("stream.decide.user", testing::FailAction::kThrow);
  StreamEngine strict(harness_->make_engine(), config);
  EXPECT_THROW(run_replay(strict, *events_, {}), testing::InjectedFault);

  // Under quarantine the faulting user is isolated and the drain survives.
  StreamConfig quarantine = config;
  quarantine.resilience.on_bad_record = BadRecordPolicy::kQuarantine;
  testing::FailPoint::arm("stream.decide.user", testing::FailAction::kThrow);
  StreamEngine engine(harness_->make_engine(), quarantine);
  const auto result = run_replay(engine, *events_, {});

  EXPECT_EQ(result.stats.quarantined_users, 1u);
  std::size_t quarantined = 0;
  ASSERT_EQ(result.decisions.size(), clean.decisions.size());
  for (std::size_t i = 0; i < clean.decisions.size(); ++i) {
    const UserDecision& a = result.decisions[i];
    if (a.quarantined) {
      ++quarantined;
      EXPECT_NE(a.quarantine_reason.find("injected a fault"),
                std::string::npos);
      EXPECT_GT(a.dead_letters, 0u);
      continue;
    }
    EXPECT_EQ(a.decision, clean.decisions[i].decision) << a.user;
    EXPECT_EQ(a.winner, clean.decisions[i].winner) << a.user;
    EXPECT_EQ(a.events, clean.decisions[i].events) << a.user;
  }
  EXPECT_EQ(quarantined, 1u);
}

TEST_F(StreamTest, CorruptFailPointIsCaughtByTheFoldPoisonScan) {
  StreamConfig config;
  config.shards = 1;
  config.parallel_drain = false;
  config.resilience.on_bad_record = BadRecordPolicy::kQuarantine;
  testing::FailPoint::arm("stream.drain.corrupt",
                          testing::FailAction::kCorrupt);
  StreamEngine engine(harness_->make_engine(), config);
  const auto result = run_replay(engine, *events_, {});

  EXPECT_EQ(result.stats.quarantined_users, 1u);
  bool found = false;
  for (const auto& decision : result.decisions) {
    if (!decision.quarantined) continue;
    found = true;
    EXPECT_NE(decision.quarantine_reason.find("poisoned pending record"),
              std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST_F(StreamTest, QuarantineStateRoundTripsThroughSnapshotAndResume) {
  std::vector<StreamEvent> poisoned_events = *events_;
  PoisonSpec spec;
  spec.users = 2;
  spec.stride = 3;
  ASSERT_GT(inject_poison(poisoned_events, spec), 0u);

  StreamConfig config;
  config.shards = 2;
  config.resilience.on_bad_record = BadRecordPolicy::kQuarantine;
  ReplayOptions options;
  options.batch_events = 256;

  StreamEngine straight(harness_->make_engine(), config);
  const auto reference = run_replay(straight, poisoned_events, options);
  ASSERT_EQ(reference.stats.quarantined_users, 2u);

  const std::size_t boundary = 2 * options.batch_events;
  StreamEngine first(harness_->make_engine(), config);
  for (std::size_t i = 0; i < boundary; ++i) {
    first.ingest(poisoned_events[i]);
    if ((i + 1) % options.batch_events == 0) first.drain();
  }
  const SnapshotData snap =
      decode_snapshot(encode_snapshot(first.capture_snapshot()));
  bool any_quarantined = false;
  for (const UserSnapshot& u : snap.users) any_quarantined |= u.quarantined;
  EXPECT_TRUE(any_quarantined);

  StreamEngine second(harness_->make_engine(), config);
  second.restore_snapshot(snap);
  options.resume_events = boundary;
  const auto resumed = run_replay(second, poisoned_events, options);

  ASSERT_EQ(resumed.decisions.size(), reference.decisions.size());
  for (std::size_t i = 0; i < reference.decisions.size(); ++i) {
    const UserDecision& a = resumed.decisions[i];
    const UserDecision& e = reference.decisions[i];
    EXPECT_EQ(a.user, e.user);
    EXPECT_EQ(a.decision, e.decision) << a.user;
    EXPECT_EQ(a.winner, e.winner) << a.user;
    EXPECT_EQ(a.events, e.events) << a.user;
    EXPECT_EQ(a.quarantined, e.quarantined) << a.user;
    EXPECT_EQ(a.quarantine_reason, e.quarantine_reason) << a.user;
    EXPECT_EQ(a.dead_letters, e.dead_letters) << a.user;
  }
  EXPECT_EQ(resumed.stats.bad_records, reference.stats.bad_records);
  EXPECT_EQ(resumed.stats.dead_letters, reference.stats.dead_letters);
  EXPECT_EQ(resumed.stats.quarantined_users,
            reference.stats.quarantined_users);
}

TEST_F(StreamTest, ReplayResumeAtStreamEndOnlyFinishes) {
  // The degenerate restore: the snapshot already covered the full stream,
  // so the resumed session ingests nothing and just finalizes.
  StreamEngine engine(harness_->make_engine(), StreamConfig{});
  ReplayOptions options;
  options.resume_events = events_->size();
  const auto result = run_replay(engine, *events_, options);
  EXPECT_EQ(result.session_events, 0u);
  EXPECT_EQ(result.events_per_second, 0.0);
  EXPECT_TRUE(result.decisions.empty());  // fresh engine held no users
}

// ------------------------------------------------------- loop engine --

TEST(EngineModeTest, ParsesSpellingsAndRejectsUnknowns) {
  EXPECT_EQ(parse_engine_mode("batch"), EngineMode::kBatch);
  EXPECT_EQ(parse_engine_mode("loop"), EngineMode::kLoop);
  EXPECT_THROW((void)parse_engine_mode("turbo"), support::UsageError);
  EXPECT_STREQ(to_string(EngineMode::kLoop), "loop");
  EXPECT_STREQ(to_string(EngineMode::kBatch), "batch");
}

/// Continuous-serving config: per-shard worker threads fed by SPSC rings,
/// deciding at admission time (PR 10).
StreamConfig loop_config(std::size_t shards = 4) {
  StreamConfig config;
  config.engine = EngineMode::kLoop;
  config.shards = shards;
  return config;
}

TEST_F(StreamTest, LoopFinalDecisionsMatchBatchEvaluators) {
  const BatchOracle oracle = batch_oracle(*harness_);
  const auto result = replay_with(loop_config());
  expect_matches_batch(result.decisions, oracle);
  EXPECT_EQ(result.stats.exposed_events + result.stats.protected_events,
            result.events);
  // Latency parity with batch mode: every presented event leaves exactly
  // one end-to-end sample in the replay histogram.
  EXPECT_EQ(result.latency_histogram.count, result.events);
  // A clean strict run must leave the resilience counters untouched —
  // the held/recheck admission tiers are cheap paths, not degradations.
  EXPECT_EQ(result.stats.bad_records, 0u);
  EXPECT_EQ(result.stats.quarantined_users, 0u);
  EXPECT_EQ(result.stats.degraded_batches, 0u);
  EXPECT_EQ(result.stats.shed_decisions, 0u);
}

TEST_F(StreamTest, LoopDecisionsMatchBatchAcrossShardsSlackAndRecheck) {
  StreamConfig batch;
  batch.shards = 4;
  const auto reference = replay_with(batch);

  std::vector<StreamConfig> variants;
  variants.push_back(loop_config(1));
  variants.push_back(loop_config(3));
  variants.push_back(loop_config(8));
  StreamConfig eager = loop_config();  // full decision on every event
  eager.loop_slack = 0;
  variants.push_back(eager);
  StreamConfig lazy = loop_config();  // mostly held, odd cadences
  lazy.loop_slack = 7;
  lazy.loop_recheck = 3;
  variants.push_back(lazy);
  StreamConfig no_recheck = loop_config();
  no_recheck.loop_recheck = 0;
  variants.push_back(no_recheck);

  for (const StreamConfig& config : variants) {
    const auto result = replay_with(config);
    ASSERT_EQ(result.decisions.size(), reference.decisions.size());
    for (std::size_t i = 0; i < result.decisions.size(); ++i) {
      EXPECT_EQ(result.decisions[i].user, reference.decisions[i].user);
      EXPECT_EQ(result.decisions[i].decision,
                reference.decisions[i].decision);
      EXPECT_EQ(result.decisions[i].winner, reference.decisions[i].winner);
      EXPECT_EQ(result.decisions[i].events, reference.decisions[i].events);
    }
  }
}

TEST_F(StreamTest, LoopModeRejectsDrain) {
  StreamEngine engine(harness_->make_engine(), loop_config(1));
  EXPECT_THROW(engine.drain(), support::PreconditionError);
}

TEST_F(StreamTest, LoopCheckpointRestoreRoundTripsMidStream) {
  StreamConfig config = loop_config(2);
  StreamEngine straight(harness_->make_engine(), config);
  const auto reference = run_replay(straight, *events_, {});

  // Loop cuts have no micro-batch alignment requirement: any quiesced
  // position is valid, so pick one off every batch multiple on purpose.
  const std::size_t cut = 333;
  StreamEngine first(harness_->make_engine(), config);
  for (std::size_t i = 0; i < cut; ++i) first.ingest((*events_)[i]);
  first.quiesce();
  const SnapshotData snap =
      decode_snapshot(encode_snapshot(first.capture_snapshot()));
  EXPECT_EQ(snap.stream_position, cut);
  EXPECT_EQ(snap.config.engine, EngineMode::kLoop);

  StreamEngine second(harness_->make_engine(), config);
  second.restore_snapshot(snap);
  ReplayOptions options;
  options.resume_events = cut;
  const auto resumed = run_replay(second, *events_, options);

  ASSERT_EQ(resumed.decisions.size(), reference.decisions.size());
  for (std::size_t i = 0; i < reference.decisions.size(); ++i) {
    const UserDecision& a = resumed.decisions[i];
    const UserDecision& e = reference.decisions[i];
    EXPECT_EQ(a.user, e.user);
    EXPECT_EQ(a.decision, e.decision) << a.user;
    EXPECT_EQ(a.winner, e.winner) << a.user;
    EXPECT_EQ(a.events, e.events) << a.user;
  }
  // The decision tier is a pure function of per-user event ordinals, so
  // the continued counters line up exactly with the straight run's.
  EXPECT_EQ(resumed.stats.events, reference.stats.events);
  EXPECT_EQ(resumed.stats.decisions, reference.stats.decisions);
  EXPECT_EQ(resumed.latency_histogram.count, events_->size() - cut);
}

TEST_F(StreamTest, LoopRestoreRefusesEngineModeMismatch) {
  StreamConfig config = loop_config(2);
  StreamEngine first(harness_->make_engine(), config);
  for (std::size_t i = 0; i < 100; ++i) first.ingest((*events_)[i]);
  first.quiesce();
  const SnapshotData snap = first.capture_snapshot();

  // A loop checkpoint must not restore into a batch gateway (the cut may
  // not fall on a drain boundary) — nor under different loop cadences.
  StreamConfig batch = config;
  batch.engine = EngineMode::kBatch;
  StreamEngine batch_engine(harness_->make_engine(), batch);
  EXPECT_THROW(batch_engine.restore_snapshot(snap), SnapshotError);

  StreamConfig other_slack = config;
  other_slack.loop_slack = 5;
  StreamEngine slack_engine(harness_->make_engine(), other_slack);
  EXPECT_THROW(slack_engine.restore_snapshot(snap), SnapshotError);

  StreamConfig other_recheck = config;
  other_recheck.loop_recheck = 2;
  StreamEngine recheck_engine(harness_->make_engine(), other_recheck);
  EXPECT_THROW(recheck_engine.restore_snapshot(snap), SnapshotError);
}

TEST_F(StreamTest, LoopStrictFaultSurfacesOnTheProducer) {
  // Unattributable events never reach a worker: the producer classifies
  // and throws synchronously, exactly like the batch path.
  StreamEngine id_engine(harness_->make_engine(), loop_config(1));
  StreamEvent huge = (*events_)[0];
  huge.user = std::string(kMaxUserIdBytes + 1, 'x');
  EXPECT_THROW(id_engine.ingest(huge), BadRecordError);

  // A bad coordinate is flagged at ingest but dispositioned by the shard
  // worker; under the strict default its BadRecordError is rethrown on
  // the producer no later than the quiesce barrier.
  StreamEngine nan_engine(harness_->make_engine(), loop_config(1));
  StreamEvent bad = (*events_)[0];
  bad.record.position.lat = std::numeric_limits<double>::quiet_NaN();
  nan_engine.ingest(bad);
  EXPECT_THROW(nan_engine.quiesce(), BadRecordError);

  // Same for the stateful per-user monotonicity check, which only the
  // worker (owner of the user state) can evaluate.
  StreamEngine time_engine(harness_->make_engine(), loop_config(1));
  const StreamEvent first = (*events_)[0];
  time_engine.ingest(first);
  StreamEvent regressed = first;
  regressed.record.time -= 100;
  time_engine.ingest(regressed);
  EXPECT_THROW(time_engine.quiesce(), BadRecordError);
}

TEST_F(StreamTest, LoopQuarantineIsolatesPoisonedUserFromHealthyDecisions) {
  StreamConfig batch;
  batch.shards = 4;
  const auto clean = replay_with(batch);

  std::vector<StreamEvent> poisoned_events = *events_;
  PoisonSpec spec;
  spec.users = 1;
  spec.stride = 3;
  ASSERT_GT(inject_poison(poisoned_events, spec), 0u);
  mobility::UserId victim = poisoned_events.front().user;
  for (const StreamEvent& event : *events_) {
    victim = std::min(victim, event.user);
  }

  StreamConfig quarantine = loop_config();
  quarantine.resilience.on_bad_record = BadRecordPolicy::kQuarantine;
  StreamEngine engine(harness_->make_engine(), quarantine);
  const auto result = run_replay(engine, poisoned_events, {});

  EXPECT_EQ(result.stats.quarantined_users, 1u);
  EXPECT_GT(result.stats.bad_records, 0u);
  EXPECT_GT(result.stats.dead_letters, 0u);
  ASSERT_EQ(result.decisions.size(), clean.decisions.size());
  for (std::size_t i = 0; i < clean.decisions.size(); ++i) {
    const UserDecision& a = result.decisions[i];
    const UserDecision& e = clean.decisions[i];
    ASSERT_EQ(a.user, e.user);
    if (a.user == victim) {
      EXPECT_TRUE(a.quarantined);
      EXPECT_FALSE(a.quarantine_reason.empty());
      EXPECT_GT(a.dead_letters, 0u);
      continue;
    }
    // Isolation holds across execution modes: a poisoned neighbour never
    // perturbs a healthy user's published outcome.
    EXPECT_FALSE(a.quarantined) << a.user;
    EXPECT_EQ(a.decision, e.decision) << a.user;
    EXPECT_EQ(a.winner, e.winner) << a.user;
    EXPECT_EQ(a.events, e.events) << a.user;
    EXPECT_EQ(a.window_points, e.window_points) << a.user;
  }
}

TEST_F(StreamTest, LoopInjectedDecideFaultQuarantinesExactlyOneUser) {
  StreamConfig config = loop_config(1);
  const auto clean = replay_with(config);

  // Under the strict default the worker's injected fault is rethrown on
  // the producer and propagates out of the replay.
  testing::FailPoint::arm("stream.decide.user", testing::FailAction::kThrow);
  StreamEngine strict(harness_->make_engine(), config);
  EXPECT_THROW(run_replay(strict, *events_, {}), testing::InjectedFault);

  // Under quarantine the faulting user is isolated, the worker survives,
  // and every healthy user matches the clean loop run.
  StreamConfig quarantine = config;
  quarantine.resilience.on_bad_record = BadRecordPolicy::kQuarantine;
  testing::FailPoint::arm("stream.decide.user", testing::FailAction::kThrow);
  StreamEngine engine(harness_->make_engine(), quarantine);
  const auto result = run_replay(engine, *events_, {});

  EXPECT_EQ(result.stats.quarantined_users, 1u);
  std::size_t quarantined = 0;
  ASSERT_EQ(result.decisions.size(), clean.decisions.size());
  for (std::size_t i = 0; i < clean.decisions.size(); ++i) {
    const UserDecision& a = result.decisions[i];
    if (a.quarantined) {
      ++quarantined;
      EXPECT_NE(a.quarantine_reason.find("injected a fault"),
                std::string::npos);
      EXPECT_GT(a.dead_letters, 0u);
      continue;
    }
    EXPECT_EQ(a.decision, clean.decisions[i].decision) << a.user;
    EXPECT_EQ(a.winner, clean.decisions[i].winner) << a.user;
    EXPECT_EQ(a.events, clean.decisions[i].events) << a.user;
  }
  EXPECT_EQ(quarantined, 1u);
}

TEST_F(StreamTest, LoopShedEngagesOnRingDepthAndFinishRepairs) {
  const BatchOracle oracle = batch_oracle(*harness_);
  StreamConfig config = loop_config(1);
  config.loop_autostart = false;
  config.resilience.shed_high_watermark = 64;
  config.resilience.shed_low_watermark = 16;
  StreamEngine engine(harness_->make_engine(), config);
  // Pre-fill the ring beyond the high watermark before any worker runs:
  // the first dequeue sees the full backlog, so the latch engages
  // deterministically even though ring depth is otherwise timing-shaped.
  for (const StreamEvent& event : *events_) engine.ingest(event);
  engine.start_loop();
  engine.quiesce();

  const StreamStats mid = engine.stats();
  EXPECT_GE(mid.degraded_batches, 1u);
  EXPECT_GT(mid.shed_decisions, 0u);
  // Draining to empty crossed the low watermark: the latch released.
  EXPECT_EQ(engine.capture_snapshot().shard_shedding,
            (std::vector<std::uint8_t>{0}));

  // finish() re-searches every held/degraded verdict, so the published
  // decisions still match the batch evaluators exactly.
  engine.finish();
  expect_matches_batch(engine.decisions(), oracle);
}

TEST_F(StreamTest, LoopBackpressureSignalsWithoutChangingDecisions) {
  StreamConfig batch;
  batch.shards = 2;
  const auto reference = replay_with(batch);

  // Bounded rings (capacity 2*max_pending): the producer outruns the
  // deciding workers, so the slow signal must fire; it stays a signal —
  // nothing is dropped and decisions are untouched.
  StreamConfig bounded = loop_config(2);
  bounded.resilience.max_pending_per_shard = 8;
  StreamEngine engine(harness_->make_engine(), bounded);
  const auto result = run_replay(engine, *events_, {});

  EXPECT_GT(result.stats.backpressure_events, 0u);
  EXPECT_EQ(result.latency_histogram.count, result.events);
  ASSERT_EQ(result.decisions.size(), reference.decisions.size());
  for (std::size_t i = 0; i < reference.decisions.size(); ++i) {
    EXPECT_EQ(result.decisions[i].decision, reference.decisions[i].decision);
    EXPECT_EQ(result.decisions[i].winner, reference.decisions[i].winner);
  }
}

TEST_F(StreamTest, LoopPacingFloorsWallClockNotDecisionCoverage) {
  StreamConfig config = loop_config(2);
  ReplayOptions paced;
  paced.target_rate = 50000.0;  // fast, but a real open-loop floor
  StreamEngine engine(harness_->make_engine(), config);
  const auto result = run_replay(engine, *events_, paced);

  // The last event is scheduled at (n-1)/rate seconds: the wall clock
  // cannot beat the arrival process.
  EXPECT_GE(result.wall_seconds,
            static_cast<double>(result.session_events - 1) / 50000.0);
  EXPECT_EQ(result.latency_histogram.count, result.events);
  EXPECT_EQ(result.events, events_->size());
}

}  // namespace
}  // namespace mood::stream
