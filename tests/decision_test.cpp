// Tests for the decision layer's DecisionKernel — the single MooD decision
// procedure shared by the batch harness and the online gateway. The
// headline structural property: one-shot decide_trace() and any chunked
// fold()/decide()/finalize() drive over the same records produce identical
// final verdicts, because the incremental profile state is a pure function
// of the window content (chunk-independent), and finalize canonicalises
// whatever staleness/recheck short-cuts were taken mid-stream.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "attacks/attack.h"
#include "core/experiment.h"
#include "decision/kernel.h"
#include "simulation/generator.h"
#include "support/logging.h"

namespace mood::decision {
namespace {

/// Compact population with both expose and protect verdicts (the
/// stream-test mold, slightly smaller).
simulation::GeneratorParams population_params() {
  simulation::GeneratorParams p;
  p.users = 10;
  p.days = 6;
  p.records_per_user_per_day = 120.0;
  p.p_private_poi = 0.75;
  p.p_private_leisure = 0.8;
  p.private_poi_spread_m = 4000.0;
  p.relocation_prob = 0.1;
  p.seed = 4321;
  return p;
}

class DecisionKernelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    support::set_log_level(support::LogLevel::kWarn);
    dataset_ = new mobility::Dataset(
        simulation::generate(population_params()));
    core::ExperimentConfig config;
    config.min_records = 8;
    harness_ = new core::ExperimentHarness(*dataset_, config, /*seed=*/11);
  }
  static void TearDownTestSuite() {
    delete harness_;
    delete dataset_;
    harness_ = nullptr;
    dataset_ = nullptr;
  }

  /// Drives `trace` through the kernel in fixed-size chunks, mimicking the
  /// gateway's micro-batch folds, then finalises.
  static Verdict decide_chunked(const DecisionKernel& kernel,
                                const mobility::Trace& trace,
                                std::size_t chunk) {
    UserKernelState state;
    state.window.set_user(trace.user());
    const auto& records = trace.records();
    std::size_t folded_last = 0;
    for (std::size_t next = 0; next < records.size(); next += chunk) {
      const std::size_t end = std::min(next + chunk, records.size());
      std::vector<mobility::Record> pending(records.begin() + next,
                                            records.begin() + end);
      folded_last = kernel.fold(state, std::move(pending));
      kernel.decide(state, folded_last);
    }
    kernel.finalize(state);
    return Verdict{state.decision, state.winner};
  }

  static mobility::Dataset* dataset_;
  static core::ExperimentHarness* harness_;
};

mobility::Dataset* DecisionKernelTest::dataset_ = nullptr;
core::ExperimentHarness* DecisionKernelTest::harness_ = nullptr;

TEST(DecisionNames, Stable) {
  EXPECT_EQ(to_string(Decision::kExpose), "expose");
  EXPECT_EQ(to_string(Decision::kProtect), "protect");
}

/// evaluate_gateway is the kernel in batch clothing: its expose set must
/// equal evaluate_no_lppm's protected set, and every protect verdict must
/// carry the whole-trace search winner.
TEST_F(DecisionKernelTest, GatewayMatchesNoLppmAndWholeTraceSearch) {
  const core::GatewayResult gateway = harness_->evaluate_gateway();
  const core::StrategyResult no_lppm = harness_->evaluate_no_lppm();
  const MoodEngine engine = harness_->make_engine();
  ASSERT_EQ(gateway.users.size(), no_lppm.users.size());
  ASSERT_EQ(gateway.users.size(), harness_->pairs().size());
  bool any_exposed = false;
  bool any_protected = false;
  for (std::size_t i = 0; i < gateway.users.size(); ++i) {
    const auto& pair = harness_->pairs()[i];
    const auto& verdict = gateway.users[i];
    ASSERT_EQ(verdict.user, pair.test.user());
    ASSERT_EQ(verdict.user, no_lppm.users[i].user);
    const bool exposed = verdict.decision == Decision::kExpose;
    EXPECT_EQ(exposed, no_lppm.users[i].is_protected) << verdict.user;
    if (exposed) {
      any_exposed = true;
      EXPECT_TRUE(verdict.winner.empty()) << verdict.user;
    } else {
      any_protected = true;
      const auto candidate = engine.search(pair.test);
      EXPECT_EQ(verdict.winner, candidate ? candidate->lppm : "")
          << verdict.user;
    }
  }
  // The population must exercise both verdicts or the test proves little.
  EXPECT_TRUE(any_exposed);
  EXPECT_TRUE(any_protected);
  EXPECT_EQ(gateway.exposed_users(),
            no_lppm.user_count() - no_lppm.non_protected_users());
}

/// at_risk_trace compiles the window profiles once for all attacks; it
/// must agree with walking the raw-trace targeted queries attack by
/// attack (the pre-kernel no-LPPM evaluator).
TEST_F(DecisionKernelTest, AtRiskTraceMatchesRawAttackWalk) {
  const DecisionKernel kernel = harness_->make_kernel();
  for (const auto& pair : harness_->pairs()) {
    bool caught = false;
    for (const auto& attack : harness_->attacks()) {
      if (attacks::reidentifies(*attack, pair.test, pair.test.user())) {
        caught = true;
        break;
      }
    }
    EXPECT_EQ(kernel.at_risk_trace(pair.test), caught) << pair.test.user();
  }
}

/// One-shot vs chunked drives land on identical final verdicts, for
/// several chunk sizes — the batch/stream unification made structural.
TEST_F(DecisionKernelTest, DecideTraceIsChunkIndependent) {
  const DecisionKernel kernel = harness_->make_kernel();
  for (const auto& pair : harness_->pairs()) {
    const Verdict reference = kernel.decide_trace(pair.test);
    for (const std::size_t chunk : {7u, 64u, 1024u}) {
      const Verdict chunked = decide_chunked(kernel, pair.test, chunk);
      EXPECT_EQ(chunked.decision, reference.decision)
          << pair.test.user() << " chunk=" << chunk;
      EXPECT_EQ(chunked.winner, reference.winner)
          << pair.test.user() << " chunk=" << chunk;
    }
  }
}

/// Same property on a windowed, staleness-bounded kernel: chunked folds
/// take different eviction/rebuild/staleness paths than the one-shot
/// fold, but the final window — hence the canonical verdict — is the
/// same. This drives the stay tracker's clean-prefix drops and bounded
/// rebuild fallback inside the kernel.
TEST_F(DecisionKernelTest, WindowedKernelIsChunkIndependent) {
  KernelConfig config;
  config.max_points = 120;
  config.staleness_points = 50;
  const DecisionKernel kernel = harness_->make_kernel({}, config);
  for (const auto& pair : harness_->pairs()) {
    const Verdict reference = kernel.decide_trace(pair.test);
    const Verdict chunked = decide_chunked(kernel, pair.test, 33);
    EXPECT_EQ(chunked.decision, reference.decision) << pair.test.user();
    EXPECT_EQ(chunked.winner, reference.winner) << pair.test.user();
  }
  const KernelStats stats = kernel.stats();
  EXPECT_GT(stats.evicted_points, 0u);
  EXPECT_GT(stats.stay_updates, 0u);
}

TEST_F(DecisionKernelTest, EmptyTraceIsExposedWithoutCounting) {
  const DecisionKernel kernel = harness_->make_kernel();
  const mobility::Trace empty("nobody", {});
  EXPECT_FALSE(kernel.at_risk_trace(empty));
  const Verdict verdict = kernel.decide_trace(empty);
  EXPECT_EQ(verdict.decision, Decision::kExpose);
  EXPECT_TRUE(verdict.winner.empty());
  EXPECT_EQ(kernel.stats().decisions, 0u);
}

TEST_F(DecisionKernelTest, StatsAccumulateAcrossDecisions) {
  const DecisionKernel kernel = harness_->make_kernel();
  for (const auto& pair : harness_->pairs()) {
    (void)kernel.decide_trace(pair.test);
  }
  const KernelStats stats = kernel.stats();
  EXPECT_EQ(stats.decisions, harness_->pairs().size());
  EXPECT_EQ(stats.exposed_events + stats.protected_events,
            [&] {
              std::size_t n = 0;
              for (const auto& pair : harness_->pairs()) n += pair.test.size();
              return n;
            }());
  EXPECT_GT(stats.heatmap_updates, 0u);
  EXPECT_GT(stats.profile_refreshes, 0u);
  EXPECT_GT(stats.attack_invocations, 0u);
}

}  // namespace
}  // namespace mood::decision
