// Unit tests for the three re-identification attacks and the suite factory.
// Uses a deterministic population with well-separated per-user POIs, so raw
// test traces are re-identifiable by construction.

#include <gtest/gtest.h>

#include "attacks/ap_attack.h"
#include "attacks/pit_attack.h"
#include "attacks/poi_attack.h"
#include "attacks/suite.h"
#include "support/error.h"
#include "test_helpers.h"

namespace mood::attacks {
namespace {

using mobility::Trace;
using testing::distinct_population;

class AttackFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto dataset = distinct_population(6, 6);
    auto pairs = dataset.chronological_split(0.5, 4);
    ASSERT_EQ(pairs.size(), 6u);
    for (auto& pair : pairs) {
      background_.push_back(pair.train);
      tests_.push_back(pair.test);
    }
    reference_ = dataset.traces()[0].bounding_box().center();
  }

  std::vector<Trace> background_;
  std::vector<Trace> tests_;
  geo::GeoPoint reference_;
};

TEST_F(AttackFixture, PoiAttackReidentifiesRawTraces) {
  PoiAttack attack;
  attack.train(background_);
  EXPECT_EQ(attack.trained_users(), 6u);
  for (const auto& test : tests_) {
    const auto answer = attack.reidentify(test);
    ASSERT_TRUE(answer.has_value());
    EXPECT_EQ(*answer, test.user());
  }
}

TEST_F(AttackFixture, PitAttackReidentifiesRawTraces) {
  PitAttack attack;
  attack.train(background_);
  for (const auto& test : tests_) {
    const auto answer = attack.reidentify(test);
    ASSERT_TRUE(answer.has_value());
    EXPECT_EQ(*answer, test.user());
  }
}

TEST_F(AttackFixture, ApAttackReidentifiesRawTraces) {
  ApAttack attack(geo::CellGrid(geo::LocalProjection(reference_), 800.0));
  attack.train(background_);
  for (const auto& test : tests_) {
    const auto answer = attack.reidentify(test);
    ASSERT_TRUE(answer.has_value());
    EXPECT_EQ(*answer, test.user());
  }
}

TEST_F(AttackFixture, PoiAttackAbstainsWithoutPois) {
  PoiAttack attack;
  attack.train(background_);
  // A fast-moving trace has no stay points -> no profile -> abstain.
  std::vector<mobility::Record> moving;
  geo::GeoPoint p = reference_;
  for (int i = 0; i < 50; ++i) {
    moving.push_back(mobility::Record{p, i * 60});
    p = geo::destination(p, 0.3, 500.0);
  }
  EXPECT_FALSE(attack.reidentify(Trace("x", std::move(moving))).has_value());
}

TEST_F(AttackFixture, PitAttackAbstainsWithoutPois) {
  PitAttack attack;
  attack.train(background_);
  std::vector<mobility::Record> moving;
  geo::GeoPoint p = reference_;
  for (int i = 0; i < 50; ++i) {
    moving.push_back(mobility::Record{p, i * 60});
    p = geo::destination(p, 0.3, 500.0);
  }
  EXPECT_FALSE(attack.reidentify(Trace("x", std::move(moving))).has_value());
}

TEST_F(AttackFixture, ApAttackAbstainsOnEmptyTrace) {
  ApAttack attack(geo::CellGrid(geo::LocalProjection(reference_), 800.0));
  attack.train(background_);
  EXPECT_FALSE(attack.reidentify(Trace("x", {})).has_value());
}

TEST_F(AttackFixture, ShiftedTraceMisattributed) {
  // A trace living at user3's places must not re-identify as user0.
  PoiAttack attack;
  attack.train(background_);
  Trace moved = tests_[3];
  moved.set_user("user0");  // lie about ownership; geography wins
  const auto answer = attack.reidentify(moved);
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(*answer, "user3");
}

TEST_F(AttackFixture, RetrainReplacesProfiles) {
  PoiAttack attack;
  attack.train(background_);
  EXPECT_EQ(attack.trained_users(), 6u);
  attack.train({background_[0], background_[1]});
  EXPECT_EQ(attack.trained_users(), 2u);
}

TEST_F(AttackFixture, ReidentifiesHelperChecksOwner) {
  PoiAttack attack;
  attack.train(background_);
  EXPECT_TRUE(reidentifies(attack, tests_[2], tests_[2].user()));
  EXPECT_FALSE(reidentifies(attack, tests_[2], "someone_else"));
}

// ---------------------------------------------------------------- Suite --

TEST_F(AttackFixture, StandardSuiteHasPaperOrder) {
  const auto suite = make_standard_suite(reference_);
  ASSERT_EQ(suite.size(), 3u);
  EXPECT_EQ(suite[0]->name(), "POI-Attack");
  EXPECT_EQ(suite[1]->name(), "PIT-Attack");
  EXPECT_EQ(suite[2]->name(), "AP-Attack");
}

TEST_F(AttackFixture, TrainAllTrainsEverything) {
  const auto suite = make_standard_suite(reference_);
  train_all(suite, background_);
  for (const auto& attack : suite) {
    EXPECT_EQ(attack->trained_users(), background_.size());
  }
}

TEST_F(AttackFixture, SuiteAgreesOnRawTraces) {
  const auto suite = make_standard_suite(reference_);
  train_all(suite, background_);
  for (const auto& attack : suite) {
    EXPECT_TRUE(reidentifies(*attack, tests_[1], tests_[1].user()))
        << attack->name();
  }
}

TEST(AttackFactory, MakesByNameAndRejectsUnknown) {
  const geo::GeoPoint reference{45.0, 5.0};
  EXPECT_EQ(make_attack("poi", reference)->name(), "POI-Attack");
  EXPECT_EQ(make_attack("pit", reference)->name(), "PIT-Attack");
  EXPECT_EQ(make_attack("ap", reference)->name(), "AP-Attack");
  EXPECT_THROW(make_attack("quantum", reference),
               support::PreconditionError);
}

}  // namespace
}  // namespace mood::attacks
