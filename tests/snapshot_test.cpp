// Tests for checkpoint/restore (src/stream/snapshot): the mood-snapshot/1
// byte format (round trip, golden file, rejection of malformed input), the
// crash-consistent file protocol under injected faults at every named fail
// point — including SIGKILL-equivalent deaths — and the headline restore
// property: a replay captured at any checkpoint boundary and resumed in a
// fresh engine produces the bit-identical decision set and cost counters
// of an uninterrupted run, across shard counts, staleness bounds, window
// caps and LRU evictions.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "simulation/generator.h"
#include "stream/engine.h"
#include "stream/event.h"
#include "stream/replay.h"
#include "stream/snapshot.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/logging.h"

namespace mood::stream {
namespace {

namespace fs = std::filesystem;
using mood::testing::FailAction;
using mood::testing::FailPoint;

/// Compact population in the stream_test mold, sized so a full replay is
/// cheap enough to repeat once per checkpoint boundary.
simulation::GeneratorParams population_params() {
  simulation::GeneratorParams p;
  p.users = 8;
  p.days = 5;
  p.records_per_user_per_day = 100.0;
  p.p_private_poi = 0.75;
  p.p_private_leisure = 0.8;
  p.private_poi_spread_m = 4000.0;
  p.relocation_prob = 0.1;
  p.seed = 977;
  return p;
}

class SnapshotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    support::set_log_level(support::LogLevel::kError);
    dataset_ = new mobility::Dataset(
        simulation::generate(population_params()));
    core::ExperimentConfig config;
    config.min_records = 8;
    harness_ = new core::ExperimentHarness(*dataset_, config, /*seed=*/13);
    events_ = new std::vector<StreamEvent>(
        make_event_stream(harness_->pairs()));
  }
  static void TearDownTestSuite() {
    delete events_;
    delete harness_;
    delete dataset_;
    events_ = nullptr;
    harness_ = nullptr;
    dataset_ = nullptr;
  }

  void TearDown() override { FailPoint::disarm_all(); }

  /// Fresh scratch directory under the gtest temp root.
  static std::string scratch_dir(const std::string& name) {
    const std::string dir =
        std::string(::testing::TempDir()) + "mood_snapshot_" + name;
    fs::remove_all(dir);
    return dir;
  }

  static ReplayResult replay_with(StreamConfig config,
                                  ReplayOptions options = {}) {
    StreamEngine engine(harness_->make_engine(), config);
    return run_replay(engine, *events_, options);
  }

  /// Drives a fresh gateway to `boundary` (a multiple of `batch`), exactly
  /// as run_replay would, and captures its state there.
  static SnapshotData capture_at(StreamConfig config, std::size_t boundary,
                                 std::size_t batch) {
    StreamEngine engine(harness_->make_engine(), config);
    for (std::size_t i = 0; i < boundary; ++i) {
      engine.ingest((*events_)[i]);
      if ((i + 1) % batch == 0) engine.drain();
    }
    return engine.capture_snapshot();
  }

  /// Restores `snap` into a fresh gateway and replays the remainder.
  static ReplayResult resume_from(const SnapshotData& snap,
                                  StreamConfig config,
                                  ReplayOptions options) {
    StreamEngine engine(harness_->make_engine(), config);
    engine.restore_snapshot(snap);
    options.resume_events = static_cast<std::size_t>(snap.stream_position);
    return run_replay(engine, *events_, options);
  }

  static mobility::Dataset* dataset_;
  static core::ExperimentHarness* harness_;
  static std::vector<StreamEvent>* events_;
};

mobility::Dataset* SnapshotTest::dataset_ = nullptr;
core::ExperimentHarness* SnapshotTest::harness_ = nullptr;
std::vector<StreamEvent>* SnapshotTest::events_ = nullptr;

/// Bit-identity oracle for "restored run == uninterrupted run". The
/// index_* counters are excluded by default: they are read from the
/// harness-owned attacks, which every engine in this process shares, so
/// they are only comparable across engines with dedicated harnesses (see
/// RestoreContinuesIndexCountersAcrossDedicatedHarnesses).
void expect_identical_outcome(const ReplayResult& actual,
                              const ReplayResult& expected,
                              bool include_index = false) {
  ASSERT_EQ(actual.decisions.size(), expected.decisions.size());
  for (std::size_t i = 0; i < expected.decisions.size(); ++i) {
    const UserDecision& a = actual.decisions[i];
    const UserDecision& e = expected.decisions[i];
    ASSERT_EQ(a.user, e.user);
    EXPECT_EQ(a.decision, e.decision) << a.user;
    EXPECT_EQ(a.winner, e.winner) << a.user;
    EXPECT_EQ(a.events, e.events) << a.user;
    EXPECT_EQ(a.risk_transitions, e.risk_transitions) << a.user;
    EXPECT_EQ(a.searches, e.searches) << a.user;
    EXPECT_EQ(a.window_points, e.window_points) << a.user;
    EXPECT_EQ(a.window_slices, e.window_slices) << a.user;
  }
  EXPECT_EQ(actual.events, expected.events);
  EXPECT_EQ(actual.batches, expected.batches);
  const StreamStats& a = actual.stats;
  const StreamStats& e = expected.stats;
  EXPECT_EQ(a.events, e.events);
  EXPECT_EQ(a.batches, e.batches);
  EXPECT_EQ(a.decisions, e.decisions);
  EXPECT_EQ(a.exposed_events, e.exposed_events);
  EXPECT_EQ(a.protected_events, e.protected_events);
  EXPECT_EQ(a.searches, e.searches);
  EXPECT_EQ(a.rechecks, e.rechecks);
  EXPECT_EQ(a.profile_refreshes, e.profile_refreshes);
  EXPECT_EQ(a.stay_updates, e.stay_updates);
  EXPECT_EQ(a.stay_rebuilds, e.stay_rebuilds);
  EXPECT_EQ(a.heatmap_updates, e.heatmap_updates);
  EXPECT_EQ(a.evicted_points, e.evicted_points);
  EXPECT_EQ(a.evicted_users, e.evicted_users);
  EXPECT_EQ(a.lppm_applications, e.lppm_applications);
  EXPECT_EQ(a.attack_invocations, e.attack_invocations);
  if (include_index) {
    EXPECT_EQ(a.index_prunes, e.index_prunes);
    EXPECT_EQ(a.exact_evals, e.exact_evals);
    EXPECT_EQ(a.index_rebuilds, e.index_rebuilds);
  }
}

/// Minimal self-consistent document for file-protocol tests; the position
/// doubles as an identity marker.
SnapshotData tiny_snapshot(std::uint64_t position) {
  SnapshotData d;
  d.context.seed = 7;
  d.context.dataset = "tiny";
  d.context.total_events = 64;
  d.context.batch_events = 8;
  d.config.shards = 1;
  d.stream_position = position;
  d.batches = position / 8;
  d.stats.events = position;
  d.stats.batches = position / 8;
  d.shard_clocks = {position};
  d.shard_shedding = {0};
  UserSnapshot u;
  u.user = "u1";
  u.window = {{{45.5, 4.25}, 1000}, {{45.5, 4.5}, 2000}};
  u.events = 2;
  u.last_touch = 1;
  d.users.push_back(std::move(u));
  return d;
}

// ------------------------------------------------------------ format --

TEST(SnapshotFormat, Crc32MatchesTheIeeeCheckValue) {
  // The canonical CRC-32 check vector.
  EXPECT_EQ(snapshot_crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(snapshot_crc32(""), 0x00000000u);
}

TEST(SnapshotFormat, EncodeDecodeRoundTripsEveryField) {
  SnapshotData d;
  d.context.seed = 42;
  d.context.dataset = "roundtrip";
  d.context.total_events = 1000;
  d.context.batch_events = 128;
  d.config.shards = 3;
  d.config.window_seconds = 86400;
  d.config.max_points = 64;
  d.config.max_users_per_shard = 5;
  d.config.staleness_points = 10;
  d.stream_position = 512;
  d.batches = 4;
  d.stats.events = 512;
  d.stats.batches = 4;
  d.stats.decisions = 17;
  d.stats.searches = 3;
  d.stats.checkpoints = 2;  // travels verbatim even though reported raw
  d.stats.bad_records = 6;
  d.stats.dead_letters = 9;
  d.stats.quarantined_users = 1;
  d.stats.shed_decisions = 5;
  d.stats.degraded_batches = 2;
  d.stats.backpressure_events = 7;
  d.stats.quarantined_snapshots = 1;
  d.shard_clocks = {9, 0, 4};
  d.shard_shedding = {1, 0, 1};

  UserSnapshot rich;
  rich.user = "ada";
  rich.window = {{{45.5, 4.25}, 100}, {{45.75, 4.25}, 200}};
  rich.pending = {{{46.0, 4.5}, 300}};
  rich.heatmap_built = true;
  rich.heatmap_total = 3.5;
  rich.heatmap_counts = {{{1, -2}, 2.0}, {{0, 3}, 1.5}};
  rich.stays_init = true;
  rich.stay_origin_set = true;
  rich.stay_origin = {45.5, 4.25};
  rich.stays.stays.params.max_diameter_m = 200.0;
  rich.stays.stays.params.min_dwell = 900;
  rich.stays.stays.params.min_points = 3;
  rich.stays.stays.has_origin = true;
  rich.stays.stays.origin = {45.5, 4.25};
  rich.stays.stays.finals.push_back(
      {{{45.5, 4.25}, 4, 1200, 100, 1300}, 0, 3});
  rich.stays.stays.run_valid = true;
  rich.stays.stays.run_anchor = 4;
  rich.stays.stays.run_j = 6;
  rich.stays.stays.run_sx = 1.25;
  rich.stays.stays.run_sy = -0.5;
  rich.stays.stays.run_t_start = 1400;
  rich.stays.stays.run_t_end = 1500;
  rich.stays.stays.base = 1;
  rich.stays.stays.size = 7;
  rich.stays.stays.generation = 5;
  rich.stays.stays.updates = 9;
  rich.stays.stays.rebuilds = 2;
  rich.stays.visits.merge_distance_m = 100.0;
  rich.stays.visits.states.push_back({{45.5, 4.25}, 4, 1200, 100, 1300});
  rich.stays.visits.folded = 1;
  rich.stays.synced_generation = 5;
  rich.profiles_built = true;
  rich.markov_states = {{{0.79, 4.25, 0.70}, 0.5}, {{0.80, 4.5, 0.69}, 0.5}};
  rich.poi_centers = {{0.79, 4.25, 0.70}};
  rich.stale_appended = 3;
  rich.stale_evicted = 1;
  rich.stale_points = 12;
  rich.has_decision = true;
  rich.decision = 1;
  rich.winner = "GeoI";
  rich.searched_events = 77;
  rich.events = 3;
  rich.risk_transitions = 1;
  rich.searches = 2;
  rich.rechecks = 4;
  rich.degraded = 2;
  rich.last_touch = 11;
  rich.quarantined = true;
  rich.quarantine_reason = "bad coordinate";
  rich.dead_letters = 5;
  rich.has_last_time = true;
  rich.last_time = 1234;

  UserSnapshot bare;  // everything optional absent
  bare.user = "bob";

  d.users = {std::move(rich), std::move(bare)};

  const SnapshotData back = decode_snapshot(encode_snapshot(d));
  EXPECT_EQ(back.context.seed, 42u);
  EXPECT_EQ(back.context.dataset, "roundtrip");
  EXPECT_EQ(back.context.total_events, 1000u);
  EXPECT_EQ(back.context.batch_events, 128u);
  EXPECT_EQ(back.config.shards, 3u);
  EXPECT_EQ(back.config.window_seconds, 86400);
  EXPECT_EQ(back.config.max_points, 64u);
  EXPECT_EQ(back.config.max_users_per_shard, 5u);
  EXPECT_EQ(back.config.staleness_points, 10u);
  EXPECT_EQ(back.stream_position, 512u);
  EXPECT_EQ(back.batches, 4u);
  EXPECT_EQ(back.stats.decisions, 17u);
  EXPECT_EQ(back.stats.checkpoints, 2u);
  EXPECT_EQ(back.stats.bad_records, 6u);
  EXPECT_EQ(back.stats.dead_letters, 9u);
  EXPECT_EQ(back.stats.quarantined_users, 1u);
  EXPECT_EQ(back.stats.shed_decisions, 5u);
  EXPECT_EQ(back.stats.degraded_batches, 2u);
  EXPECT_EQ(back.stats.backpressure_events, 7u);
  EXPECT_EQ(back.stats.quarantined_snapshots, 1u);
  EXPECT_EQ(back.shard_clocks, (std::vector<std::uint64_t>{9, 0, 4}));
  EXPECT_EQ(back.shard_shedding, (std::vector<std::uint8_t>{1, 0, 1}));

  ASSERT_EQ(back.users.size(), 2u);
  const UserSnapshot& a = back.users[0];
  EXPECT_EQ(a.user, "ada");
  ASSERT_EQ(a.window.size(), 2u);
  EXPECT_EQ(a.window[0].position.lat, 45.5);
  EXPECT_EQ(a.window[1].time, 200);
  ASSERT_EQ(a.pending.size(), 1u);
  EXPECT_TRUE(a.heatmap_built);
  EXPECT_EQ(a.heatmap_total, 3.5);
  ASSERT_EQ(a.heatmap_counts.size(), 2u);
  EXPECT_EQ(a.heatmap_counts[0].first.ix, 1);
  EXPECT_EQ(a.heatmap_counts[0].first.iy, -2);
  EXPECT_EQ(a.heatmap_counts[1].second, 1.5);
  ASSERT_TRUE(a.stays_init);
  EXPECT_EQ(a.stays.stays.params.min_dwell, 900);
  ASSERT_EQ(a.stays.stays.finals.size(), 1u);
  EXPECT_EQ(a.stays.stays.finals[0].poi.record_count, 4u);
  EXPECT_EQ(a.stays.stays.finals[0].end, 3u);
  EXPECT_TRUE(a.stays.stays.run_valid);
  EXPECT_EQ(a.stays.stays.run_sx, 1.25);
  EXPECT_EQ(a.stays.stays.run_sy, -0.5);
  EXPECT_EQ(a.stays.stays.rebuilds, 2u);
  ASSERT_EQ(a.stays.visits.states.size(), 1u);
  EXPECT_EQ(a.stays.visits.merge_distance_m, 100.0);
  EXPECT_EQ(a.stays.synced_generation, 5u);
  ASSERT_EQ(a.markov_states.size(), 2u);
  EXPECT_EQ(a.markov_states[0].weight, 0.5);
  EXPECT_EQ(a.markov_states[1].center.lon_deg, 4.5);
  ASSERT_EQ(a.poi_centers.size(), 1u);
  EXPECT_EQ(a.poi_centers[0].cos_lat, 0.70);
  EXPECT_EQ(a.stale_points, 12u);
  EXPECT_TRUE(a.has_decision);
  EXPECT_EQ(a.decision, 1);
  EXPECT_EQ(a.winner, "GeoI");
  EXPECT_EQ(a.searched_events, 77u);
  EXPECT_EQ(a.rechecks, 4u);
  EXPECT_EQ(a.degraded, 2u);
  EXPECT_EQ(a.last_touch, 11u);
  EXPECT_TRUE(a.quarantined);
  EXPECT_EQ(a.quarantine_reason, "bad coordinate");
  EXPECT_EQ(a.dead_letters, 5u);
  EXPECT_TRUE(a.has_last_time);
  EXPECT_EQ(a.last_time, 1234);

  const UserSnapshot& b = back.users[1];
  EXPECT_EQ(b.user, "bob");
  EXPECT_FALSE(b.heatmap_built);
  EXPECT_FALSE(b.stays_init);
  EXPECT_FALSE(b.has_decision);
  EXPECT_EQ(b.searched_events, static_cast<std::uint64_t>(-1));
  EXPECT_FALSE(b.quarantined);
  EXPECT_EQ(b.dead_letters, 0u);
  EXPECT_FALSE(b.has_last_time);
}

TEST(SnapshotFormat, RejectsBadMagicVersionAndSectionDamage) {
  const std::string good = encode_snapshot(tiny_snapshot(8));
  ASSERT_NO_THROW(decode_snapshot(good));

  std::string bad = good;
  bad[0] = 'X';  // magic
  EXPECT_THROW(decode_snapshot(bad), SnapshotError);

  bad = good;
  bad[8] = 2;  // version
  try {
    (void)decode_snapshot(bad);
    FAIL() << "unknown version accepted";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported snapshot version"),
              std::string::npos);
  }

  bad = good;
  bad[12] = 5;  // section count
  EXPECT_THROW(decode_snapshot(bad), SnapshotError);

  bad = good;
  bad[40] ^= 0x01;  // one flipped payload bit -> some section's CRC fails
  EXPECT_THROW(decode_snapshot(bad), SnapshotError);

  bad = good + "garbage";  // trailing bytes after the last section
  EXPECT_THROW(decode_snapshot(bad), SnapshotError);

  SnapshotData inconsistent = tiny_snapshot(8);
  inconsistent.shard_clocks = {1, 2};  // two clocks, one shard
  EXPECT_THROW(decode_snapshot(encode_snapshot(inconsistent)), SnapshotError);
}

TEST(SnapshotFormat, EveryTruncationIsRejectedNotCrashed) {
  // The short-read property, exhaustively: every proper prefix of a valid
  // snapshot must throw SnapshotError — never crash, never half-decode.
  const std::string good = encode_snapshot(tiny_snapshot(8));
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_THROW(decode_snapshot(std::string_view(good).substr(0, len)),
                 SnapshotError)
        << "prefix length " << len;
  }
}

TEST(SnapshotFormat, RejectsSemanticCorruption) {
  // Structurally valid bytes (magic, CRCs all fine) whose *values* are
  // out of range must still be rejected: decode validates, not just
  // checksums.
  SnapshotData d = tiny_snapshot(8);
  d.users[0].decision = 7;  // not a valid Decision enum value
  EXPECT_THROW(decode_snapshot(encode_snapshot(d)), SnapshotError);

  d = tiny_snapshot(8);
  d.users.push_back(d.users[0]);  // duplicate id -> not strictly sorted
  EXPECT_THROW(decode_snapshot(encode_snapshot(d)), SnapshotError);

  d = tiny_snapshot(8);
  d.users[0].quarantine_reason = "x";  // reason without the quarantine flag
  EXPECT_THROW(decode_snapshot(encode_snapshot(d)), SnapshotError);

  d = tiny_snapshot(8);
  d.shard_shedding = {2};  // latch must be 0 or 1
  EXPECT_THROW(decode_snapshot(encode_snapshot(d)), SnapshotError);

  d = tiny_snapshot(8);
  d.shard_shedding = {0, 0};  // two latches, one shard
  EXPECT_THROW(decode_snapshot(encode_snapshot(d)), SnapshotError);
}

// ------------------------------------------------------- golden file --

/// Fixed document behind tests/data/golden.moodsnap. Every double is
/// exactly representable so the byte image is stable across platforms.
SnapshotData golden_data() {
  SnapshotData d;
  d.context.seed = 7;
  d.context.dataset = "golden";
  d.context.total_events = 6;
  d.context.batch_events = 2;
  d.config.shards = 2;
  d.config.window_seconds = 3600;
  d.config.max_points = 4;
  d.config.max_users_per_shard = 3;
  d.config.staleness_points = 5;
  d.stream_position = 4;
  d.batches = 2;
  d.stats.events = 4;
  d.stats.batches = 2;
  d.stats.decisions = 3;
  d.stats.exposed_events = 1;
  d.stats.protected_events = 3;
  d.stats.searches = 1;
  d.stats.bad_records = 1;
  d.stats.dead_letters = 2;
  d.stats.quarantined_users = 1;
  d.stats.shed_decisions = 1;
  d.stats.degraded_batches = 1;
  d.stats.backpressure_events = 2;
  d.config.resilience.on_bad_record = BadRecordPolicy::kQuarantine;
  d.config.resilience.max_pending_per_shard = 32;
  d.config.resilience.shed_high_watermark = 16;
  d.config.resilience.shed_low_watermark = 8;
  d.config.resilience.drain_budget = 4;
  d.shard_clocks = {3, 1};
  d.shard_shedding = {1, 0};

  UserSnapshot ada;
  ada.user = "ada";
  ada.window = {{{45.5, 4.25}, 1000}, {{45.75, 4.5}, 2000}};
  ada.heatmap_built = true;
  ada.heatmap_total = 2.0;
  ada.heatmap_counts = {{{1, -2}, 1.5}, {{0, 3}, 0.5}};
  ada.profiles_built = true;
  ada.markov_states = {{{0.5, 4.25, 0.75}, 1.0}};
  ada.poi_centers = {{0.5, 4.25, 0.75}};
  ada.has_decision = true;
  ada.decision = 1;
  ada.winner = "GeoI";
  ada.searched_events = 2;
  ada.events = 2;
  ada.risk_transitions = 1;
  ada.searches = 1;
  ada.degraded = 1;
  ada.last_touch = 3;
  ada.has_last_time = true;
  ada.last_time = 2000;

  UserSnapshot bob;
  bob.user = "bob";
  bob.window = {{{46.0, 5.0}, 1500}};
  bob.stays_init = true;
  bob.stay_origin_set = true;
  bob.stay_origin = {46.0, 5.0};
  bob.stays.stays.params.max_diameter_m = 200.0;
  bob.stays.stays.params.min_dwell = 900;
  bob.stays.stays.params.min_points = 3;
  bob.stays.stays.has_origin = true;
  bob.stays.stays.origin = {46.0, 5.0};
  bob.stays.stays.size = 1;
  bob.stays.visits.merge_distance_m = 100.0;
  bob.events = 1;
  bob.last_touch = 1;
  bob.quarantined = true;
  bob.quarantine_reason = "bad coordinate";
  bob.dead_letters = 2;
  bob.has_last_time = true;
  bob.last_time = 1500;

  d.users = {std::move(ada), std::move(bob)};
  return d;
}

std::string golden_path() {
  return std::string(MOOD_TEST_DATA_DIR) + "/golden.moodsnap";
}

TEST(SnapshotGolden, WriterMatchesCheckedInGoldenFile) {
  const std::string bytes = encode_snapshot(golden_data());
  if (std::getenv("MOOD_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "regenerated " << golden_path();
  }
  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing fixture " << golden_path()
                         << " (regenerate with MOOD_UPDATE_GOLDEN=1)";
  std::string stored((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  // Byte-for-byte: any writer change that moves the layout fails here and
  // must come with a version bump (or a deliberate fixture regeneration).
  ASSERT_EQ(stored.size(), bytes.size());
  EXPECT_TRUE(stored == bytes) << "writer output diverged from the "
                                  "documented mood-snapshot/1 layout";
}

TEST(SnapshotGolden, CheckedInGoldenFileDecodes) {
  std::ifstream in(golden_path(), std::ios::binary);
  if (!in.good()) GTEST_SKIP() << "fixture not generated yet";
  const std::string stored((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  const SnapshotData d = decode_snapshot(stored);
  EXPECT_EQ(d.context.dataset, "golden");
  EXPECT_EQ(d.stream_position, 4u);
  ASSERT_EQ(d.users.size(), 2u);
  EXPECT_EQ(d.users[0].user, "ada");
  EXPECT_EQ(d.users[0].winner, "GeoI");
  EXPECT_TRUE(d.users[1].stays_init);
  EXPECT_EQ(d.users[1].stays.stays.params.min_dwell, 900);
  EXPECT_EQ(d.config.resilience.on_bad_record, BadRecordPolicy::kQuarantine);
  EXPECT_EQ(d.config.resilience.shed_high_watermark, 16u);
  EXPECT_EQ(d.shard_shedding, (std::vector<std::uint8_t>{1, 0}));
  EXPECT_TRUE(d.users[1].quarantined);
  EXPECT_EQ(d.users[1].quarantine_reason, "bad coordinate");
  EXPECT_EQ(d.users[1].dead_letters, 2u);
}

// ----------------------------------------------- restore bit-identity --

TEST_F(SnapshotTest, RestoreAtEveryCheckpointBoundaryIsBitIdentical) {
  StreamConfig config;
  config.shards = 4;
  ReplayOptions options;
  options.batch_events = 256;
  const ReplayResult reference = replay_with(config, options);

  for (std::size_t boundary = options.batch_events;
       boundary < events_->size(); boundary += options.batch_events) {
    // Capture at the boundary, push the document through the real byte
    // format, restore into a fresh gateway, and finish the stream.
    const SnapshotData snap =
        decode_snapshot(encode_snapshot(
            capture_at(config, boundary, options.batch_events)));
    ASSERT_EQ(snap.stream_position, boundary);
    const ReplayResult resumed = resume_from(snap, config, options);
    expect_identical_outcome(resumed, reference);
    EXPECT_EQ(resumed.session_events, events_->size() - boundary);
  }
}

TEST_F(SnapshotTest, RestoreIsBitIdenticalAcrossGatewayConfigs) {
  // The same round trip under every interesting knob: single shard, many
  // shards + staleness, bounded windows, and an LRU cap small enough to
  // evict users between checkpoints.
  StreamConfig shards1;
  shards1.shards = 1;
  StreamConfig stale;
  stale.shards = 7;
  stale.staleness_points = 150;
  StreamConfig capped;
  capped.shards = 2;
  capped.max_points = 50;
  StreamConfig windowed;
  windowed.shards = 3;
  windowed.window_seconds = 86400;
  StreamConfig lru;
  lru.shards = 1;
  lru.max_users_per_shard = 2;

  ReplayOptions options;
  options.batch_events = 128;
  for (const StreamConfig& config :
       {shards1, stale, capped, windowed, lru}) {
    const ReplayResult reference = replay_with(config, options);
    const std::size_t batches = events_->size() / options.batch_events;
    for (const std::size_t at : {batches / 3, 2 * batches / 3}) {
      const std::size_t boundary =
          std::max<std::size_t>(1, at) * options.batch_events;
      const SnapshotData snap = decode_snapshot(encode_snapshot(
          capture_at(config, boundary, options.batch_events)));
      const ReplayResult resumed = resume_from(snap, config, options);
      expect_identical_outcome(resumed, reference);
    }
  }
  // The LRU configuration really evicted users, so the restore path was
  // exercised against a store that dropped state between checkpoints.
  EXPECT_GT(replay_with(lru, options).stats.evicted_users, 0u);
}

TEST_F(SnapshotTest, RestoreContinuesIndexCountersAcrossDedicatedHarnesses) {
  // The index_* counters live on the harness-owned attacks, so the
  // bit-identity claim for them needs one harness per process "life":
  // reference (uninterrupted), first life (prefix + capture), second life
  // (restore + continue). stats_floor_ must subtract the second life's
  // own training rebuilds, which the baseline already counts once.
  core::ExperimentConfig config;
  config.min_records = 8;
  StreamConfig stream_config;
  stream_config.shards = 2;
  ReplayOptions options;
  options.batch_events = 256;
  const std::size_t boundary = 2 * options.batch_events;

  core::ExperimentHarness straight(*dataset_, config, 13);
  StreamEngine uninterrupted(straight.make_engine(), stream_config);
  const ReplayResult reference =
      run_replay(uninterrupted, *events_, options);

  core::ExperimentHarness first_life(*dataset_, config, 13);
  StreamEngine before_crash(first_life.make_engine(), stream_config);
  for (std::size_t i = 0; i < boundary; ++i) {
    before_crash.ingest((*events_)[i]);
    if ((i + 1) % options.batch_events == 0) before_crash.drain();
  }
  const SnapshotData snap = decode_snapshot(
      encode_snapshot(before_crash.capture_snapshot()));

  core::ExperimentHarness second_life(*dataset_, config, 13);
  StreamEngine restored(second_life.make_engine(), stream_config);
  restored.restore_snapshot(snap);
  options.resume_events = boundary;
  const ReplayResult resumed = run_replay(restored, *events_, options);
  expect_identical_outcome(resumed, reference, /*include_index=*/true);
}

TEST_F(SnapshotTest, PendingEventsSurviveCaptureBetweenDrains) {
  // Capture with undrained events in flight: the pending queues must
  // travel through the snapshot and be folded by the restored engine.
  StreamConfig config;
  config.shards = 2;
  const std::size_t cut = 300;  // deliberately not a batch boundary

  StreamEngine direct(harness_->make_engine(), config);
  StreamEngine source(harness_->make_engine(), config);
  for (std::size_t i = 0; i < cut; ++i) {
    direct.ingest((*events_)[i]);
    source.ingest((*events_)[i]);
  }
  const SnapshotData snap =
      decode_snapshot(encode_snapshot(source.capture_snapshot()));
  std::size_t pending = 0;
  for (const UserSnapshot& u : snap.users) pending += u.pending.size();
  EXPECT_EQ(pending, cut);

  StreamEngine restored(harness_->make_engine(), config);
  restored.restore_snapshot(snap);
  EXPECT_EQ(restored.stream_position(), cut);
  direct.drain();
  restored.drain();  // restored pending users must be on the dirty lists
  direct.finish();
  restored.finish();
  const auto expected = direct.decisions();
  const auto actual = restored.decisions();
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].user, expected[i].user);
    EXPECT_EQ(actual[i].decision, expected[i].decision);
    EXPECT_EQ(actual[i].winner, expected[i].winner);
    EXPECT_EQ(actual[i].events, expected[i].events);
  }
}

TEST_F(SnapshotTest, RestoreRefusesMismatchedGatewayConfig) {
  StreamConfig config;
  config.shards = 2;
  const SnapshotData snap = capture_at(config, 256, 256);

  StreamConfig other = config;
  other.staleness_points = 99;
  StreamEngine engine(harness_->make_engine(), other);
  EXPECT_THROW(engine.restore_snapshot(snap), SnapshotError);

  // The resilience knobs are part of the fingerprint too: resuming under
  // a different shed policy would change the decisions mid-stream.
  StreamConfig resilient = config;
  resilient.resilience.shed_high_watermark = 512;
  resilient.resilience.shed_low_watermark = 128;
  StreamEngine mismatched(harness_->make_engine(), resilient);
  EXPECT_THROW(mismatched.restore_snapshot(snap), SnapshotError);

  // And never into a gateway that already ingested anything.
  StreamEngine used(harness_->make_engine(), config);
  used.ingest((*events_)[0]);
  EXPECT_THROW(used.restore_snapshot(snap), support::Error);
}

// -------------------------------------------------- periodic cadence --

TEST_F(SnapshotTest, PeriodicCheckpointsFollowEventCadenceAndPrune) {
  const std::string dir = scratch_dir("cadence");
  StreamConfig config;
  config.shards = 2;
  ReplayOptions options;
  options.batch_events = 128;

  StreamEngine engine(harness_->make_engine(), config);
  engine.configure_checkpoints(
      {dir, 256}, {13, "snapshot-test", events_->size(), 128});
  const ReplayResult result = run_replay(engine, *events_, options);

  // Cadence 256 with batch 128: a checkpoint on every second drain.
  const StreamStats stats = engine.stats();
  EXPECT_GE(stats.checkpoints, 2u);
  EXPECT_GT(stats.checkpoint_bytes, 0u);
  EXPECT_EQ(stats.checkpoint_failures, 0u);

  // Pruned to the newest two, newest first, and the newest decodes to the
  // highest checkpointed position.
  const auto files = list_snapshot_files(dir);
  ASSERT_EQ(files.size(), 2u);
  const SnapshotData latest = read_latest_snapshot(dir);
  EXPECT_GT(latest.stream_position,
            decode_snapshot(
                [&] {
                  std::ifstream in(files[1], std::ios::binary);
                  return std::string(
                      (std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
                }())
                .stream_position);
  EXPECT_EQ(latest.context.dataset, "snapshot-test");

  // Checkpointing must not have perturbed the decisions themselves.
  expect_identical_outcome(result, replay_with(config, options));
}

TEST_F(SnapshotTest, RestoreFromDiskContinuesBitIdentically) {
  // The full loop the CLI runs: periodic checkpoints to disk, "crash",
  // read the newest snapshot back, restore, continue — bit-identical.
  const std::string dir = scratch_dir("disk");
  StreamConfig config;
  config.shards = 3;
  config.staleness_points = 100;
  ReplayOptions options;
  options.batch_events = 128;
  const ReplayResult reference = replay_with(config, options);

  StreamEngine writer(harness_->make_engine(), config);
  writer.configure_checkpoints(
      {dir, 384}, {13, "snapshot-test", events_->size(), 128});
  // Drive only a prefix — the "crash" point — past a few checkpoints.
  const std::size_t crash_at = (events_->size() / 2 / 128) * 128;
  for (std::size_t i = 0; i < crash_at; ++i) {
    writer.ingest((*events_)[i]);
    if ((i + 1) % 128 == 0) writer.drain();
  }
  ASSERT_GE(writer.stats().checkpoints, 1u);

  const SnapshotData snap = read_latest_snapshot(dir);
  EXPECT_GT(snap.stream_position, 0u);
  EXPECT_LE(snap.stream_position, crash_at);
  const ReplayResult resumed = resume_from(snap, config, options);
  expect_identical_outcome(resumed, reference);
}

// ------------------------------------------------- fault injection ----

class SnapshotFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoint::disarm_all(); }
};

TEST_F(SnapshotFaultTest, EveryWriteFailPointLeavesPreviousSnapshotUsable) {
  for (const char* point :
       {"snapshot.write.open", "snapshot.write.payload",
        "snapshot.write.fsync", "snapshot.write.rename",
        "snapshot.write.commit"}) {
    const std::string dir = std::string(::testing::TempDir()) +
                            "mood_snapshot_fault_" + point;
    fs::remove_all(dir);
    write_snapshot_file(dir, encode_snapshot(tiny_snapshot(8)));

    FailPoint::arm(point, FailAction::kError);
    EXPECT_THROW(
        write_snapshot_file(dir, encode_snapshot(tiny_snapshot(16))),
        support::IoError)
        << point;
    // Whatever step failed, the previous good snapshot must still win —
    // except past the rename, where the new snapshot is already fully
    // committed and is itself the valid newest.
    const SnapshotData survivor = read_latest_snapshot(dir);
    const bool committed = std::string(point) == "snapshot.write.commit";
    EXPECT_EQ(survivor.stream_position, committed ? 16u : 8u) << point;

    // One-shot: the very next attempt must succeed end to end.
    write_snapshot_file(dir, encode_snapshot(tiny_snapshot(24)));
    EXPECT_EQ(read_latest_snapshot(dir).stream_position, 24u) << point;
  }
}

TEST_F(SnapshotFaultTest, TornPayloadWriteLeavesPartialTmpAndOldSnapshotWins) {
  const std::string dir = std::string(::testing::TempDir()) +
                          "mood_snapshot_torn";
  fs::remove_all(dir);
  write_snapshot_file(dir, encode_snapshot(tiny_snapshot(8)));

  const std::string bytes = encode_snapshot(tiny_snapshot(16));
  FailPoint::arm("snapshot.write.payload", FailAction::kTorn);
  EXPECT_THROW(write_snapshot_file(dir, bytes), support::IoError);

  // The torn prefix is on disk under the tmp name — exactly the state a
  // mid-write kill leaves — and is invisible to the reader.
  const std::string tmp = dir + "/.snapshot.tmp";
  ASSERT_TRUE(fs::exists(tmp));
  EXPECT_EQ(fs::file_size(tmp), bytes.size() / 2);
  EXPECT_EQ(list_snapshot_files(dir).size(), 1u);
  EXPECT_EQ(read_latest_snapshot(dir).stream_position, 8u);

  // Recovery: the next write truncates the leftover tmp and commits.
  write_snapshot_file(dir, bytes);
  EXPECT_EQ(read_latest_snapshot(dir).stream_position, 16u);
}

TEST_F(SnapshotFaultTest, ReadQuarantinesCorruptCandidatesAndSkipsUnreadable) {
  const std::string dir = std::string(::testing::TempDir()) +
                          "mood_snapshot_read";
  fs::remove_all(dir);
  write_snapshot_file(dir, encode_snapshot(tiny_snapshot(8)));
  const std::string newest =
      write_snapshot_file(dir, encode_snapshot(tiny_snapshot(16)));

  // Bit-flip the newest on disk: CRC rejects it, the file is renamed aside
  // to `.quarantined` (and counted), and the previous good snapshot wins.
  {
    std::fstream f(newest, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40);
    char byte = 0;
    f.seekg(40);
    f.get(byte);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(40);
    f.put(byte);
  }
  std::size_t quarantined = 0;
  EXPECT_EQ(read_latest_snapshot(dir, &quarantined).stream_position, 8u);
  EXPECT_EQ(quarantined, 1u);
  EXPECT_FALSE(fs::exists(newest));
  EXPECT_TRUE(fs::exists(newest + ".quarantined"));
  // Out of the rotation: the next read neither sees nor re-counts it.
  EXPECT_EQ(list_snapshot_files(dir).size(), 1u);
  quarantined = 0;
  EXPECT_EQ(read_latest_snapshot(dir, &quarantined).stream_position, 8u);
  EXPECT_EQ(quarantined, 0u);

  // A truncated newest takes the same rename-aside fallback.
  const std::string truncated =
      write_snapshot_file(dir, encode_snapshot(tiny_snapshot(16)));
  fs::resize_file(truncated, fs::file_size(truncated) / 2);
  EXPECT_EQ(read_latest_snapshot(dir).stream_position, 8u);
  EXPECT_TRUE(fs::exists(truncated + ".quarantined"));

  // An injected short read is indistinguishable from on-disk truncation,
  // so it quarantines too (one-shot: only the first candidate is torn).
  const std::string torn =
      write_snapshot_file(dir, encode_snapshot(tiny_snapshot(16)));
  FailPoint::arm("snapshot.read.file", FailAction::kTorn);
  EXPECT_EQ(read_latest_snapshot(dir).stream_position, 8u);
  EXPECT_TRUE(fs::exists(torn + ".quarantined"));

  // An injected open failure (IoError, not SnapshotError) is transient:
  // skipped WITHOUT the rename, and readable again on the next attempt.
  const std::string unreadable =
      write_snapshot_file(dir, encode_snapshot(tiny_snapshot(16)));
  FailPoint::arm("snapshot.read.open", FailAction::kError);
  quarantined = 0;
  EXPECT_EQ(read_latest_snapshot(dir, &quarantined).stream_position, 8u);
  EXPECT_EQ(quarantined, 0u);
  EXPECT_TRUE(fs::exists(unreadable));
  EXPECT_EQ(read_latest_snapshot(dir).stream_position, 16u);

  // Every candidate corrupt: a typed SnapshotError, never a partial
  // restore — and the whole rotation renamed aside for forensics.
  for (const std::string& path : list_snapshot_files(dir)) {
    fs::resize_file(path, 3);
  }
  EXPECT_THROW(read_latest_snapshot(dir), SnapshotError);
  EXPECT_TRUE(list_snapshot_files(dir).empty());

  // Missing directory: a typed IoError from the listing.
  fs::remove_all(dir);
  EXPECT_THROW(read_latest_snapshot(dir), support::IoError);
  EXPECT_THROW(list_snapshot_files(dir), support::IoError);
}

TEST_F(SnapshotFaultTest, PeriodicPathAbsorbsWriteFailuresAndRetries) {
  // An injected checkpoint failure mid-replay must not surface: the drain
  // counts a checkpoint_failure and the next cadence retries.
  simulation::GeneratorParams params = population_params();
  params.users = 4;
  params.days = 3;
  const mobility::Dataset dataset = simulation::generate(params);
  core::ExperimentConfig config;
  config.min_records = 8;
  core::ExperimentHarness harness(dataset, config, 13);
  const auto events = make_event_stream(harness.pairs());

  const std::string dir = std::string(::testing::TempDir()) +
                          "mood_snapshot_periodic_fault";
  fs::remove_all(dir);
  StreamConfig stream_config;
  stream_config.shards = 2;
  StreamEngine engine(harness.make_engine(), stream_config);
  engine.configure_checkpoints({dir, 128},
                               {13, "fault", events.size(), 64});
  FailPoint::arm("snapshot.write.fsync", FailAction::kError);
  ReplayOptions options;
  options.batch_events = 64;
  ASSERT_NO_THROW(run_replay(engine, events, options));
  const StreamStats stats = engine.stats();
  EXPECT_EQ(stats.checkpoint_failures, 1u);
  EXPECT_GE(stats.checkpoints, 1u);  // later cadences succeeded
  EXPECT_NO_THROW(read_latest_snapshot(dir));
}

// Death tests: kKill is a real std::_Exit(137) — the SIGKILL-equivalent —
// so the on-disk state afterwards is exactly what a kill -9 leaves.
// Threadsafe style re-executes the binary, so the statement and the setup
// must be deterministic (fixed paths, no mkdtemp).
TEST_F(SnapshotFaultTest, KillBeforeRenameLeavesDirectoryRestorable) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  const std::string dir = std::string(::testing::TempDir()) +
                          "mood_snapshot_kill_rename";
  fs::remove_all(dir);
  write_snapshot_file(dir, encode_snapshot(tiny_snapshot(8)));

  EXPECT_EXIT(
      {
        FailPoint::arm("snapshot.write.rename", FailAction::kKill);
        write_snapshot_file(dir, encode_snapshot(tiny_snapshot(16)));
      },
      ::testing::ExitedWithCode(137), "");

  // The kill struck after the payload fsync but before the rename: the
  // fully written tmp file is stranded, invisible, and the previous
  // snapshot restores.
  EXPECT_TRUE(fs::exists(dir + "/.snapshot.tmp"));
  EXPECT_EQ(list_snapshot_files(dir).size(), 1u);
  EXPECT_EQ(read_latest_snapshot(dir).stream_position, 8u);
}

TEST_F(SnapshotFaultTest, KillMidPayloadLeavesDirectoryRestorable) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  const std::string dir = std::string(::testing::TempDir()) +
                          "mood_snapshot_kill_payload";
  fs::remove_all(dir);
  write_snapshot_file(dir, encode_snapshot(tiny_snapshot(8)));

  EXPECT_EXIT(
      {
        FailPoint::arm("snapshot.write.payload", FailAction::kKill);
        write_snapshot_file(dir, encode_snapshot(tiny_snapshot(16)));
      },
      ::testing::ExitedWithCode(137), "");

  EXPECT_EQ(read_latest_snapshot(dir).stream_position, 8u);
}

// ------------------------------------------------------- fail points --

TEST_F(SnapshotFaultTest, FailPointSpecParsingAndHitCounting) {
  EXPECT_FALSE(FailPoint::any_armed());
  FailPoint::arm_spec("snapshot.write.fsync=error@2");
  EXPECT_TRUE(FailPoint::any_armed());

  // First hit: below the firing threshold, nothing happens.
  EXPECT_EQ(MOOD_FAIL_POINT("snapshot.write.fsync"), FailAction::kNone);
  // Second hit fires (kError throws from inside hit()).
  EXPECT_THROW(MOOD_FAIL_POINT("snapshot.write.fsync"), support::IoError);
  // One-shot: disarmed after firing.
  EXPECT_FALSE(FailPoint::any_armed());
  EXPECT_EQ(MOOD_FAIL_POINT("snapshot.write.fsync"), FailAction::kNone);

  // kCorrupt is returned to the site (which mangles its own data) and
  // disarms like every other action.
  FailPoint::arm_spec("stream.drain.corrupt=corrupt");
  EXPECT_EQ(MOOD_FAIL_POINT("stream.drain.corrupt"), FailAction::kCorrupt);
  EXPECT_FALSE(FailPoint::any_armed());
  EXPECT_EQ(MOOD_FAIL_POINT("stream.drain.corrupt"), FailAction::kNone);

  // kThrow raises the typed InjectedFault from inside hit().
  FailPoint::arm_spec("stream.decide.user=throw");
  EXPECT_THROW(MOOD_FAIL_POINT("stream.decide.user"),
               mood::testing::InjectedFault);
  EXPECT_FALSE(FailPoint::any_armed());

  EXPECT_THROW(FailPoint::arm_spec("no-action-here"), support::UsageError);
  EXPECT_THROW(FailPoint::arm_spec("x=explode"), support::UsageError);
  EXPECT_THROW(FailPoint::arm_spec("x=kill@zero"), support::UsageError);
}

}  // namespace
}  // namespace mood::stream
