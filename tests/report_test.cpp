// Unit tests for the report subsystem: the JSON document model (build,
// serialize, parse — round-trips, escaping, NaN handling), the domain
// serializers (result documents, edge cases like empty results and
// infinite distortions), CSV rows and the text-table renderer.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "core/experiment.h"
#include "report/json.h"
#include "report/report.h"
#include "report/table.h"
#include "support/csv.h"
#include "support/error.h"

namespace mood::report {
namespace {

// --------------------------------------------------------------- Json --

TEST(Json, ScalarsSerialize) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
  EXPECT_EQ(Json(1.5).dump(), "1.5");
}

TEST(Json, DoublesStayRecognisablyFloating) {
  // An integral double must not round-trip into an integer.
  EXPECT_EQ(Json(2.0).dump(), "2.0");
  const Json back = Json::parse(Json(2.0).dump());
  EXPECT_EQ(back.type(), Json::Type::kDouble);
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(-std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json("back\\slash").dump(), "\"back\\\\slash\"");
  EXPECT_EQ(Json("tab\there").dump(), "\"tab\\there\"");
  EXPECT_EQ(Json("new\nline").dump(), "\"new\\nline\"");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
  // UTF-8 passes through verbatim.
  EXPECT_EQ(Json("héllo").dump(), "\"héllo\"");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json object = Json::object();
  object["zulu"] = 1;
  object["alpha"] = 2;
  EXPECT_EQ(object.dump(), "{\"zulu\":1,\"alpha\":2}");
}

TEST(Json, OperatorBracketAutoCreates) {
  Json doc;  // null
  doc["a"]["b"] = 3;
  EXPECT_EQ(doc.dump(), "{\"a\":{\"b\":3}}");
  Json list;  // null
  list.push_back(1);
  list.push_back("two");
  EXPECT_EQ(list.dump(), "[1,\"two\"]");
}

TEST(Json, RoundTripNestedDocument) {
  Json doc = Json::object();
  doc["name"] = "run \"1\"";
  doc["ok"] = true;
  doc["count"] = 17;
  doc["ratio"] = 0.125;
  doc["missing"] = Json();
  Json inner = Json::array();
  inner.push_back(Json::object());
  inner.push_back(3.5);
  doc["items"] = std::move(inner);

  for (const int indent : {-1, 0, 2}) {
    const Json parsed = Json::parse(doc.dump(indent));
    EXPECT_EQ(parsed, doc) << "indent=" << indent;
  }
}

TEST(Json, ParseUnicodeEscapes) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "é");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Json::parse("\"\\ud83d\\ude00\"").as_string(), "\xF0\x9F\x98\x80");
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), support::IoError);
  EXPECT_THROW(Json::parse("{"), support::IoError);
  EXPECT_THROW(Json::parse("[1,]"), support::IoError);
  EXPECT_THROW(Json::parse("\"unterminated"), support::IoError);
  EXPECT_THROW(Json::parse("nul"), support::IoError);
  EXPECT_THROW(Json::parse("1 trailing"), support::IoError);
  EXPECT_THROW(Json::parse("\"\\x\""), support::IoError);
  EXPECT_THROW(Json::parse("\"\\ud83d\""), support::IoError);  // lone surrogate
  EXPECT_THROW(Json::parse("{\"a\" 1}"), support::IoError);
}

TEST(Json, ParseNumbers) {
  EXPECT_EQ(Json::parse("42").as_int(), 42);
  EXPECT_EQ(Json::parse("-13").as_int(), -13);
  EXPECT_DOUBLE_EQ(Json::parse("2.5e3").as_double(), 2500.0);
  // Integer overflow degrades to double instead of failing.
  const Json big = Json::parse("123456789012345678901234567890");
  EXPECT_TRUE(big.is_number());
  EXPECT_GT(big.as_double(), 1e29);
}

TEST(Json, TypedAccessorsThrowOnMismatch) {
  EXPECT_THROW(static_cast<void>(Json("text").as_int()),
               support::PreconditionError);
  EXPECT_THROW(static_cast<void>(Json(1).as_string()),
               support::PreconditionError);
  EXPECT_THROW(static_cast<void>(Json(1.5).as_int()),
               support::PreconditionError);
  EXPECT_EQ(Json(3.0).as_int(), 3);  // integral double is fine
}

TEST(Json, FindAndFallbacks) {
  Json doc = Json::object();
  doc["x"] = 1.5;
  doc["s"] = "str";
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(doc.number_or("x", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(doc.number_or("missing", 9.0), 9.0);
  EXPECT_EQ(doc.string_or("s", ""), "str");
  EXPECT_EQ(doc.string_or("x", "fallback"), "fallback");  // wrong type
  EXPECT_EQ(doc.int_or("missing", 4), 4);
}

TEST(Json, IntOrIsTolerantOfBadNumbers) {
  // int_or is the tolerant reader: anything not exactly representable as
  // int64 falls back instead of throwing (or invoking UB on the cast).
  Json doc = Json::object();
  doc["fractional"] = 2.5;
  doc["huge"] = 1e300;
  doc["negative_huge"] = -1e300;
  doc["fits"] = 3.0;
  EXPECT_EQ(doc.int_or("fractional", -1), -1);
  EXPECT_EQ(doc.int_or("huge", -1), -1);
  EXPECT_EQ(doc.int_or("negative_huge", -1), -1);
  EXPECT_EQ(doc.int_or("fits", -1), 3);
}

TEST(Json, AsIntRejectsOutOfRangeDoubles) {
  EXPECT_THROW(static_cast<void>(Json(1e300).as_int()),
               support::PreconditionError);
  EXPECT_THROW(static_cast<void>(Json(-1e300).as_int()),
               support::PreconditionError);
}

// -------------------------------------------------------- serializers --

core::StrategyResult sample_strategy() {
  core::StrategyResult result;
  result.strategy = "GeoI";
  result.wall_seconds = 0.25;
  result.users.push_back({"alice", true, 120.0, 100, "GeoI"});
  result.users.push_back({"bob", false, 0.0, 300, ""});
  result.users.push_back({"carol", true, 700.0, 100, "GeoI"});
  return result;
}

TEST(Serializers, StrategyResultFields) {
  const Json doc = to_json(sample_strategy());
  EXPECT_EQ(doc.string_or("strategy", ""), "GeoI");
  EXPECT_EQ(doc.int_or("users", 0), 3);
  EXPECT_EQ(doc.int_or("non_protected_users", 0), 1);
  EXPECT_DOUBLE_EQ(doc.number_or("data_loss", -1.0), 0.6);  // 300 / 500
  EXPECT_DOUBLE_EQ(doc.number_or("wall_seconds", -1.0), 0.25);
  const Json* bands = doc.find("distortion_bands");
  ASSERT_NE(bands, nullptr);
  EXPECT_EQ(bands->int_or("low", -1), 1);     // 120 m
  EXPECT_EQ(bands->int_or("medium", -1), 1);  // 700 m
  const Json* users = doc.find("per_user");
  ASSERT_NE(users, nullptr);
  EXPECT_EQ(users->size(), 3u);
  EXPECT_EQ(users->items()[1].string_or("user", ""), "bob");
  EXPECT_FALSE(users->items()[1].find("protected")->as_bool());
}

TEST(Serializers, StrategyResultWithoutUsers) {
  const Json doc = to_json(sample_strategy(), /*include_users=*/false);
  EXPECT_EQ(doc.find("per_user"), nullptr);
}

TEST(Serializers, EmptyStrategyResultIsWellFormed) {
  core::StrategyResult empty;
  empty.strategy = "no-LPPM";
  const Json doc = to_json(empty);
  EXPECT_EQ(doc.int_or("users", -1), 0);
  EXPECT_DOUBLE_EQ(doc.number_or("data_loss", -1.0), 0.0);
  EXPECT_DOUBLE_EQ(doc.number_or("non_protected_ratio", -1.0), 0.0);
  // And the document parses back.
  EXPECT_NO_THROW(Json::parse(doc.dump(2)));
}

TEST(Serializers, InfiniteDistortionSerializesAsNull) {
  core::StrategyResult result;
  result.strategy = "TRL";
  result.users.push_back(
      {"u", true, std::numeric_limits<double>::infinity(), 10, "TRL"});
  const std::string text = to_json(result).dump();
  EXPECT_EQ(text.find("inf"), std::string::npos);
  EXPECT_NO_THROW(Json::parse(text));
}

core::MoodResult sample_mood() {
  core::MoodResult result;
  result.wall_seconds = 1.5;
  core::MoodUserOutcome a;
  a.user = "alice";
  a.level = core::ProtectionLevel::kSingle;
  a.records = 200;
  a.lppm_applications = 3;
  a.attack_invocations = 9;
  a.distortion = 50.0;
  a.winner = "HMC";
  core::MoodUserOutcome b;
  b.user = "bob";
  b.level = core::ProtectionLevel::kFineGrained;
  b.records = 100;
  b.lost_records = 20;
  b.subtraces = 4;
  b.protected_subtraces = 3;
  b.lppm_applications = 40;
  b.attack_invocations = 120;
  b.distortion = 900.0;
  result.users = {a, b};
  return result;
}

TEST(Serializers, MoodResultFields) {
  const core::MoodResult result = sample_mood();
  EXPECT_EQ(result.total_lppm_applications(), 43u);
  EXPECT_EQ(result.total_attack_invocations(), 129u);

  const Json doc = to_json(result);
  EXPECT_EQ(doc.string_or("strategy", ""), "MooD-full");
  EXPECT_EQ(doc.int_or("non_protected_users", -1), 1);  // bob lost records
  EXPECT_NEAR(doc.number_or("data_loss", -1.0), 20.0 / 300.0, 1e-12);
  const Json* cost = doc.find("search_cost");
  ASSERT_NE(cost, nullptr);
  EXPECT_EQ(cost->int_or("lppm_applications", -1), 43);
  EXPECT_EQ(cost->int_or("attack_invocations", -1), 129);
  const Json* users = doc.find("per_user");
  ASSERT_NE(users, nullptr);
  EXPECT_EQ(users->items()[1].string_or("level", ""), "fine-grained");
  EXPECT_EQ(users->items()[1].int_or("subtraces", -1), 4);
}

TEST(Serializers, MakeReportDocumentShape) {
  report::RunMetadata meta;
  meta.tool = "test";
  meta.dataset = "tiny";
  meta.seed = 99;
  meta.wall_seconds = 2.0;
  meta.timings.emplace_back("harness", 0.5);
  const core::ExperimentConfig config;

  Json dataset = Json::object();
  dataset["name"] = "tiny";
  const Json doc = make_report(meta, config, std::move(dataset),
                               {to_json(sample_strategy())});

  EXPECT_EQ(doc.string_or("schema", ""), kResultSchema);
  const Json* m = doc.find("meta");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->int_or("seed", -1), 99);
  const Json* cfg = m->find("config");
  ASSERT_NE(cfg, nullptr);
  EXPECT_DOUBLE_EQ(cfg->number_or("geoi_epsilon", -1.0), config.geoi_epsilon);
  EXPECT_DOUBLE_EQ(cfg->number_or("trl_radius_m", -1.0), config.trl_radius_m);
  const Json* strategies = doc.find("strategies");
  ASSERT_NE(strategies, nullptr);
  EXPECT_EQ(strategies->size(), 1u);
  // Round-trip the whole document.
  EXPECT_EQ(Json::parse(doc.dump(2)), doc);
}

TEST(Serializers, DatasetSummary) {
  mobility::Dataset dataset("city");
  dataset.add(mobility::Trace("u1", {{geo::GeoPoint{45, 5}, 1000},
                                     {geo::GeoPoint{45, 5}, 90000}}));
  dataset.add(mobility::Trace("u2", {{geo::GeoPoint{45, 5}, 5000}}));
  const Json doc = dataset_summary(dataset);
  EXPECT_EQ(doc.string_or("name", ""), "city");
  EXPECT_EQ(doc.int_or("users", -1), 2);
  EXPECT_EQ(doc.int_or("records", -1), 3);
  EXPECT_EQ(doc.int_or("first_time", -1), 1000);
  EXPECT_EQ(doc.int_or("last_time", -1), 90000);
  EXPECT_DOUBLE_EQ(doc.number_or("mean_records_per_user", -1.0), 1.5);
}

TEST(Serializers, StrategySummaryRowsFromDocument) {
  report::RunMetadata meta;
  meta.dataset = "tiny";
  const Json doc = make_report(meta, core::ExperimentConfig{}, Json::object(),
                               {to_json(sample_strategy())});
  const auto rows = strategy_summary_rows(doc);
  ASSERT_EQ(rows.size(), 2u);  // header + one strategy
  EXPECT_EQ(rows[1][0], "tiny");
  EXPECT_EQ(rows[1][1], "GeoI");
  EXPECT_EQ(rows[1][2], "3");
  EXPECT_EQ(rows[1][4], "60.0%");
  EXPECT_EQ(rows[1][5], "1/1/0/0");
}

// ---------------------------------------------------------------- CSV --

TEST(Csv, UserOutcomeRowsRoundTripThroughCsv) {
  core::StrategyResult result = sample_strategy();
  result.users[0].user = "has,comma";  // must be quoted on write
  const auto rows = user_outcome_rows(result);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][0], "user");

  std::ostringstream out;
  support::write_csv(out, rows);
  std::istringstream in(out.str());
  const auto back = support::read_csv(in);
  ASSERT_EQ(back.size(), rows.size());
  EXPECT_EQ(back[1][0], "has,comma");
  EXPECT_EQ(back[2][1], "0");  // bob not protected
}

TEST(Csv, MoodOutcomeRows) {
  const auto rows = mood_outcome_rows(sample_mood());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].size(), 10u);
  EXPECT_EQ(rows[2][1], "fine-grained");
  EXPECT_EQ(rows[2][3], "20");  // bob's lost records
}

// -------------------------------------------------------------- Table --

TEST(Table, AlignsColumns) {
  Table table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"long-name", "12345"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("long-name  12345"), std::string::npos) << text;
  // Narrow values right-align under the wide ones.
  EXPECT_NE(text.find("    1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), support::PreconditionError);
}

TEST(Table, Formatting) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_percent(0.423), "42.3%");
  EXPECT_EQ(format_bands({1, 2, 3, 4}), "1/2/3/4");
}

}  // namespace
}  // namespace mood::report
