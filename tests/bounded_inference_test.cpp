// Equivalence and property tests for the PR-3 inference hot path: compiled
// flat profiles, bounded divergences and the branch-and-bound
// re-identification scans must reproduce the legacy hash-map oracles
// decision for decision — including ties, empty profiles and the
// disjoint-support Topsoe ceiling — and the parallel evaluators must be
// schedule-independent.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "attacks/suite.h"
#include "core/experiment.h"
#include "geo/cell_grid.h"
#include "profiles/heatmap.h"
#include "profiles/markov_profile.h"
#include "profiles/poi_profile.h"
#include "simulation/presets.h"
#include "support/rng.h"
#include "test_helpers.h"

namespace mood {
namespace {

using geo::GeoPoint;
using mobility::kHour;
using mobility::Trace;
using testing::distinct_population;
using testing::dwell;
using testing::trace_of;

constexpr double kInf = std::numeric_limits<double>::infinity();

// ------------------------------------------------ compiled heatmaps ----

class CompiledHeatmapTest : public ::testing::Test {
 protected:
  /// Deterministic random heatmap over a small cell universe; `salt`
  /// varies the draw.
  profiles::Heatmap random_map(std::uint64_t salt, int cells,
                               int universe = 12) {
    auto rng = support::RngStream(0xbeef).fork("map", salt);
    profiles::Heatmap map;
    for (int c = 0; c < cells; ++c) {
      const auto ix = static_cast<std::int32_t>(
          rng.uniform_index(static_cast<std::uint64_t>(universe)));
      const auto iy = static_cast<std::int32_t>(
          rng.uniform_index(static_cast<std::uint64_t>(universe)));
      map.add(geo::CellIndex{ix, iy},
              static_cast<double>(1 + rng.uniform_index(50)));
    }
    return map;
  }
};

TEST_F(CompiledHeatmapTest, PreservesProbabilitiesSorted) {
  const auto map = random_map(1, 9);
  const profiles::CompiledHeatmap compiled(map);
  ASSERT_EQ(compiled.cell_count(), map.cell_count());
  for (std::size_t i = 0; i < compiled.cells().size(); ++i) {
    const auto& cell = compiled.cells()[i];
    EXPECT_DOUBLE_EQ(cell.probability, map.probability(cell.cell));
    if (i > 0) EXPECT_LT(compiled.cells()[i - 1].cell, cell.cell);
  }
}

TEST_F(CompiledHeatmapTest, FromTraceMatchesCompilingLegacyBitwise) {
  const geo::CellGrid grid(geo::LocalProjection(GeoPoint{45.76, 4.83}),
                           800.0);
  const Trace trace = trace_of(
      "u", {dwell(GeoPoint{45.764, 4.8357}, 0, 30),
            dwell(GeoPoint{45.78, 4.87}, 4 * kHour, 20),
            dwell(GeoPoint{45.764, 4.8357}, 8 * kHour, 25)});
  const profiles::CompiledHeatmap direct =
      profiles::CompiledHeatmap::from_trace(trace, grid);
  const profiles::CompiledHeatmap via_legacy(
      profiles::Heatmap::from_trace(trace, grid));
  ASSERT_EQ(direct.cell_count(), via_legacy.cell_count());
  for (std::size_t i = 0; i < direct.cells().size(); ++i) {
    EXPECT_EQ(direct.cells()[i].cell, via_legacy.cells()[i].cell);
    EXPECT_EQ(direct.cells()[i].probability,
              via_legacy.cells()[i].probability);
  }
}

TEST_F(CompiledHeatmapTest, TopsoeMatchesLegacyWithinRounding) {
  for (std::uint64_t salt = 0; salt < 30; ++salt) {
    const auto a = random_map(2 * salt, 3 + static_cast<int>(salt % 7));
    const auto b = random_map(2 * salt + 1, 2 + static_cast<int>(salt % 5));
    const double legacy = profiles::topsoe_divergence(a, b);
    const double compiled = profiles::topsoe_divergence(
        profiles::CompiledHeatmap(a), profiles::CompiledHeatmap(b));
    EXPECT_NEAR(compiled, legacy, 1e-12) << "salt " << salt;
  }
}

TEST_F(CompiledHeatmapTest, TopsoeSymmetricAndZeroOnSelf) {
  const auto map = random_map(7, 8);
  const profiles::CompiledHeatmap compiled(map);
  EXPECT_EQ(profiles::topsoe_divergence(compiled, compiled), 0.0);
  const profiles::CompiledHeatmap other(random_map(8, 5));
  EXPECT_EQ(profiles::topsoe_divergence(compiled, other),
            profiles::topsoe_divergence(other, compiled));
}

TEST_F(CompiledHeatmapTest, TopsoeInfiniteForEmpty) {
  const profiles::CompiledHeatmap empty;
  const profiles::CompiledHeatmap some(random_map(3, 4));
  EXPECT_EQ(profiles::topsoe_divergence(some, empty), kInf);
  EXPECT_EQ(profiles::topsoe_divergence(empty, some), kInf);
}

TEST_F(CompiledHeatmapTest, DisjointSupportsHitTheCeilingExactly) {
  profiles::Heatmap a, b;
  a.add(geo::CellIndex{0, 0}, 3.0);
  a.add(geo::CellIndex{1, 0}, 1.0);
  b.add(geo::CellIndex{5, 5}, 2.0);
  const double ceiling = 2.0 * std::log(2.0);
  // Both paths return the exact constant, so whole-population ties at the
  // ceiling break identically everywhere.
  EXPECT_EQ(profiles::topsoe_divergence(a, b), ceiling);
  EXPECT_EQ(profiles::topsoe_divergence(profiles::CompiledHeatmap(a),
                                        profiles::CompiledHeatmap(b)),
            ceiling);
  // A bound at the ceiling must not prune the disjoint case away.
  EXPECT_EQ(profiles::topsoe_divergence_bounded(
                profiles::CompiledHeatmap(a), profiles::CompiledHeatmap(b),
                ceiling),
            ceiling);
}

TEST_F(CompiledHeatmapTest, BoundedContract) {
  for (std::uint64_t salt = 0; salt < 30; ++salt) {
    const profiles::CompiledHeatmap a(
        random_map(3 * salt, 4 + static_cast<int>(salt % 6)));
    const profiles::CompiledHeatmap b(
        random_map(3 * salt + 1, 3 + static_cast<int>(salt % 4)));
    const double exact = profiles::topsoe_divergence(a, b);
    // Bound >= value: exact result, bit for bit.
    EXPECT_EQ(profiles::topsoe_divergence_bounded(a, b, exact), exact);
    EXPECT_EQ(profiles::topsoe_divergence_bounded(a, b, kInf), exact);
    // Bound < value: anything strictly above the bound (infinity here).
    if (exact > 0.0) {
      EXPECT_GT(profiles::topsoe_divergence_bounded(a, b, exact * 0.5),
                exact * 0.5);
    }
  }
}

// ---------------------------------------- compiled Markov / POI forms ----

Trace shifted_three_places(const std::string& user, double north_m) {
  const GeoPoint home{45.764, 4.8357};
  const GeoPoint work{45.78, 4.87};
  const GeoPoint gym{45.75, 4.81};
  auto at = [&](const GeoPoint& p) {
    return geo::destination(p, 0.0, north_m);
  };
  return trace_of(user, {dwell(at(home), 0, 30), dwell(at(work), 4 * kHour, 20),
                         dwell(at(gym), 8 * kHour, 14),
                         dwell(at(home), 12 * kHour, 30)});
}

TEST(CompiledMarkovProfile, StatsProxBitIdenticalToLegacy) {
  const auto a = profiles::MarkovProfile::from_trace(
      shifted_three_places("a", 0.0));
  for (const double shift : {0.0, 700.0, 3000.0, 12000.0}) {
    const auto b = profiles::MarkovProfile::from_trace(
        shifted_three_places("b", shift));
    const double legacy = profiles::stats_prox_distance(a, b);
    const double compiled = profiles::stats_prox_distance(
        profiles::CompiledMarkovProfile(a),
        profiles::CompiledMarkovProfile(b));
    // Same matching, same accumulation order, cached trig rounds
    // identically: the values must be equal to the last bit.
    EXPECT_EQ(compiled, legacy) << "shift " << shift;
  }
}

TEST(CompiledMarkovProfile, BoundedContract) {
  const profiles::CompiledMarkovProfile a(
      profiles::MarkovProfile::from_trace(shifted_three_places("a", 0.0)));
  const profiles::CompiledMarkovProfile b(
      profiles::MarkovProfile::from_trace(shifted_three_places("b", 5000.0)));
  const double exact = profiles::stats_prox_distance(a, b);
  EXPECT_EQ(profiles::stats_prox_distance_bounded(a, b, 1000.0, exact),
            exact);
  EXPECT_GT(profiles::stats_prox_distance_bounded(a, b, 1000.0, exact * 0.25),
            exact * 0.25);
  const profiles::CompiledMarkovProfile empty;
  EXPECT_EQ(profiles::stats_prox_distance(a, empty), kInf);
}

TEST(CompiledPoiProfile, DistanceBitIdenticalToLegacy) {
  const auto a =
      profiles::PoiProfile::from_trace(shifted_three_places("a", 0.0));
  for (const double shift : {0.0, 700.0, 3000.0, 12000.0}) {
    const auto b =
        profiles::PoiProfile::from_trace(shifted_three_places("b", shift));
    EXPECT_EQ(profiles::poi_profile_distance(profiles::CompiledPoiProfile(a),
                                             profiles::CompiledPoiProfile(b)),
              profiles::poi_profile_distance(a, b))
        << "shift " << shift;
  }
}

TEST(CompiledPoiProfile, BoundedContract) {
  const profiles::CompiledPoiProfile a(
      profiles::PoiProfile::from_trace(shifted_three_places("a", 0.0)));
  const profiles::CompiledPoiProfile b(
      profiles::PoiProfile::from_trace(shifted_three_places("b", 8000.0)));
  const double exact = profiles::poi_profile_distance(a, b);
  EXPECT_EQ(profiles::poi_profile_distance_bounded(a, b, exact), exact);
  EXPECT_GT(profiles::poi_profile_distance_bounded(a, b, exact * 0.5),
            exact * 0.5);
  const profiles::CompiledPoiProfile empty;
  EXPECT_EQ(profiles::poi_profile_distance(empty, b), kInf);
  EXPECT_EQ(profiles::poi_profile_distance(a, empty), kInf);
}

// ------------------------------------- attack decision equivalence ----

/// Trains the standard suite on a population and checks, for every test
/// trace and several owner hypotheses, that the optimized path and the
/// reference path agree on reidentify() and reidentifies_target().
void expect_decision_equivalence(const mobility::Dataset& dataset,
                                 std::size_t min_records = 16) {
  core::ExperimentConfig config;
  config.min_records = min_records;
  const core::ExperimentHarness harness(dataset, config, 7);
  for (const auto& attack : harness.attacks()) {
    for (const auto& pair : harness.pairs()) {
      attack->set_reference_mode(false);
      const auto fast = attack->reidentify(pair.test);
      attack->set_reference_mode(true);
      const auto slow = attack->reidentify(pair.test);
      EXPECT_EQ(fast, slow) << attack->name() << " on " << pair.test.user();

      // Owner hypotheses: the true owner, the argmin answer, a stranger.
      std::vector<mobility::UserId> owners = {pair.test.user(),
                                              "nobody-in-training"};
      if (slow.has_value()) owners.push_back(*slow);
      for (const auto& owner : owners) {
        attack->set_reference_mode(false);
        const bool fast_hit = attack->reidentifies_target(pair.test, owner);
        attack->set_reference_mode(true);
        const bool slow_hit = attack->reidentifies_target(pair.test, owner);
        EXPECT_EQ(fast_hit, slow_hit)
            << attack->name() << " target " << owner << " on "
            << pair.test.user();
        // The targeted query must equal the argmin predicate.
        EXPECT_EQ(fast_hit, slow.has_value() && *slow == owner)
            << attack->name() << " target " << owner;
      }
    }
    attack->set_reference_mode(false);
  }
}

TEST(BoundedScanEquivalence, DistinctPopulation) {
  expect_decision_equivalence(distinct_population(8));
}

TEST(BoundedScanEquivalence, GeneratedPreset) {
  expect_decision_equivalence(
      simulation::make_preset_dataset("privamov", 0.05, 11), 8);
}

TEST(BoundedScanEquivalence, ObfuscatedTraces) {
  // Decisions must also agree on protected outputs (where near-ties and
  // no-match cases live), not just raw traces.
  const auto dataset = distinct_population(6);
  core::ExperimentConfig config;
  const core::ExperimentHarness harness(dataset, config, 7);
  for (const auto* lppm : harness.registry().singles()) {
    for (const auto& pair : harness.pairs()) {
      auto rng = support::RngStream(7).fork(pair.test.user()).fork(
          lppm->name());
      const Trace output = lppm->apply(pair.test, std::move(rng));
      for (const auto& attack : harness.attacks()) {
        attack->set_reference_mode(false);
        const bool fast =
            attack->reidentifies_target(output, pair.test.user());
        attack->set_reference_mode(true);
        const bool slow =
            attack->reidentifies_target(output, pair.test.user());
        attack->set_reference_mode(false);
        EXPECT_EQ(fast, slow) << attack->name() << "/" << lppm->name()
                              << " on " << pair.test.user();
      }
    }
  }
}

TEST(BoundedScanEquivalence, TwinUsersTieBreaksToFirstTrained) {
  // Two users with byte-identical traces: every distance ties exactly, and
  // the first trained profile must win in both paths.
  mobility::Dataset dataset("twins");
  const auto day = [&](const std::string& user) {
    std::vector<mobility::Record> records;
    for (int d = 0; d < 4; ++d) {
      auto r1 = dwell(GeoPoint{45.0, 5.0},
                      d * 24 * kHour, 30);
      auto r2 = dwell(GeoPoint{45.02, 5.03}, d * 24 * kHour + 9 * kHour, 30);
      records.insert(records.end(), r1.begin(), r1.end());
      records.insert(records.end(), r2.begin(), r2.end());
    }
    return Trace(user, std::move(records));
  };
  dataset.add(day("twinA"));
  dataset.add(day("twinB"));
  dataset.add(day("loner"));  // so scans have a third profile

  core::ExperimentConfig config;
  config.min_records = 8;
  const core::ExperimentHarness harness(dataset, config, 7);
  for (const auto& attack : harness.attacks()) {
    for (const bool reference : {false, true}) {
      attack->set_reference_mode(reference);
      const auto& twin_b_test = harness.pairs()[1].test;
      ASSERT_EQ(twin_b_test.user(), "twinB");
      const auto answer = attack->reidentify(twin_b_test);
      ASSERT_TRUE(answer.has_value()) << attack->name();
      EXPECT_EQ(*answer, "twinA")
          << attack->name() << (reference ? " (reference)" : " (optimized)");
      EXPECT_FALSE(attack->reidentifies_target(twin_b_test, "twinB"));
      EXPECT_TRUE(attack->reidentifies_target(twin_b_test, "twinA"));
    }
    attack->set_reference_mode(false);
  }
}

TEST(BoundedScanEquivalence, EmptyAnonymousProfileNeverReidentifies) {
  const auto dataset = distinct_population(4);
  core::ExperimentConfig config;
  const core::ExperimentHarness harness(dataset, config, 7);
  // Two records moving fast: no POIs, and (being only two samples) a
  // heatmap that matches nobody meaningfully; the empty trace exercises
  // the no-profile path everywhere.
  const Trace sparse("user0", {testing::rec(44.0, 4.0, 0),
                               testing::rec(44.5, 4.5, kHour)});
  const Trace empty("user0", {});
  for (const auto& attack : harness.attacks()) {
    for (const bool reference : {false, true}) {
      attack->set_reference_mode(reference);
      EXPECT_FALSE(attack->reidentifies_target(empty, "user0"))
          << attack->name();
      EXPECT_EQ(attack->reidentify(empty), std::nullopt) << attack->name();
      if (attack->name() != "AP-Attack") {
        // POI-based profiles cannot form from a 2-record sprint.
        EXPECT_EQ(attack->reidentify(sparse), std::nullopt)
            << attack->name();
      }
    }
    attack->set_reference_mode(false);
  }
}

// ------------------------------------------------ determinism ----------

TEST(EvaluatorDeterminism, ParallelMoodFullMatchesSerialReconstruction) {
  // evaluate_mood_full fans users across the shared pool; its outcome must
  // equal a serial per-user reconstruction (the engine is pure), which
  // makes the result independent of worker count and scheduling (--jobs 1
  // vs --jobs N agree; the CI smoke also checks that across processes).
  const auto dataset = distinct_population(6);
  core::ExperimentConfig config;
  const core::ExperimentHarness harness(dataset, config, 7);
  const auto parallel = harness.evaluate_mood_full();
  const auto engine = harness.make_engine();
  ASSERT_EQ(parallel.users.size(), harness.pairs().size());
  for (std::size_t i = 0; i < harness.pairs().size(); ++i) {
    const auto& pair = harness.pairs()[i];
    const auto& outcome = parallel.users[i];
    EXPECT_EQ(outcome.user, pair.test.user());
    core::ProtectionResult cost;
    if (const auto whole = engine.search(pair.test, &cost)) {
      EXPECT_EQ(outcome.winner, whole->lppm);
      EXPECT_EQ(outcome.level, whole->level);
      EXPECT_EQ(outcome.distortion, whole->distortion);
      EXPECT_EQ(outcome.lost_records, 0u);
    } else {
      EXPECT_EQ(outcome.level, core::ProtectionLevel::kFineGrained);
    }
  }
  // And a second parallel run is bit-identical.
  const auto again = harness.evaluate_mood_full();
  for (std::size_t i = 0; i < parallel.users.size(); ++i) {
    EXPECT_EQ(parallel.users[i].winner, again.users[i].winner);
    EXPECT_EQ(parallel.users[i].distortion, again.users[i].distortion);
    EXPECT_EQ(parallel.users[i].lost_records, again.users[i].lost_records);
    EXPECT_EQ(parallel.users[i].attack_invocations,
              again.users[i].attack_invocations);
  }
}

}  // namespace
}  // namespace mood
