// Unit tests for the synthetic mobility generator and the per-dataset
// presets (the substitution for the paper's four real datasets).

#include <gtest/gtest.h>

#include <set>

#include "clustering/poi_extraction.h"
#include "geo/cell_grid.h"
#include "simulation/generator.h"
#include "simulation/presets.h"
#include "support/error.h"

namespace mood::simulation {
namespace {

GeneratorParams small_params() {
  GeneratorParams p;
  p.users = 8;
  p.days = 6;
  p.records_per_user_per_day = 120.0;
  p.seed = 99;
  return p;
}

TEST(Generator, DeterministicForSameSeed) {
  const auto a = generate(small_params());
  const auto b = generate(small_params());
  ASSERT_EQ(a.user_count(), b.user_count());
  ASSERT_EQ(a.record_count(), b.record_count());
  for (std::size_t u = 0; u < a.user_count(); ++u) {
    EXPECT_EQ(a.traces()[u], b.traces()[u]);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  auto p1 = small_params();
  auto p2 = small_params();
  p2.seed = 100;
  EXPECT_NE(generate(p1).traces()[0], generate(p2).traces()[0]);
}

TEST(Generator, ProducesRequestedPopulation) {
  const auto dataset = generate(small_params());
  EXPECT_EQ(dataset.user_count(), 8u);
  std::set<std::string> ids;
  for (const auto& trace : dataset.traces()) ids.insert(trace.user());
  EXPECT_EQ(ids.size(), 8u);
}

TEST(Generator, RecordVolumeNearTarget) {
  auto params = small_params();
  params.activity_min = params.activity_max = 1.0;  // uniform contributors
  const auto dataset = generate(params);
  const double per_user_day =
      static_cast<double>(dataset.record_count()) / (8.0 * 6.0);
  EXPECT_NEAR(per_user_day, 120.0, 25.0);
}

TEST(Generator, ActivityVarianceSpreadsUserVolumes) {
  auto params = small_params();
  params.activity_min = 0.5;
  params.activity_max = 1.6;
  const auto dataset = generate(params);
  std::size_t min_records = SIZE_MAX, max_records = 0;
  for (const auto& trace : dataset.traces()) {
    min_records = std::min(min_records, trace.size());
    max_records = std::max(max_records, trace.size());
  }
  // Heavy contributors should clearly out-record casual ones.
  EXPECT_GT(static_cast<double>(max_records),
            1.5 * static_cast<double>(min_records));
}

TEST(Generator, ValidatesActivityBounds) {
  auto params = small_params();
  params.activity_min = 0.0;
  EXPECT_THROW(generate(params), support::PreconditionError);
  params = small_params();
  params.activity_min = 2.0;
  params.activity_max = 1.0;
  EXPECT_THROW(generate(params), support::PreconditionError);
}

TEST(Generator, RecordsAreTimeOrderedAndInPeriod) {
  const auto params = small_params();
  const auto dataset = generate(params);
  for (const auto& trace : dataset.traces()) {
    ASSERT_FALSE(trace.empty());
    EXPECT_GE(trace.front().time, params.start_time);
    EXPECT_LT(trace.back().time,
              params.start_time + params.days * mobility::kDay);
    for (std::size_t i = 1; i < trace.size(); ++i) {
      EXPECT_GE(trace.at(i).time, trace.at(i - 1).time);
    }
  }
}

TEST(Generator, StaysNearTheCity) {
  const auto params = small_params();
  const auto dataset = generate(params);
  for (const auto& trace : dataset.traces()) {
    for (const auto& record : trace.records()) {
      EXPECT_LT(geo::haversine_m(record.position, params.city_center),
                80000.0);
    }
  }
}

TEST(Generator, RoutineUsersHaveExtractablePois) {
  // Home/work routine must yield stay points — the raw material of the
  // POI and PIT attacks.
  const auto dataset = generate(small_params());
  std::size_t users_with_pois = 0;
  for (const auto& trace : dataset.traces()) {
    if (!clustering::extract_pois(trace).empty()) ++users_with_pois;
  }
  EXPECT_EQ(users_with_pois, dataset.user_count());
}

TEST(Generator, CabFleetRoamsMoreThanRoutineUsers) {
  auto routine = small_params();
  auto cabs = small_params();
  cabs.cab_fleet = true;
  const auto r = generate(routine);
  const auto c = generate(cabs);
  // Cabs visit many more distinct 800 m cells than home/work commuters.
  auto mean_cells = [](const mobility::Dataset& d) {
    const geo::CellGrid grid(
        geo::LocalProjection(d.traces()[0].front().position), 800.0);
    double total = 0.0;
    for (const auto& trace : d.traces()) {
      std::set<std::pair<int, int>> cells;
      for (const auto& rec : trace.records()) {
        const auto cell = grid.cell_of(rec.position);
        cells.insert({cell.ix, cell.iy});
      }
      total += static_cast<double>(cells.size());
    }
    return total / static_cast<double>(d.user_count());
  };
  EXPECT_GT(mean_cells(c), 2.0 * mean_cells(r));
}

TEST(Generator, ValidatesParameters) {
  GeneratorParams p = small_params();
  p.users = 0;
  EXPECT_THROW(generate(p), support::PreconditionError);
  p = small_params();
  p.days = 0;
  EXPECT_THROW(generate(p), support::PreconditionError);
  p = small_params();
  p.records_per_user_per_day = 0.0;
  EXPECT_THROW(generate(p), support::PreconditionError);
  p = small_params();
  p.pois_per_user_min = 1;
  EXPECT_THROW(generate(p), support::PreconditionError);
  p = small_params();
  p.pois_per_user_max = 2;
  p.pois_per_user_min = 3;
  EXPECT_THROW(generate(p), support::PreconditionError);
}

// -------------------------------------------------------------- Presets --

TEST(Presets, TableOneNamesFirstThenScalingPreset) {
  const auto& names = preset_names();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "mdc");
  EXPECT_EQ(names[3], "cabspotting");
  // Not a paper dataset: the district-structured index-scaling preset
  // rides behind the Table-1 four.
  EXPECT_EQ(names[4], "city-small");
}

TEST(Presets, CitySmallIsDistrictStructured) {
  const auto params = preset_params("city-small");
  EXPECT_EQ(params.users, 10000u);
  EXPECT_GT(params.districts, 0u);
  EXPECT_GT(params.district_spread_m, 0.0);
  // The Table-1 presets predate districts and must keep the legacy
  // generator stream (districts off) so their datasets stay
  // byte-identical.
  EXPECT_EQ(preset_params("mdc").districts, 0u);
  EXPECT_EQ(preset_params("privamov").districts, 0u);
  EXPECT_EQ(preset_params("geolife").districts, 0u);
  EXPECT_EQ(preset_params("cabspotting").districts, 0u);
}

TEST(Presets, UserCountsMatchTableOne) {
  EXPECT_EQ(preset_params("mdc").users, 141u);
  EXPECT_EQ(preset_params("privamov").users, 41u);
  EXPECT_EQ(preset_params("geolife").users, 41u);
  EXPECT_EQ(preset_params("cabspotting").users, 531u);
}

TEST(Presets, CitiesMatchTableOne) {
  EXPECT_NEAR(preset_params("mdc").city_center.lat, 46.2, 0.1);      // Geneva
  EXPECT_NEAR(preset_params("privamov").city_center.lat, 45.76, 0.1); // Lyon
  EXPECT_NEAR(preset_params("geolife").city_center.lat, 39.9, 0.1);  // Beijing
  EXPECT_NEAR(preset_params("cabspotting").city_center.lon, -122.4, 0.1);
}

TEST(Presets, OnlyCabspottingIsAFleet) {
  EXPECT_FALSE(preset_params("mdc").cab_fleet);
  EXPECT_FALSE(preset_params("privamov").cab_fleet);
  EXPECT_FALSE(preset_params("geolife").cab_fleet);
  EXPECT_TRUE(preset_params("cabspotting").cab_fleet);
}

TEST(Presets, ScaleControlsRecordVolume) {
  const auto full = preset_params("mdc", 1.0);
  const auto tenth = preset_params("mdc", 0.1);
  EXPECT_NEAR(tenth.records_per_user_per_day,
              full.records_per_user_per_day * 0.1, 1e-9);
}

TEST(Presets, RejectsUnknownNameAndBadScale) {
  EXPECT_THROW(preset_params("mars"), support::PreconditionError);
  EXPECT_THROW(preset_params("mdc", 0.0), support::PreconditionError);
  EXPECT_THROW(preset_params("mdc", 5.0), support::PreconditionError);
}

TEST(Presets, GeneratedPresetHasPaperUserCount) {
  const auto dataset = make_preset_dataset("privamov", 0.05, 5);
  EXPECT_EQ(dataset.user_count(), 41u);
  EXPECT_EQ(dataset.name(), "PrivaMov");
}

}  // namespace
}  // namespace mood::simulation
