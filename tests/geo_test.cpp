// Unit tests for the geo subsystem: haversine, projections, bounding boxes
// and the shared cell grid.

#include <gtest/gtest.h>

#include <cmath>

#include "geo/cell_grid.h"
#include "geo/geo.h"
#include "support/error.h"

namespace mood::geo {
namespace {

constexpr double kLyonLat = 45.7640;
constexpr double kLyonLon = 4.8357;

TEST(Haversine, ZeroForIdenticalPoints) {
  const GeoPoint p{kLyonLat, kLyonLon};
  EXPECT_DOUBLE_EQ(haversine_m(p, p), 0.0);
}

TEST(Haversine, KnownCityDistance) {
  // Lyon -> Geneva is ~112 km as the crow flies.
  const GeoPoint lyon{45.7640, 4.8357};
  const GeoPoint geneva{46.2044, 6.1432};
  EXPECT_NEAR(haversine_m(lyon, geneva), 112000.0, 2500.0);
}

TEST(Haversine, OneDegreeLatitudeIsKnown) {
  const GeoPoint a{45.0, 5.0}, b{46.0, 5.0};
  EXPECT_NEAR(haversine_m(a, b), 111195.0, 50.0);  // pi*R/180
}

TEST(Haversine, Symmetric) {
  const GeoPoint a{45.0, 5.0}, b{45.3, 5.4};
  EXPECT_DOUBLE_EQ(haversine_m(a, b), haversine_m(b, a));
}

TEST(Destination, NorthAndEastDisplacements) {
  const GeoPoint origin{kLyonLat, kLyonLon};
  const GeoPoint north = destination(origin, 0.0, 1000.0);
  EXPECT_NEAR(haversine_m(origin, north), 1000.0, 1.0);
  EXPECT_GT(north.lat, origin.lat);
  EXPECT_NEAR(north.lon, origin.lon, 1e-9);

  const GeoPoint east = destination(origin, kPi / 2.0, 1000.0);
  EXPECT_NEAR(haversine_m(origin, east), 1000.0, 1.0);
  EXPECT_GT(east.lon, origin.lon);
  EXPECT_NEAR(east.lat, origin.lat, 1e-9);
}

TEST(Destination, ZeroDistanceIsIdentity) {
  const GeoPoint origin{kLyonLat, kLyonLon};
  const GeoPoint there = destination(origin, 1.234, 0.0);
  EXPECT_NEAR(haversine_m(origin, there), 0.0, 1e-9);
}

TEST(Destination, RejectsNearPoleOrigins) {
  // Near-pole origins used to silently return an unchanged (or wildly
  // wrong) longitude, corrupting LPPM output; they must now fail loudly
  // with the same |lat| < 89 bound as LocalProjection.
  EXPECT_THROW(destination(GeoPoint{90.0, 0.0}, 0.0, 10.0),
               support::PreconditionError);
  EXPECT_THROW(destination(GeoPoint{-90.0, 0.0}, 0.0, 10.0),
               support::PreconditionError);
  EXPECT_THROW(destination(GeoPoint{89.0, 0.0}, 0.0, 10.0),
               support::PreconditionError);
  EXPECT_THROW(destination(GeoPoint{-89.5, 0.0}, 0.0, 10.0),
               support::PreconditionError);
  // Well away from the poles still works.
  EXPECT_NO_THROW(destination(GeoPoint{85.0, 0.0}, 0.0, 10.0));
}

TEST(LocalProjection, RoundTripsAccurately) {
  const LocalProjection proj(GeoPoint{kLyonLat, kLyonLon});
  for (double dlat = -0.1; dlat <= 0.1; dlat += 0.05) {
    for (double dlon = -0.1; dlon <= 0.1; dlon += 0.05) {
      const GeoPoint p{kLyonLat + dlat, kLyonLon + dlon};
      const GeoPoint back = proj.to_geo(proj.to_enu(p));
      EXPECT_NEAR(back.lat, p.lat, 1e-9);
      EXPECT_NEAR(back.lon, p.lon, 1e-9);
    }
  }
}

TEST(LocalProjection, DistancesMatchHaversineAtCityScale) {
  const LocalProjection proj(GeoPoint{kLyonLat, kLyonLon});
  const GeoPoint a{kLyonLat + 0.03, kLyonLon - 0.05};
  const GeoPoint b{kLyonLat - 0.02, kLyonLon + 0.04};
  const double planar = euclidean_m(proj.to_enu(a), proj.to_enu(b));
  const double sphere = haversine_m(a, b);
  EXPECT_NEAR(planar, sphere, sphere * 0.002);  // < 0.2% at ~10 km
}

TEST(LocalProjection, RejectsPolarReference) {
  EXPECT_THROW(LocalProjection(GeoPoint{89.9, 0.0}),
               support::PreconditionError);
}

TEST(BoundingBox, GrowsAndContains) {
  BoundingBox box;
  EXPECT_TRUE(box.empty());
  EXPECT_FALSE(box.contains(GeoPoint{0, 0}));
  box.extend(GeoPoint{45.0, 5.0});
  box.extend(GeoPoint{46.0, 4.0});
  EXPECT_FALSE(box.empty());
  EXPECT_TRUE(box.contains(GeoPoint{45.5, 4.5}));
  EXPECT_FALSE(box.contains(GeoPoint{47.0, 4.5}));
  const GeoPoint c = box.center();
  EXPECT_NEAR(c.lat, 45.5, 1e-12);
  EXPECT_NEAR(c.lon, 4.5, 1e-12);
  EXPECT_GT(box.diagonal_m(), 0.0);
}

TEST(BoundingBox, CenterOfEmptyThrows) {
  const BoundingBox box;
  EXPECT_THROW(static_cast<void>(box.center()), support::PreconditionError);
  EXPECT_DOUBLE_EQ(box.diagonal_m(), 0.0);
}

TEST(Centroid, AveragesAndRejectsEmpty) {
  const GeoPoint c =
      centroid({GeoPoint{45.0, 5.0}, GeoPoint{47.0, 3.0}});
  EXPECT_NEAR(c.lat, 46.0, 1e-12);
  EXPECT_NEAR(c.lon, 4.0, 1e-12);
  EXPECT_THROW(centroid({}), support::PreconditionError);
}

// ----------------------------------------------------------- CellGrid --

class CellGridTest : public ::testing::Test {
 protected:
  LocalProjection proj_{GeoPoint{kLyonLat, kLyonLon}};
  CellGrid grid_{proj_, 800.0};
};

TEST_F(CellGridTest, OriginFallsInCellZero) {
  const CellIndex c = grid_.cell_of(GeoPoint{kLyonLat, kLyonLon});
  EXPECT_EQ(c.ix, 0);
  EXPECT_EQ(c.iy, 0);
}

TEST_F(CellGridTest, NeighbourCellsAreAdjacent) {
  const GeoPoint east_900m =
      destination(GeoPoint{kLyonLat, kLyonLon}, kPi / 2.0, 900.0);
  const CellIndex c = grid_.cell_of(east_900m);
  EXPECT_EQ(c.ix, 1);
  EXPECT_EQ(c.iy, 0);
}

TEST_F(CellGridTest, NegativeCellsWestAndSouth) {
  const GeoPoint west =
      destination(GeoPoint{kLyonLat, kLyonLon}, -kPi / 2.0, 900.0);
  EXPECT_EQ(grid_.cell_of(west).ix, -2);
  const GeoPoint south = destination(GeoPoint{kLyonLat, kLyonLon}, kPi, 10.0);
  EXPECT_EQ(grid_.cell_of(south).iy, -1);
}

TEST_F(CellGridTest, CellCenterMapsBackToSameCell) {
  for (int ix = -3; ix <= 3; ++ix) {
    for (int iy = -3; iy <= 3; ++iy) {
      const CellIndex c{ix, iy};
      EXPECT_EQ(grid_.cell_of(grid_.cell_center(c)), c);
    }
  }
}

TEST_F(CellGridTest, OffsetRoundTrip) {
  const GeoPoint p = destination(
      destination(GeoPoint{kLyonLat, kLyonLon}, kPi / 2.0, 1234.0), 0.0,
      567.0);
  const CellIndex cell = grid_.cell_of(p);
  const EnuPoint offset = grid_.offset_within_cell(p);
  EXPECT_GE(offset.x, 0.0);
  EXPECT_LT(offset.x, 800.0);
  EXPECT_GE(offset.y, 0.0);
  EXPECT_LT(offset.y, 800.0);
  const GeoPoint back = grid_.point_in_cell(cell, offset);
  EXPECT_NEAR(haversine_m(p, back), 0.0, 0.01);
}

TEST_F(CellGridTest, RejectsNonPositiveCellSize) {
  EXPECT_THROW(CellGrid(proj_, 0.0), support::PreconditionError);
  EXPECT_THROW(CellGrid(proj_, -5.0), support::PreconditionError);
}

TEST(CellIndexHash, DistinctCellsUsuallyDistinctHashes) {
  CellIndexHash hash;
  std::set<std::size_t> seen;
  int collisions = 0;
  for (int x = -50; x < 50; ++x) {
    for (int y = -50; y < 50; ++y) {
      if (!seen.insert(hash(CellIndex{x, y})).second) ++collisions;
    }
  }
  EXPECT_LT(collisions, 3);
}

}  // namespace
}  // namespace mood::geo
